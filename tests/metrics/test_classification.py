"""Tests for the classification metrics (Table IV's accuracy and friends)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ShapeError
from repro.metrics.classification import (
    accuracy,
    balanced_accuracy,
    confusion_matrix,
    precision_recall_f1,
)

binary = arrays(np.int64, 20, elements=st.sampled_from([0, 1]))


class TestAccuracy:
    def test_perfect(self):
        y = np.array([0, 1, 1, 0])
        assert accuracy(y, y) == 1.0

    def test_all_wrong(self):
        y = np.array([0, 1, 1, 0])
        assert accuracy(y, 1 - y) == 0.0

    def test_partial(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 1]) == 0.75

    def test_rejects_non_binary(self):
        with pytest.raises(ShapeError):
            accuracy([0, 2], [0, 1])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError):
            accuracy([0, 1], [0, 1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            accuracy([], [])

    @given(binary, binary)
    def test_property_bounded_and_complementary(self, y, p):
        a = accuracy(y, p)
        assert 0.0 <= a <= 1.0
        assert a + accuracy(y, 1 - p) == pytest.approx(1.0)


class TestConfusionMatrix:
    def test_layout(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([0, 1, 1, 0, 1])
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 2]])

    @given(binary, binary)
    def test_property_entries_sum_to_n(self, y, p):
        assert confusion_matrix(y, p).sum() == len(y)


class TestPrecisionRecallF1:
    def test_by_hand(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        precision, recall, f1 = precision_recall_f1(y_true, y_pred)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_degenerate_no_positives_predicted(self):
        precision, recall, f1 = precision_recall_f1([1, 1], [0, 0])
        assert precision == 0.0
        assert recall == 0.0
        assert f1 == 0.0

    @given(binary, binary)
    def test_property_f1_between_precision_and_recall_bounds(self, y, p):
        precision, recall, f1 = precision_recall_f1(y, p)
        assert 0.0 <= f1 <= 1.0
        assert min(precision, recall) - 1e-12 <= f1 <= max(precision, recall) + 1e-12


class TestBalancedAccuracy:
    def test_imbalanced_dataset(self):
        # 90 empty + 10 occupied; predicting all-empty gets 90 % raw
        # accuracy but only 50 % balanced accuracy.
        y_true = np.array([0] * 90 + [1] * 10)
        y_pred = np.zeros(100, dtype=int)
        assert accuracy(y_true, y_pred) == 0.9
        assert balanced_accuracy(y_true, y_pred) == 0.5

    def test_single_class_fold(self):
        # Table III folds 2-3 are all-empty: balanced accuracy reduces to
        # the empty-class recall.
        y_true = np.zeros(10, dtype=int)
        y_pred = np.array([0] * 8 + [1] * 2)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.8)

    @given(binary, binary)
    def test_property_bounded(self, y, p):
        assert 0.0 <= balanced_accuracy(y, p) <= 1.0
