"""Tests for probability-calibration metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ShapeError
from repro.metrics.calibration import (
    brier_score,
    expected_calibration_error,
    reliability_curve,
)


def calibrated_sample(n=5000, seed=0):
    """Labels drawn from their own predicted probabilities."""
    rng = np.random.default_rng(seed)
    proba = rng.uniform(0, 1, n)
    y = (rng.uniform(0, 1, n) < proba).astype(int)
    return y, proba


class TestReliabilityCurve:
    def test_calibrated_predictions_on_diagonal(self):
        y, proba = calibrated_sample()
        predicted, empirical, counts = reliability_curve(y, proba)
        np.testing.assert_allclose(predicted, empirical, atol=0.08)
        assert counts.sum() == len(y)

    def test_overconfident_off_diagonal(self):
        y, proba = calibrated_sample()
        sharpened = np.clip(proba * 2 - 0.5, 0, 1)  # push toward extremes
        predicted, empirical, _ = reliability_curve(y, sharpened)
        assert np.abs(predicted - empirical).max() > 0.05

    def test_empty_bins_dropped(self):
        y = np.array([0, 1])
        proba = np.array([0.05, 0.95])
        predicted, empirical, counts = reliability_curve(y, proba, n_bins=10)
        assert len(predicted) == 2

    def test_validation(self):
        with pytest.raises(ShapeError):
            reliability_curve([0, 1], [0.5, 1.5])
        with pytest.raises(ShapeError):
            reliability_curve([0, 2], [0.5, 0.5])
        with pytest.raises(ShapeError):
            reliability_curve([0, 1], [0.5, 0.5], n_bins=0)


class TestECE:
    def test_calibrated_near_zero(self):
        y, proba = calibrated_sample()
        assert expected_calibration_error(y, proba) < 0.05

    def test_constant_wrong_probability_large(self):
        y = np.array([0] * 90 + [1] * 10)
        proba = np.full(100, 0.9)
        assert expected_calibration_error(y, proba) == pytest.approx(0.8)

    @given(
        arrays(np.int64, 30, elements=st.sampled_from([0, 1])),
        arrays(np.float64, 30, elements=st.floats(0, 1)),
    )
    def test_property_bounded(self, y, proba):
        assert 0.0 <= expected_calibration_error(y, proba) <= 1.0


class TestBrier:
    def test_perfect_certainty(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0

    def test_worst_case(self):
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0

    def test_coin_flip(self):
        assert brier_score([1, 0], [0.5, 0.5]) == pytest.approx(0.25)

    @given(
        arrays(np.int64, 20, elements=st.sampled_from([0, 1])),
        arrays(np.float64, 20, elements=st.floats(0, 1)),
    )
    def test_property_bounded(self, y, proba):
        assert 0.0 <= brier_score(y, proba) <= 1.0
