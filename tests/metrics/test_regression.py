"""Tests for the regression metrics (paper Eqs. 2-3 and friends)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ShapeError
from repro.metrics.regression import mae, mape, r2_score, rmse

vectors = arrays(np.float64, 15, elements=st.floats(-1e4, 1e4))


class TestMae:
    def test_eq2_by_hand(self):
        assert mae([1.0, 2.0, 3.0], [2.0, 2.0, 5.0]) == pytest.approx(1.0)

    def test_zero_at_equality(self):
        assert mae([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mae([1.0], [1.0, 2.0])

    @given(vectors, vectors)
    def test_property_symmetric_and_non_negative(self, a, b):
        assert mae(a, b) >= 0.0
        assert mae(a, b) == pytest.approx(mae(b, a))

    @given(vectors, vectors)
    def test_property_triangle_via_shift(self, a, b):
        # Shifting both by a constant leaves MAE unchanged.
        assert mae(a + 5.0, b + 5.0) == pytest.approx(mae(a, b), abs=1e-9)


class TestMape:
    def test_eq3_by_hand(self):
        # |10-9|/10 = 0.1, |20-24|/20 = 0.2 -> mean 0.15.
        assert mape([10.0, 20.0], [9.0, 24.0]) == pytest.approx(0.15)

    def test_zero_target_uses_epsilon_guard(self):
        value = mape([0.0], [1.0], eps=1e-9)
        assert np.isfinite(value)
        assert value > 1.0  # huge but not infinite

    def test_scale_invariance(self):
        # The paper chose MAPE because it "is not affected by a global
        # scaling of the target variable".
        y = np.array([10.0, 20.0, 30.0])
        p = np.array([11.0, 18.0, 33.0])
        assert mape(y, p) == pytest.approx(mape(10 * y, 10 * p))

    def test_rejects_non_positive_eps(self):
        with pytest.raises(ShapeError):
            mape([1.0], [1.0], eps=0.0)

    @given(vectors, vectors)
    def test_property_non_negative(self, a, b):
        assert mape(a, b) >= 0.0


class TestRmse:
    def test_by_hand(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    @given(vectors, vectors)
    def test_property_dominates_mae(self, a, b):
        # RMSE >= MAE always (Jensen).
        assert rmse(a, b) >= mae(a, b) - 1e-9


class TestR2:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([3.0, 1.0, -2.0])) < 0.0

    def test_constant_target_conventions(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 0.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == -1.0

    @given(vectors)
    def test_property_perfect_is_one_or_constant_zero(self, y):
        constant = bool(np.all(y == y[0])) or float(np.sum((y - y.mean()) ** 2)) == 0.0
        expected = 0.0 if constant else 1.0
        assert r2_score(y, y) == pytest.approx(expected)
