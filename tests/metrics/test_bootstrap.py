"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.metrics.bootstrap import bootstrap_ci
from repro.metrics.classification import accuracy
from repro.metrics.regression import mae


class TestBootstrapCI:
    def test_interval_contains_estimate(self, rng):
        y = rng.integers(0, 2, 500)
        pred = np.where(rng.uniform(size=500) < 0.9, y, 1 - y)
        estimate, low, high = bootstrap_ci(accuracy, y, pred, rng=rng)
        assert low <= estimate <= high
        assert estimate == pytest.approx(0.9, abs=0.05)

    def test_interval_narrows_with_data(self, rng):
        def width(n: int) -> float:
            y = rng.integers(0, 2, n)
            pred = np.where(rng.uniform(size=n) < 0.8, y, 1 - y)
            _, low, high = bootstrap_ci(accuracy, y, pred, rng=rng)
            return high - low

        assert width(4000) < width(100)

    def test_deterministic_prediction_zero_width(self, rng):
        y = np.ones(50, dtype=int)
        estimate, low, high = bootstrap_ci(accuracy, y, y, rng=rng)
        assert estimate == low == high == 1.0

    def test_works_with_regression_metric(self, rng):
        y = rng.normal(size=300)
        pred = y + rng.normal(0, 0.5, 300)
        estimate, low, high = bootstrap_ci(mae, y, pred, rng=rng)
        assert 0 < low <= estimate <= high

    def test_confidence_changes_width(self, rng):
        y = rng.integers(0, 2, 300)
        pred = np.where(rng.uniform(size=300) < 0.7, y, 1 - y)
        _, low90, high90 = bootstrap_ci(accuracy, y, pred, confidence=0.90, rng=rng)
        _, low99, high99 = bootstrap_ci(accuracy, y, pred, confidence=0.99, rng=rng)
        assert (high99 - low99) >= (high90 - low90) - 1e-9

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            bootstrap_ci(accuracy, np.ones(3), np.ones(2), rng=rng)
        with pytest.raises(ShapeError):
            bootstrap_ci(accuracy, np.ones(3), np.ones(3), n_resamples=2, rng=rng)
        with pytest.raises(ShapeError):
            bootstrap_ci(accuracy, np.ones(3), np.ones(3), confidence=1.5, rng=rng)
        with pytest.raises(ShapeError):
            bootstrap_ci(accuracy, np.array([]), np.array([]), rng=rng)
