"""Tests for the exception hierarchy contract."""

import pytest

from repro import exceptions


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "ConfigurationError",
            "GeometryError",
            "ChannelError",
            "DatasetError",
            "SchemaError",
            "NotFittedError",
            "ShapeError",
            "AutogradError",
            "DeploymentError",
            "SerializationError",
            "ConfigError",
            "StreamError",
            "ValidationError",
            "ServingError",
            "RateLimitError",
            "DeadlineError",
        ],
    )
    def test_all_derive_from_repro_error(self, name):
        cls = getattr(exceptions, name)
        assert issubclass(cls, exceptions.ReproError)

    def test_schema_error_is_dataset_error(self):
        # A schema violation is a kind of dataset problem.
        assert issubclass(exceptions.SchemaError, exceptions.DatasetError)

    def test_value_like_errors_are_value_errors(self):
        # Callers using plain ValueError handling still catch config and
        # shape problems.
        assert issubclass(exceptions.ConfigurationError, ValueError)
        assert issubclass(exceptions.GeometryError, ValueError)
        assert issubclass(exceptions.ShapeError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(exceptions.NotFittedError, RuntimeError)

    def test_overload_errors_are_serving_errors(self):
        # Catching ServingError at a request boundary covers both typed
        # overload refusals without naming them individually.
        assert issubclass(exceptions.RateLimitError, exceptions.ServingError)
        assert issubclass(exceptions.DeadlineError, exceptions.ServingError)
        assert issubclass(exceptions.ServingError, RuntimeError)

    def test_config_error_is_configuration_error(self):
        # Legacy except ConfigurationError blocks keep catching the
        # shorter-named overload-plane config failures.
        assert issubclass(exceptions.ConfigError, exceptions.ConfigurationError)

    def test_catching_base_catches_all(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.ChannelError("boom")
