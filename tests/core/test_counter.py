"""Tests for the occupant counter extension."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.counter import OccupantCounter
from repro.exceptions import ConfigurationError, ShapeError


FAST = TrainingConfig(epochs=6, hidden_sizes=(32, 32), batch_size=128)


@pytest.fixture(scope="module")
def trained(day_dataset):
    counter = OccupantCounter(64, max_count=4, config=FAST)
    counter.fit(day_dataset.csi, day_dataset.occupant_count)
    return counter, day_dataset


class TestOccupantCounter:
    def test_counts_in_range(self, trained):
        counter, ds = trained
        predictions = counter.predict(ds.csi[:500])
        assert predictions.min() >= 0
        assert predictions.max() <= 4

    def test_training_performance(self, trained):
        counter, ds = trained
        scores = counter.score(ds.csi, ds.occupant_count)
        assert scores["within_one"] > 0.85
        assert scores["count_mae"] < 1.0
        assert 0.0 <= scores["accuracy"] <= 1.0

    def test_occupancy_reduction_consistent(self, trained):
        counter, ds = trained
        occupancy_acc = counter.occupancy_score(ds.csi, ds.occupancy)
        assert occupancy_acc > 0.8

    def test_expected_count_fractional(self, trained):
        counter, ds = trained
        expected = counter.expected_count(ds.csi[:100])
        assert expected.shape == (100,)
        assert np.all((0.0 <= expected) & (expected <= 4.0))

    def test_counts_above_max_clipped(self):
        counter = OccupantCounter(4, max_count=2, config=FAST)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 4))
        counts = rng.integers(0, 6, 200)
        counter.fit(x, counts)  # must not raise
        assert counter.predict(x).max() <= 2

    def test_rejects_negative_counts(self):
        counter = OccupantCounter(4, config=FAST)
        with pytest.raises(ShapeError):
            counter.fit(np.ones((3, 4)), np.array([0, -1, 2]))

    def test_rejects_zero_max_count(self):
        with pytest.raises(ConfigurationError):
            OccupantCounter(4, max_count=0)

    def test_score_shape_mismatch(self, trained):
        counter, ds = trained
        with pytest.raises(ShapeError):
            counter.score(ds.csi[:10], ds.occupant_count[:5])
