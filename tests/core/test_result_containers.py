"""Tests for the Table IV / Table V result containers (pure logic)."""

import numpy as np
import pytest

from repro.core.experiment import TableIVResult, TableVResult
from repro.core.features import FeatureSet


class TestTableIVResult:
    def make(self) -> TableIVResult:
        result = TableIVResult(fold_indices=[1, 2, 3])
        result.record("mlp", FeatureSet.CSI, [90.0, 95.0, 100.0])
        result.record("mlp", FeatureSet.ENV, [50.0, 60.0, 70.0])
        result.record("logistic", FeatureSet.CSI, [80.0, 80.0, 80.0])
        return result

    def test_average(self):
        result = self.make()
        assert result.average("mlp", FeatureSet.CSI) == pytest.approx(95.0)
        assert result.average("logistic", FeatureSet.CSI) == pytest.approx(80.0)

    def test_rows_have_fold_plus_average(self):
        rows = self.make().rows()
        assert len(rows) == 4
        assert [r["fold"] for r in rows] == [1, 2, 3, "Avg."]

    def test_rows_column_naming(self):
        rows = self.make().rows()
        assert rows[0]["mlp/CSI"] == 90.0
        assert rows[-1]["mlp/Env"] == pytest.approx(60.0)

    def test_missing_cells_left_blank(self):
        # logistic/Env was never recorded; rows() must not crash.
        rows = self.make().rows()
        assert "logistic/Env" not in rows[0]


class TestTableVResult:
    def make(self) -> TableVResult:
        result = TableVResult(fold_indices=[1, 2])
        result.scores["linear"] = [
            {"mae_temperature": 2.0, "mae_humidity": 4.0,
             "mape_temperature": 10.0, "mape_humidity": 12.0},
            {"mae_temperature": 4.0, "mae_humidity": 6.0,
             "mape_temperature": 20.0, "mape_humidity": 18.0},
        ]
        return result

    def test_average(self):
        result = self.make()
        assert result.average("linear", "mae_temperature") == pytest.approx(3.0)
        assert result.average("linear", "mape_humidity") == pytest.approx(15.0)

    def test_rows_format_pairs(self):
        rows = self.make().rows()
        assert rows[0]["linear MAE (T/H)"] == "2.00/4.00"
        assert rows[-1]["fold"] == "Avg."
        assert rows[-1]["linear MAE (T/H)"] == "3.00/5.00"

    def test_rows_mape_column(self):
        rows = self.make().rows()
        assert rows[1]["linear MAPE (T/H)"] == "20.00/18.00"
