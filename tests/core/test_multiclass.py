"""Tests for the multi-class MLP head."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.multiclass import MulticlassMLP
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.nn.losses import cross_entropy_loss, one_hot
from repro.nn.tensor import Tensor


FAST = TrainingConfig(epochs=15, hidden_sizes=(32, 32), batch_size=64)


def ring_data(n=600, n_classes=3, seed=0):
    """Classes separable by radius — non-linear, like CSI occupancy."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    radius = np.linalg.norm(x, axis=1)
    edges = np.quantile(radius, np.linspace(0, 1, n_classes + 1)[1:-1])
    labels = np.digitize(radius, edges)
    return x, labels


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        targets = Tensor(one_hot(np.array([0, 1]), 2))
        assert cross_entropy_loss(logits, targets).item() < 1e-6

    def test_uniform_prediction_log_c(self):
        logits = Tensor(np.zeros((4, 3)))
        targets = Tensor(one_hot(np.array([0, 1, 2, 0]), 3))
        assert cross_entropy_loss(logits, targets).item() == pytest.approx(np.log(3))

    def test_stable_for_huge_logits(self):
        logits = Tensor(np.array([[1e4, 0.0]]))
        targets = Tensor(one_hot(np.array([0]), 2))
        assert cross_entropy_loss(logits, targets).item() == pytest.approx(0.0, abs=1e-9)

    def test_gradient_flows(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        targets = Tensor(one_hot(np.array([0, 2]), 3))
        cross_entropy_loss(logits, targets).backward()
        assert logits.grad is not None
        # Gradient rows sum to zero (softmax simplex constraint).
        np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-12)

    def test_one_hot_validation(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([0, 3]), 3)

    def test_rejects_1d_logits(self):
        with pytest.raises(ShapeError):
            cross_entropy_loss(Tensor(np.zeros(3)), Tensor(np.zeros(3)))


class TestMulticlassMLP:
    def test_learns_ring_classes(self):
        x, labels = ring_data()
        model = MulticlassMLP(2, 3, FAST).fit(x, labels)
        assert model.score(x, labels) > 0.85

    def test_proba_rows_sum_to_one(self):
        x, labels = ring_data()
        model = MulticlassMLP(2, 3, FAST).fit(x, labels)
        proba = model.predict_proba(x[:50])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)
        assert np.all(proba >= 0)

    def test_predictions_in_class_range(self):
        x, labels = ring_data()
        model = MulticlassMLP(2, 3, FAST).fit(x, labels)
        predictions = model.predict(x[:50])
        assert predictions.min() >= 0 and predictions.max() < 3

    def test_binary_occupancy_score(self):
        x, labels = ring_data()
        model = MulticlassMLP(2, 3, FAST).fit(x, labels)
        occupancy = (labels > 0).astype(int)
        score = model.binary_occupancy_score(x, occupancy)
        assert score > 0.85

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MulticlassMLP(2, 3, FAST).predict(np.ones((2, 2)))

    def test_rejects_single_class(self):
        with pytest.raises(ConfigurationError):
            MulticlassMLP(2, 1, FAST)

    def test_rejects_wrong_width(self):
        with pytest.raises(ShapeError):
            MulticlassMLP(2, 3, FAST).fit(np.ones((5, 3)), np.zeros(5, dtype=int))

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ShapeError):
            MulticlassMLP(2, 3, FAST).fit(np.ones((5, 2)), np.full(5, 7))
