"""Tests for the unsupervised variance-threshold detector."""

import numpy as np
import pytest

from repro.core.unsupervised import VarianceThresholdDetector
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError


@pytest.fixture(scope="module")
def calibrated(day_dataset):
    """Detector calibrated on the campaign's first empty stretch."""
    occ = day_dataset.occupancy
    empty_idx = np.flatnonzero(occ == 0)
    reference = day_dataset.csi[empty_idx[:800]]
    detector = VarianceThresholdDetector(window=8)
    detector.fit_reference(reference)
    return detector


class TestVarianceThresholdDetector:
    def test_beats_majority_without_labels(self, calibrated, day_dataset):
        accuracy = calibrated.score(day_dataset.csi, day_dataset.occupancy)
        majority = max(
            day_dataset.class_balance()["empty"], day_dataset.class_balance()["occupied"]
        )
        assert accuracy > majority - 0.05

    def test_statistic_higher_when_occupied(self, calibrated, day_dataset):
        statistic = calibrated.decision_statistic(day_dataset.csi)
        occ = day_dataset.occupancy
        assert statistic[occ == 1].mean() > statistic[occ == 0].mean()

    def test_empty_reference_mostly_below_threshold(self, calibrated, day_dataset):
        occ = day_dataset.occupancy
        empty_idx = np.flatnonzero(occ == 0)
        predictions = calibrated.predict(day_dataset.csi[empty_idx[:800]])
        assert predictions.mean() < 0.10

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            VarianceThresholdDetector().predict(np.ones((20, 4)))

    def test_shape_validation(self, calibrated):
        with pytest.raises(ShapeError):
            calibrated.predict(np.ones(30))
        with pytest.raises(ShapeError):
            calibrated.predict(np.ones((3, 4)))  # shorter than window

    @pytest.mark.parametrize(
        "kwargs",
        [{"window": 1}, {"quantile": 0.0}, {"quantile": 1.0}, {"margin": 0.0}],
    )
    def test_construction_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            VarianceThresholdDetector(**kwargs)

    def test_synthetic_separation(self):
        # Quiet stream vs jittering stream: threshold must separate them.
        rng = np.random.default_rng(0)
        quiet = 1.0 + 0.01 * rng.normal(size=(400, 8))
        busy = 1.0 + 0.2 * rng.normal(size=(400, 8))
        detector = VarianceThresholdDetector(window=10).fit_reference(quiet)
        assert detector.predict(busy).mean() > 0.9
        assert detector.predict(quiet).mean() < 0.1
