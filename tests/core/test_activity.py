"""Tests for the activity-recognition extension (the paper's future work)."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.activity import ACTIVITY_LABELS, ActivityRecognizer
from repro.exceptions import ShapeError


FAST = TrainingConfig(epochs=6, hidden_sizes=(32, 32), batch_size=128)


@pytest.fixture(scope="module")
def trained(day_dataset):
    recognizer = ActivityRecognizer(64, FAST)
    recognizer.fit(day_dataset.csi, day_dataset.activity)
    return recognizer, day_dataset


class TestActivityRecognizer:
    def test_label_order(self):
        assert ACTIVITY_LABELS == ("empty", "walking", "standing", "sitting")

    def test_simultaneous_occupancy_detection(self, trained):
        # The paper's future-work goal: one model doing both tasks.
        recognizer, ds = trained
        assert recognizer.occupancy_score(ds.csi, ds.occupancy) > 0.85

    def test_activity_accuracy_above_majority(self, trained):
        recognizer, ds = trained
        majority = np.bincount(ds.activity).max() / len(ds)
        assert recognizer.score(ds.csi, ds.activity) > majority

    def test_confusion_matrix_accounting(self, trained):
        recognizer, ds = trained
        matrix = recognizer.confusion(ds.csi, ds.activity)
        assert matrix.shape == (4, 4)
        assert matrix.sum() == len(ds)
        # Row sums equal class supports.
        np.testing.assert_array_equal(matrix.sum(axis=1), np.bincount(ds.activity, minlength=4))

    def test_reliability_report_keys(self, trained):
        recognizer, ds = trained
        report = recognizer.reliability_report(ds.csi, ds.activity)
        present = {ACTIVITY_LABELS[c] for c in np.unique(ds.activity)}
        assert set(report) == present
        assert all(0.0 <= v <= 1.0 for v in report.values())

    def test_empty_class_reliable(self, trained):
        # An empty room is the easiest state to recognise.
        recognizer, ds = trained
        report = recognizer.reliability_report(ds.csi, ds.activity)
        assert report["empty"] > 0.8

    def test_rejects_bad_codes(self):
        recognizer = ActivityRecognizer(4, FAST)
        with pytest.raises(ShapeError):
            recognizer.fit(np.ones((3, 4)), np.array([0, 1, 9]))

    def test_probabilities_shape(self, trained):
        recognizer, ds = trained
        proba = recognizer.predict_proba(ds.csi[:20])
        assert proba.shape == (20, 4)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)
