"""Tests for the Table IV feature subsets."""

import numpy as np
import pytest

from repro.core.features import FeatureSet, extract_features, feature_names


class TestExtractFeatures:
    def test_csi_width(self, smoke_dataset):
        x = extract_features(smoke_dataset, FeatureSet.CSI)
        assert x.shape == (len(smoke_dataset), 64)

    def test_env_width(self, smoke_dataset):
        x = extract_features(smoke_dataset, FeatureSet.ENV)
        assert x.shape == (len(smoke_dataset), 2)
        np.testing.assert_array_equal(x[:, 0], smoke_dataset.temperature_c)
        np.testing.assert_array_equal(x[:, 1], smoke_dataset.humidity_rh)

    def test_csi_env_width_66(self, smoke_dataset):
        # The paper's full feature set F = S(x,t) u S(e,t) u S(h,t).
        x = extract_features(smoke_dataset, FeatureSet.CSI_ENV)
        assert x.shape == (len(smoke_dataset), 66)
        np.testing.assert_array_equal(x[:, :64], smoke_dataset.csi)
        np.testing.assert_array_equal(x[:, 64], smoke_dataset.temperature_c)

    def test_time_feature_is_hour_of_day(self, smoke_dataset):
        x = extract_features(smoke_dataset, FeatureSet.TIME, start_hour_of_day=8.0)
        assert x.shape == (len(smoke_dataset), 1)
        assert np.all((0 <= x) & (x < 24))
        expected0 = (8.0 + smoke_dataset.timestamps_s[0] / 3600.0) % 24.0
        assert x[0, 0] == pytest.approx(expected0)

    def test_csi_copy_is_defensive(self, smoke_dataset):
        x = extract_features(smoke_dataset, FeatureSet.CSI)
        x[0, 0] = -99.0
        assert smoke_dataset.csi[0, 0] != -99.0


class TestFeatureNames:
    def test_labels_match_table_iv(self):
        assert FeatureSet.CSI.label == "CSI"
        assert FeatureSet.ENV.label == "Env"
        assert FeatureSet.CSI_ENV.label == "C+E"

    def test_names_lengths(self):
        assert len(feature_names(FeatureSet.CSI)) == 64
        assert feature_names(FeatureSet.ENV) == ["e", "h"]
        assert len(feature_names(FeatureSet.CSI_ENV)) == 66
        assert feature_names(FeatureSet.CSI_ENV)[-2:] == ["e", "h"]
        assert feature_names(FeatureSet.TIME) == ["hour_of_day"]

    def test_subcarrier_naming(self):
        names = feature_names(FeatureSet.CSI, n_subcarriers=4)
        assert names == ["a0", "a1", "a2", "a3"]
