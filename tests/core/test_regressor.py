"""Tests for the EnvironmentRegressor (Section V-D)."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.regressor import EnvironmentRegressor, TARGET_NAMES
from repro.exceptions import NotFittedError, ShapeError


FAST = TrainingConfig(epochs=5, hidden_sizes=(32, 32), batch_size=128)


@pytest.fixture(scope="module")
def trained(day_dataset):
    x = day_dataset.csi
    y = np.column_stack([day_dataset.temperature_c, day_dataset.humidity_rh])
    model = EnvironmentRegressor(64, FAST).fit(x, y)
    return model, x, y


class TestFitPredict:
    def test_outputs_in_physical_units(self, trained):
        model, x, y = trained
        pred = model.predict(x[:200])
        assert pred.shape == (200, 2)
        # Temperatures in degC, humidity in %RH — physical ranges.
        assert 10 < pred[:, 0].mean() < 30
        assert 10 < pred[:, 1].mean() < 70

    def test_beats_constant_predictor(self, trained):
        model, x, y = trained
        pred = model.predict(x)
        mae_model = np.abs(pred[:, 0] - y[:, 0]).mean()
        mae_mean = np.abs(y[:, 0].mean() - y[:, 0]).mean()
        assert mae_model < mae_mean

    def test_score_returns_table_v_keys(self, trained):
        model, x, y = trained
        scores = model.score(x[:500], y[:500])
        assert set(scores) == {
            "mae_temperature",
            "mae_humidity",
            "mape_temperature",
            "mape_humidity",
        }
        assert all(v >= 0 for v in scores.values())

    def test_mape_reported_in_percent(self, trained):
        model, x, y = trained
        scores = model.score(x[:500], y[:500])
        # A degC-scale MAE around ~20 degC targets implies MAPE of a few
        # percent — the x100 convention of Table V.
        ratio = scores["mape_temperature"] / (
            scores["mae_temperature"] / np.mean(y[:500, 0]) + 1e-12
        )
        assert 50 < ratio < 200

    def test_target_names_order(self):
        assert TARGET_NAMES == ("temperature", "humidity")

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            EnvironmentRegressor(4, FAST).predict(np.ones((2, 4)))

    def test_rejects_wrong_target_shape(self):
        with pytest.raises(ShapeError):
            EnvironmentRegressor(4, FAST).fit(np.ones((10, 4)), np.ones((10, 3)))

    def test_rejects_wrong_feature_width(self):
        with pytest.raises(ShapeError):
            EnvironmentRegressor(4, FAST).fit(np.ones((10, 5)), np.ones((10, 2)))
