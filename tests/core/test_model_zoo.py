"""Tests for the paper's MLP architecture (Section IV-B)."""

import numpy as np
import pytest

from repro.core.model_zoo import (
    PAPER_HIDDEN_SIZES,
    build_paper_mlp,
    paper_layer_parameter_counts,
)
from repro.exceptions import ConfigurationError
from repro.nn.modules import Linear, ReLU
from repro.nn.tensor import Tensor


class TestArchitecture:
    def test_four_linear_layers(self):
        model = build_paper_mlp(64)
        linears = [m for m in model.layers if isinstance(m, Linear)]
        assert len(linears) == 4
        widths = [(l.in_features, l.out_features) for l in linears]
        assert widths == [(64, 128), (128, 256), (256, 128), (128, 1)]

    def test_relu_between_layers_not_after_output(self):
        model = build_paper_mlp(64)
        assert isinstance(model.layers[1], ReLU)
        assert isinstance(model.layers[-1], Linear), "raw logit output"

    def test_paper_per_layer_parameter_counts(self):
        # Section IV-B lists 8.320 / 33.024 / 32.846 / 129 — the first,
        # second and fourth match exactly; the third is a typo for 32,896
        # (see DESIGN.md "Known paper discrepancies").
        counts = paper_layer_parameter_counts(64)
        assert counts == [8320, 33024, 32896, 129]

    def test_total_parameter_count(self):
        model = build_paper_mlp(64)
        assert model.n_parameters() == sum(paper_layer_parameter_counts(64))
        assert model.n_parameters() == 74369

    def test_csi_env_input_width(self):
        model = build_paper_mlp(66)
        assert model.n_parameters() == sum(paper_layer_parameter_counts(66))

    def test_forward_pass(self):
        model = build_paper_mlp(64)
        out = model(Tensor(np.zeros((7, 64))))
        assert out.shape == (7, 1)

    def test_multi_output_head(self):
        model = build_paper_mlp(64, n_outputs=2)
        assert model(Tensor(np.zeros((3, 64)))).shape == (3, 2)

    def test_deterministic_in_seed(self):
        a = build_paper_mlp(8, seed=3)
        b = build_paper_mlp(8, seed=3)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 8)))
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_custom_hidden_sizes(self):
        model = build_paper_mlp(10, hidden_sizes=(4, 4))
        assert model.n_parameters() == (10 * 4 + 4) + (4 * 4 + 4) + (4 * 1 + 1)

    @pytest.mark.parametrize("kwargs", [
        {"n_inputs": 0},
        {"n_inputs": 4, "n_outputs": 0},
        {"n_inputs": 4, "hidden_sizes": ()},
    ])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            build_paper_mlp(**kwargs)

    def test_default_hidden_sizes_are_papers(self):
        assert PAPER_HIDDEN_SIZES == (128, 256, 128)
