"""Tests for the OccupancyDetector pipeline."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.core.features import FeatureSet, extract_features
from repro.exceptions import NotFittedError, ShapeError


FAST = TrainingConfig(epochs=4, hidden_sizes=(32, 32), batch_size=128)


@pytest.fixture(scope="module")
def trained(smoke_dataset):
    """A detector trained on the smoke campaign's CSI features."""
    x = extract_features(smoke_dataset, FeatureSet.CSI)
    detector = OccupancyDetector(64, FAST)
    detector.fit(x, smoke_dataset.occupancy)
    return detector, x, smoke_dataset.occupancy


class TestFitPredict:
    def test_training_accuracy_high(self, trained):
        detector, x, y = trained
        assert detector.score(x, y) > 0.9

    def test_predict_proba_bounds(self, trained):
        detector, x, _ = trained
        proba = detector.predict_proba(x[:100])
        assert proba.shape == (100,)
        assert np.all((0 <= proba) & (proba <= 1))

    def test_predictions_binary(self, trained):
        detector, x, _ = trained
        assert set(np.unique(detector.predict(x[:50]))) <= {0, 1}

    def test_history_recorded(self, trained):
        detector, _, _ = trained
        assert detector.history is not None
        assert detector.history.n_epochs == FAST.epochs

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            OccupancyDetector(4, FAST).predict(np.ones((2, 4)))

    def test_wrong_width_raises(self):
        with pytest.raises(ShapeError):
            OccupancyDetector(4, FAST).fit(np.ones((10, 5)), np.zeros(10))

    def test_n_parameters_reported(self):
        detector = OccupancyDetector(64)  # paper-size network
        assert detector.n_parameters() == 74369


class TestPartialFit:
    def test_online_training_improves_on_new_regime(self, smoke_dataset):
        # Train on the first half, then absorb the second half online —
        # the Section V-B argument for the MLP over the random forest.
        x = smoke_dataset.csi
        y = smoke_dataset.occupancy
        half = len(x) // 2
        detector = OccupancyDetector(64, FAST)
        detector.fit(x[:half], y[:half])
        before = detector.score(x[half:], y[half:])
        detector.partial_fit(x[half:], y[half:], epochs=2)
        after = detector.score(x[half:], y[half:])
        assert after >= before - 0.01

    def test_partial_fit_extends_history(self, smoke_dataset):
        x, y = smoke_dataset.csi, smoke_dataset.occupancy
        detector = OccupancyDetector(64, FAST).fit(x[:500], y[:500])
        n_before = detector.history.n_epochs
        detector.partial_fit(x[500:900], y[500:900], epochs=3)
        assert detector.history.n_epochs == n_before + 3

    def test_partial_fit_requires_fit(self):
        with pytest.raises(NotFittedError):
            OccupancyDetector(4, FAST).partial_fit(np.ones((2, 4)), np.zeros(2))

    def test_partial_fit_validates_width(self, smoke_dataset):
        detector = OccupancyDetector(64, FAST).fit(
            smoke_dataset.csi[:500], smoke_dataset.occupancy[:500]
        )
        with pytest.raises(ShapeError):
            detector.partial_fit(np.ones((5, 3)), np.zeros(5))


class TestExplain:
    def test_gradcam_shapes(self, trained):
        detector, x, y = trained
        probe = x[y == 1][:64]
        result = detector.explain(probe, target_class=1)
        assert result.feature_importance.shape == (64,)
        assert np.all(result.feature_importance >= 0)

    def test_explain_requires_fit(self):
        with pytest.raises(NotFittedError):
            OccupancyDetector(4, FAST).explain(np.ones((2, 4)))


class TestPersistence:
    def test_save_load_round_trip(self, trained, tmp_path):
        detector, x, _ = trained
        path = detector.save(tmp_path / "detector.npz")
        restored = OccupancyDetector(64, FAST).load(path)
        np.testing.assert_allclose(
            restored.predict_proba(x[:50]), detector.predict_proba(x[:50])
        )

    def test_save_requires_fit(self, tmp_path):
        with pytest.raises(NotFittedError):
            OccupancyDetector(4, FAST).save(tmp_path / "d.npz")
