"""Tests for the Estimator protocol and the unified persistence surface."""

import numpy as np
import pytest

from repro.baselines.boosting import GradientBoostingClassifier
from repro.baselines.forest import RandomForestClassifier
from repro.baselines.knn import KNeighborsClassifier
from repro.baselines.logistic import LogisticRegression
from repro.baselines.pipeline import ScaledKNN, ScaledLogistic
from repro.config import TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.core.estimator import (
    ESTIMATOR_METHODS,
    Estimator,
    PersistentEstimator,
    validate_estimator,
)
from repro.exceptions import ConfigurationError


ALL_FAMILIES = [
    OccupancyDetector(8),
    LogisticRegression(),
    RandomForestClassifier(n_estimators=2),
    KNeighborsClassifier(3),
    GradientBoostingClassifier(n_estimators=2),
    ScaledLogistic(),
    ScaledKNN(n_neighbors=3),
]


class TestProtocol:
    @pytest.mark.parametrize(
        "model", ALL_FAMILIES, ids=lambda m: type(m).__name__
    )
    def test_every_family_conforms(self, model):
        assert isinstance(model, Estimator)
        validate_estimator(model)

    @pytest.mark.parametrize(
        "model",
        [OccupancyDetector(8), ScaledLogistic(), ScaledKNN(n_neighbors=3)],
        ids=lambda m: type(m).__name__,
    )
    def test_persistence_surface(self, model):
        assert isinstance(model, PersistentEstimator)

    def test_non_conformer_rejected(self):
        class HalfModel:
            def fit(self, x, y):
                return self

            def predict(self, x):
                return np.zeros(len(x), dtype=int)

        assert not isinstance(HalfModel(), Estimator)
        with pytest.raises(ConfigurationError) as excinfo:
            validate_estimator(HalfModel())
        message = str(excinfo.value)
        assert "predict_proba" in message and "score" in message

    def test_partial_requirements(self):
        class ProbaOnly:
            def predict_proba(self, x):
                return np.zeros(len(x))

        validate_estimator(ProbaOnly(), require=("predict_proba",))
        with pytest.raises(ConfigurationError):
            validate_estimator(ProbaOnly(), require=ESTIMATOR_METHODS)


@pytest.fixture()
def toy_problem(rng):
    x = rng.normal(size=(120, 8))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
    x[y == 1] += 0.8
    return x, y


class TestRoundTrips:
    def test_scaled_logistic_round_trip(self, toy_problem, tmp_path):
        x, y = toy_problem
        model = ScaledLogistic().fit(x, y)
        path = model.save(tmp_path / "logistic.npz")
        restored = ScaledLogistic().load(path)
        np.testing.assert_allclose(restored.predict_proba(x), model.predict_proba(x))
        assert restored.score(x, y) == model.score(x, y)

    def test_scaled_knn_round_trip(self, toy_problem, tmp_path):
        x, y = toy_problem
        model = ScaledKNN(n_neighbors=3).fit(x, y)
        path = model.save(tmp_path / "knn.npz")
        restored = ScaledKNN().load(path)
        np.testing.assert_array_equal(restored.predict(x), model.predict(x))

    def test_detector_round_trip(self, toy_problem, tmp_path):
        x, y = toy_problem
        config = TrainingConfig(epochs=2, hidden_sizes=(8,), batch_size=32)
        detector = OccupancyDetector(8, config).fit(x, y)
        path = detector.save(tmp_path / "detector.npz")
        restored = OccupancyDetector(8, config).load(path)
        np.testing.assert_allclose(
            restored.predict_proba(x), detector.predict_proba(x)
        )
