"""Tests for the Table IV / Table V experiment harness."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.experiment import (
    DEFAULT_FEATURE_SETS,
    MODEL_NAMES,
    OccupancyExperiment,
    RegressionExperiment,
    TableIVResult,
    TableVResult,
)
from repro.core.features import FeatureSet
from repro.exceptions import ConfigurationError


FAST = TrainingConfig(epochs=3, hidden_sizes=(32, 32), batch_size=128)


@pytest.fixture(scope="module")
def table_iv(day_split):
    experiment = OccupancyExperiment(
        day_split,
        training=FAST,
        max_train_rows=4000,
        forest_kwargs={"n_estimators": 8, "max_samples": 4000},
    )
    return experiment.run(models=("logistic", "mlp"), feature_sets=(FeatureSet.CSI,))


class TestOccupancyExperiment:
    def test_result_covers_grid(self, table_iv):
        assert set(table_iv.accuracies) == {"logistic", "mlp"}
        assert set(table_iv.accuracies["mlp"]) == {"CSI"}
        assert len(table_iv.accuracies["mlp"]["CSI"]) == 5

    def test_accuracies_are_percentages(self, table_iv):
        for folds in table_iv.accuracies["mlp"].values():
            assert all(0.0 <= a <= 100.0 for a in folds)

    def test_average(self, table_iv):
        avg = table_iv.average("mlp", FeatureSet.CSI)
        assert avg == pytest.approx(np.mean(table_iv.accuracies["mlp"]["CSI"]))

    def test_rows_layout(self, table_iv):
        rows = table_iv.rows()
        assert len(rows) == 6  # five folds + Avg.
        assert rows[-1]["fold"] == "Avg."
        assert "mlp/CSI" in rows[0]

    def test_mlp_generalizes_on_csi(self, table_iv):
        # The paper's headline: non-linear model on CSI averages >= 90 %.
        assert table_iv.average("mlp", FeatureSet.CSI) > 85.0

    def test_unknown_model_rejected(self, day_split):
        experiment = OccupancyExperiment(day_split, training=FAST)
        with pytest.raises(ConfigurationError):
            experiment.run(models=("svm",), feature_sets=(FeatureSet.ENV,))

    def test_time_only_ablation_runs(self, day_split):
        experiment = OccupancyExperiment(day_split, training=FAST, max_train_rows=3000)
        acc = experiment.run_time_only()
        assert 0.0 <= acc <= 100.0

    def test_defaults_exported(self):
        assert MODEL_NAMES == ("logistic", "random_forest", "mlp")
        assert len(DEFAULT_FEATURE_SETS) == 3


class TestRegressionExperiment:
    @pytest.fixture(scope="class")
    def table_v(self, day_split):
        return RegressionExperiment(day_split, training=FAST, max_train_rows=4000).run()

    def test_result_covers_both_models(self, table_v):
        assert set(table_v.scores) == {"linear", "neural"}
        assert len(table_v.scores["linear"]) == 5

    def test_score_keys(self, table_v):
        for fold_scores in table_v.scores["neural"]:
            assert set(fold_scores) == {
                "mae_temperature",
                "mae_humidity",
                "mape_temperature",
                "mape_humidity",
            }

    def test_average(self, table_v):
        avg = table_v.average("linear", "mae_temperature")
        per_fold = [f["mae_temperature"] for f in table_v.scores["linear"]]
        assert avg == pytest.approx(np.mean(per_fold))

    def test_rows_layout(self, table_v):
        rows = table_v.rows()
        assert len(rows) == 6
        assert "linear MAE (T/H)" in rows[0]
        assert rows[-1]["fold"] == "Avg."

    def test_errors_physically_plausible(self, table_v):
        # Temperature MAE of even a weak model stays below 10 degC.
        assert table_v.average("linear", "mae_temperature") < 10.0
        assert table_v.average("neural", "mae_temperature") < 10.0
