"""Tests for the frame-delivery fault injectors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.base import ChaosFrame
from repro.faults.stream import ClockSkew, FrameReorder, LinkOutage


def bound(injector, seed=0, t=0.0):
    injector.bind(np.random.default_rng(seed))
    injector.activate(t)
    return injector


def frames(n, link="a"):
    return [ChaosFrame(link, float(i), np.full(4, float(i)), i % 2) for i in range(n)]


class TestLinkOutage:
    def test_suppresses_everything_by_default(self):
        fault = bound(LinkOutage())
        for f in frames(5):
            assert fault.process(f) == []
        assert fault.suppressed == 5

    def test_targets_named_links_only(self):
        fault = bound(LinkOutage(link_ids=["b"]))
        assert fault.process(ChaosFrame("a", 0.0, np.ones(4))) != []
        assert fault.process(ChaosFrame("b", 0.0, np.ones(4))) == []
        assert fault.suppressed == 1

    def test_suppressed_resets_on_bind(self):
        fault = bound(LinkOutage())
        fault.process(ChaosFrame("a", 0.0, np.ones(4)))
        fault.bind(np.random.default_rng(0))
        assert fault.suppressed == 0


class TestClockSkew:
    def test_jitter_bounded(self):
        fault = bound(ClockSkew(jitter_s=0.5))
        for f in frames(50):
            (out,) = fault.process(f)
            assert abs(out.t_s - f.t_s) <= 0.5
            np.testing.assert_array_equal(out.features, f.features)

    def test_drift_accumulates_from_window_start(self):
        fault = bound(ClockSkew(jitter_s=0.0, drift_per_s=0.1), t=100.0)
        (out,) = fault.process(ChaosFrame("a", 120.0, np.ones(4)))
        assert out.t_s == pytest.approx(122.0)

    def test_no_op_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockSkew(jitter_s=0.0, drift_per_s=0.0)


class TestFrameReorder:
    def test_no_frame_lost_and_order_permuted(self):
        fault = bound(FrameReorder(depth=4))
        out = []
        incoming = frames(10)
        for f in incoming:
            out.extend(fault.process(f))
        out.extend(fault.flush())
        assert len(out) == 10
        assert {f.t_s for f in out} == {f.t_s for f in incoming}
        assert [f.t_s for f in out] != [f.t_s for f in incoming]

    def test_permutes_within_depth_windows(self):
        fault = bound(FrameReorder(depth=5))
        out = []
        for f in frames(10):
            out.extend(fault.process(f))
        first, second = out[:5], out[5:]
        assert {f.t_s for f in first} == {0.0, 1.0, 2.0, 3.0, 4.0}
        assert {f.t_s for f in second} == {5.0, 6.0, 7.0, 8.0, 9.0}

    def test_flush_empty_buffer(self):
        fault = bound(FrameReorder(depth=3))
        assert fault.flush() == []

    def test_depth_one_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameReorder(depth=1)
