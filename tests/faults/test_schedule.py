"""Tests for ChaosSchedule — window lifecycle and the determinism contract."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.base import ChaosFrame
from repro.faults.row import BurstNoise, GainDrift, SubcarrierDropout
from repro.faults.schedule import ChaosSchedule, FaultWindow
from repro.faults.stream import FrameReorder, LinkOutage


def stream(n=100, dt=1.0):
    rng = np.random.default_rng(42)
    rows = rng.uniform(1.0, 5.0, size=(n, 8))
    return [ChaosFrame("a", i * dt, rows[i], int(i % 2)) for i in range(n)]


class TestWindows:
    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            FaultWindow(10.0, 10.0, LinkOutage())

    def test_fault_only_applies_inside_window(self):
        schedule = ChaosSchedule(
            [FaultWindow(20.0, 40.0, SubcarrierDropout(band=slice(0, 8)))]
        )
        out = list(schedule.run(stream()))
        assert len(out) == 100
        for clean, frame in zip(stream(), out):
            zeroed = np.all(frame.features == 0.0)
            if 20.0 <= clean.t_s < 40.0:
                assert zeroed
            else:
                np.testing.assert_array_equal(frame.features, clean.features)

    def test_outage_window_drops_exactly_its_frames(self):
        schedule = ChaosSchedule([FaultWindow(10.0, 30.0, LinkOutage())])
        out = list(schedule.run(stream()))
        assert len(out) == 80
        assert all(not 10.0 <= f.t_s < 30.0 for f in out)

    def test_overlapping_windows_compose_in_order(self):
        schedule = ChaosSchedule(
            [
                FaultWindow(0.0, 100.0, GainDrift(rate_per_s=0.01, n_csi=8)),
                FaultWindow(0.0, 100.0, SubcarrierDropout(band=slice(0, 4))),
            ]
        )
        out = list(schedule.run(stream()))
        clean = stream()
        # Band is zeroed after the drift, drift applies to the rest.
        for c, f in zip(clean[1:], out[1:]):
            assert np.all(f.features[:4] == 0.0)
            np.testing.assert_allclose(
                f.features[4:], c.features[4:] * (1 + 0.01 * c.t_s)
            )

    def test_buffering_fault_flushes_on_window_close(self):
        # depth 4 over a 10-frame window: 2 full emissions + 2 buffered
        # frames that must flush when the window ends, not vanish.
        schedule = ChaosSchedule([FaultWindow(0.0, 10.0, FrameReorder(depth=4))])
        out = list(schedule.run(stream(n=20)))
        assert len(out) == 20
        assert {f.t_s for f in out} == {float(i) for i in range(20)}

    def test_flush_at_end_of_stream(self):
        schedule = ChaosSchedule([FaultWindow(0.0, 1000.0, FrameReorder(depth=7))])
        out = list(schedule.run(stream(n=10)))
        assert len(out) == 10


class TestDeterminism:
    def windows(self):
        return [
            FaultWindow(10.0, 60.0, SubcarrierDropout(band_width=3, n_csi=8)),
            FaultWindow(30.0, 80.0, BurstNoise(amplitude=2.0, p_start=0.3, n_csi=8)),
            FaultWindow(50.0, 90.0, FrameReorder(depth=4)),
        ]

    def replay(self, seed):
        return list(ChaosSchedule(self.windows(), seed=seed).run(stream()))

    def test_same_seed_is_byte_identical(self):
        a, b = self.replay(seed=7), self.replay(seed=7)
        assert len(a) == len(b)
        for fa, fb in zip(a, b):
            assert fa.link_id == fb.link_id
            assert fa.t_s == fb.t_s
            assert fa.label == fb.label
            assert fa.features.tobytes() == fb.features.tobytes()

    def test_rerunning_one_schedule_object_is_stable(self):
        schedule = ChaosSchedule(self.windows(), seed=3)
        a = list(schedule.run(stream()))
        b = list(schedule.run(stream()))
        assert [f.features.tobytes() for f in a] == [f.features.tobytes() for f in b]

    def test_different_seeds_differ(self):
        a, b = self.replay(seed=1), self.replay(seed=2)
        assert [f.features.tobytes() for f in a] != [f.features.tobytes() for f in b]

    def test_labels_ride_along_uncorrupted(self):
        out = self.replay(seed=7)
        assert sorted(f.label for f in out) == sorted(f.label for f in stream())
