"""Tests for the chaos-bench harness."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.bench import (
    ChaosScenario,
    FlakyPrimary,
    default_scenario_suite,
    run_chaos_bench,
)
from repro.faults.schedule import FaultWindow
from repro.faults.stream import LinkOutage


class ConstantEstimator:
    def __init__(self, p: float = 0.9) -> None:
        self.p = p

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(x).shape[0], self.p)


class TestFlakyPrimary:
    def test_fails_only_inside_call_window(self):
        flaky = FlakyPrimary(ConstantEstimator(), fail_from=2, fail_calls=2)
        x = np.ones((1, 4))
        flaky.predict_proba(x)
        flaky.predict_proba(x)
        with pytest.raises(RuntimeError):
            flaky.predict_proba(x)
        with pytest.raises(RuntimeError):
            flaky.predict_proba(x)
        flaky.predict_proba(x)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlakyPrimary(ConstantEstimator(), fail_from=-1, fail_calls=1)


class TestDefaultSuite:
    def test_names_and_span(self):
        suite = default_scenario_suite(0.0, 1000.0)
        names = [s.name for s in suite]
        assert names[0] == "baseline"
        assert {"subcarrier-dropout", "link-outage", "clock-chaos", "model-crash"} <= set(names)
        for scenario in suite:
            for window in scenario.windows:
                assert 0.0 <= window.start_s < window.end_s <= 1000.0

    def test_env_suite_adds_sensor_faults(self):
        names = {s.name for s in default_scenario_suite(0.0, 100.0, include_env=True)}
        assert {"sensor-stuck", "sensor-dropout"} <= names

    def test_rejects_empty_span(self):
        with pytest.raises(ConfigurationError):
            default_scenario_suite(10.0, 10.0)


class TestRunChaosBench:
    def test_every_admitted_frame_answered(self, smoke_dataset):
        dataset = smoke_dataset.window(0.0, 3600.0)
        report = run_chaos_bench(
            ConstantEstimator(), dataset, n_links=2, max_batch=16, seed=5
        )
        assert len(report.results) == 7
        for result in report.results:
            assert result.n_unanswered == 0
            assert result.n_answered == result.n_submitted
            assert 0.0 <= result.accuracy <= 1.0

    def test_outage_suppresses_but_never_loses(self, smoke_dataset):
        dataset = smoke_dataset.window(0.0, 3600.0)
        report = run_chaos_bench(
            ConstantEstimator(), dataset, n_links=2, max_batch=16, seed=5
        )
        outage = report.result("link-outage")
        baseline = report.result("baseline")
        assert outage.n_submitted < baseline.n_submitted
        assert outage.n_unanswered == 0

    def test_model_crash_routes_to_fallback_and_recovers(self, smoke_dataset):
        dataset = smoke_dataset.window(0.0, 3600.0)
        report = run_chaos_bench(
            ConstantEstimator(), dataset, n_links=2, max_batch=16, seed=5
        )
        crash = report.result("model-crash")
        assert crash.n_fallback > 0
        assert crash.n_primary_failures > 0
        assert crash.n_recovered >= 1
        assert crash.n_answered == crash.n_submitted

    def test_deterministic_in_seed(self, smoke_dataset):
        dataset = smoke_dataset.window(0.0, 1800.0)
        a = run_chaos_bench(ConstantEstimator(), dataset, seed=9)
        b = run_chaos_bench(ConstantEstimator(), dataset, seed=9)
        assert [r.row() for r in a.results] == [r.row() for r in b.results]

    def test_custom_scenario_and_report_lookup(self, smoke_dataset):
        dataset = smoke_dataset.window(0.0, 1800.0)
        scenario = ChaosScenario(
            "mini-outage", "test", [FaultWindow(0.0, 600.0, LinkOutage())]
        )
        report = run_chaos_bench(ConstantEstimator(), dataset, [scenario])
        assert report.result("mini-outage").n_submitted < len(dataset)
        with pytest.raises(ConfigurationError):
            report.result("nope")

    def test_describe_mentions_every_scenario(self, smoke_dataset):
        dataset = smoke_dataset.window(0.0, 1800.0)
        report = run_chaos_bench(ConstantEstimator(), dataset)
        text = report.describe()
        for result in report.results:
            assert result.name in text
        assert "every admitted frame was answered" in text

    def test_bad_link_count_rejected(self, smoke_dataset):
        with pytest.raises(ConfigurationError):
            run_chaos_bench(ConstantEstimator(), smoke_dataset, n_links=0)
