"""Tests for the feature-row fault injectors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.faults.base import ChaosFrame
from repro.faults.row import (
    BurstNoise,
    GainDrift,
    SensorDropout,
    SensorStuckAt,
    SubcarrierDropout,
)


def bound(injector, seed=0, t=0.0):
    injector.bind(np.random.default_rng(seed))
    injector.activate(t)
    return injector


def frame(values, t=0.0, link="a", label=1):
    return ChaosFrame(link, t, np.asarray(values, dtype=float), label)


class TestSubcarrierDropout:
    def test_fixed_band_zeroed(self):
        fault = bound(SubcarrierDropout(band=slice(2, 5)))
        (out,) = fault.process(frame(np.ones(8)))
        np.testing.assert_array_equal(out.features, [1, 1, 0, 0, 0, 1, 1, 1])

    def test_nan_mode(self):
        fault = bound(SubcarrierDropout(band=slice(0, 2), mode="nan"))
        (out,) = fault.process(frame(np.ones(4)))
        assert np.isnan(out.features[:2]).all()
        assert np.isfinite(out.features[2:]).all()

    def test_random_band_within_csi_columns(self):
        fault = bound(SubcarrierDropout(band_width=8, n_csi=64))
        (out,) = fault.process(frame(np.ones(66)))
        killed = np.flatnonzero(out.features == 0.0)
        assert len(killed) == 8
        assert killed.max() < 64  # never touches the env columns
        assert np.array_equal(killed, np.arange(killed[0], killed[0] + 8))

    def test_random_band_redrawn_per_activation(self):
        fault = SubcarrierDropout(band_width=4, n_csi=64)
        fault.bind(np.random.default_rng(1))
        bands = []
        for _ in range(8):
            fault.activate(0.0)
            (out,) = fault.process(frame(np.ones(64)))
            bands.append(tuple(np.flatnonzero(out.features == 0.0)))
            fault.deactivate()
        assert len(set(bands)) > 1

    def test_does_not_mutate_input(self):
        fault = bound(SubcarrierDropout(band=slice(0, 4)))
        row = np.ones(8)
        fault.process(frame(row))
        np.testing.assert_array_equal(row, np.ones(8))

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            SubcarrierDropout(mode="half")


class TestBurstNoise:
    def test_bursts_hit_some_frames_not_all(self):
        fault = bound(BurstNoise(amplitude=5.0, burst_frames=3, p_start=0.2))
        corrupted = 0
        for i in range(200):
            (out,) = fault.process(frame(np.full(16, 10.0), t=float(i)))
            if not np.allclose(out.features, 10.0):
                corrupted += 1
        assert 0 < corrupted < 200

    def test_amplitudes_stay_non_negative(self):
        fault = bound(BurstNoise(amplitude=50.0, burst_frames=10, p_start=1.0))
        for i in range(20):
            (out,) = fault.process(frame(np.full(16, 0.5), t=float(i)))
            assert (out.features >= 0.0).all()


class TestGainDrift:
    def test_gain_grows_linearly_from_activation(self):
        fault = bound(GainDrift(rate_per_s=0.1), t=100.0)
        (at_start,) = fault.process(frame(np.ones(4), t=100.0))
        (later,) = fault.process(frame(np.ones(4), t=110.0))
        np.testing.assert_allclose(at_start.features, 1.0)
        np.testing.assert_allclose(later.features, 2.0)

    def test_negative_rate_floors_at_zero(self):
        fault = bound(GainDrift(rate_per_s=-1.0), t=0.0)
        (out,) = fault.process(frame(np.ones(4), t=10.0))
        np.testing.assert_array_equal(out.features, 0.0)

    def test_env_columns_untouched(self):
        fault = bound(GainDrift(rate_per_s=0.1, n_csi=2), t=0.0)
        (out,) = fault.process(frame([1.0, 1.0, 21.0, 40.0], t=10.0))
        np.testing.assert_allclose(out.features[2:], [21.0, 40.0])


class TestSensorFaults:
    def test_stuck_at_freezes_first_in_window_value(self):
        fault = bound(SensorStuckAt(env_slice=slice(2, 4)))
        fault.process(frame([1, 1, 20.0, 40.0]))
        (out,) = fault.process(frame([2, 2, 25.0, 55.0]))
        np.testing.assert_allclose(out.features, [2, 2, 20.0, 40.0])

    def test_stuck_resets_between_activations(self):
        fault = bound(SensorStuckAt(env_slice=slice(2, 4)))
        fault.process(frame([0, 0, 20.0, 40.0]))
        fault.deactivate()
        fault.activate(50.0)
        (out,) = fault.process(frame([0, 0, 30.0, 60.0], t=50.0))
        np.testing.assert_allclose(out.features[2:], [30.0, 60.0])

    def test_dropout_nans_env_columns(self):
        fault = bound(SensorDropout(env_slice=slice(2, 4)))
        (out,) = fault.process(frame([1, 1, 20.0, 40.0]))
        assert np.isnan(out.features[2:]).all()
        assert np.isfinite(out.features[:2]).all()

    def test_csi_only_rows_raise_shape_error(self):
        fault = bound(SensorDropout(env_slice=slice(64, 66)))
        with pytest.raises(ShapeError, match="T/H"):
            fault.process(frame(np.ones(64)))


class TestLifecycle:
    def test_unbound_injector_has_no_rng(self):
        with pytest.raises(ConfigurationError, match="no RNG"):
            SubcarrierDropout().rng

    def test_active_since_requires_activation(self):
        fault = SubcarrierDropout()
        fault.bind(np.random.default_rng(0))
        with pytest.raises(ConfigurationError, match="not active"):
            fault.active_since_s
