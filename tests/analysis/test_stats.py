"""Tests for Pearson correlation and descriptive statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.stats import correlation_matrix, describe, pearson
from repro.exceptions import ShapeError


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(pearson(rng.normal(size=5000), rng.normal(size=5000))) < 0.05

    def test_constant_series_returns_zero(self):
        assert pearson(np.ones(10), np.arange(10.0)) == 0.0

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        y = 0.5 * x + rng.normal(size=100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1], rel=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            pearson(np.ones(3), np.ones(4))

    def test_too_short(self):
        with pytest.raises(ShapeError):
            pearson(np.ones(1), np.ones(1))

    @settings(max_examples=40)
    @given(
        arrays(np.float64, 30, elements=st.floats(-1e3, 1e3)),
        arrays(np.float64, 30, elements=st.floats(-1e3, 1e3)),
    )
    def test_property_bounded_and_symmetric(self, x, y):
        r = pearson(x, y)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
        assert r == pytest.approx(pearson(y, x), abs=1e-12)


class TestCorrelationMatrix:
    def test_diagonal_is_one(self):
        x = np.random.default_rng(0).normal(size=(50, 4))
        np.testing.assert_allclose(np.diag(correlation_matrix(x)), 1.0)

    def test_symmetric(self):
        x = np.random.default_rng(0).normal(size=(50, 4))
        corr = correlation_matrix(x)
        np.testing.assert_allclose(corr, corr.T)

    def test_matches_pairwise_pearson(self):
        x = np.random.default_rng(0).normal(size=(80, 3))
        corr = correlation_matrix(x)
        assert corr[0, 2] == pytest.approx(pearson(x[:, 0], x[:, 2]), rel=1e-9)

    def test_constant_column_zeroed(self):
        x = np.column_stack([np.ones(20), np.arange(20.0)])
        corr = correlation_matrix(x)
        assert corr[0, 1] == 0.0
        assert corr[0, 0] == 1.0

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            correlation_matrix(np.ones(5))


class TestDescribe:
    def test_summary_fields(self):
        summary = describe(np.arange(101.0))
        assert summary.n == 101
        assert summary.mean == pytest.approx(50.0)
        assert summary.median == pytest.approx(50.0)
        assert summary.minimum == 0.0
        assert summary.maximum == 100.0
        assert summary.q25 == pytest.approx(25.0)
        assert summary.q75 == pytest.approx(75.0)

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            describe(np.array([]))

    @given(arrays(np.float64, st.integers(1, 50), elements=st.floats(-1e6, 1e6)))
    def test_property_quantile_ordering(self, x):
        s = describe(x)
        assert s.minimum <= s.q25 <= s.median <= s.q75 <= s.maximum
