"""Tests for the Section V-A profiling pipeline."""

import numpy as np
import pytest

from repro.analysis.profiling import profile_dataset
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def profile(day_dataset):
    return profile_dataset(day_dataset, start_hour_of_day=15.13)


class TestProfile:
    def test_row_accounting(self, profile, day_dataset):
        assert profile.n_rows == len(day_dataset)
        assert profile.n_non_finite == 0
        assert profile.n_duplicate_timestamps == 0

    def test_occupant_distribution_sums_to_rows(self, profile):
        assert sum(profile.occupant_distribution.values()) == profile.n_rows

    def test_fractions_sum_to_one(self, profile):
        assert profile.empty_fraction + profile.occupied_fraction == pytest.approx(1.0)

    def test_empty_dominates(self, profile):
        # Table II: the empty class is the majority (63.2 % in the paper).
        assert profile.empty_fraction > 0.5

    def test_all_series_stationary(self, profile):
        # The paper's headline profiling claim (Section V-A).
        assert profile.all_series_stationary

    def test_occupancy_env_correlations_positive(self, profile):
        # The paper: T-occ 0.44, H-occ 0.35 — occupants warm and humidify.
        assert profile.corr_temperature_occupancy > 0.1
        assert profile.corr_humidity_occupancy > 0.0

    def test_temperature_humidity_correlated(self, profile):
        # The paper reports +0.45; heater + occupants couple them.
        assert abs(profile.corr_temperature_humidity) > 0.1

    def test_time_env_correlation_strong(self, profile):
        # The paper: 0.77 between time and environment.
        assert profile.corr_time_environment() > 0.3

    def test_subcarrier_correlations_shape(self, profile, day_dataset):
        assert profile.subcarrier_temperature_corr.shape == (day_dataset.n_subcarriers,)
        assert np.all(np.abs(profile.subcarrier_temperature_corr) <= 1.0)

    def test_some_subcarriers_track_environment(self, profile):
        # Sec V-A: mid-to-high band carriers correlate ~0.2-0.3 with T/H.
        assert np.max(np.abs(profile.subcarrier_temperature_corr)) > 0.1

    def test_tiny_dataset_rejected(self, smoke_dataset):
        with pytest.raises(DatasetError):
            profile_dataset(smoke_dataset.select(np.arange(10)))

    def test_adf_covers_requested_subcarriers(self, day_dataset):
        profile = profile_dataset(day_dataset, adf_subcarriers=(1, 2))
        assert "a1" in profile.adf and "a2" in profile.adf
