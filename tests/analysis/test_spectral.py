"""Tests for the spectral analysis of CSI series."""

import numpy as np
import pytest

from repro.analysis.spectral import (
    SpectrogramBuilder,
    doppler_spread,
    motion_energy,
    welch_psd,
)
from repro.exceptions import ShapeError


def tone(freq_hz: float, fs: float = 20.0, seconds: float = 60.0, amp: float = 1.0):
    t = np.arange(0, seconds, 1.0 / fs)
    return amp * np.sin(2 * np.pi * freq_hz * t)


class TestWelchPsd:
    def test_peak_at_tone_frequency(self):
        freqs, psd = welch_psd(tone(3.0), 20.0)
        assert freqs[np.argmax(psd)] == pytest.approx(3.0, abs=0.2)

    def test_nyquist_range(self):
        freqs, _ = welch_psd(tone(1.0), 20.0)
        assert freqs.max() == pytest.approx(10.0)

    def test_short_series_rejected(self):
        with pytest.raises(ShapeError):
            welch_psd(np.zeros(4), 20.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ShapeError):
            welch_psd(np.zeros(100), 0.0)


class TestDopplerSpread:
    def test_faster_motion_wider_spread(self):
        # Doppler spread characterises motion *speed*: a faster amplitude
        # modulation yields a wider spectrum.
        slow = tone(0.5) + 0.001 * np.random.default_rng(0).normal(size=1200)
        fast = tone(4.0) + 0.001 * np.random.default_rng(1).normal(size=1200)
        assert doppler_spread(fast, 20.0) > doppler_spread(slow, 20.0)

    def test_tone_spread_matches_frequency(self):
        spread = doppler_spread(tone(3.0), 20.0)
        assert spread == pytest.approx(3.0, abs=0.3)

    def test_constant_series_zero(self):
        assert doppler_spread(np.full(600, 2.5), 20.0) == 0.0


class TestMotionEnergy:
    def test_in_band_tone_detected(self):
        energetic = motion_energy(tone(2.0), 20.0)
        quiet = motion_energy(np.full(1200, 1.0), 20.0)
        assert energetic > 100 * max(quiet, 1e-12)

    def test_out_of_band_tone_suppressed(self):
        in_band = motion_energy(tone(2.0), 20.0, band_hz=(0.1, 5.0))
        out_band = motion_energy(tone(8.0), 20.0, band_hz=(0.1, 5.0))
        assert in_band > 10 * out_band

    def test_invalid_band(self):
        with pytest.raises(ShapeError):
            motion_energy(np.zeros(100), 20.0, band_hz=(5.0, 1.0))


class TestSpectrogram:
    def test_shapes_consistent(self):
        builder = SpectrogramBuilder(window_s=4.0)
        freqs, times, mag = builder.build(tone(2.0), 20.0)
        assert mag.shape == (len(freqs), len(times))

    def test_tone_ridge_at_right_frequency(self):
        builder = SpectrogramBuilder(window_s=8.0)
        freqs, _, mag = builder.build(tone(3.0, seconds=120.0), 20.0)
        ridge = freqs[np.argmax(mag.mean(axis=1))]
        assert ridge == pytest.approx(3.0, abs=0.3)

    def test_chirp_ridge_moves(self):
        fs = 20.0
        t = np.arange(0, 120, 1 / fs)
        chirp = np.sin(2 * np.pi * (0.5 + 0.02 * t) * t)
        freqs, times, mag = SpectrogramBuilder(window_s=8.0).build(chirp, fs)
        early = freqs[np.argmax(mag[:, 2])]
        late = freqs[np.argmax(mag[:, -3])]
        assert late > early

    def test_too_short_rejected(self):
        with pytest.raises(ShapeError):
            SpectrogramBuilder(window_s=10.0).build(np.zeros(50), 20.0)

    def test_validation(self):
        with pytest.raises(ShapeError):
            SpectrogramBuilder(window_s=0.0)
        with pytest.raises(ShapeError):
            SpectrogramBuilder(overlap=1.0)


class TestOnCampaignData:
    def test_occupied_periods_have_more_motion_energy(self, day_dataset):
        # Find long occupied and empty stretches; compare the AC power in
        # a band scaled to the campaign's (reduced) Nyquist frequency.
        occ = day_dataset.occupancy
        series = day_dataset.csi[:, 20]
        rate = 1.0 / float(np.median(np.diff(day_dataset.timestamps_s)))
        band = (rate / 50.0, rate / 2.5)  # inside Nyquist at any rate
        changes = np.flatnonzero(np.diff(occ)) + 1
        bounds = np.concatenate([[0], changes, [len(occ)]])
        energies = {0: [], 1: []}
        for a, b in zip(bounds[:-1], bounds[1:]):
            if b - a >= 300:
                energies[int(occ[a])].append(
                    motion_energy(series[a:b], rate, band_hz=band)
                )
        assert energies[0] and energies[1], "need long stretches of both states"
        assert float(np.mean(energies[1])) > float(np.mean(energies[0]))