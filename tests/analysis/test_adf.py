"""Tests for the Augmented Dickey-Fuller test."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.adf import ADFResult, adf_test
from repro.exceptions import ShapeError


def ar1(phi: float, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = phi * x[t - 1] + rng.normal()
    return x


class TestDecisions:
    def test_white_noise_is_stationary(self):
        result = adf_test(np.random.default_rng(0).normal(size=1000))
        assert result.is_stationary
        assert result.p_value < 0.05

    def test_random_walk_is_not_stationary(self):
        walk = np.cumsum(np.random.default_rng(0).normal(size=1000))
        result = adf_test(walk)
        assert not result.is_stationary
        assert result.p_value > 0.05

    def test_strong_ar_process_is_stationary(self):
        result = adf_test(ar1(0.5, 1000))
        assert result.is_stationary

    def test_near_unit_root_is_ambiguous_or_nonstationary(self):
        # phi=0.999 over 300 points is statistically indistinguishable
        # from a unit root.
        result = adf_test(ar1(0.999, 300))
        assert result.p_value > 0.01

    def test_trend_stationary_sine_rejected_unit_root(self):
        t = np.arange(2000)
        series = np.sin(2 * np.pi * t / 50) + 0.1 * np.random.default_rng(0).normal(size=2000)
        assert adf_test(series).is_stationary

    def test_constant_series_trivially_stationary(self):
        result = adf_test(np.full(100, 3.0))
        assert result.is_stationary
        assert result.p_value == 0.0


class TestMechanics:
    def test_critical_values_ordered(self):
        result = adf_test(np.random.default_rng(0).normal(size=200))
        crit = result.critical_values
        assert crit[0.01] < crit[0.05] < crit[0.10]

    def test_critical_values_near_asymptotic(self):
        result = adf_test(np.random.default_rng(0).normal(size=5000))
        assert result.critical_values[0.05] == pytest.approx(-2.86, abs=0.02)

    def test_lag_selection_bounded(self):
        result = adf_test(np.random.default_rng(0).normal(size=500), maxlag=5)
        assert 0 <= result.used_lags <= 5

    def test_too_short_series_rejected(self):
        with pytest.raises(ShapeError):
            adf_test(np.ones(5))

    def test_nan_rejected(self):
        series = np.random.default_rng(0).normal(size=100)
        series[3] = np.nan
        with pytest.raises(ShapeError):
            adf_test(series)

    def test_p_value_in_unit_interval(self):
        for seed in range(5):
            r = adf_test(np.random.default_rng(seed).normal(size=100))
            assert 0.0 <= r.p_value <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(50, 400), st.floats(0.0, 0.7))
    def test_property_stationary_ar_detected(self, n, phi):
        result = adf_test(ar1(phi, n, seed=n))
        # AR(phi<=0.7) over 50+ points: expect rejection of the unit root
        # in the overwhelming majority of draws; assert the statistic is at
        # least negative (directionally correct) and p is not ~1.
        assert result.statistic < 0
        assert result.p_value < 0.9


class TestCampaignSeries:
    def test_paper_series_are_stationary(self, day_dataset):
        # Section V-A: "all the time series treated in this problem are
        # stationary" — verify on a campaign long enough to span the
        # daily climate cycle (a 6 h snippet is a trend, not a cycle).
        # Low lag order: see repro.analysis.profiling's adf_maxlag note.
        assert adf_test(day_dataset.temperature_c, maxlag=1).is_stationary
        assert adf_test(day_dataset.humidity_rh, maxlag=1).is_stationary
        assert adf_test(day_dataset.csi[:, 20], maxlag=1).is_stationary
