"""Tests for the public scaled pipelines (standardisation fused with a model)."""

import numpy as np
import pytest

from repro.baselines.pipeline import ScaledKNN, ScaledLogistic
from repro.exceptions import NotFittedError, SerializationError


@pytest.fixture()
def separable(rng):
    # Two clusters whose feature scales differ by orders of magnitude, so
    # the internal standardisation actually matters.
    x = rng.normal(size=(200, 6))
    x[:, 0] *= 1000.0
    y = (x[:, 1] > 0).astype(int)
    x[y == 1, 1] += 2.0
    return x, y


class TestScaledLogistic:
    def test_fit_predict_score(self, separable):
        x, y = separable
        model = ScaledLogistic().fit(x, y)
        assert model.score(x, y) > 0.9
        proba = model.predict_proba(x)
        assert proba.shape == (len(x),)
        assert np.all((proba >= 0) & (proba <= 1))
        np.testing.assert_array_equal(model.predict(x), (proba >= 0.5).astype(int))

    def test_save_before_fit_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            ScaledLogistic().save(tmp_path / "model.npz")

    def test_round_trip(self, separable, tmp_path):
        x, y = separable
        model = ScaledLogistic().fit(x, y)
        path = model.save(tmp_path / "model.npz")
        restored = ScaledLogistic().load(path)
        np.testing.assert_allclose(restored.predict_proba(x), model.predict_proba(x))


class TestScaledKNN:
    def test_fit_predict_score(self, separable):
        x, y = separable
        model = ScaledKNN(n_neighbors=3).fit(x, y)
        assert model.score(x, y) > 0.9
        assert model.predict_proba(x).shape == (len(x),)

    def test_strides_large_training_sets(self, rng):
        x = rng.normal(size=(100, 4))
        y = (x[:, 0] > 0).astype(int)
        model = ScaledKNN(n_neighbors=3, max_train_rows=25).fit(x, y)
        assert model._model._x.shape[0] <= 25

    def test_save_before_fit_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            ScaledKNN().save(tmp_path / "model.npz")

    def test_round_trip(self, separable, tmp_path):
        x, y = separable
        model = ScaledKNN(n_neighbors=3).fit(x, y)
        path = model.save(tmp_path / "model.npz")
        restored = ScaledKNN().load(path)
        np.testing.assert_array_equal(restored.predict(x), model.predict(x))


class TestArchiveValidation:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            ScaledLogistic().load(tmp_path / "nope.npz")

    def test_wrong_kind_rejected(self, separable, tmp_path):
        x, y = separable
        path = ScaledKNN(n_neighbors=3).fit(x, y).save(tmp_path / "knn.npz")
        with pytest.raises(SerializationError):
            ScaledLogistic().load(path)
