"""Tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.baselines.logistic import LogisticRegression
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError


def separable_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = (x @ np.array([2.0, -1.0, 0.5]) + 0.2 > 0).astype(int)
    return x, y


class TestFitPredict:
    def test_learns_linearly_separable_data(self):
        x, y = separable_data()
        model = LogisticRegression().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.97

    def test_probabilities_in_unit_interval(self):
        x, y = separable_data()
        p = LogisticRegression().fit(x, y).predict_proba(x)
        assert np.all((0 <= p) & (p <= 1))

    def test_decision_function_sign_matches_prediction(self):
        x, y = separable_data()
        model = LogisticRegression().fit(x, y)
        z = model.decision_function(x)
        np.testing.assert_array_equal((z >= 0).astype(int), model.predict(x))

    def test_cannot_fit_xor(self):
        # A linear model fails on multiplicative interaction — the paper's
        # core observation about CSI data (Section V-B).
        rng = np.random.default_rng(0)
        x = rng.normal(size=(500, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
        model = LogisticRegression().fit(x, y)
        assert (model.predict(x) == y).mean() < 0.65

    def test_l2_shrinks_weights(self):
        x, y = separable_data()
        free = LogisticRegression(l2=0.0).fit(x, y)
        ridge = LogisticRegression(l2=1.0).fit(x, y)
        assert np.linalg.norm(ridge.weights_) < np.linalg.norm(free.weights_)

    def test_converges_and_reports_iterations(self):
        x, y = separable_data()
        model = LogisticRegression(max_iter=500).fit(x, y)
        assert 1 <= model.n_iter_ <= 500

    def test_deterministic(self):
        x, y = separable_data()
        a = LogisticRegression().fit(x, y)
        b = LogisticRegression().fit(x, y)
        np.testing.assert_array_equal(a.weights_, b.weights_)


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.ones((2, 2)))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ShapeError):
            LogisticRegression().fit(np.ones((3, 2)), np.array([0, 1, 2]))

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ShapeError):
            LogisticRegression().fit(np.ones((3, 2)), np.array([0, 1]))

    def test_rejects_1d_features(self):
        with pytest.raises(ShapeError):
            LogisticRegression().fit(np.ones(3), np.array([0, 1, 0]))

    def test_feature_mismatch_at_predict(self):
        x, y = separable_data()
        model = LogisticRegression().fit(x, y)
        with pytest.raises(ShapeError):
            model.predict(np.ones((2, 5)))

    @pytest.mark.parametrize(
        "kwargs",
        [{"l2": -1.0}, {"lr": 0.0}, {"max_iter": 0}],
    )
    def test_rejects_bad_hyperparameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            LogisticRegression(**kwargs)
