"""Tests for the gradient-boosting classifier."""

import numpy as np
import pytest

from repro.baselines.boosting import GradientBoostingClassifier
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError


def xor_data(n=800, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
    return x, y


class TestGradientBoosting:
    def test_solves_xor(self):
        x, y = xor_data()
        model = GradientBoostingClassifier(n_estimators=40, max_depth=3).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_base_score_is_log_odds(self):
        x = np.random.default_rng(0).normal(size=(100, 2))
        y = np.array([1] * 80 + [0] * 20)
        model = GradientBoostingClassifier(n_estimators=1).fit(x, y)
        assert model.base_score_ == pytest.approx(np.log(0.8 / 0.2), rel=1e-6)

    def test_proba_in_unit_interval(self):
        x, y = xor_data(300)
        proba = GradientBoostingClassifier(n_estimators=10).fit(x, y).predict_proba(x)
        assert np.all((0 < proba) & (proba < 1))

    def test_staged_accuracy_improves(self):
        # A single shallow tree solves XOR outright, so use a boundary a
        # depth-2 learner cannot express in one round.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1000, 3))
        y = ((np.sin(2 * x[:, 0]) + x[:, 1] ** 2 - 0.5 * x[:, 2]) > 0.8).astype(int)
        model = GradientBoostingClassifier(n_estimators=40, max_depth=2).fit(x, y)
        curve = model.staged_accuracy(x, y)
        assert len(curve) == 40
        assert curve[-1] > curve[0]
        assert curve[-1] > 0.85

    def test_more_rounds_fit_tighter(self):
        x, y = xor_data()
        weak = GradientBoostingClassifier(n_estimators=3, max_depth=2).fit(x, y)
        strong = GradientBoostingClassifier(n_estimators=60, max_depth=3).fit(x, y)
        assert (strong.predict(x) == y).mean() > (weak.predict(x) == y).mean()

    def test_subsample_still_learns(self):
        x, y = xor_data()
        model = GradientBoostingClassifier(
            n_estimators=50, max_depth=3, subsample=0.5
        ).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_deterministic_in_seed(self):
        x, y = xor_data(300)
        a = GradientBoostingClassifier(n_estimators=5, subsample=0.7, seed=3).fit(x, y)
        b = GradientBoostingClassifier(n_estimators=5, subsample=0.7, seed=3).fit(x, y)
        np.testing.assert_array_equal(a.predict_proba(x), b.predict_proba(x))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            GradientBoostingClassifier().predict(np.ones((2, 2)))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ShapeError):
            GradientBoostingClassifier().fit(np.ones((3, 2)), np.array([0, 1, 2]))

    @pytest.mark.parametrize(
        "kwargs",
        [{"n_estimators": 0}, {"learning_rate": 0.0}, {"subsample": 0.0}],
    )
    def test_rejects_bad_hyperparameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(**kwargs)

    def test_decision_function_sign_matches_predict(self):
        x, y = xor_data(300)
        model = GradientBoostingClassifier(n_estimators=15).fit(x, y)
        scores = model.decision_function(x)
        np.testing.assert_array_equal((scores >= 0).astype(int), model.predict(x))
