"""Tests for OLS and ridge regression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.linear import LinearRegression, RidgeRegression
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError


def linear_data(n=200, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    coef = np.array([[2.0], [-1.0], [0.5]])
    y = x @ coef + 4.0 + noise * rng.normal(size=(n, 1))
    return x, y, coef


class TestLinearRegression:
    def test_recovers_exact_coefficients(self):
        x, y, coef = linear_data()
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-10)
        np.testing.assert_allclose(model.intercept_, [4.0], atol=1e-10)

    def test_multi_output(self):
        # One fit covers temperature and humidity simultaneously (Sec. V-D).
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 4))
        w = rng.normal(size=(4, 2))
        y = x @ w + np.array([20.0, 40.0])
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-9)

    def test_1d_targets_accepted(self):
        x, y, _ = linear_data()
        model = LinearRegression().fit(x, y.ravel())
        assert model.predict(x).shape == (200, 1)

    def test_without_intercept(self):
        x, y, _ = linear_data()
        model = LinearRegression(fit_intercept=False).fit(x, y)
        np.testing.assert_allclose(model.intercept_, 0.0)

    def test_residuals_orthogonal_to_features(self):
        x, y, _ = linear_data(noise=0.5)
        model = LinearRegression().fit(x, y)
        residuals = y - model.predict(x)
        # Normal-equation property of least squares.
        np.testing.assert_allclose(x.T @ residuals, 0.0, atol=1e-8)

    def test_underdetermined_system_does_not_crash(self):
        x = np.random.default_rng(0).normal(size=(3, 10))
        y = np.ones((3, 1))
        pred = LinearRegression().fit(x, y).predict(x)
        np.testing.assert_allclose(pred, 1.0, atol=1e-8)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.ones((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            LinearRegression().fit(np.ones(5), np.ones(5))
        model = LinearRegression().fit(np.ones((4, 2)), np.ones(4))
        with pytest.raises(ShapeError):
            model.predict(np.ones((4, 3)))


class TestRidgeRegression:
    def test_alpha_zero_matches_ols(self):
        x, y, _ = linear_data(noise=0.3)
        ols = LinearRegression().fit(x, y)
        ridge = RidgeRegression(alpha=0.0).fit(x, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_large_alpha_shrinks_coefficients(self):
        x, y, _ = linear_data(noise=0.3)
        small = RidgeRegression(alpha=0.01).fit(x, y)
        big = RidgeRegression(alpha=1e4).fit(x, y)
        assert np.linalg.norm(big.coef_) < np.linalg.norm(small.coef_)

    def test_handles_collinear_features(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(100, 1))
        x = np.hstack([base, base, rng.normal(size=(100, 1))])
        y = base * 2
        model = RidgeRegression(alpha=1.0).fit(x, y)
        assert np.all(np.isfinite(model.coef_))

    def test_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            RidgeRegression(alpha=-1.0)

    @settings(max_examples=25)
    @given(st.floats(0.0, 100.0))
    def test_property_shrinkage_monotone_in_alpha(self, alpha):
        x, y, _ = linear_data(noise=0.5, seed=3)
        norm_a = np.linalg.norm(RidgeRegression(alpha=alpha).fit(x, y).coef_)
        norm_b = np.linalg.norm(RidgeRegression(alpha=alpha + 10).fit(x, y).coef_)
        assert norm_b <= norm_a + 1e-9
