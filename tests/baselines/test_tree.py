"""Tests for the histogram-binned CART trees."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    apply_bins,
    quantile_bin_edges,
)
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError


def make_classifier(**kwargs) -> DecisionTreeClassifier:
    kwargs.setdefault("rng", np.random.default_rng(0))
    return DecisionTreeClassifier(**kwargs)


class TestBinning:
    def test_edges_monotone_and_deduplicated(self):
        x = np.random.default_rng(0).normal(size=(200, 3))
        edges = quantile_bin_edges(x, 16)
        assert len(edges) == 3
        for col in edges:
            assert np.all(np.diff(col) > 0)

    def test_constant_column_collapses(self):
        x = np.column_stack([np.ones(50), np.arange(50.0)])
        edges = quantile_bin_edges(x, 8)
        assert len(edges[0]) <= 1

    def test_apply_bins_range(self):
        x = np.random.default_rng(0).normal(size=(100, 2))
        edges = quantile_bin_edges(x, 16)
        binned = apply_bins(x, edges)
        assert binned.min() >= 0
        assert binned.max() <= 16

    def test_apply_bins_shape_mismatch(self):
        x = np.ones((5, 2))
        with pytest.raises(ShapeError):
            apply_bins(x, [np.array([0.5])])


class TestClassifier:
    def test_fits_axis_aligned_boundary(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(500, 4))
        y = (x[:, 2] > 0.3).astype(int)
        tree = make_classifier(max_depth=3).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.97

    def test_fits_xor_with_depth(self):
        # Unlike the linear baseline, a depth-2+ tree solves XOR.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1000, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
        tree = make_classifier(max_depth=6).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.9

    def test_pure_node_becomes_leaf(self):
        x = np.random.default_rng(0).normal(size=(50, 2))
        y = np.zeros(50, dtype=int)
        tree = make_classifier().fit(x, y)
        assert tree.n_nodes == 1
        assert np.all(tree.predict(x) == 0)

    def test_max_depth_respected(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(500, 4))
        y = rng.integers(0, 2, 500)
        tree = make_classifier(max_depth=3, min_samples_leaf=1).fit(x, y)
        assert tree.depth() <= 3

    def test_min_samples_split_limits_growth(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 2))
        y = rng.integers(0, 2, 30)
        tree = make_classifier(min_samples_split=100).fit(x, y)
        assert tree.n_nodes == 1

    def test_predict_proba_in_unit_interval(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 3))
        y = (x[:, 0] > 0).astype(int)
        proba = make_classifier().fit(x, y).predict_proba(x)
        assert np.all((0 <= proba) & (proba <= 1))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            make_classifier().predict(np.ones((2, 2)))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ShapeError):
            make_classifier().fit(np.ones((3, 2)), np.array([0, 1, 2]))

    def test_feature_subsampling_sqrt(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 16))
        y = (x[:, 0] > 0).astype(int)
        tree = make_classifier(max_features="sqrt").fit(x, y)
        assert tree.n_nodes >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_depth": 0},
            {"min_samples_leaf": 0},
            {"n_bins": 1},
            {"n_bins": 500},
        ],
    )
    def test_rejects_bad_hyperparameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(**kwargs)

    def test_rejects_bad_max_features(self):
        x = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        with pytest.raises(ConfigurationError):
            make_classifier(max_features=10).fit(x, y)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(20, 80))
    def test_property_training_accuracy_beats_majority(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 3))
        y = (x[:, 0] + 0.3 * rng.normal(size=n) > 0).astype(int)
        if y.min() == y.max():
            return  # degenerate draw
        tree = make_classifier(max_depth=4, min_samples_leaf=2).fit(x, y)
        accuracy = (tree.predict(x) == y).mean()
        majority = max(y.mean(), 1 - y.mean())
        assert accuracy >= majority - 1e-9


class TestRegressor:
    def test_fits_step_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(500, 1))
        y = np.where(x[:, 0] > 0, 5.0, -5.0)
        tree = DecisionTreeRegressor(max_depth=2, rng=np.random.default_rng(0)).fit(x, y)
        pred = tree.predict(x)
        assert np.abs(pred - y).mean() < 0.5

    def test_fits_nonlinear_surface_better_than_mean(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(800, 2))
        y = x[:, 0] ** 2 + np.sin(3 * x[:, 1])
        tree = DecisionTreeRegressor(max_depth=8, rng=np.random.default_rng(0)).fit(x, y)
        residual = np.abs(tree.predict(x) - y).mean()
        baseline = np.abs(y - y.mean()).mean()
        assert residual < baseline / 2

    def test_leaf_predicts_mean(self):
        x = np.arange(10, dtype=float)[:, None]
        y = np.arange(10, dtype=float)
        tree = DecisionTreeRegressor(max_depth=1, min_samples_leaf=5,
                                     rng=np.random.default_rng(0)).fit(x, y)
        pred = tree.predict(x)
        # Two leaves, each predicting its half's mean.
        assert set(np.round(np.unique(pred), 6)).issubset({2.0, 7.0, 4.5})

    def test_accepts_float_targets(self):
        x = np.random.default_rng(0).normal(size=(50, 2))
        y = np.random.default_rng(1).normal(size=50)
        DecisionTreeRegressor(rng=np.random.default_rng(0)).fit(x, y)
