"""Tests for the random forests."""

import numpy as np
import pytest

from repro.baselines.forest import RandomForestClassifier, RandomForestRegressor
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError


def xor_data(n=800, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
    return x, y


class TestClassifier:
    def test_solves_xor(self):
        x, y = xor_data()
        model = RandomForestClassifier(n_estimators=15, max_depth=8).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_ensemble_beats_single_tree_on_noise(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(600, 6))
        y = ((x[:, 0] + 0.8 * rng.normal(size=600)) > 0).astype(int)
        x_test = rng.normal(size=(600, 6))
        y_test = (x_test[:, 0] > 0).astype(int)
        single = RandomForestClassifier(n_estimators=1, max_depth=10, seed=1).fit(x, y)
        forest = RandomForestClassifier(n_estimators=25, max_depth=10, seed=1).fit(x, y)
        acc_single = (single.predict(x_test) == y_test).mean()
        acc_forest = (forest.predict(x_test) == y_test).mean()
        assert acc_forest >= acc_single

    def test_proba_averaged_over_trees(self):
        x, y = xor_data(300)
        model = RandomForestClassifier(n_estimators=5).fit(x, y)
        proba = model.predict_proba(x)
        assert np.all((0 <= proba) & (proba <= 1))

    def test_max_samples_fraction(self):
        x, y = xor_data(200)
        model = RandomForestClassifier(n_estimators=3, max_samples=0.5).fit(x, y)
        assert len(model.trees_) == 3

    def test_max_samples_int_capped_at_n(self):
        x, y = xor_data(100)
        RandomForestClassifier(n_estimators=2, max_samples=10_000).fit(x, y)

    def test_deterministic_in_seed(self):
        x, y = xor_data(300)
        a = RandomForestClassifier(n_estimators=4, seed=7).fit(x, y).predict_proba(x)
        b = RandomForestClassifier(n_estimators=4, seed=7).fit(x, y).predict_proba(x)
        np.testing.assert_array_equal(a, b)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.ones((2, 2)))

    def test_rejects_zero_estimators(self):
        with pytest.raises(ConfigurationError):
            RandomForestClassifier(n_estimators=0)

    def test_rejects_bad_max_samples(self):
        x, y = xor_data(50)
        with pytest.raises(ConfigurationError):
            RandomForestClassifier(max_samples=0.0).fit(x, y)
        with pytest.raises(ConfigurationError):
            RandomForestClassifier(max_samples=-3).fit(x, y)

    def test_rejects_1d_features(self):
        with pytest.raises(ShapeError):
            RandomForestClassifier().fit(np.ones(5), np.zeros(5))


class TestRegressor:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(800, 1))
        y = np.sin(2 * x[:, 0])
        model = RandomForestRegressor(n_estimators=20, max_depth=8).fit(x, y)
        assert np.abs(model.predict(x) - y).mean() < 0.2

    def test_prediction_within_target_range(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 2))
        y = rng.uniform(10, 20, 300)
        pred = RandomForestRegressor(n_estimators=5).fit(x, y).predict(x)
        assert pred.min() >= 10.0
        assert pred.max() <= 20.0
