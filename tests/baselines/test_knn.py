"""Tests for the k-NN baseline."""

import numpy as np
import pytest

from repro.baselines.knn import KNeighborsClassifier
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError


def blobs(n=300, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=(-2, 0), scale=0.5, size=(n // 2, 2))
    b = rng.normal(loc=(2, 0), scale=0.5, size=(n // 2, 2))
    x = np.vstack([a, b])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


class TestKNN:
    def test_separable_blobs(self):
        x, y = blobs()
        model = KNeighborsClassifier(5).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.99

    def test_one_neighbor_memorizes(self):
        x, y = blobs(50)
        model = KNeighborsClassifier(1).fit(x, y)
        np.testing.assert_array_equal(model.predict(x), y)

    def test_proba_is_vote_fraction(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([0, 0, 1, 1])
        model = KNeighborsClassifier(3).fit(x, y)
        # Query at 1.5: neighbors are 1.0 (y=0), 2.0 (y=1), 0.0 (y=0).
        assert model.predict_proba(np.array([[1.5]]))[0] == pytest.approx(1 / 3)

    def test_chunking_matches_single_pass(self):
        x, y = blobs(200)
        big = KNeighborsClassifier(5, chunk_size=1000).fit(x, y)
        small = KNeighborsClassifier(5, chunk_size=7).fit(x, y)
        np.testing.assert_allclose(big.predict_proba(x), small.predict_proba(x))

    def test_solves_xor_unlike_logistic(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(600, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
        model = KNeighborsClassifier(7).fit(x[:400], y[:400])
        assert (model.predict(x[400:]) == y[400:]).mean() > 0.85

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict(np.ones((2, 2)))

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            KNeighborsClassifier(0)

    def test_rejects_k_above_train_size(self):
        with pytest.raises(ConfigurationError):
            KNeighborsClassifier(10).fit(np.ones((3, 2)), np.array([0, 1, 0]))

    def test_rejects_non_binary(self):
        with pytest.raises(ShapeError):
            KNeighborsClassifier(1).fit(np.ones((3, 2)), np.array([0, 1, 2]))

    def test_query_width_validated(self):
        x, y = blobs(50)
        model = KNeighborsClassifier(3).fit(x, y)
        with pytest.raises(ShapeError):
            model.predict(np.ones((2, 5)))
