"""Tests for feature scalers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.scaler import MinMaxScaler, StandardScaler
from repro.exceptions import NotFittedError, ShapeError


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(500, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=0), 1.0, rtol=1e-9)

    def test_constant_feature_maps_to_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ShapeError):
            scaler.transform(np.ones((5, 4)))

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            StandardScaler().fit(np.ones(5))

    def test_state_round_trip(self):
        x = np.random.default_rng(1).normal(size=(50, 3))
        a = StandardScaler().fit(x)
        b = StandardScaler.from_state(a.state)
        np.testing.assert_allclose(a.transform(x), b.transform(x))

    def test_state_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().state

    @settings(max_examples=30)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 5)),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_property_inverse_round_trip(self, x):
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, rtol=1e-6, atol=1e-6
        )


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        x = np.random.default_rng(0).normal(size=(100, 3)) * 10
        z = MinMaxScaler().fit_transform(x)
        assert z.min() >= 0.0
        assert z.max() <= 1.0
        np.testing.assert_allclose(z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.max(axis=0), 1.0, rtol=1e-9)

    def test_constant_feature_stays_finite(self):
        x = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        z = MinMaxScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_shape_mismatch(self):
        scaler = MinMaxScaler().fit(np.ones((5, 3)))
        with pytest.raises(ShapeError):
            scaler.transform(np.ones((5, 2)))

    @settings(max_examples=30)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 5)),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_property_inverse_round_trip(self, x):
        scaler = MinMaxScaler().fit(x)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, rtol=1e-6, atol=1e-3
        )
