"""Shared fixtures for the repro test suite.

Expensive artifacts (a recorded campaign, a fold split, a trained
detector) are session-scoped: the campaign recorder is deterministic in
its seed, so sharing one dataset across tests loses no coverage while
keeping the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BehaviorConfig, CampaignConfig
from repro.data.folds import FoldSplit, make_paper_folds
from repro.data.recording import CollectionCampaign
from repro.data.dataset import OccupancyDataset


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def smoke_config() -> CampaignConfig:
    """A tiny but structure-complete campaign configuration."""
    return CampaignConfig(
        duration_h=6.0,
        sample_rate_hz=0.2,
        start_hour_of_day=8.0,
        seed=99,
        behavior=BehaviorConfig(mean_stay_h=1.0, mean_gap_h=1.5),
    )


@pytest.fixture(scope="session")
def smoke_dataset(smoke_config: CampaignConfig) -> OccupancyDataset:
    """One recorded 6-hour campaign (~4300 rows) shared by the suite."""
    return CollectionCampaign(smoke_config).run()


@pytest.fixture(scope="session")
def smoke_split(smoke_dataset: OccupancyDataset) -> FoldSplit:
    """The paper's 70/30 fold split of the smoke campaign."""
    return make_paper_folds(smoke_dataset)


@pytest.fixture(scope="session")
def day_dataset() -> OccupancyDataset:
    """A 40-hour campaign covering a full day/night cycle.

    Long enough that the last 30 % (the test region of the paper's split)
    includes a night — used by tests that need both warm occupied
    afternoons and cold empty nights.
    """
    config = CampaignConfig(duration_h=40.0, sample_rate_hz=0.1, seed=7)
    return CollectionCampaign(config).run()


@pytest.fixture(scope="session")
def day_split(day_dataset: OccupancyDataset) -> FoldSplit:
    return make_paper_folds(day_dataset)
