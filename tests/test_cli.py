"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.io import load_csv, load_npz, save_npz
from repro.data.recording import CollectionCampaign
from repro.config import CampaignConfig


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    """A small saved campaign for the dataset-consuming commands."""
    path = tmp_path_factory.mktemp("cli") / "campaign.npz"
    dataset = CollectionCampaign(
        CampaignConfig(duration_h=8.0, sample_rate_hz=0.2, seed=4)
    ).run()
    save_npz(dataset, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["generate", "out.npz", "--hours", "1", "--rate", "0.5"],
            ["profile", "data.npz"],
            ["folds", "data.npz"],
            ["table4", "data.npz", "--epochs", "2"],
            ["table5", "data.npz"],
            ["footprint", "--inputs", "64"],
        ],
    )
    def test_all_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestCommands:
    def test_generate_npz(self, tmp_path, capsys):
        out = tmp_path / "c.npz"
        code = main(["generate", str(out), "--hours", "0.5", "--rate", "1", "--seed", "1"])
        assert code == 0
        assert len(load_npz(out)) == 1800
        assert "Saved" in capsys.readouterr().out

    def test_generate_csv(self, tmp_path):
        out = tmp_path / "c.csv"
        assert main(["generate", str(out), "--hours", "0.2", "--rate", "1"]) == 0
        assert load_csv(out).n_subcarriers == 64

    def test_profile(self, campaign_file, capsys):
        assert main(["profile", str(campaign_file)]) == 0
        out = capsys.readouterr().out
        assert "corr(T, H)" in out
        assert "ADF" in out

    def test_folds(self, campaign_file, capsys):
        assert main(["folds", str(campaign_file)]) == 0
        out = capsys.readouterr().out
        assert "train" in out and "test" in out

    def test_table4_quick(self, campaign_file, capsys):
        code = main([
            "table4", str(campaign_file), "--epochs", "1", "--max-train-rows", "1500",
        ])
        assert code == 0
        assert "Avg." in capsys.readouterr().out

    def test_table5_quick(self, campaign_file, capsys):
        code = main([
            "table5", str(campaign_file), "--epochs", "1", "--max-train-rows", "1500",
        ])
        assert code == 0
        assert "MAE" in capsys.readouterr().out

    def test_footprint(self, capsys):
        assert main(["footprint", "--inputs", "66"]) == 0
        out = capsys.readouterr().out
        assert "Nucleo-L432KC" in out
        assert "FITS" in out
