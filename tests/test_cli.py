"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.io import load_csv, load_npz, save_npz
from repro.data.recording import CollectionCampaign
from repro.config import CampaignConfig


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    """A small saved campaign for the dataset-consuming commands."""
    path = tmp_path_factory.mktemp("cli") / "campaign.npz"
    dataset = CollectionCampaign(
        CampaignConfig(duration_h=8.0, sample_rate_hz=0.2, seed=4)
    ).run()
    save_npz(dataset, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["generate", "--output", "out.npz", "--hours", "1", "--rate", "0.5"],
            ["profile", "data.npz"],
            ["folds", "data.npz"],
            ["table4", "data.npz", "--epochs", "2", "--seed", "7"],
            ["table5", "data.npz", "--output", "t5.txt"],
            ["footprint", "--inputs", "64"],
            ["serve-bench", "--hours", "0.5", "--model", "logistic"],
            ["chaos-bench", "--hours", "0.5", "--scenario", "baseline"],
            ["guard-bench", "--hours", "0.5", "--links", "2"],
            ["chaos-bench", "--trace-dump", "trace.json"],
            ["guard-bench", "--trace-dump", "trace.json"],
            ["obs-report", "trace.json", "--events", "5"],
            ["obs-report", "trace.json", "--prom"],
            ["perf-bench"],
            ["perf-bench", "--inputs", "66", "--quick", "--output", "BENCH_serve.json"],
            ["overload-bench", "--quick"],
            ["overload-bench", "--skew", "5", "--deadline-ms", "1000"],
        ],
    )
    def test_all_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_every_subcommand_help_exits_zero(self, capsys):
        parser = build_parser()
        commands = list(parser._subparsers._group_actions[0].choices)
        assert "obs-report" in commands and len(commands) >= 10
        for command in commands:
            with pytest.raises(SystemExit) as excinfo:
                parser.parse_args([command, "--help"])
            assert excinfo.value.code == 0, command
            assert capsys.readouterr().out, command

    def test_common_flags_spelled_identically(self):
        parser = build_parser()
        for argv, attr, default in [
            (["generate"], "seed", 2022),
            (["table4", "d.npz"], "seed", 2022),
            (["table5", "d.npz"], "seed", 2022),
            (["serve-bench"], "seed", 2022),
            (["chaos-bench"], "seed", 2022),
            (["guard-bench"], "seed", 2022),
            (["perf-bench"], "seed", 2022),
            (["generate"], "rate", 0.5),
            (["serve-bench"], "rate", 0.5),
            (["chaos-bench"], "rate", 0.5),
            (["guard-bench"], "rate", 0.5),
        ]:
            assert getattr(parser.parse_args(argv), attr) == default

    def test_epilog_documents_common_flags(self, capsys):
        for command in ("generate", "table4", "serve-bench", "chaos-bench"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--help"])
            out = capsys.readouterr().out
            assert "common flags" in out
            assert "--seed" in out


class TestCommands:
    def test_generate_npz(self, tmp_path, capsys):
        out = tmp_path / "c.npz"
        code = main([
            "generate", "--output", str(out), "--hours", "0.5", "--rate", "1",
            "--seed", "1",
        ])
        assert code == 0
        assert len(load_npz(out)) == 1800
        assert "Saved" in capsys.readouterr().out

    def test_generate_csv(self, tmp_path):
        out = tmp_path / "c.csv"
        assert main(["generate", "--output", str(out), "--hours", "0.2", "--rate", "1"]) == 0
        assert load_csv(out).n_subcarriers == 64

    def test_profile(self, campaign_file, capsys):
        assert main(["profile", str(campaign_file)]) == 0
        out = capsys.readouterr().out
        assert "corr(T, H)" in out
        assert "ADF" in out

    def test_folds(self, campaign_file, capsys):
        assert main(["folds", str(campaign_file)]) == 0
        out = capsys.readouterr().out
        assert "train" in out and "test" in out

    def test_table4_quick(self, campaign_file, capsys):
        code = main([
            "table4", str(campaign_file), "--epochs", "1", "--max-train-rows", "1500",
        ])
        assert code == 0
        assert "Avg." in capsys.readouterr().out

    def test_table5_quick(self, campaign_file, capsys):
        code = main([
            "table5", str(campaign_file), "--epochs", "1", "--max-train-rows", "1500",
        ])
        assert code == 0
        assert "MAE" in capsys.readouterr().out

    def test_footprint(self, capsys):
        assert main(["footprint", "--inputs", "66"]) == 0
        out = capsys.readouterr().out
        assert "Nucleo-L432KC" in out
        assert "FITS" in out

    def test_serve_bench_quick(self, tmp_path, capsys):
        report_path = tmp_path / "bench.txt"
        code = main([
            "serve-bench", "--hours", "0.2", "--rate", "0.5", "--model", "logistic",
            "--links", "2", "--max-batch", "16", "--output", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "frames/s" in out
        assert "speedup" in out
        assert "batch_latency_ms" in out
        assert "frames/s" in report_path.read_text()

    def test_chaos_bench_quick(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.txt"
        code = main([
            "chaos-bench", "--hours", "0.2", "--rate", "0.5",
            "--scenario", "baseline", "--scenario", "model-crash",
            "--max-batch", "16", "--output", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "model-crash" in out
        assert "every admitted frame was answered" in out
        assert "accuracy" in report_path.read_text()

    def test_guard_bench_quick(self, tmp_path, capsys):
        report_path = tmp_path / "guard.txt"
        stats_path = tmp_path / "reference.npz"
        code = main([
            "guard-bench", "--hours", "0.2", "--rate", "0.5",
            "--max-batch", "16", "--stats", str(stats_path),
            "--output", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "guard off then on" in out
        assert "cov on" in out
        assert "zero unaccounted frames" in out
        assert "cov off" in report_path.read_text()
        # --stats persists the training reference for deployment reuse
        from repro.guard import ReferenceStats

        assert ReferenceStats.load(stats_path).n_features > 0

    def test_guard_bench_rejects_bad_links(self, capsys):
        code = main(["guard-bench", "--hours", "0.2", "--links", "0"])
        assert code == 2
        assert "--links" in capsys.readouterr().err

    def test_chaos_bench_unknown_scenario(self, capsys):
        code = main([
            "chaos-bench", "--hours", "0.2", "--rate", "0.5",
            "--scenario", "frobnicate",
        ])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_perf_bench_quick_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        code = main([
            "perf-bench", "--quick", "--inputs", "8", "--output", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "fastpath" in stdout and "OK" in stdout
        report = json.loads(out.read_text())
        assert report["equivalence"]["equivalent"] is True
        assert report["model"]["n_inputs"] == 8

    def test_perf_bench_rejects_bad_inputs(self, capsys):
        code = main(["perf-bench", "--inputs", "0"])
        assert code == 2
        assert "--inputs" in capsys.readouterr().err


class TestObsReport:
    @pytest.fixture(scope="class")
    def trace_dump(self, tmp_path_factory):
        """A dump written by a tiny traced guard-bench run."""
        path = tmp_path_factory.mktemp("obs") / "trace.json"
        code = main([
            "guard-bench", "--hours", "0.2", "--rate", "0.5",
            "--max-batch", "16", "--trace-dump", str(path),
        ])
        assert code == 0
        return path

    def test_round_trips_a_guard_bench_dump(self, trace_dump, capsys):
        assert main(["obs-report", str(trace_dump)]) == 0
        out = capsys.readouterr().out
        assert "== baseline ==" in out
        assert "ledger reconciles" in out
        assert "per-stage wall time" in out
        assert "frame.answered" in out

    def test_chaos_bench_trace_dump_round_trips(self, tmp_path, capsys):
        path = tmp_path / "chaos_trace.json"
        code = main([
            "chaos-bench", "--hours", "0.2", "--rate", "0.5",
            "--scenario", "baseline", "--max-batch", "16",
            "--trace-dump", str(path),
        ])
        assert code == 0
        assert "trace dump written" in capsys.readouterr().out
        assert main(["obs-report", str(path), "--events", "3"]) == 0
        out = capsys.readouterr().out
        assert "== baseline ==" in out and "last 3 event(s):" in out

    def test_prom_mode_prints_exposition(self, trace_dump, capsys):
        assert main(["obs-report", str(trace_dump), "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_frames_in counter" in out
        assert "repro_stage_predict_ms" in out

    def test_output_flag_writes_report(self, trace_dump, tmp_path, capsys):
        out_path = tmp_path / "report.txt"
        assert main(["obs-report", str(trace_dump), "--output", str(out_path)]) == 0
        capsys.readouterr()
        assert "ledger reconciles" in out_path.read_text()

    def test_rejects_missing_dump(self, tmp_path, capsys):
        code = main(["obs-report", str(tmp_path / "nope.json")])
        assert code == 2
        assert "obs-report:" in capsys.readouterr().err

    def test_rejects_non_dump_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"format": "other", "runs": []}')
        code = main(["obs-report", str(path)])
        assert code == 2
        assert "obs-report:" in capsys.readouterr().err


class TestFleetBench:
    def test_parses(self):
        args = build_parser().parse_args([
            "fleet-bench", "--tenants", "8", "--frames", "16", "--quick",
        ])
        assert callable(args.func)
        assert args.tenants == 8
        assert args.seed == 2022 and args.rate == 0.5

    def test_quick_writes_enveloped_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fleet.json"
        code = main([
            "fleet-bench", "--tenants", "4", "--frames", "8",
            "--frames-per-tick", "4", "--output", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "byte identity        : OK" in stdout
        assert "ledger reconciliation: OK" in stdout
        report = json.loads(out.read_text())
        assert report["bench"] == "fleet-bench"
        assert report["schema_version"] == 1
        assert "git_describe" in report and "generated_unix_s" in report
        assert report["identity"]["byte_identical"] is True
        assert report["identity"]["ledger_reconciled"] is True
        assert report["fleet"]["n_tenants"] == 4
        assert report["wall_clock_s"] > 0

    def test_rejects_bad_tenants(self, capsys):
        assert main(["fleet-bench", "--tenants", "0"]) == 2
        assert "--tenants" in capsys.readouterr().err

    def test_rejects_bad_rate(self, capsys):
        assert main(["fleet-bench", "--rate", "0"]) == 2
        assert "--rate" in capsys.readouterr().err


class TestOverloadBench:
    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["overload-bench"])
        assert callable(args.func)
        assert args.skew == 10.0
        assert args.reserved_hz == 8.0
        assert args.seed == 2022
        assert args.output == "BENCH_overload.json"

    def test_quick_writes_enveloped_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_overload.json"
        code = main(["overload-bench", "--quick", "--output", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "ledger reconciliation: OK" in stdout
        assert "deadline honesty     : OK" in stdout
        assert "fairness (reserved)  : OK" in stdout
        assert "degradation ladder   : OK" in stdout
        report = json.loads(out.read_text())
        assert report["bench"] == "overload-bench"
        assert report["schema_version"] == 1
        assert report["quick"] is True
        assert report["gates"]["passed"] is True
        assert set(report["arms"]) == {
            "unprotected", "protected", "governed", "fleet",
        }
        assert report["wall_clock_s"] > 0

    def test_rejects_bad_cold_tenants(self, capsys):
        assert main(["overload-bench", "--cold-tenants", "0"]) == 2
        assert "--cold-tenants" in capsys.readouterr().err

    def test_rejects_bad_skew(self, capsys):
        assert main(["overload-bench", "--skew", "1"]) == 2
        assert "--skew" in capsys.readouterr().err


class TestBenchEnvelope:
    def test_serve_bench_json_output_gets_envelope(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve_bench.json"
        code = main([
            "serve-bench", "--quick", "--model", "logistic",
            "--links", "2", "--max-batch", "16", "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["bench"] == "serve-bench"
        assert report["schema_version"] == 1
        assert report["quick"] is True
        assert report["seed"] == 2022
        assert report["throughput_fps"]["batched"] > 0

    def test_perf_bench_report_carries_envelope_and_payload(self, tmp_path):
        code = main([
            "perf-bench", "--quick", "--inputs", "8",
            "--output", str(tmp_path / "b.json"),
        ])
        assert code == 0
        report = json.loads((tmp_path / "b.json").read_text())
        # Envelope keys alongside the pre-envelope payload keys.
        assert report["schema_version"] == 1
        assert report["bench"] == "perf-bench"
        assert report["equivalence"]["equivalent"] is True
