"""Tests for the Prometheus text exposition renderer."""

from repro.obs import render_prometheus, sanitize_metric_name
from repro.serve.metrics import MetricsRegistry


class TestSanitizeMetricName:
    def test_prefixes_namespace(self):
        assert sanitize_metric_name("batch_latency_ms") == "repro_batch_latency_ms"

    def test_replaces_invalid_characters(self):
        assert sanitize_metric_name("p95 latency.ms") == "repro_p95_latency_ms"

    def test_no_namespace_keeps_grammar(self):
        assert sanitize_metric_name("9lives", namespace="") == "_9lives"
        assert sanitize_metric_name("ok:name", namespace="") == "ok:name"


class TestRenderPrometheus:
    def test_counter_gauge_summary_blocks(self):
        registry = MetricsRegistry()
        registry.counter("frames_in").inc(3)
        registry.gauge("queue_depth").set(2.5)
        hist = registry.histogram("batch_latency_ms")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        text = render_prometheus(registry)
        assert "# TYPE repro_frames_in counter" in text
        assert "repro_frames_in 3.0" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2.5" in text
        assert "# TYPE repro_batch_latency_ms summary" in text
        assert 'repro_batch_latency_ms{quantile="0.5"} 2.5' in text
        assert "repro_batch_latency_ms_sum 10.0" in text
        assert "repro_batch_latency_ms_count 4" in text
        assert text.endswith("\n")

    def test_summary_count_is_lifetime_not_window(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", max_samples=2)
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        text = render_prometheus(registry)
        assert "repro_h_count 3" in text
        assert "repro_h_sum 6.0" in text
        # Quantiles come from the retained window {2, 3} only.
        assert 'repro_h{quantile="0.5"} 2.5' in text

    def test_output_sorted_by_metric_name(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.gauge("alpha").set(1)
        text = render_prometheus(registry)
        assert text.index("repro_alpha") < text.index("repro_zebra")

    def test_rollout_family_groups_under_one_type_line(self):
        # The rollout manager's closed-taxonomy counters scrape as one
        # labeled family next to the state gauge.
        registry = MetricsRegistry()
        registry.counter("rollout_events_total{kind=shadow_start}").inc()
        registry.counter("rollout_events_total{kind=promoted}").inc()
        registry.counter("rollout_events_total{kind=rolled_back}").inc(2)
        registry.gauge("rollout_state").set(2)
        text = render_prometheus(registry)
        assert text.count("# TYPE repro_rollout_events_total counter") == 1
        assert 'repro_rollout_events_total{kind="shadow_start"} 1.0' in text
        assert 'repro_rollout_events_total{kind="promoted"} 1.0' in text
        assert 'repro_rollout_events_total{kind="rolled_back"} 2.0' in text
        assert "# TYPE repro_rollout_state gauge" in text
        assert "repro_rollout_state 2" in text

    def test_empty_histogram_renders_nan_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("empty_ms")
        text = render_prometheus(registry)
        assert 'repro_empty_ms{quantile="0.5"} NaN' in text
        assert "repro_empty_ms_count 0" in text

    def test_empty_registry_is_just_a_newline(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_custom_namespace(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert "wifi_c 1.0" in render_prometheus(registry, namespace="wifi")


class TestSplitLabels:
    def test_unlabeled_passthrough(self):
        from repro.obs.exposition import split_labels

        assert split_labels("frames_in") == ("frames_in", ())

    def test_single_label(self):
        from repro.obs.exposition import split_labels

        base, labels = split_labels("fleet_frames_total{tenant=room-12}")
        assert base == "fleet_frames_total"
        assert labels == (("tenant", "room-12"),)

    def test_multiple_labels_preserve_order(self):
        from repro.obs.exposition import split_labels

        _, labels = split_labels("m{b=2,a=1}")
        assert labels == (("b", "2"), ("a", "1"))

    def test_malformed_braces_treated_unlabeled(self):
        from repro.obs.exposition import split_labels

        for name in ("m{unclosed", "m{a}{b}", "m{=v}", "m{novalue}"):
            base, labels = split_labels(name)
            assert base == name
            assert labels == ()


class TestLabeledRendering:
    def test_labeled_series_share_one_type_line(self):
        registry = MetricsRegistry()
        registry.counter("fleet_frames_total{tenant=room-a}").inc(3)
        registry.counter("fleet_frames_total{tenant=room-b}").inc(5)
        text = render_prometheus(registry)
        assert text.count("# TYPE repro_fleet_frames_total counter") == 1
        assert 'repro_fleet_frames_total{tenant="room-a"} 3.0' in text
        assert 'repro_fleet_frames_total{tenant="room-b"} 5.0' in text

    def test_labeled_and_unlabeled_families_coexist(self):
        registry = MetricsRegistry()
        registry.counter("frames_in").inc()
        registry.counter("frames_by{link=a}").inc()
        text = render_prometheus(registry)
        assert "repro_frames_in 1.0" in text
        assert 'repro_frames_by{link="a"} 1.0' in text

    def test_labeled_gauge_and_histogram(self):
        registry = MetricsRegistry()
        registry.gauge("depth{tenant=x}").set(4.0)
        hist = registry.histogram("lat_ms{tenant=x}")
        hist.observe(2.0)
        text = render_prometheus(registry)
        assert 'repro_depth{tenant="x"} 4.0' in text
        assert "# TYPE repro_lat_ms summary" in text
        assert 'repro_lat_ms{tenant="x",quantile="0.5"} 2.0' in text
        assert 'repro_lat_ms_sum{tenant="x"} 2.0' in text
        assert 'repro_lat_ms_count{tenant="x"} 1' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter('m{tenant=a"b\\c}').inc()
        text = render_prometheus(registry)
        assert 'repro_m{tenant="a\\"b\\\\c"} 1.0' in text

    def test_label_keys_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("m{bad key=v}").inc()
        assert 'repro_m{bad_key="v"} 1.0' in render_prometheus(registry)

    def test_series_sorted_within_family(self):
        registry = MetricsRegistry()
        registry.counter("m{tenant=b}").inc()
        registry.counter("m{tenant=a}").inc()
        text = render_prometheus(registry)
        assert text.index('tenant="a"') < text.index('tenant="b"')
