"""Tests for dump serialisation and the obs-report renderer."""

import json

import pytest

from repro.exceptions import ConfigurationError, SerializationError
from repro.obs import (
    DUMP_FORMAT,
    Observer,
    build_dump,
    load_dump,
    render_report,
    render_run,
    write_dump,
)


def _live_observer(label="run-a"):
    obs = Observer(label=label)
    obs.frame_submitted(0, "link-0", 10.0)
    obs.frame_outcome("answered", 0, "link-0", 10.0, source="primary")
    obs.frame_submitted(1, "link-1", 11.0)
    obs.frame_outcome("stale", 1, "link-1", 11.0, age_s=30.0)
    obs.tracer.add_stage(0, "predict", 1.25)
    obs.emit("batch.flush", t_s=10.0, n=1, source="primary")
    return obs


class TestBuildDump:
    def test_single_observer(self):
        dump = build_dump(_live_observer())
        assert dump["format"] == DUMP_FORMAT
        assert [run["label"] for run in dump["runs"]] == ["run-a"]

    def test_mapping_fills_missing_labels(self):
        dump = build_dump({"scenario-x": Observer()})
        assert dump["runs"][0]["label"] == "scenario-x"

    def test_iterable_of_observers(self):
        dump = build_dump([_live_observer("a"), _live_observer("b")])
        assert [run["label"] for run in dump["runs"]] == ["a", "b"]


class TestWriteLoadDump:
    def test_round_trip(self, tmp_path):
        path = write_dump(tmp_path / "dump.json", _live_observer())
        dump = load_dump(path)
        assert dump["format"] == DUMP_FORMAT
        run = dump["runs"][0]
        assert run["ledger"]["submitted"] == 2
        assert run["events_total"] == 3
        assert run["events"][0]["kind"] == "frame.answered"

    def test_accepts_prebuilt_dump_dict(self, tmp_path):
        dump = build_dump(_live_observer())
        path = write_dump(tmp_path / "dump.json", dump)
        assert load_dump(path)["runs"] == dump["runs"]

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_dump(tmp_path / "nope.json")

    def test_load_rejects_non_dump_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else", "runs": []}))
        with pytest.raises(SerializationError):
            load_dump(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(SerializationError):
            load_dump(path)

    def test_load_rejects_missing_runs(self, tmp_path):
        path = tmp_path / "no_runs.json"
        path.write_text(json.dumps({"format": DUMP_FORMAT}))
        with pytest.raises(SerializationError):
            load_dump(path)


class TestRenderReport:
    def test_renders_ledger_stages_and_events(self):
        text = render_run(_live_observer().dump())
        assert text.startswith("== run-a ==")
        assert "submitted=2" in text
        assert "ledger reconciles" in text
        assert "predict" in text and "p95 ms" in text
        assert "frame.answered" in text and "age_s=30.0" in text

    def test_warns_on_pending_frames(self):
        obs = Observer(label="stuck")
        obs.frame_submitted(0, "link-0", 0.0)  # never sealed
        text = render_run(obs.dump())
        assert "WARNING" in text and "pending or unaccounted" in text

    def test_events_tail_limits_lines(self):
        obs = Observer(label="t")
        for i in range(30):
            obs.emit("batch.flush", t_s=float(i), n=1)
        text = render_run(obs.dump(), events_tail=3)
        assert "last 3 event(s):" in text
        assert "30 event(s) lifetime" in text
        with pytest.raises(ConfigurationError):
            render_run(obs.dump(), events_tail=-1)

    def test_zero_tail_hides_events(self):
        obs = Observer(label="t")
        obs.emit("batch.flush")
        assert "last" not in render_run(obs.dump(), events_tail=0)

    def test_rollout_summary_line(self):
        obs = Observer(label="rolling")
        obs.emit("rollout.shadow_start", t_s=1.0, challenger_version=1)
        obs.emit("rollout.promoted", t_s=2.0, version=1)
        text = render_run(obs.dump())
        assert "rollout: promoted=1  shadow_start=1" in text
        assert "rollout healthy: every promotion stuck" in text

    def test_rollout_rollback_warns(self):
        obs = Observer(label="rolling")
        obs.emit("rollout.shadow_start", t_s=1.0)
        obs.emit("rollout.promoted", t_s=2.0)
        obs.emit("rollout.rolled_back", t_s=3.0, reason="divergence")
        text = render_run(obs.dump())
        assert "WARNING: 1 promotion(s) rolled back" in text
        assert "rollout healthy" not in text

    def test_no_rollout_line_without_rollout_events(self):
        assert "rollout" not in render_run(_live_observer().dump())

    def test_overload_summary_line(self):
        obs = Observer(label="saturated")
        obs.emit("governor.mode_change", t_s=1.0, previous="full", mode="shed")
        obs.emit("governor.mode_change", t_s=5.0, previous="shed",
                 mode="fallback_only")
        obs.emit("governor.probe", t_s=5.0, to="fallback_only")
        obs.frame_submitted(0, "hot", 1.0)
        obs.frame_outcome("rate_limited", 0, "hot", 1.0)
        obs.frame_submitted(1, "hot", 2.0)
        obs.frame_outcome("deadline_expired", 1, "hot", 2.0, age_s=3.0)
        obs.frame_submitted(2, "hot", 3.0)
        obs.frame_outcome("shed", 2, "hot", 3.0)
        text = render_run(obs.dump())
        assert ("overload: mode_change=2  probe=1  rate_limited=1  "
                "deadline_expired=1  shed=1") in text
        assert "governor stepped the degradation ladder 2 time(s)" in text

    def test_shed_causes_reported_without_governor_events(self):
        obs = Observer(label="limited")
        obs.frame_submitted(0, "hot", 1.0)
        obs.frame_outcome("rate_limited", 0, "hot", 1.0)
        text = render_run(obs.dump())
        assert "overload: rate_limited=1" in text
        assert "degradation ladder" not in text

    def test_no_overload_line_without_overload_events(self):
        assert "overload" not in render_run(_live_observer().dump())

    def test_fleet_summary_line(self):
        obs = Observer(label="room-a")
        obs.emit("fleet.attach", t_s=0.0, shard=2)
        obs.emit("fleet.rebalance", t_s=1.0, from_shard=2, to_shard=0)
        obs.emit("fleet.plan_swap", t_s=2.0, drained=1)
        obs.emit("fleet.detach", t_s=3.0, drained=0, drain_served=0,
                 drain_shed=0)
        text = render_run(obs.dump())
        assert ("fleet: attach=1  detach=1  plan_swap=1  rebalance=1"
                in text)
        assert "shard rebalancing migrated this tenant 1 time(s)" in text
        assert "tenant detached: final ledger above is the archive" in text

    def test_fleet_line_without_churn_notes(self):
        obs = Observer(label="room-b")
        obs.emit("fleet.attach", t_s=0.0, shard=1)
        text = render_run(obs.dump())
        assert "fleet: attach=1" in text
        assert "rebalancing" not in text
        assert "detached" not in text

    def test_no_fleet_line_without_fleet_events(self):
        assert "fleet" not in render_run(_live_observer().dump())

    def test_multi_run_report(self):
        dump = build_dump({"a": _live_observer("a"), "b": _live_observer("b")})
        text = render_report(dump)
        assert "== a ==" in text and "== b ==" in text

    def test_empty_dump_report(self):
        assert "no runs" in render_report({"format": DUMP_FORMAT, "runs": []})
