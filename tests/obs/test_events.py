"""Tests for the structured event log."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs import EVENT_KINDS, Event, EventLog


class TestEvent:
    def test_to_json_is_canonical(self):
        event = Event(seq=3, kind="frame.answered", t_s=1.5, frame_id=7,
                      link_id="link-0", data={"b": 1, "a": 2})
        text = event.to_json()
        # Sorted keys, no whitespace: the byte-identical dump contract.
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  separators=(",", ":"))
        assert '"a":2' in text and text.index('"a"') < text.index('"b"')


class TestEventLog:
    def test_emit_assigns_monotonic_seq(self):
        log = EventLog()
        events = [log.emit("batch.flush", t_s=float(i)) for i in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            EventLog().emit("frame.answred")  # typo must fail loudly

    def test_extra_kinds_extend_taxonomy(self):
        log = EventLog(extra_kinds=("custom.thing",))
        assert log.emit("custom.thing").kind == "custom.thing"
        with pytest.raises(ConfigurationError):
            EventLog().emit("custom.thing")

    def test_taxonomy_is_closed_and_frame_outcomes_present(self):
        for kind in ("frame.answered", "frame.rejected", "frame.quarantined",
                     "frame.policy_rejected", "frame.stale", "frame.overflow",
                     "frame.rate_limited", "frame.deadline_expired",
                     "frame.shed", "governor.mode_change", "governor.probe",
                     "breaker.opened", "checkpoint.rollback"):
            assert kind in EVENT_KINDS

    def test_numpy_payloads_become_plain_json(self):
        log = EventLog()
        event = log.emit("drift.warn", z=np.float64(2.5), n=np.int64(3),
                         state=None, flag=np.bool_(True))
        assert event.data == {"z": 2.5, "n": 3, "state": None, "flag": True}
        json.dumps(event.to_dict())  # must not raise

    def test_ring_evicts_oldest_but_totals_are_lifetime(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("batch.flush", t_s=float(i))
        log.emit("breaker.opened", t_s=10.0)
        assert len(log) == 4
        assert log.total == 11
        assert log.counts_by_kind() == {"batch.flush": 10, "breaker.opened": 1}
        assert log.count("batch.flush") == 10
        assert log.count("drift.trip") == 0
        # Retained window is the newest 4, oldest first, seq preserved.
        assert [e.seq for e in log] == [7, 8, 9, 10]

    def test_tail(self):
        log = EventLog()
        for i in range(6):
            log.emit("batch.flush", t_s=float(i))
        assert [e.seq for e in log.tail(2)] == [4, 5]
        assert log.tail(0) == []
        assert len(log.tail(100)) == 6
        with pytest.raises(ConfigurationError):
            log.tail(-1)

    def test_to_jsonl_round_trips(self):
        log = EventLog()
        log.emit("frame.answered", t_s=1.0, frame_id=0, link_id="a", source="primary")
        log.emit("frame.stale", t_s=2.0, frame_id=1, link_id="b", age_s=9.0)
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "frame.answered"
        assert json.loads(lines[1])["data"]["age_s"] == 9.0

    def test_drain_empties_but_keeps_totals(self):
        log = EventLog()
        log.emit("batch.flush")
        log.emit("batch.flush")
        drained = log.drain()
        assert len(drained) == 2 and len(log) == 0
        assert log.total == 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)
