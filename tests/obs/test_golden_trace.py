"""Golden-trace determinism: same-seed replays dump identical event logs.

The event log stamps stream time only, so two chaos replays with the same
seed must produce byte-for-byte equal ``EventLog.to_jsonl()`` dumps per
scenario — the observability layer extends the fault layer's
byte-identical stream guarantee all the way to the postmortem artifact.
The same runs also cross-check the obs-side frame ledger against the
bench's independently counted result legs, frame for frame.
"""

import numpy as np
import pytest

from repro.config import BehaviorConfig, CampaignConfig
from repro.data.recording import CollectionCampaign
from repro.fastpath.plan import InferencePlan
from repro.faults.bench import default_scenario_suite, run_chaos_bench
from repro.fleet import Fleet, PlanRegistry
from repro.guard import GuardPolicy, ReferenceStats
from repro.guard.bench import run_guard_bench
from repro.guard.drift import DriftState
from repro.nn.modules import Linear, Sequential
from repro.obs import Observer, build_dump
from repro.rollout import RolloutManager, RolloutState, SequentialComparison
from repro.serve import ServeConfig
from repro.serve.engine import InferenceEngine


class ConstantEstimator:
    def __init__(self, p: float = 0.9) -> None:
        self.p = p

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(x).shape[0], self.p)


@pytest.fixture(scope="module")
def trace_dataset():
    config = CampaignConfig(
        duration_h=1.0,
        sample_rate_hz=0.2,
        seed=41,
        behavior=BehaviorConfig(mean_stay_h=0.5, mean_gap_h=0.5),
    )
    return CollectionCampaign(config).run()


def _scenarios(dataset, names, include_env=False):
    t = dataset.timestamps_s
    suite = default_scenario_suite(
        float(t[0]), float(t[-1]), n_csi=dataset.n_subcarriers,
        include_env=include_env,
    )
    return [s for s in suite if s.name in names]


def _chaos(dataset, seed=5):
    return run_chaos_bench(
        ConstantEstimator(),
        dataset,
        _scenarios(dataset, {"baseline", "clock-chaos", "model-crash"}),
        n_links=2,
        max_batch=16,
        seed=seed,
        observer_factory=lambda name: Observer(label=name),
    )


class TestGoldenTrace:
    def test_same_seed_replays_dump_identical_event_logs(self, trace_dataset):
        first = _chaos(trace_dataset)
        second = _chaos(trace_dataset)
        assert set(first.observers) == set(second.observers)
        for name, obs_a in first.observers.items():
            obs_b = second.observers[name]
            jsonl_a = obs_a.events.to_jsonl()
            assert jsonl_a, f"{name}: empty event log"
            assert jsonl_a.encode() == obs_b.events.to_jsonl().encode(), (
                f"{name}: same-seed replays diverged"
            )

    def test_different_seed_changes_the_faulted_trace(self, trace_dataset):
        # Sanity check that the golden comparison has teeth: reseeding the
        # fault schedule must move the clock-chaos event stream.
        a = _chaos(trace_dataset, seed=5).observers["clock-chaos"]
        b = _chaos(trace_dataset, seed=6).observers["clock-chaos"]
        assert a.events.to_jsonl() != b.events.to_jsonl()

    def test_observer_ledger_reconciles_with_bench_counters(self, trace_dataset):
        report = _chaos(trace_dataset)
        for result in report.results:
            ledger = report.observers[result.name].ledger()
            assert ledger["unaccounted"] == 0, result.name
            assert ledger["pending"] == 0, result.name
            assert ledger["submitted"] == result.n_submitted
            assert ledger["fills"] == result.n_repaired
            assert ledger["answered"] == result.n_answered + result.n_answered_repaired
            assert ledger["rejected"] == result.n_rejected
            assert ledger["quarantined"] == result.n_quarantined
            assert ledger["policy_rejected"] == result.n_policy_rejected
            assert ledger["stale"] == result.n_stale
            assert ledger["overflow"] == result.n_overflow

    def test_answered_event_ids_are_unique_and_complete(self, trace_dataset):
        report = _chaos(trace_dataset)
        for name, obs in report.observers.items():
            result = report.result(name)
            answered = [e for e in obs.events if e.kind == "frame.answered"]
            ids = [e.frame_id for e in answered]
            # Event log capacity exceeds this campaign, so nothing evicted:
            # every answered frame appears exactly once, under its own id.
            assert len(ids) == len(set(ids))
            assert len(ids) == result.n_answered + result.n_answered_repaired


class TestGoldenTraceGuarded:
    def test_guarded_replay_is_deterministic_and_reconciles(self, trace_dataset):
        features = np.hstack([trace_dataset.csi, trace_dataset.environment])
        n_csi = trace_dataset.n_subcarriers
        policy = GuardPolicy(
            reference=ReferenceStats.fit(features),
            n_features=n_csi + 2,
            env_slice=slice(n_csi, n_csi + 2),
            seed=3,
        )
        scenarios = _scenarios(
            trace_dataset, {"baseline", "sensor-dropout"}, include_env=True
        )

        def run():
            return run_guard_bench(
                ConstantEstimator(),
                trace_dataset,
                policy,
                scenarios=scenarios,
                n_links=2,
                max_batch=16,
                seed=5,
                observer_factory=lambda name: Observer(label=name),
            )

        first, second = run(), run()
        assert first.baseline.observers == {}  # off-leg stays untraced
        assert set(first.guarded.observers) == {"baseline", "sensor-dropout"}
        for name, obs in first.guarded.observers.items():
            twin = second.guarded.observers[name]
            assert obs.events.to_jsonl() == twin.events.to_jsonl()
            ledger = obs.ledger()
            result = first.guarded.result(name)
            assert ledger["unaccounted"] == 0 and ledger["pending"] == 0
            assert ledger["submitted"] == result.n_submitted
            assert ledger["quarantined"] == result.n_quarantined

        # The deterministic halves of the dump match too (events + ledger);
        # wall-clock stages are explicitly outside the guarantee.
        dump_a = build_dump(first.guarded.observers)
        dump_b = build_dump(second.guarded.observers)
        for run_a, run_b in zip(dump_a["runs"], dump_b["runs"]):
            assert run_a["events"] == run_b["events"]
            assert run_a["ledger"] == run_b["ledger"]
            assert run_a["events_by_kind"] == run_b["events_by_kind"]


class _TrippedSentinel:
    """Drift oracle pinned at TRIP: arms the trigger on the first frame."""

    def __init__(self):
        self.state = DriftState.TRIP
        self.reference = None

    def reset(self):
        pass


class _PrebuiltTrigger:
    """Trigger stub that hands back a prebuilt challenger plan."""

    def __init__(self, challenger, min_frames=4):
        self.challenger = challenger
        self.min_frames = min_frames
        self._rows = []
        self._armed = True

    @property
    def buffered(self):
        return len(self._rows)

    def buffered_rows(self):
        return np.stack(self._rows)

    def record(self, rows, labels):
        for row in np.atleast_2d(rows):
            self._rows.append(np.array(row, copy=True))

    def observe_state(self, state):
        fired = state is DriftState.TRIP and self._armed
        self._armed = state is DriftState.OK
        return fired

    def clear(self):
        self._rows.clear()

    def retrain(self, *, version=0, label=None):
        self.challenger.version = version
        self.challenger.label = label
        return self.challenger


class TestGoldenTracePromotion:
    """Same-seed promotion cycles dump byte-identical event logs.

    The rollout machinery stamps stream time only (frame ``t_s``), like
    every other event source, so a full drift → shadow → promote → seal
    cycle must replay byte-for-byte — including the ``rollout.*`` events
    interleaved with the frame life cycle.
    """

    N_IN = 4

    def _plan(self, *, negate=False):
        rng = np.random.default_rng(11)
        model = Sequential(Linear(self.N_IN, 1, rng=rng))
        if negate:
            for p in model.parameters():
                p.data[:] = -p.data
        return InferencePlan.from_model(model, version=0, label="champion")

    def _cycle(self, seed):
        champion = self._plan()
        engine = InferenceEngine(
            champion,
            ServeConfig(
                max_batch=4,
                max_latency_ms=None,
                stale_after_s=None,
                observer=Observer(label="engine"),
            ),
        )
        label_rng = np.random.default_rng(seed)

        def label_fn(frame):
            # Champion right 20% of the time; its negated twin wins the
            # rest.  Seed-dependent correctness makes the comparison's
            # stopping frame — and hence the trace — depend on the seed.
            p = float(champion.predict_proba(frame.csi[None, :])[0])
            vote = int(p >= 0.5)
            return vote if label_rng.random() < 0.2 else 1 - vote

        manager = RolloutManager.for_engine(
            engine,
            _PrebuiltTrigger(self._plan(negate=True)),
            label_fn=label_fn,
            comparison_factory=lambda: SequentialComparison(
                min_frames=8, max_frames=256
            ),
            guard_frames=8,
            refresh_reference=False,
        )
        manager.sentinel = _TrippedSentinel()

        frame_rng = np.random.default_rng(77)  # traffic is arm-invariant
        for i in range(200):
            engine.submit_frame("room", i * 0.5, frame_rng.random(self.N_IN))
            if manager.promotions and manager.state is RolloutState.IDLE:
                break
        engine.flush()
        assert manager.promotions == 1
        return engine.observer.events.to_jsonl()

    def test_same_seed_promotion_cycles_are_byte_identical(self):
        first = self._cycle(seed=5)
        assert "rollout.shadow_start" in first
        assert "rollout.promoted" in first
        assert first.encode() == self._cycle(seed=5).encode()

    def test_different_seed_moves_the_promotion_trace(self):
        # Teeth check: reseeding the labelled stream shifts the sequential
        # comparison's stopping time, so the trace must move.
        assert self._cycle(seed=5) != self._cycle(seed=6)


class TestGoldenTraceAdaptive:
    """An adaptive-batching episode replays byte-for-byte.

    The :class:`~repro.serve.adaptive.AdaptiveBatcher` runs entirely in
    stream time off frame timestamps, so the resize decisions — and the
    closed-taxonomy ``serve.batch_resize`` events recording them — must
    land on identical frames across same-seed replays, interleaved
    identically with the frame life-cycle events.
    """

    N_IN = 5

    def _episode(self, seed):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(
                max_batch=32,
                min_batch=2,
                max_latency_ms=50.0,
                queue_capacity=128,
                adaptive_batching=True,
                arena_slots=160,
                observer=Observer(label="adaptive"),
            ),
        )
        rng = np.random.default_rng(seed)
        t = 0.0
        for _ in range(300):
            # Seed-drawn burst/lull mix: the rate estimate, and with it
            # the resize schedule, genuinely depends on the seed.
            t += float(rng.choice([0.0005, 0.008, 0.15]))
            engine.submit("room", t, rng.random(self.N_IN))
        engine.flush()
        assert engine.observer.ledger()["unaccounted"] == 0
        return engine.observer.events

    def test_same_seed_adaptive_episodes_are_byte_identical(self):
        first = self._episode(seed=5)
        second = self._episode(seed=5)
        assert first.count("serve.batch_resize") >= 1
        assert first.count("serve.batch_resize") == second.count("serve.batch_resize")
        assert first.to_jsonl().encode() == second.to_jsonl().encode()

    def test_resize_events_carry_the_closed_schema(self):
        events = self._episode(seed=5)
        for event in events:
            if event.kind != "serve.batch_resize":
                continue
            assert set(event.data) == {"previous", "batch", "deadline_ms"}
            assert event.data["batch"] != event.data["previous"]

    def test_different_seed_moves_the_adaptive_trace(self):
        a = self._episode(seed=5).to_jsonl()
        b = self._episode(seed=6).to_jsonl()
        assert a != b


class TestGoldenTraceChurn:
    """A seeded fleet churn episode replays byte-for-byte.

    Lifecycle events (``fleet.attach`` / ``fleet.plan_swap`` /
    ``fleet.rebalance`` / ``fleet.detach``) are stream-time stamped like
    every other event source, so a full attach → serve → hot-swap →
    detach episode — drain ticks, shard migrations and all — must dump
    identical per-tenant event logs across runs of the same seed.
    """

    N_IN = 6

    def _plan(self, seed):
        rng = np.random.default_rng(seed)
        return InferencePlan.from_model(Sequential(Linear(self.N_IN, 1, rng=rng)))

    def _episode(self, seed):
        observers = {}
        attach_label = []

        def factory():
            observer = Observer(label=attach_label[-1])
            observers.setdefault(attach_label[-1], []).append(observer)
            return observer

        fleet = Fleet(
            ServeConfig(max_batch=8, max_latency_ms=None, stale_after_s=None),
            plans=PlanRegistry(n_shards=4),
            observer_factory=factory,
            rebalance_skew=1.0,
        )
        rng = np.random.default_rng(seed)

        def attach(tenant, t_s):
            attach_label.append(tenant)
            fleet.attach(tenant, self._plan(1), now_s=t_s)

        for tenant in ("room-a", "room-b", "room-c"):
            attach(tenant, 0.0)
        # Serve: the per-tick frame count is seed-drawn, so reseeding
        # genuinely moves the trace (the teeth check below relies on it).
        for i in range(8):
            t_s = float(i)
            for tenant in fleet.tenant_ids:
                for _ in range(int(rng.integers(1, 4))):
                    fleet.submit(tenant, t_s, rng.random(self.N_IN))
            fleet.tick(t_s + 0.5)
        # Hot-swap with a frame in flight: the cutover tick drains first.
        fleet.submit("room-b", 8.0, rng.random(self.N_IN))
        fleet.replace_plan("room-b", self._plan(2), now_s=8.0)
        fleet.take_drained()
        # Detach with a frame in flight: the drain tick serves it.
        fleet.submit("room-a", 9.0, rng.random(self.N_IN))
        fleet.detach("room-a", now_s=9.0)
        fleet.take_drained()
        # A late joiner (plus re-attach of a detached id) and final seal.
        attach("room-d", 10.0)
        attach("room-a", 10.5)
        for i in range(3):
            t_s = 11.0 + i
            for tenant in fleet.tenant_ids:
                fleet.submit(tenant, t_s, rng.random(self.N_IN))
            fleet.tick(t_s + 0.5)
        for tenant in list(fleet.tenant_ids):
            fleet.detach(tenant, now_s=15.0)
        fleet.take_drained()
        return {
            tenant: [observer.events.to_jsonl() for observer in incarnations]
            for tenant, incarnations in observers.items()
        }

    def test_same_seed_churn_episodes_are_byte_identical(self):
        first = self._episode(seed=5)
        second = self._episode(seed=5)
        assert set(first) == {"room-a", "room-b", "room-c", "room-d"}
        assert len(first["room-a"]) == 2  # detached + re-attached incarnations
        for tenant, dumps in first.items():
            for dump_a, dump_b in zip(dumps, second[tenant]):
                assert dump_a, f"{tenant}: empty event log"
                assert dump_a.encode() == dump_b.encode(), (
                    f"{tenant}: same-seed churn episodes diverged"
                )
        joined = "\n".join(dump for dumps in first.values() for dump in dumps)
        for kind in ("fleet.attach", "fleet.plan_swap", "fleet.detach"):
            assert kind in joined

    def test_different_seed_moves_the_churn_trace(self):
        a = self._episode(seed=5)
        b = self._episode(seed=6)
        assert any(a[tenant] != b[tenant] for tenant in a)
