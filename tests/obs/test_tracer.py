"""Tests for the per-frame span tracer and the observer facade."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import STAGES, FrameTracer, NULL_OBSERVER, Observer
from repro.serve.metrics import MetricsRegistry


class TestFrameTracer:
    def test_records_stages_per_frame(self):
        tracer = FrameTracer()
        tracer.start(0, "link-0", 10.0)
        tracer.add_stage(0, "validate", 0.5)
        tracer.add_stage(0, "predict", 1.5)
        tracer.finish(0, "answered")
        trace = tracer.trace(0)
        assert trace.stages == {"validate": 0.5, "predict": 1.5}
        assert trace.outcome == "answered"
        assert trace.total_ms == pytest.approx(2.0)

    def test_repeated_stage_accumulates(self):
        tracer = FrameTracer()
        tracer.start(0, "link-0", 0.0)
        tracer.add_stage(0, "enqueue", 1.0)
        tracer.add_stage(0, "enqueue", 2.0)
        assert tracer.trace(0).stages["enqueue"] == pytest.approx(3.0)

    def test_ring_evicts_oldest_trace_keeps_lifetime_histograms(self):
        tracer = FrameTracer(capacity=2)
        for fid in range(4):
            tracer.start(fid, "link-0", float(fid))
            tracer.add_stage(fid, "predict", 1.0)
            tracer.finish(fid, "answered")
        assert tracer.trace(0) is None and tracer.trace(1) is None
        assert [t.frame_id for t in tracer.traces()] == [2, 3]
        # Lifetime stage histogram counts evicted frames too.
        assert tracer.stage_summary()["predict"]["count"] == 4
        assert tracer.started == 4 and tracer.finished == 4
        assert tracer.open_frames == 0

    def test_stage_after_eviction_is_safe(self):
        tracer = FrameTracer(capacity=1)
        tracer.start(0, "link-0", 0.0)
        tracer.start(1, "link-0", 1.0)  # evicts frame 0
        tracer.add_stage(0, "emit", 1.0)  # no trace retained; histogram only
        assert tracer.trace(0) is None
        assert tracer.stage_summary()["emit"]["count"] == 1

    def test_queue_wait_span(self):
        tracer = FrameTracer()
        tracer.start(0, "link-0", 0.0)
        tracer.mark_enqueued(0)
        tracer.queue_wait(0)
        assert tracer.trace(0).stages["queue_wait"] >= 0.0
        # Closing an unmarked frame is a no-op, not an error.
        tracer.queue_wait(99)

    def test_finish_clears_pending_enqueue_mark(self):
        tracer = FrameTracer()
        tracer.start(0, "link-0", 0.0)
        tracer.mark_enqueued(0)
        tracer.finish(0, "overflow")
        tracer.queue_wait(0)  # must not add a stage after finish cleared it
        assert "queue_wait" not in tracer.trace(0).stages

    def test_stage_summary_orders_hot_path_first(self):
        tracer = FrameTracer()
        tracer.start(0, "link-0", 0.0)
        for stage in ("emit", "validate", "queue_wait"):
            tracer.add_stage(0, stage, 1.0)
        names = list(tracer.stage_summary())
        assert names == ["validate", "queue_wait", "emit"]
        assert all(s in STAGES for s in names)

    def test_bound_registry_mirrors_stage_histograms(self):
        tracer = FrameTracer()
        registry = MetricsRegistry()
        tracer.bind_registry(registry)
        tracer.start(0, "link-0", 0.0)
        tracer.add_stage(0, "validate", 2.0)
        assert registry.histogram("stage_validate_ms").count == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FrameTracer(capacity=0)


class TestObserver:
    def test_ledger_reconciles(self):
        obs = Observer(label="t")
        obs.frame_submitted(0, "a", 0.0)
        obs.frame_submitted(1, "a", 1.0)
        obs.frame_filled(2, "a", 0.5, source_frame=0)
        obs.frame_outcome("answered", 0, "a", 0.0, source="primary")
        obs.frame_outcome("rejected", 1, "a", 1.0)
        obs.frame_outcome("answered", 2, "a", 0.5, source="primary")
        ledger = obs.ledger()
        assert ledger["submitted"] == 2 and ledger["fills"] == 1
        assert ledger["answered"] == 2 and ledger["rejected"] == 1
        assert ledger["pending"] == 0 and ledger["unaccounted"] == 0

    def test_pending_counts_open_frames(self):
        obs = Observer()
        obs.frame_submitted(0, "a", 0.0)
        assert obs.ledger()["pending"] == 1
        assert obs.ledger()["unaccounted"] == 0

    def test_unknown_outcome_raises(self):
        obs = Observer()
        obs.frame_submitted(0, "a", 0.0)
        with pytest.raises(ConfigurationError):
            obs.frame_outcome("vanished", 0, "a", 0.0)

    def test_fill_emits_repaired_event(self):
        obs = Observer()
        obs.frame_filled(5, "b", 2.0, source_frame=4)
        assert obs.events.count("frame.repaired") == 1
        event = obs.events.tail(1)[0]
        assert event.frame_id == 5 and event.data["source_frame"] == 4

    def test_dump_carries_prometheus_only_when_registry_bound(self):
        obs = Observer(label="x")
        assert "prometheus" not in obs.dump()
        registry = MetricsRegistry()
        registry.counter("frames_in").inc()
        obs.bind_registry(registry)
        dump = obs.dump()
        assert dump["label"] == "x"
        assert "repro_frames_in 1.0" in dump["prometheus"]
        assert dump["metrics"]["frames_in"] == 1


class TestNullObserver:
    def test_disabled_and_inert(self):
        assert NULL_OBSERVER.enabled is False
        # Full surface, all no-ops: nothing raises, nothing accumulates.
        NULL_OBSERVER.bind_registry(MetricsRegistry())
        NULL_OBSERVER.frame_submitted(0, "a", 0.0)
        NULL_OBSERVER.frame_filled(1, "a", 0.0, source_frame=0)
        NULL_OBSERVER.frame_outcome("answered", 0, "a", 0.0)
        NULL_OBSERVER.emit("batch.flush")
        assert NULL_OBSERVER.ledger() == {}
        assert NULL_OBSERVER.frames_submitted == 0
        assert NULL_OBSERVER.dump()["events"] == []
