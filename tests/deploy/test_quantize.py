"""Tests for int8 post-training quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model_zoo import build_paper_mlp
from repro.deploy.quantize import QuantizedLinear, QuantizedMLP, quantize_model
from repro.exceptions import DeploymentError
from repro.nn.modules import Dropout, Linear, ReLU, Sequential, Sigmoid
from repro.nn.tensor import Tensor


def tiny_model(seed=0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(Linear(8, 16, rng=rng), ReLU(), Linear(16, 1, rng=rng))


class TestQuantizeModel:
    def test_structure_preserved(self):
        q = quantize_model(tiny_model())
        assert len(q.layers) == 2
        assert q.activations == ("relu", "none")
        assert q.layers[0].weight_q.dtype == np.int8

    def test_outputs_close_to_float_model(self):
        model = tiny_model()
        q = quantize_model(model)
        x = np.random.default_rng(1).normal(size=(50, 8))
        float_out = model(Tensor(x)).data
        quant_out = q.forward(x)
        # Int8 symmetric quantization keeps relative error small.
        scale = np.abs(float_out).mean() + 1e-9
        assert np.abs(quant_out - float_out).mean() / scale < 0.05

    def test_paper_mlp_quantizes(self):
        q = quantize_model(build_paper_mlp(64))
        assert q.n_parameters() == 74369

    def test_sigmoid_tagged(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 4, rng=rng), Sigmoid())
        assert quantize_model(model).activations == ("sigmoid",)

    def test_rejects_dropout(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 4, rng=rng), Dropout(0.5), Linear(4, 1, rng=rng))
        with pytest.raises(DeploymentError):
            quantize_model(model)

    def test_rejects_leading_activation(self):
        with pytest.raises(DeploymentError):
            quantize_model(Sequential(ReLU()))

    def test_zero_weight_layer(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 3, rng=rng)
        layer.weight.data = np.zeros((3, 3))
        q = quantize_model(Sequential(layer))
        assert np.all(q.layers[0].weight_q == 0)

    @settings(max_examples=20)
    @given(st.floats(0.01, 100.0))
    def test_property_quantization_error_bounded_by_half_lsb(self, magnitude):
        rng = np.random.default_rng(0)
        layer = Linear(4, 4, rng=rng)
        layer.weight.data = layer.weight.data * magnitude
        q = quantize_model(Sequential(layer))
        dequantized = q.layers[0].weight_q.astype(float) * q.layers[0].weight_scale
        max_error = np.abs(dequantized - layer.weight.data).max()
        assert max_error <= q.layers[0].weight_scale / 2 + 1e-12


class TestQuantizedStructures:
    def test_flash_accounting(self):
        q = quantize_model(tiny_model())
        expected = (8 * 16 + 4 * 16 + 4) + (16 * 1 + 4 * 1 + 4)
        assert q.flash_bytes() == expected

    def test_working_ram_uses_widest_pair(self):
        q = quantize_model(tiny_model())
        assert q.working_ram_bytes() == 4 * (16 + 8)

    def test_forward_accepts_single_row(self):
        q = quantize_model(tiny_model())
        out = q.forward(np.zeros(8))
        assert out.shape == (1, 1)

    def test_layer_width_mismatch_rejected(self):
        a = QuantizedLinear(np.zeros((4, 8), dtype=np.int8), 1.0, np.zeros(8, dtype=np.float32))
        b = QuantizedLinear(np.zeros((9, 2), dtype=np.int8), 1.0, np.zeros(2, dtype=np.float32))
        with pytest.raises(DeploymentError):
            QuantizedMLP((a, b), ("relu", "none"))

    def test_bad_activation_tag_rejected_at_forward(self):
        a = QuantizedLinear(np.zeros((4, 2), dtype=np.int8), 1.0, np.zeros(2, dtype=np.float32))
        mlp = QuantizedMLP((a,), ("swish",))
        with pytest.raises(DeploymentError):
            mlp.forward(np.zeros((1, 4)))

    def test_quantized_linear_validation(self):
        with pytest.raises(DeploymentError):
            QuantizedLinear(np.zeros((2, 2), dtype=np.float32), 1.0, np.zeros(2, dtype=np.float32))
        with pytest.raises(DeploymentError):
            QuantizedLinear(np.zeros((2, 2), dtype=np.int8), 0.0, np.zeros(2, dtype=np.float32))
