"""Tests for the inference-latency models."""

import pytest

from repro.core.model_zoo import build_paper_mlp
from repro.deploy.footprint import DeviceProfile, NUCLEO_L432KC
from repro.deploy.quantize import quantize_model
from repro.deploy.timing import cortex_m4_latency_ms, measure_inference_ms
from repro.exceptions import DeploymentError


class TestCycleModel:
    def test_paper_mlp_latency_ms_scale(self):
        # The paper reports 10.781 ms per sample on the full feature set.
        # The M4 cycle model for the same architecture should land in the
        # same order of magnitude (single-digit milliseconds).
        q = quantize_model(build_paper_mlp(66))
        latency = cortex_m4_latency_ms(q)
        assert 0.5 < latency < 30.0

    def test_latency_scales_with_width(self):
        small = quantize_model(build_paper_mlp(64, hidden_sizes=(32,)))
        large = quantize_model(build_paper_mlp(64, hidden_sizes=(512, 512)))
        assert cortex_m4_latency_ms(large) > 10 * cortex_m4_latency_ms(small)

    def test_faster_clock_lowers_latency(self):
        q = quantize_model(build_paper_mlp(64))
        fast_device = DeviceProfile("fast", 2**20, 2**18, 160e6)
        assert cortex_m4_latency_ms(q, fast_device) == pytest.approx(
            cortex_m4_latency_ms(q, NUCLEO_L432KC) / 2
        )


class TestHostMeasurement:
    def test_measures_float_model(self):
        model = build_paper_mlp(8, hidden_sizes=(16,))
        latency = measure_inference_ms(model, 8, n_repeats=20, warmup=2)
        assert 0.0 < latency < 100.0

    def test_measures_quantized_model(self):
        q = quantize_model(build_paper_mlp(8, hidden_sizes=(16,)))
        latency = measure_inference_ms(q, 8, n_repeats=20, warmup=2)
        assert 0.0 < latency < 100.0

    def test_rejects_bad_parameters(self):
        model = build_paper_mlp(4, hidden_sizes=(8,))
        with pytest.raises(DeploymentError):
            measure_inference_ms(model, 4, n_repeats=0)


class TestPlanMeasurement:
    def test_measures_frozen_plan(self):
        from repro.fastpath import InferencePlan

        plan = InferencePlan.from_model(build_paper_mlp(8, hidden_sizes=(16,)))
        latency = measure_inference_ms(plan, 8, n_repeats=20, warmup=2)
        assert 0.0 < latency < 100.0

    def test_plan_not_slower_than_tensor_path(self):
        from repro.fastpath import InferencePlan

        model = build_paper_mlp(64, hidden_sizes=(128, 256, 128))
        plan = InferencePlan.from_model(model)
        tensor_ms = measure_inference_ms(model, 64, n_repeats=40, warmup=5)
        plan_ms = measure_inference_ms(plan, 64, n_repeats=40, warmup=5)
        # The acceptance bar is 3x in the bench; here just guard the sign
        # so a CI machine under load cannot flake the suite.
        assert plan_ms < tensor_ms
