"""Tests for the flash/RAM footprint accounting."""

import pytest

from repro.core.model_zoo import build_paper_mlp
from repro.deploy.footprint import (
    NUCLEO_L432KC,
    DeviceProfile,
    estimate_footprint,
)
from repro.deploy.quantize import quantize_model
from repro.exceptions import DeploymentError
from repro.nn.modules import Sequential, ReLU


class TestNucleoProfile:
    def test_l432kc_resources(self):
        assert NUCLEO_L432KC.flash_bytes == 256 * 1024
        assert NUCLEO_L432KC.ram_bytes == 64 * 1024
        assert NUCLEO_L432KC.clock_hz == 80e6

    def test_rejects_degenerate_device(self):
        with pytest.raises(DeploymentError):
            DeviceProfile("bad", 0, 1024, 1e6)


class TestEstimateFootprint:
    def test_quantized_paper_mlp_fits_l432kc(self):
        # The paper's deployability claim: the occupancy MLP runs on the
        # Nucleo-L432KC.  Quantized, ~74 k int8 weights ~= 76 KiB flash.
        q = quantize_model(build_paper_mlp(66))
        report = estimate_footprint(q)
        assert report.fits
        assert report.model_flash_kib < 100.0
        assert report.model_ram_kib < 8.0

    def test_float_model_is_4x_larger(self):
        model = build_paper_mlp(64)
        q = quantize_model(model)
        float_report = estimate_footprint(model)
        quant_report = estimate_footprint(q)
        ratio = float_report.model_flash_bytes / quant_report.model_flash_bytes
        assert 3.5 < ratio < 4.1

    def test_model_size_same_ballpark_as_paper(self):
        # The paper reports 15.18 KiB; exact match is impossible (their
        # count includes framework overhead) but the order matches for the
        # quantized net within ~10x and for int8 the KiB range is right.
        q = quantize_model(build_paper_mlp(66, hidden_sizes=(64, 64)))
        report = estimate_footprint(q)
        assert 1.0 < report.model_flash_kib < 50.0

    def test_oversized_model_reported_not_fitting(self):
        huge = build_paper_mlp(64, hidden_sizes=(512, 512, 512))
        report = estimate_footprint(huge)  # float path: ~2.4 MB
        assert not report.fits

    def test_describe_mentions_device(self):
        report = estimate_footprint(quantize_model(build_paper_mlp(64)))
        text = report.describe()
        assert "Nucleo-L432KC" in text
        assert "FITS" in text

    def test_utilisation_fractions(self):
        report = estimate_footprint(quantize_model(build_paper_mlp(64)))
        assert 0.0 < report.flash_utilisation < 1.0
        assert 0.0 < report.ram_utilisation < 1.0

    def test_batch_buffer_scales_ram(self):
        q = quantize_model(build_paper_mlp(64))
        single = estimate_footprint(q, batch_buffer_rows=1)
        double = estimate_footprint(q, batch_buffer_rows=2)
        assert double.model_ram_bytes == 2 * single.model_ram_bytes

    def test_rejects_parameterless_model(self):
        with pytest.raises(DeploymentError):
            estimate_footprint(Sequential(ReLU()))

    def test_rejects_bad_batch_rows(self):
        with pytest.raises(DeploymentError):
            estimate_footprint(build_paper_mlp(8), batch_buffer_rows=0)
