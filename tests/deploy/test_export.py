"""Tests for the C header export."""

import numpy as np
import pytest

from repro.deploy.export import export_c_header
from repro.deploy.quantize import quantize_model
from repro.exceptions import DeploymentError
from repro.nn.modules import Linear, ReLU, Sequential


def quantized(seed=0):
    rng = np.random.default_rng(seed)
    return quantize_model(
        Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng))
    )


class TestExport:
    def test_header_structure(self, tmp_path):
        path = export_c_header(quantized(), tmp_path / "model.h")
        text = path.read_text()
        assert text.startswith("#ifndef REPRO_MODEL_H")
        assert text.rstrip().endswith("#endif /* REPRO_MODEL_H */")
        assert "#define REPRO_N_LAYERS 2" in text
        assert "#define REPRO_N_INPUTS 4" in text
        assert "#define REPRO_N_OUTPUTS 1" in text

    def test_weight_arrays_emitted(self, tmp_path):
        text = export_c_header(quantized(), tmp_path / "m.h").read_text()
        assert "static const int8_t repro_w0[32]" in text
        assert "static const float repro_b0[8]" in text
        assert "static const float repro_s0" in text
        assert "static const int8_t repro_w1[8]" in text

    def test_layer_metadata(self, tmp_path):
        text = export_c_header(quantized(), tmp_path / "m.h").read_text()
        assert "repro_layer_widths[3] = {4,8,1};" in text
        assert '"relu"' in text and '"none"' in text

    def test_values_round_trip(self, tmp_path):
        q = quantized()
        text = export_c_header(q, tmp_path / "m.h").read_text()
        line = next(l for l in text.splitlines() if "repro_w0" in l)
        body = line.split("{")[1].split("}")[0]
        values = np.array([int(v) for v in body.split(",")])
        np.testing.assert_array_equal(values, q.layers[0].weight_q.ravel())

    def test_custom_guard(self, tmp_path):
        text = export_c_header(quantized(), tmp_path / "m.h", guard="MY_NET_H").read_text()
        assert "#ifndef MY_NET_H" in text

    def test_invalid_guard_rejected(self, tmp_path):
        with pytest.raises(DeploymentError):
            export_c_header(quantized(), tmp_path / "m.h", guard="bad guard!")

    def test_braces_balanced(self, tmp_path):
        text = export_c_header(quantized(), tmp_path / "m.h").read_text()
        assert text.count("{") == text.count("}")


class TestPlanExport:
    def make_plan(self, seed=0):
        from repro.baselines.scaler import StandardScaler
        from repro.fastpath import InferencePlan

        rng = np.random.default_rng(seed)
        model = Sequential(Linear(6, 12, rng=rng), ReLU(), Linear(12, 1, rng=rng))
        scaler = StandardScaler().fit(rng.normal(5.0, 2.0, size=(40, 6)))
        return InferencePlan.from_model(model, scaler=scaler)

    def test_round_trip_is_bit_identical(self, tmp_path):
        from repro.deploy.export import export_plan, load_plan

        plan = self.make_plan()
        path = export_plan(plan, tmp_path / "plan.npz")
        loaded = load_plan(path)
        x = np.random.default_rng(1).normal(5.0, 2.0, size=(9, 6))
        np.testing.assert_array_equal(
            plan.predict_proba(x), loaded.predict_proba(x)
        )
        assert loaded.n_parameters() == plan.n_parameters()

    def test_capacity_is_a_load_time_choice(self, tmp_path):
        from repro.deploy.export import export_plan, load_plan

        path = export_plan(self.make_plan(), tmp_path / "plan.npz")
        assert load_plan(path, capacity=256).capacity == 256

    def test_rejects_wrong_artifact_kind(self, tmp_path):
        from repro.deploy.export import load_plan
        from repro.exceptions import SerializationError

        bad = tmp_path / "other.npz"
        np.savez(bad, w0=np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(SerializationError):
            load_plan(bad)

    def test_rejects_missing_file(self, tmp_path):
        from repro.deploy.export import load_plan
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError):
            load_plan(tmp_path / "nope.npz")
