"""Tests for the generated C inference runtime."""

import numpy as np
import pytest

from repro.core.model_zoo import build_paper_mlp
from repro.deploy.c_runtime import (
    compile_firmware,
    generate_inference_source,
    host_compiler,
    run_firmware,
    validate_against_python,
    write_firmware_bundle,
)
from repro.deploy.quantize import quantize_model
from repro.exceptions import DeploymentError

HAS_CC = host_compiler() is not None
needs_cc = pytest.mark.skipif(not HAS_CC, reason="no host C compiler")


@pytest.fixture(scope="module")
def small_quantized():
    return quantize_model(build_paper_mlp(8, hidden_sizes=(16, 8)))


class TestSourceGeneration:
    def test_source_structure(self, small_quantized):
        source = generate_inference_source(small_quantized)
        assert '#include "model.h"' in source
        assert "static void infer(" in source
        assert "int main(void)" in source
        # One matmul block per layer.
        assert source.count("/* layer") == 3

    def test_activations_emitted(self, small_quantized):
        source = generate_inference_source(small_quantized)
        assert "v > 0.0f ? v : 0.0f" in source  # ReLU kernels

    def test_bundle_written(self, small_quantized, tmp_path):
        header, source = write_firmware_bundle(small_quantized, tmp_path / "fw")
        assert header.exists() and source.exists()
        assert header.parent == source.parent


@needs_cc
class TestCompileAndRun:
    def test_end_to_end_matches_python(self, small_quantized, tmp_path):
        deviation = validate_against_python(small_quantized, tmp_path, n_probes=32)
        assert deviation < 1e-3

    def test_paper_network_matches(self, tmp_path):
        quantized = quantize_model(build_paper_mlp(66))
        deviation = validate_against_python(quantized, tmp_path, n_probes=16)
        assert deviation < 1e-3

    def test_run_firmware_row_accounting(self, small_quantized, tmp_path):
        _, source = write_firmware_bundle(small_quantized, tmp_path)
        binary = compile_firmware(source, tmp_path / "fw")
        out = run_firmware(binary, np.zeros((5, 8)))
        assert out.shape == (5, 1)
        # Same input rows -> identical outputs.
        assert np.all(out == out[0])

    def test_broken_source_raises(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text("int main(void) { return 0 }")  # missing semicolon
        with pytest.raises(DeploymentError):
            compile_firmware(bad, tmp_path / "bad")


class TestValidationErrors:
    def test_unknown_activation_rejected(self, small_quantized):
        from dataclasses import replace

        from repro.deploy.quantize import QuantizedMLP

        broken = QuantizedMLP(small_quantized.layers, ("relu", "swish", "none"))
        with pytest.raises(DeploymentError):
            generate_inference_source(broken)
