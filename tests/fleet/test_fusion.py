"""Tests for the tiled runner and the fusion scheduler.

The property tests here are the teeth of the byte-identity gate: over
random architectures, tenant counts and frame interleavings (including
the degenerate single-tenant and all-distinct fleets), fused dispatch
must reproduce per-tenant dispatch bit for bit.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.fastpath import InferencePlan
from repro.fleet import (
    FusionScheduler,
    PlanSignature,
    TenantBatch,
    TenantFrame,
    TiledPlanRunner,
)
from repro.nn.modules import Linear, ReLU, Sequential, Sigmoid, Tanh


def _plan(seed=0, n_in=8, hidden=(6,), final_activation=None):
    rng = np.random.default_rng(seed)
    layers = []
    widths = [n_in, *hidden]
    for a, b in zip(widths[:-1], widths[1:]):
        layers += [Linear(a, b, rng=rng), ReLU()]
    layers.append(Linear(widths[-1], 1, rng=rng))
    if final_activation is not None:
        layers.append(final_activation)
    return InferencePlan.from_model(Sequential(*layers))


def _rows(rng, n, n_in=8):
    return rng.normal(scale=2.0, size=(n, n_in)).astype(np.float32)


def _batch(tenant_id, plan, rows):
    frames = [
        TenantFrame(tenant_id, i, float(i), rows[i]) for i in range(len(rows))
    ]
    return TenantBatch(
        tenant_id=tenant_id,
        signature=PlanSignature.of(plan),
        plan=plan,
        frames=frames,
        rows=rows,
    )


class TestTiledPlanRunner:
    def test_matches_plan_probabilities(self):
        plan = _plan(seed=1)
        runner = TiledPlanRunner(plan, tile=4)
        x = _rows(np.random.default_rng(0), 11)
        np.testing.assert_allclose(
            runner.predict_proba(x), plan.predict_proba(x), rtol=0, atol=1e-6
        )

    def test_single_row_and_1d_input(self):
        plan = _plan(seed=1)
        runner = TiledPlanRunner(plan, tile=4)
        row = _rows(np.random.default_rng(1), 1)
        assert runner.predict_proba(row[0]).shape == (1,)
        assert runner.predict_proba(row[0]) == runner.predict_proba(row)

    def test_results_independent_of_batch_context(self):
        # The defining property: a row's probability is a function of the
        # row alone, not of whatever shared its predict_proba call.
        plan = _plan(seed=2, hidden=(12, 5))
        runner = TiledPlanRunner(plan, tile=8)
        rng = np.random.default_rng(7)
        x = _rows(rng, 37)
        together = runner.predict_proba(x)
        for split in (1, 8, 13, 36):
            parts = np.concatenate(
                [runner.predict_proba(x[:split]), runner.predict_proba(x[split:])]
            )
            assert np.array_equal(together, parts)

    def test_explicit_sigmoid_tail_matches_fused_logistic(self):
        rng = np.random.default_rng(3)
        x = _rows(rng, 9)
        with_sigmoid = _plan(seed=3, final_activation=Sigmoid())
        without = _plan(seed=3)
        a = TiledPlanRunner(with_sigmoid, tile=4).predict_proba(x)
        b = TiledPlanRunner(without, tile=4).predict_proba(x)
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-6)
        assert np.all((a >= 0.0) & (a <= 1.0))

    def test_tile_one_works(self):
        plan = _plan(seed=4)
        x = _rows(np.random.default_rng(4), 5)
        assert np.array_equal(
            TiledPlanRunner(plan, tile=1).predict_proba(x),
            TiledPlanRunner(plan, tile=1).predict_proba(x),
        )

    def test_rejects_bad_tile(self):
        with pytest.raises(ConfigurationError):
            TiledPlanRunner(_plan(), tile=0)

    def test_rejects_wrong_width(self):
        runner = TiledPlanRunner(_plan(n_in=8))
        with pytest.raises(ShapeError):
            runner.predict_proba(np.zeros((3, 9), dtype=np.float32))

    def test_rejects_multi_output_plan(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 2, rng=rng))
        with pytest.raises(ShapeError):
            TiledPlanRunner(InferencePlan.from_model(model))

    def test_scratch_buffers_do_not_leak_between_calls(self):
        # A full tile followed by a partial one: stale rows in the stage
        # buffer must not contaminate the padded lanes' bookkeeping.
        plan = _plan(seed=5)
        runner = TiledPlanRunner(plan, tile=8)
        rng = np.random.default_rng(5)
        big = _rows(rng, 8)
        small = _rows(rng, 3)
        runner.predict_proba(big)
        assert np.array_equal(
            runner.predict_proba(small),
            TiledPlanRunner(plan, tile=8).predict_proba(small),
        )


class TestFusionScheduler:
    def test_fuses_shared_signature_cohort(self):
        plan = _plan(seed=1)
        rng = np.random.default_rng(0)
        batches = [
            _batch("room-a", plan, _rows(rng, 3)),
            _batch("room-b", plan, _rows(rng, 5)),
        ]
        outcome = FusionScheduler(tile=4).run_tick(batches)
        assert outcome.fused_groups == 1
        assert outcome.unfused_groups == 0
        assert outcome.fused_frames == 8
        assert outcome.total_frames == 8
        assert outcome.probabilities["room-a"].shape == (3,)
        assert outcome.probabilities["room-b"].shape == (5,)

    def test_singleton_cohort_dispatches_unfused(self):
        rng = np.random.default_rng(0)
        batches = [
            _batch("room-a", _plan(seed=1), _rows(rng, 3)),
            _batch("room-b", _plan(seed=2), _rows(rng, 4)),
        ]
        outcome = FusionScheduler(tile=4).run_tick(batches)
        assert outcome.fused_groups == 0
        assert outcome.unfused_groups == 2
        assert outcome.unfused_frames == 7

    def test_fusion_disabled_never_fuses(self):
        plan = _plan(seed=1)
        rng = np.random.default_rng(0)
        batches = [
            _batch("room-a", plan, _rows(rng, 3)),
            _batch("room-b", plan, _rows(rng, 5)),
        ]
        outcome = FusionScheduler(tile=4, fusion_enabled=False).run_tick(batches)
        assert outcome.fused_groups == 0
        assert outcome.unfused_groups == 2

    def test_empty_batches_are_skipped(self):
        plan = _plan(seed=1)
        empty = TenantBatch(
            tenant_id="room-a",
            signature=PlanSignature.of(plan),
            plan=plan,
            frames=[],
            rows=np.zeros((0, 8), dtype=np.float32),
        )
        outcome = FusionScheduler().run_tick([empty])
        assert outcome.total_frames == 0
        assert outcome.probabilities == {}

    def test_runner_cache_is_per_signature(self):
        scheduler = FusionScheduler(tile=4)
        plan_a, plan_b = _plan(seed=1), _plan(seed=2)
        sig_a, sig_b = PlanSignature.of(plan_a), PlanSignature.of(plan_b)
        assert scheduler.runner_for(sig_a, plan_a) is scheduler.runner_for(sig_a, plan_a)
        assert scheduler.runner_for(sig_a, plan_a) is not scheduler.runner_for(
            sig_b, plan_b
        )


class TestByteIdentityProperty:
    """Fused dispatch == per-tenant dispatch, bit for bit, by construction."""

    def _assert_identical(self, batches, tile):
        fused = FusionScheduler(tile=tile, fusion_enabled=True).run_tick(batches)
        unfused = FusionScheduler(tile=tile, fusion_enabled=False).run_tick(batches)
        assert fused.probabilities.keys() == unfused.probabilities.keys()
        for tenant_id in fused.probabilities:
            a = fused.probabilities[tenant_id]
            b = unfused.probabilities[tenant_id]
            assert a.shape == b.shape
            assert np.array_equal(a, b), (
                f"tenant {tenant_id}: fused diverged from per-tenant dispatch "
                f"(max |delta| = {np.abs(a - b).max():.3g})"
            )
        assert fused.total_frames == unfused.total_frames

    def test_random_fleets(self):
        rng = np.random.default_rng(2022)
        for trial in range(25):
            tile = int(rng.choice([1, 3, 8, 16]))
            n_plans = int(rng.integers(1, 4))
            plans = [
                _plan(
                    seed=1000 * trial + k,
                    hidden=tuple(
                        int(w) for w in rng.integers(3, 20, size=rng.integers(1, 4))
                    ),
                )
                for k in range(n_plans)
            ]
            n_tenants = int(rng.integers(1, 8))
            batches = []
            for t in range(n_tenants):
                plan = plans[int(rng.integers(0, n_plans))]
                n_frames = int(rng.integers(1, 2 * tile + 3))
                batches.append(
                    _batch(f"room-{t}", plan, _rows(rng, n_frames))
                )
            self._assert_identical(batches, tile)

    def test_degenerate_single_tenant(self):
        rng = np.random.default_rng(1)
        self._assert_identical([_batch("room-a", _plan(seed=1), _rows(rng, 7))], 4)

    def test_degenerate_all_distinct_plans(self):
        rng = np.random.default_rng(2)
        batches = [
            _batch(f"room-{k}", _plan(seed=100 + k), _rows(rng, k + 1))
            for k in range(5)
        ]
        self._assert_identical(batches, 8)

    def test_degenerate_all_one_cohort(self):
        rng = np.random.default_rng(3)
        plan = _plan(seed=9, hidden=(16, 7))
        batches = [
            _batch(f"room-{k}", plan, _rows(rng, int(rng.integers(1, 9))))
            for k in range(6)
        ]
        self._assert_identical(batches, 16)

    def test_interleaving_order_does_not_change_results(self):
        # Same frames, different tenant arrival order: each tenant's
        # probabilities must not depend on its neighbours in the concat.
        rng = np.random.default_rng(4)
        plan = _plan(seed=11)
        rows = {f"room-{k}": _rows(rng, 4 + k) for k in range(4)}
        forward = [_batch(t, plan, r) for t, r in rows.items()]
        backward = list(reversed(forward))
        out_fwd = FusionScheduler(tile=8).run_tick(forward)
        out_bwd = FusionScheduler(tile=8).run_tick(backward)
        for tenant_id in rows:
            assert np.array_equal(
                out_fwd.probabilities[tenant_id], out_bwd.probabilities[tenant_id]
            )

    def test_tanh_architectures_also_identical(self):
        rng = np.random.default_rng(5)
        plan = InferencePlan.from_model(
            Sequential(
                Linear(8, 10, rng=np.random.default_rng(6)),
                Tanh(),
                Linear(10, 1, rng=np.random.default_rng(7)),
            )
        )
        batches = [
            _batch("room-a", plan, _rows(rng, 5)),
            _batch("room-b", plan, _rows(rng, 9)),
        ]
        self._assert_identical(batches, 4)
