"""Tests for the per-tenant ring router."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fleet import FleetRouter, TenantFrame


def _frame(tenant="room-a", frame_id=0, t_s=0.0):
    return TenantFrame(tenant, frame_id, t_s, np.zeros(4, dtype=np.float32))


class TestFleetRouter:
    def test_route_then_drain_preserves_order(self):
        router = FleetRouter()
        for i in range(5):
            assert router.route(_frame(frame_id=i, t_s=float(i))) is None
        drained = router.drain("room-a")
        assert [f.frame_id for f in drained] == [0, 1, 2, 3, 4]
        assert router.depth("room-a") == 0

    def test_rings_are_per_tenant(self):
        router = FleetRouter()
        router.route(_frame("room-a", 0))
        router.route(_frame("room-b", 1))
        router.route(_frame("room-b", 2))
        assert router.depth("room-a") == 1
        assert router.depth("room-b") == 2
        assert router.total_depth == 3
        assert router.pending_tenants == ("room-a", "room-b")
        assert [f.frame_id for f in router.drain("room-b")] == [1, 2]
        assert router.depth("room-a") == 1

    def test_overflow_evicts_oldest_of_that_tenant_only(self):
        router = FleetRouter(capacity=2)
        router.route(_frame("room-a", 0))
        router.route(_frame("room-b", 10))
        router.route(_frame("room-a", 1))
        evicted = router.route(_frame("room-a", 2))
        assert evicted is not None
        assert evicted.frame_id == 0
        assert [f.frame_id for f in router.drain("room-a")] == [1, 2]
        assert router.depth("room-b") == 1

    def test_drain_unknown_tenant_is_empty(self):
        assert FleetRouter().drain("room-zz") == []

    def test_depth_unknown_tenant_is_zero(self):
        assert FleetRouter().depth("room-zz") == 0

    def test_drained_tenant_leaves_pending_listing(self):
        router = FleetRouter()
        router.route(_frame("room-a", 0))
        router.drain("room-a")
        assert router.pending_tenants == ()

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FleetRouter(capacity=0)
