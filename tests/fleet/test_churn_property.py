"""Stateful model-based churn harness: the fleet under random elasticity.

A Hypothesis :class:`~hypothesis.stateful.RuleBasedStateMachine` drives
random interleavings of ``attach`` / ``detach`` / ``replace_plan`` /
``submit`` / ``tick`` / ``flush`` against **three** systems at once:

* a fused :class:`~repro.fleet.Fleet` (cross-tenant batch fusion on),
* an unfused :class:`~repro.fleet.Fleet` (singleton dispatch — the
  numeric reference), and
* a pure-Python oracle that models only the accounting contract
  (rings, overflow eviction, serve counts, lifecycle).

After every rule the machine asserts the elasticity invariants the
design document promises:

* **byte identity** — every probability the fused fleet ever emits
  (normal ticks, flushes, and the lifecycle-internal drain ticks of
  ``detach``/``replace_plan``) equals the unfused fleet's bit for bit,
  in the same global order with the same frame ids;
* **ledger identity** — per-tenant counters match between arms and
  match the oracle exactly (``frames_in``/``frames_out``/overflow), and
  each tenant's observer ledger reconciles with ``pending`` equal to
  the oracle's ring depth at every step;
* **no post-detach serves** — no result is ever attributed to a tenant
  after its detach sealed the ledger;
* **drain exactness** — every detach reports
  ``drained == drain_served + drain_shed`` and (with no shedding guards
  configured here) ``drain_shed == 0``, with the final archived ledgers
  byte-equal between arms.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.fastpath.plan import InferencePlan
from repro.fleet import Fleet, PlanRegistry, TenantLifecycle
from repro.nn.modules import Linear, ReLU, Sequential
from repro.obs.observer import Observer
from repro.serve.config import ServeConfig

N_INPUTS = 8
QUEUE_CAPACITY = 4
TENANTS = ("alpha", "beta", "gamma", "delta")


def _plan(seed: int) -> InferencePlan:
    rng = np.random.default_rng(seed)
    return InferencePlan.from_model(
        Sequential(Linear(N_INPUTS, 6, rng=rng), ReLU(), Linear(6, 1, rng=rng))
    )


PLANS = tuple(_plan(seed) for seed in (11, 22, 33))
ROWS = tuple(
    np.ascontiguousarray(row)
    for row in np.random.default_rng(99).standard_normal((8, N_INPUTS))
)


class _OracleTenant:
    """What the pure-Python model tracks per attached tenant."""

    def __init__(self) -> None:
        self.ring: list[int] = []  # pending frame ids, FIFO
        self.submitted = 0
        self.served = 0
        self.overflowed = 0


class ChurnMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.fused_observers: dict[str, Observer] = {}
        self.unfused_observers: dict[str, Observer] = {}
        self._attach_label: list[str] = []

        def make_factory(store: dict[str, Observer]):
            def factory() -> Observer:
                observer = Observer()
                store[self._attach_label[-1]] = observer
                return observer

            return factory

        def make_fleet(fusion_enabled: bool, store: dict[str, Observer]) -> Fleet:
            return Fleet(
                ServeConfig(
                    max_batch=QUEUE_CAPACITY,
                    max_latency_ms=None,
                    queue_capacity=QUEUE_CAPACITY,
                ),
                plans=PlanRegistry(n_shards=3),
                tile=4,
                fusion_enabled=fusion_enabled,
                observer_factory=make_factory(store),
                rebalance_skew=1.25,
            )

        self.fused = make_fleet(True, self.fused_observers)
        self.unfused = make_fleet(False, self.unfused_observers)
        self.oracle: dict[str, _OracleTenant] = {}
        self.detached: set[str] = set()
        self.t = 0.0

    # ------------------------------------------------------------ helpers

    def _advance(self) -> float:
        self.t += 0.5
        return self.t

    def _check_results(self, fused_results, unfused_results) -> None:
        """Byte identity + oracle accounting for one batch of results."""
        assert len(fused_results) == len(unfused_results)
        for a, b in zip(fused_results, unfused_results):
            assert a.tenant_id == b.tenant_id
            assert a.frame_id == b.frame_id
            # The core elasticity promise: fusion never changes a bit.
            assert a.probability == b.probability
            assert a.state == b.state
            assert a.tenant_id not in self.detached, (
                f"frame {a.frame_id} served after tenant {a.tenant_id} detached"
            )
            tenant = self.oracle.get(a.tenant_id)
            assert tenant is not None
            assert tenant.ring and tenant.ring[0] == a.frame_id, (
                "serve order broke FIFO within a tenant ring"
            )
            tenant.ring.pop(0)
            tenant.served += 1

    def _harvest_drained(self) -> None:
        self._check_results(self.fused.take_drained(), self.unfused.take_drained())

    # -------------------------------------------------------------- rules

    @precondition(lambda self: any(t not in self.oracle for t in TENANTS))
    @rule(data=st.data(), plan_i=st.integers(0, len(PLANS) - 1))
    def attach(self, data, plan_i):
        free = [t for t in TENANTS if t not in self.oracle]
        tenant = data.draw(st.sampled_from(free))
        now = self._advance()
        self._attach_label.append(tenant)
        sig_fused = self.fused.attach(tenant, PLANS[plan_i], now_s=now)
        sig_unfused = self.unfused.attach(tenant, PLANS[plan_i], now_s=now)
        assert sig_fused == sig_unfused
        self.oracle[tenant] = _OracleTenant()
        # A re-attached id is a fresh tenant; its post-detach tripwire
        # re-arms only at the next detach.
        self.detached.discard(tenant)
        assert self.fused.lifecycle(tenant) is TenantLifecycle.ATTACHED

    @precondition(lambda self: bool(self.oracle))
    @rule(data=st.data(), row_i=st.integers(0, len(ROWS) - 1))
    def submit(self, data, row_i):
        tenant = data.draw(st.sampled_from(sorted(self.oracle)))
        now = self._advance()
        row = ROWS[row_i]
        ticket_fused = self.fused.submit(tenant, now, row)
        ticket_unfused = self.unfused.submit(tenant, now, row)
        assert ticket_fused.outcome == ticket_unfused.outcome == "enqueued"
        assert ticket_fused.frame_id == ticket_unfused.frame_id
        tenant_state = self.oracle[tenant]
        tenant_state.submitted += 1
        tenant_state.ring.append(ticket_fused.frame_id)
        if len(tenant_state.ring) > QUEUE_CAPACITY:
            tenant_state.ring.pop(0)
            tenant_state.overflowed += 1

    @rule()
    def tick(self):
        now = self._advance()
        self._check_results(self.fused.tick(now), self.unfused.tick(now))

    @rule()
    def flush(self):
        self._check_results(self.fused.flush(), self.unfused.flush())

    @precondition(lambda self: bool(self.oracle))
    @rule(data=st.data(), plan_i=st.integers(0, len(PLANS) - 1))
    def replace_plan(self, data, plan_i):
        tenant = data.draw(st.sampled_from(sorted(self.oracle)))
        now = self._advance()
        had_pending = bool(self.oracle[tenant].ring)
        sig_fused = self.fused.replace_plan(tenant, PLANS[plan_i], now_s=now)
        sig_unfused = self.unfused.replace_plan(tenant, PLANS[plan_i], now_s=now)
        assert sig_fused == sig_unfused
        # Cutover ticks run only when the swapped tenant had frames in
        # flight; a tick drains *every* ring, so the spill covers all
        # tenants — otherwise no ring moves at all.
        self._harvest_drained()
        assert not self.oracle[tenant].ring
        if had_pending:
            for state in self.oracle.values():
                assert not state.ring

    @precondition(lambda self: bool(self.oracle))
    @rule(data=st.data())
    def detach(self, data):
        tenant = data.draw(st.sampled_from(sorted(self.oracle)))
        now = self._advance()
        tenant_state = self.oracle[tenant]
        pending = len(tenant_state.ring)
        final_fused = self.fused.detach(tenant, now_s=now)
        final_unfused = self.unfused.detach(tenant, now_s=now)
        assert final_fused == final_unfused
        assert final_fused["drained"] == pending
        assert (
            final_fused["drained"]
            == final_fused["drain_served"] + final_fused["drain_shed"]
        )
        # No staleness/deadline/guards configured: a drain can only serve.
        assert final_fused["drain_shed"] == 0
        self._harvest_drained()
        assert not tenant_state.ring
        assert final_fused["frames_in"] == tenant_state.submitted
        assert final_fused["frames_out"] == tenant_state.served
        assert final_fused["overflow_dropped"] == tenant_state.overflowed
        del self.oracle[tenant]
        self.detached.add(tenant)
        assert self.fused.lifecycle(tenant) is TenantLifecycle.DETACHED
        assert self.fused.detached_ledger(tenant) == final_fused
        assert self.unfused.detached_ledger(tenant) == final_unfused

    # ---------------------------------------------------------- invariants

    @invariant()
    def ledgers_match(self):
        assert set(self.fused.tenant_ids) == set(self.oracle)
        assert set(self.unfused.tenant_ids) == set(self.oracle)
        for tenant, state in self.oracle.items():
            counters_fused = self.fused.counters(tenant)
            assert counters_fused == self.unfused.counters(tenant)
            assert counters_fused["frames_in"] == state.submitted
            assert counters_fused["frames_out"] == state.served
            assert counters_fused["overflow_dropped"] == state.overflowed
            for store in (self.fused_observers, self.unfused_observers):
                ledger = store[tenant].ledger()
                assert ledger["unaccounted"] == 0
                assert ledger["pending"] == len(state.ring)
                assert ledger["answered"] == state.served
                assert ledger["overflow"] == state.overflowed

    @invariant()
    def pending_depth_matches(self):
        expected = sum(len(state.ring) for state in self.oracle.values())
        assert self.fused.router.total_depth == expected
        assert self.unfused.router.total_depth == expected


ChurnMachine.TestCase.settings = settings(
    max_examples=200,
    stateful_step_count=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.filter_too_much,
        HealthCheck.data_too_large,
    ],
)

TestFleetChurnProperty = ChurnMachine.TestCase
