"""Tests for the fleet-bench harness (small fleets; gates must hold)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.fleet import run_churn_scenario, run_fleet_bench


@pytest.fixture(scope="module")
def report():
    return run_fleet_bench(
        n_tenants=6,
        frames_per_tenant=8,
        frames_per_tick=4,
        distinct_every=3,
        churn_ticks=8,
        seed=11,
    )


class TestRunFleetBench:
    def test_gates_hold(self, report):
        assert report.byte_identical
        assert report.ledger_reconciled
        assert report.counters_reconciled
        assert report.max_abs_delta == 0.0

    def test_every_frame_compared(self, report):
        assert report.n_compared == 6 * 8
        assert report.fused.frames == 6 * 8
        assert report.unfused.frames == 6 * 8

    def test_cohort_mix(self, report):
        # distinct_every=3 over 6 tenants: rooms 2 and 5 are odd-one-out.
        assert report.n_cohorts == 3
        assert 0.0 < report.fused.fusion_ratio < 1.0
        assert report.unfused.fusion_ratio == 0.0

    def test_latency_percentiles_per_tenant(self, report):
        assert len(report.tenant_latency_ms) == 6
        for stats in report.tenant_latency_ms.values():
            assert 0.0 <= stats["p50_ms"] <= stats["p99_ms"]

    def test_describe_mentions_gates(self, report):
        text = report.describe()
        assert "byte identity        : OK" in text
        assert "ledger reconciliation: OK" in text
        assert "speedup" in text

    def test_to_json_payload(self, report):
        payload = report.to_json()
        assert payload["bench"] == "fleet-bench"
        assert payload["identity"]["byte_identical"] is True
        assert payload["identity"]["n_compared"] == 48
        assert payload["fleet"]["n_tenants"] == 6
        assert payload["throughput_fps"]["fused"] > 0
        assert payload["throughput_fps"]["unfused"] > 0
        assert set(payload["tenant_latency_ms"]) == set(report.tenant_latency_ms)

    def test_quick_shrinks_but_keeps_gates(self):
        quick = run_fleet_bench(quick=True, seed=3)
        assert quick.n_tenants == 8
        assert quick.frames_per_tenant == 16
        assert quick.byte_identical
        assert quick.ledger_reconciled
        assert quick.counters_reconciled

    def test_single_cohort_fleet(self):
        solo = run_fleet_bench(
            n_tenants=3,
            frames_per_tenant=4,
            frames_per_tick=2,
            distinct_every=0,
            seed=5,
        )
        assert solo.n_cohorts == 1
        assert solo.byte_identical
        assert solo.fused.fusion_ratio == 1.0

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            run_fleet_bench(n_tenants=0)
        with pytest.raises(ConfigurationError):
            run_fleet_bench(frames_per_tenant=0)
        with pytest.raises(ConfigurationError):
            run_fleet_bench(rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            run_fleet_bench(churn_ticks=-1)


class TestChurnArm:
    def test_report_carries_churn_audit(self, report):
        churn = report.churn
        assert churn is not None
        assert churn.ticks == 8
        assert churn.gates_ok
        assert churn.frames_served <= churn.frames_submitted

    def test_describe_mentions_churn_gates(self, report):
        text = report.describe()
        assert "churn identity       : OK" in text
        assert "churn ledger         : OK" in text

    def test_to_json_churn_payload(self, report):
        payload = report.to_json()["churn"]
        assert payload["byte_identical"] is True
        assert payload["ledger_reconciled"] is True
        assert payload["drain_exact"] is True
        assert payload["post_detach_serves"] == 0
        assert payload["ticks"] == 8
        assert payload["frames_submitted"] >= payload["frames_served"]

    def test_churn_ticks_zero_disables_arm(self):
        report = run_fleet_bench(
            n_tenants=3,
            frames_per_tenant=4,
            frames_per_tick=2,
            distinct_every=0,
            churn_ticks=0,
            seed=5,
        )
        assert report.churn is None
        assert report.to_json()["churn"] is None
        assert "churn" not in report.describe()


class TestRunChurnScenario:
    def test_gates_hold_and_churn_actually_happened(self):
        churn = run_churn_scenario(
            ticks=10, n_initial=4, n_inputs=16, tile=8, seed=7
        )
        assert churn.gates_ok
        assert churn.byte_identical
        assert churn.ledger_reconciled
        assert churn.drain_exact
        assert churn.post_detach_serves == 0
        assert churn.max_abs_delta == 0.0
        # The schedule must exercise elasticity, not just steady state.
        assert churn.detaches >= 1
        assert churn.drained_total >= 1
        assert churn.tenants_seen >= 4
        assert churn.n_compared == churn.frames_served

    def test_same_seed_same_audit(self):
        kwargs = dict(ticks=6, n_initial=3, n_inputs=16, tile=8, seed=3)
        assert run_churn_scenario(**kwargs) == run_churn_scenario(**kwargs)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            run_churn_scenario(ticks=0)
        with pytest.raises(ConfigurationError):
            run_churn_scenario(n_initial=2)
        with pytest.raises(ConfigurationError):
            run_churn_scenario(frames_per_tick=0)
