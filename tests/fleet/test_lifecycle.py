"""Tenant lifecycle: drain-exact detach, re-attach, and fleet rebalancing."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath.plan import InferencePlan
from repro.fleet import Fleet, PlanRegistry, TenantLifecycle
from repro.nn.modules import Linear, ReLU, Sequential
from repro.obs import Observer
from repro.serve import ServeConfig

N_IN = 6


def _plan(seed=0):
    rng = np.random.default_rng(seed)
    return InferencePlan.from_model(
        Sequential(Linear(N_IN, 4, rng=rng), ReLU(), Linear(4, 1, rng=rng))
    )


def _row(rng):
    return rng.random(N_IN)


def _fleet(**kwargs):
    config = kwargs.pop(
        "config", ServeConfig(max_batch=8, max_latency_ms=None, stale_after_s=None)
    )
    kwargs.setdefault("observer_factory", lambda: Observer())
    return Fleet(config, **kwargs)


class TestLifecycleStates:
    def test_attach_enters_attached(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        assert fleet.lifecycle("room-a") is TenantLifecycle.ATTACHED

    def test_attach_emits_event_with_shard(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        events = [
            e for e in fleet._tenant("room-a").observer.events
            if e.kind == "fleet.attach"
        ]
        assert len(events) == 1
        assert events[0].data["shard"] == fleet.plans.shard_of("room-a")
        assert fleet.metrics.counter("fleet_attaches_total").value == 1

    def test_detach_enters_detached_and_archives(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        final = fleet.detach("room-a")
        assert fleet.lifecycle("room-a") is TenantLifecycle.DETACHED
        assert fleet.detached_tenants == ("room-a",)
        assert fleet.detached_ledger("room-a") == final
        assert final["drained"] == 0
        assert final["drain_served"] == 0
        assert final["drain_shed"] == 0

    def test_unknown_tenant_lifecycle_raises(self):
        with pytest.raises(ConfigurationError):
            _fleet().lifecycle("ghost")
        with pytest.raises(ConfigurationError):
            _fleet().detached_ledger("ghost")

    def test_double_detach_raises(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        fleet.detach("room-a")
        with pytest.raises(ConfigurationError):
            fleet.detach("room-a")

    def test_submit_and_replace_closed_after_detach(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        fleet.detach("room-a")
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            fleet.submit("room-a", 0.0, _row(rng))
        with pytest.raises(ConfigurationError):
            fleet.replace_plan("room-a", _plan(1))

    def test_reattach_after_detach_is_fresh(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        fleet.flush()
        fleet.detach("room-a", now_s=1.0)
        fleet.attach("room-a", _plan(1), now_s=2.0)
        assert fleet.lifecycle("room-a") is TenantLifecycle.ATTACHED
        assert fleet.counters("room-a")["frames_in"] == 0
        # The archived ledger of the previous incarnation is released.
        assert "room-a" not in fleet.detached_tenants


class TestDrainExact:
    def test_drain_serves_pending_frames(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        for i in range(4):
            fleet.submit("room-a", float(i), _row(rng))
        final = fleet.detach("room-a", now_s=4.0)
        assert final["drained"] == 4
        assert final["drain_served"] == 4
        assert final["drain_shed"] == 0
        results = fleet.take_drained()
        assert len(results) == 4
        assert all(r.tenant_id == "room-a" for r in results)
        assert [r.frame_id for r in results] == sorted(r.frame_id for r in results)

    def test_drain_sheds_stale_frames_exactly(self):
        fleet = _fleet(
            config=ServeConfig(max_batch=8, max_latency_ms=None, stale_after_s=1.0)
        )
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        for i in range(3):
            fleet.submit("room-a", float(i), _row(rng))
        # Detach far in the future: every pending frame is stale, so the
        # drain sheds rather than serves — and the audit still balances.
        final = fleet.detach("room-a", now_s=100.0)
        assert final["drained"] == 3
        assert final["drain_served"] == 0
        assert final["drain_shed"] == 3
        assert final["stale_dropped"] == 3
        assert fleet.take_drained() == []

    def test_drain_ticks_spill_other_tenants_results(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan(0))
        fleet.attach("room-b", _plan(1))
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        fleet.submit("room-b", 0.0, _row(rng))
        fleet.detach("room-a", now_s=1.0)
        # The drain tick served room-b's pending frame too; it spills
        # instead of vanishing.
        spilled = fleet.take_drained()
        assert sorted({r.tenant_id for r in spilled}) == ["room-a", "room-b"]
        # Harvesting clears the spill.
        assert fleet.take_drained() == []

    def test_detach_event_carries_drain_audit(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        observer = fleet._tenant("room-a").observer
        fleet.detach("room-a", now_s=1.0)
        detach_events = [e for e in observer.events if e.kind == "fleet.detach"]
        assert len(detach_events) == 1
        assert detach_events[0].data["drained"] == 1
        assert detach_events[0].data["drain_served"] == 1
        assert detach_events[0].data["drain_shed"] == 0

    def test_detach_evicts_orphaned_runner_keeps_shared(self):
        shared = _plan(0)
        fleet = _fleet()
        fleet.attach("room-a", shared)
        fleet.attach("room-b", shared)
        fleet.attach("room-c", _plan(1))
        rng = np.random.default_rng(0)
        for tenant in ("room-a", "room-b", "room-c"):
            fleet.submit(tenant, 0.0, _row(rng))
        fleet.flush()
        assert fleet.scheduler.cached_runners == 2
        fleet.detach("room-c")
        # room-c's signature is orphaned: its runner cache entry goes.
        assert fleet.scheduler.cached_runners == 1
        fleet.detach("room-a")
        # room-b still carries the shared signature: runner survives.
        assert fleet.scheduler.cached_runners == 1
        fleet.detach("room-b")
        assert fleet.scheduler.cached_runners == 0


class TestReplacePlanRekey:
    def test_swap_rekeys_fusion_and_evicts_orphaned_runner(self):
        shared = _plan(0)
        fleet = _fleet()
        fleet.attach("room-a", shared)
        fleet.attach("room-b", shared)
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        fleet.submit("room-b", 0.0, _row(rng))
        fleet.tick(0.5)
        assert fleet.metrics.counter("fleet_fused_frames_total").value == 2
        old_signature = fleet.plans.signature("room-a")
        fleet.replace_plan("room-a", _plan(9), now_s=1.0)
        assert fleet.plans.signature("room-a") != old_signature
        # room-b still holds the old signature → its runner stays cached.
        assert fleet.plans.has_signature(old_signature)
        fleet.submit("room-a", 2.0, _row(rng))
        fleet.submit("room-b", 2.0, _row(rng))
        fleet.tick(2.5)
        # Different signatures can no longer fuse: both served singleton.
        assert fleet.metrics.counter("fleet_fused_frames_total").value == 2
        assert fleet.metrics.counter("fleet_unfused_frames_total").value >= 2

    def test_swap_to_orphaning_signature_evicts_runner(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan(0))
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        fleet.flush()
        assert fleet.scheduler.cached_runners == 1
        fleet.replace_plan("room-a", _plan(1), now_s=1.0)
        # Old signature orphaned by the swap → runner evicted; the new
        # one is built lazily on the next served tick.
        assert fleet.scheduler.cached_runners == 0
        fleet.submit("room-a", 2.0, _row(rng))
        fleet.flush()
        assert fleet.scheduler.cached_runners == 1


def _hot_ids(registry, shard, count):
    ids = []
    i = 0
    while len(ids) < count:
        tenant_id = f"hot-{i:04d}"
        if registry.home_shard(tenant_id) == shard:
            ids.append(tenant_id)
        i += 1
    return ids


class TestFleetRebalance:
    def test_rebalance_requires_configured_or_explicit_skew(self):
        fleet = _fleet()
        fleet.attach("room-a", _plan())
        with pytest.raises(ConfigurationError):
            fleet.rebalance()

    def test_rejects_bad_rebalance_skew(self):
        with pytest.raises(ConfigurationError):
            Fleet(ServeConfig(max_latency_ms=None), rebalance_skew=0.5)

    def test_auto_rebalance_on_skewed_attach(self):
        plans = PlanRegistry(n_shards=4)
        fleet = _fleet(plans=plans, rebalance_skew=1.0)
        plan = _plan()
        for tenant_id in _hot_ids(plans, 0, 6):
            fleet.attach(tenant_id, plan)
        # Attaching six hash-colliding tenants trips the skew trigger:
        # migrations happened automatically and the gauges reflect them.
        assert fleet.metrics.counter("fleet_rebalance_migrations_total").value > 0
        assert fleet.metrics.counter("fleet_rebalance_passes_total").value > 0
        counts = plans.shard_counts()
        assert sum(counts) == 6
        assert max(counts) <= 2
        for shard, count in enumerate(counts):
            gauge = fleet.metrics.gauge(f"fleet_shard_tenants{{shard={shard}}}")
            assert gauge.value == count

    def test_rebalance_emits_event_per_migration(self):
        plans = PlanRegistry(n_shards=4)
        fleet = _fleet(plans=plans)  # no auto trigger
        plan = _plan()
        hot = _hot_ids(plans, 0, 6)
        for tenant_id in hot:
            fleet.attach(tenant_id, plan)
        migrations = fleet.rebalance(max_skew=1.0, now_s=5.0)
        assert migrations
        for tenant_id, src, dst in migrations:
            events = [
                e for e in fleet._tenant(tenant_id).observer.events
                if e.kind == "fleet.rebalance"
            ]
            assert len(events) == 1
            assert events[0].data["from_shard"] == src
            assert events[0].data["to_shard"] == dst
        assert (
            fleet.metrics.counter("fleet_rebalance_migrations_total").value
            == len(migrations)
        )

    def test_migrated_tenant_still_serves(self):
        plans = PlanRegistry(n_shards=4)
        fleet = _fleet(plans=plans, rebalance_skew=1.0)
        plan = _plan()
        hot = _hot_ids(plans, 0, 6)
        for tenant_id in hot:
            fleet.attach(tenant_id, plan)
        rng = np.random.default_rng(0)
        for tenant_id in hot:
            fleet.submit(tenant_id, 0.0, _row(rng))
        results = fleet.flush()
        assert len(results) == len(hot)
        # All six share one plan: migration never broke the fusion cohort.
        assert fleet.metrics.counter("fleet_fused_frames_total").value == len(hot)
