"""Tests for the Fleet facade: isolation, accounting, labeled metrics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath import InferencePlan
from repro.fleet import Fleet, PlanRegistry
from repro.guard.validation import AmplitudeRangeCheck, FrameValidator
from repro.nn.modules import Linear, ReLU, Sequential
from repro.obs import Observer
from repro.obs.exposition import render_prometheus
from repro.serve import FrameTicket, ServeConfig

N_IN = 8


def _plan(seed=0):
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(N_IN, 6, rng=rng), ReLU(), Linear(6, 1, rng=rng))
    return InferencePlan.from_model(model)


def _row(rng):
    return np.abs(rng.normal(size=N_IN)) + 0.5


@pytest.fixture
def fleet():
    fleet = Fleet(ServeConfig(max_latency_ms=None))
    fleet.attach("room-a", _plan(seed=1))
    fleet.attach("room-b", _plan(seed=1))
    fleet.attach("room-c", _plan(seed=2))
    return fleet


class TestAttach:
    def test_accepts_plan_and_model(self):
        fleet = Fleet()
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        fleet.attach(
            "room-b", Sequential(Linear(N_IN, 4, rng=rng), ReLU(), Linear(4, 1, rng=rng))
        )
        assert fleet.tenant_ids == ("room-a", "room-b")
        assert fleet.metrics.gauge("fleet_tenants").value == 2

    def test_rejects_non_model(self):
        with pytest.raises(ConfigurationError):
            Fleet().attach("room-a", object())

    def test_rejects_duplicate_tenant(self):
        fleet = Fleet()
        fleet.attach("room-a", _plan())
        with pytest.raises(ConfigurationError):
            fleet.attach("room-a", _plan())

    def test_unknown_tenant_raises(self, fleet):
        with pytest.raises(ConfigurationError):
            fleet.submit("room-zz", 0.0, np.ones(N_IN))
        with pytest.raises(ConfigurationError):
            fleet.counters("room-zz")

    def test_prepopulated_registry_still_needs_attach(self):
        plans = PlanRegistry()
        plans.register("room-a", _plan())
        fleet = Fleet(plans=plans)
        with pytest.raises(ConfigurationError):
            fleet.submit("room-a", 0.0, np.ones(N_IN))


class TestSubmitAndTick:
    def test_round_trip_results_per_tenant(self, fleet):
        rng = np.random.default_rng(0)
        for i in range(6):
            for tenant in fleet.tenant_ids:
                ticket = fleet.submit(tenant, float(i), _row(rng))
                assert isinstance(ticket, FrameTicket)
                assert ticket.admitted
                assert ticket.tenant_id == tenant
                assert ticket.results == ()
        results = fleet.tick()
        assert len(results) == 18
        by_tenant = {}
        for r in results:
            by_tenant.setdefault(r.tenant_id, []).append(r)
        for tenant in fleet.tenant_ids:
            assert [r.t_s for r in by_tenant[tenant]] == [float(i) for i in range(6)]
            assert all(r.source == "primary" for r in by_tenant[tenant])
            assert all(0.0 <= r.probability <= 1.0 for r in by_tenant[tenant])

    def test_tick_without_pending_is_empty(self, fleet):
        assert fleet.tick() == []

    def test_malformed_row_rejected_with_ticket(self, fleet):
        ticket = fleet.submit("room-a", 0.0, np.full(N_IN, np.nan))
        assert ticket.outcome == "rejected"
        assert not ticket.admitted
        assert fleet.counters("room-a")["rejected"] == 1
        assert fleet.tick() == []

    def test_flush_is_tick(self, fleet):
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        assert len(fleet.flush()) == 1

    def test_stale_frames_dropped(self):
        fleet = Fleet(ServeConfig(max_latency_ms=None, stale_after_s=5.0))
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        fleet.submit("room-a", 100.0, _row(rng))
        results = fleet.tick()
        assert len(results) == 1
        assert results[0].t_s == 100.0
        assert fleet.counters("room-a")["stale_dropped"] == 1

    def test_ring_overflow_counts_per_tenant(self):
        fleet = Fleet(ServeConfig(max_batch=2, queue_capacity=2, max_latency_ms=None))
        fleet.attach("room-a", _plan())
        fleet.attach("room-b", _plan())
        rng = np.random.default_rng(0)
        for i in range(4):
            fleet.submit("room-a", float(i), _row(rng))
        fleet.submit("room-b", 0.0, _row(rng))
        assert fleet.counters("room-a")["overflow_dropped"] == 2
        assert fleet.counters("room-b")["overflow_dropped"] == 0
        assert len(fleet.tick()) == 3


class TestIsolation:
    def test_debouncer_state_is_per_tenant(self, fleet):
        # Saturate room-a towards occupied while room-b sees nothing.
        rng = np.random.default_rng(0)
        for i in range(20):
            fleet.submit("room-a", float(i), _row(rng))
        fleet.tick()
        assert fleet.state("room-b") in (0, 1)
        assert fleet.health("room-b").name == "IDLE"
        assert fleet.health("room-a").name != "IDLE"

    def test_validator_quarantines_only_offending_tenant(self):
        validator = FrameValidator([AmplitudeRangeCheck(0.0, 10.0)])
        fleet = Fleet(ServeConfig(max_latency_ms=None, validator=validator))
        fleet.attach("room-a", _plan())
        fleet.attach("room-b", _plan())
        ticket = fleet.submit("room-a", 0.0, np.full(N_IN, 99.0))
        assert ticket.outcome == "quarantined"
        ok = fleet.submit("room-b", 0.0, np.ones(N_IN))
        assert ok.outcome == "enqueued"
        assert fleet.counters("room-a")["quarantined"] == 1
        assert fleet.counters("room-b")["quarantined"] == 0

    def test_scheduler_failure_sheds_only_that_tick(self, fleet, monkeypatch):
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        fleet.submit("room-b", 0.0, _row(rng))
        monkeypatch.setattr(
            fleet.scheduler, "run_tick", lambda batches: 1 / 0
        )
        assert fleet.tick() == []
        assert fleet.counters("room-a")["policy_rejected"] == 1
        assert fleet.counters("room-b")["policy_rejected"] == 1
        assert fleet.metrics.counter("fleet_tick_failures").value == 1
        monkeypatch.undo()
        fleet.submit("room-a", 1.0, _row(rng))
        assert len(fleet.tick()) == 1


class TestObserversAndMetrics:
    def test_per_tenant_ledgers_reconcile(self):
        fleet = Fleet(
            ServeConfig(max_latency_ms=None), observer_factory=lambda: Observer()
        )
        fleet.attach("room-a", _plan(seed=1))
        fleet.attach("room-b", _plan(seed=1))
        rng = np.random.default_rng(0)
        for i in range(7):
            fleet.submit("room-a", float(i), _row(rng))
        for i in range(3):
            fleet.submit("room-b", float(i), _row(rng))
        fleet.submit("room-b", 3.0, np.full(N_IN, np.inf))
        fleet.tick()
        a, b = fleet.ledger("room-a"), fleet.ledger("room-b")
        assert a["submitted"] == 7 and a["answered"] == 7
        assert b["submitted"] == 4 and b["answered"] == 3 and b["rejected"] == 1
        for ledger in (a, b):
            assert ledger["unaccounted"] == 0
            assert ledger["pending"] == 0

    def test_labeled_rollups_and_fusion_metrics(self, fleet):
        rng = np.random.default_rng(0)
        for i in range(4):
            for tenant in fleet.tenant_ids:
                fleet.submit(tenant, float(i), _row(rng))
        fleet.tick()
        metrics = fleet.metrics
        for tenant in fleet.tenant_ids:
            assert metrics.counter(f"fleet_frames_total{{tenant={tenant}}}").value == 4
            assert (
                metrics.counter(f"fleet_frames_out_total{{tenant={tenant}}}").value == 4
            )
        # room-a and room-b share a plan (fused); room-c is odd-one-out.
        assert metrics.counter("fleet_fused_frames_total").value == 8
        assert metrics.counter("fleet_unfused_frames_total").value == 4
        assert metrics.counter("fleet_fused_groups_total").value == 1
        assert metrics.counter("fleet_unfused_groups_total").value == 1
        assert metrics.gauge("fleet_fusion_ratio").value == pytest.approx(8 / 12)
        assert metrics.gauge("fleet_pending").value == 0

    def test_prometheus_renders_tenant_labels(self, fleet):
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        fleet.tick()
        text = render_prometheus(fleet.metrics)
        assert "# TYPE repro_fleet_frames_total counter" in text
        assert 'repro_fleet_frames_total{tenant="room-a"} 1.0' in text


class TestOverloadPlane:
    """The fleet half of the overload control plane."""

    def test_rate_limited_ticket_and_tallies(self):
        fleet = Fleet(ServeConfig(max_latency_ms=None, rate_limit_hz=1.0,
                                  rate_limit_burst=1.0))
        fleet.attach("room-a", _plan())
        fleet.attach("room-b", _plan())
        rng = np.random.default_rng(0)
        assert fleet.submit("room-a", 0.0, _row(rng)).outcome == "enqueued"
        ticket = fleet.submit("room-a", 0.0, _row(rng))
        assert ticket.outcome == "rate_limited"
        assert not ticket.admitted
        assert fleet.counters("room-a")["rate_limited"] == 1
        # The bucket is per tenant; room-b still holds its burst token.
        assert fleet.submit("room-b", 0.0, _row(rng)).outcome == "enqueued"
        assert fleet.metrics.counter("fleet_frames_rate_limited").value == 1
        # Stream time refills: one second later the tenant is admitted.
        assert fleet.submit("room-a", 1.0, _row(rng)).outcome == "enqueued"
        assert len(fleet.flush()) == 3

    def test_expired_frames_shed_at_tick(self):
        fleet = Fleet(ServeConfig(max_latency_ms=None, deadline_ms=1000.0),
                      observer_factory=Observer)
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        fleet.submit("room-a", 0.0, _row(rng))
        fleet.submit("room-a", 5.0, _row(rng))
        results = fleet.tick(5.0)
        assert [r.t_s for r in results] == [5.0]
        assert fleet.counters("room-a")["deadline_expired"] == 1
        ledger = fleet.ledger("room-a")
        assert ledger["deadline_expired"] == 1 and ledger["pending"] == 0

    def test_mode_is_full_when_ungoverned(self, fleet):
        from repro.overload.governor import ServiceMode

        assert fleet.mode is ServiceMode.FULL

    def test_shed_mode_drops_every_pending_frame(self):
        from repro.overload.governor import OverloadPolicy, ServiceMode

        fleet = Fleet(ServeConfig(
            max_batch=8, max_latency_ms=None, queue_capacity=8,
            overload=OverloadPolicy(fastpath_at=0.001, fallback_at=0.002,
                                    shed_at=0.003, alpha=1.0, hold_ticks=1,
                                    jitter=0.0),
        ), observer_factory=Observer)
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        for i in range(4):
            fleet.submit("room-a", float(i), _row(rng))
        assert fleet.tick() == []
        assert fleet.mode is ServiceMode.SHED
        assert fleet.counters("room-a")["overload_shed"] == 4
        assert fleet.ledger("room-a")["pending"] == 0

    def test_fallback_only_quota_leaves_rest_ringed(self):
        from repro.overload.governor import OverloadPolicy, ServiceMode

        fleet = Fleet(ServeConfig(
            max_batch=8, max_latency_ms=None, queue_capacity=8,
            overload=OverloadPolicy(fastpath_at=0.001, fallback_at=0.002,
                                    shed_at=10.0, alpha=1.0, hold_ticks=1,
                                    jitter=0.0, degraded_quota=1),
        ), observer_factory=Observer)
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        for i in range(4):
            fleet.submit("room-a", float(i), _row(rng))
        served = fleet.tick()
        assert fleet.mode is ServiceMode.FALLBACK_ONLY
        # The degraded quota serves exactly one frame; the rest stay
        # ringed for later ticks rather than being dropped.
        assert len(served) == 1
        assert fleet.ledger("room-a")["pending"] == 3

    def test_flush_loops_until_rings_are_empty(self):
        from repro.overload.governor import OverloadPolicy

        fleet = Fleet(ServeConfig(
            max_batch=8, max_latency_ms=None, queue_capacity=8,
            overload=OverloadPolicy(fastpath_at=0.001, fallback_at=0.002,
                                    shed_at=10.0, alpha=1.0, hold_ticks=1,
                                    jitter=0.0, degraded_quota=1),
        ), observer_factory=Observer)
        fleet.attach("room-a", _plan())
        rng = np.random.default_rng(0)
        for i in range(5):
            fleet.submit("room-a", float(i), _row(rng))
        # Shutdown must close the ledger even though each degraded tick
        # only drains one frame per tenant.
        served = fleet.flush()
        ledger = fleet.ledger("room-a")
        assert ledger["pending"] == 0
        assert len(served) + ledger["shed"] + ledger["deadline_expired"] == 5

    def test_labeled_overflow_rollup(self):
        fleet = Fleet(ServeConfig(max_batch=2, queue_capacity=2,
                                  max_latency_ms=None))
        fleet.attach("room-a", _plan())
        fleet.attach("room-b", _plan())
        rng = np.random.default_rng(0)
        for i in range(4):
            fleet.submit("room-a", float(i), _row(rng))
        fleet.submit("room-b", 0.0, _row(rng))
        metrics = fleet.metrics
        assert metrics.counter("fleet_frames_overflow_total{tenant=room-a}").value == 2
        text = render_prometheus(metrics)
        assert 'repro_fleet_frames_overflow_total{tenant="room-a"} 2.0' in text
