"""Tests for the plan registry and the fusion-eligibility signature."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath import InferencePlan
from repro.fleet import PlanRegistry, PlanSignature
from repro.nn.modules import Linear, ReLU, Sequential


def _plan(seed=0, n_in=8, hidden=6, n_out=1):
    rng = np.random.default_rng(seed)
    model = Sequential(
        Linear(n_in, hidden, rng=rng), ReLU(), Linear(hidden, n_out, rng=rng)
    )
    return InferencePlan.from_model(model)


class TestPlanSignature:
    def test_same_plan_same_signature(self):
        plan = _plan(seed=1)
        assert PlanSignature.of(plan) == PlanSignature.of(plan)

    def test_identical_weights_share_signature(self):
        # Two plans frozen from the same trained model must fuse.
        model_rng = np.random.default_rng(3)
        model = Sequential(
            Linear(8, 6, rng=model_rng), ReLU(), Linear(6, 1, rng=model_rng)
        )
        a = InferencePlan.from_model(model)
        b = InferencePlan.from_model(model)
        assert PlanSignature.of(a) == PlanSignature.of(b)

    def test_distinct_weights_distinct_signature(self):
        sig_a = PlanSignature.of(_plan(seed=1))
        sig_b = PlanSignature.of(_plan(seed=2))
        assert sig_a != sig_b
        # Same geometry, different bytes: only the digest differs.
        assert sig_a.steps == sig_b.steps
        assert sig_a.weights_digest != sig_b.weights_digest

    def test_distinct_geometry_distinct_steps(self):
        sig_a = PlanSignature.of(_plan(seed=1, hidden=6))
        sig_b = PlanSignature.of(_plan(seed=1, hidden=7))
        assert sig_a.steps != sig_b.steps

    def test_arch_string(self):
        sig = PlanSignature.of(_plan(n_in=8, hidden=6))
        assert sig.arch == "8->6->1"
        assert str(sig).startswith("8->6->1#")

    def test_hashable_dict_key(self):
        plan = _plan(seed=5)
        cohorts = {PlanSignature.of(plan): ["room-a"]}
        assert cohorts[PlanSignature.of(plan)] == ["room-a"]


class TestPlanRegistry:
    def test_register_and_get(self):
        registry = PlanRegistry()
        plan = _plan()
        signature = registry.register("room-a", plan)
        assert registry.get("room-a") is plan
        assert registry.signature("room-a") == signature
        assert "room-a" in registry
        assert len(registry) == 1
        assert registry.tenants == ("room-a",)

    def test_rejects_empty_tenant_id(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry().register("", _plan())

    def test_rejects_non_plan(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry().register("room-a", object())

    def test_rejects_duplicate_registration(self):
        registry = PlanRegistry()
        registry.register("room-a", _plan())
        with pytest.raises(ConfigurationError):
            registry.register("room-a", _plan(seed=9))

    def test_rejects_multi_output_plan(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry().register("room-a", _plan(n_out=2))

    def test_unknown_tenant_raises(self):
        registry = PlanRegistry()
        with pytest.raises(ConfigurationError):
            registry.get("room-zz")
        with pytest.raises(ConfigurationError):
            registry.signature("room-zz")

    def test_sharding_is_stable_and_in_range(self):
        a = PlanRegistry(n_shards=16)
        b = PlanRegistry(n_shards=16)
        for i in range(50):
            tenant = f"room-{i}"
            assert a.shard_of(tenant) == b.shard_of(tenant)
            assert 0 <= a.shard_of(tenant) < 16

    def test_shards_spread_tenants(self):
        registry = PlanRegistry(n_shards=8)
        shards = {registry.shard_of(f"room-{i}") for i in range(100)}
        assert len(shards) > 1

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry(n_shards=0)

    def test_cohorts_group_by_signature(self):
        registry = PlanRegistry()
        shared = _plan(seed=1)
        registry.register("room-a", shared)
        registry.register("room-b", shared)
        registry.register("room-c", _plan(seed=2))
        cohorts = registry.cohorts()
        assert len(cohorts) == 2
        assert cohorts[registry.signature("room-a")] == ("room-a", "room-b")
        assert cohorts[registry.signature("room-c")] == ("room-c",)
