"""Tests for the plan registry and the fusion-eligibility signature."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath import InferencePlan
from repro.fleet import PlanRegistry, PlanSignature
from repro.nn.modules import Linear, ReLU, Sequential


def _plan(seed=0, n_in=8, hidden=6, n_out=1):
    rng = np.random.default_rng(seed)
    model = Sequential(
        Linear(n_in, hidden, rng=rng), ReLU(), Linear(hidden, n_out, rng=rng)
    )
    return InferencePlan.from_model(model)


class TestPlanSignature:
    def test_same_plan_same_signature(self):
        plan = _plan(seed=1)
        assert PlanSignature.of(plan) == PlanSignature.of(plan)

    def test_identical_weights_share_signature(self):
        # Two plans frozen from the same trained model must fuse.
        model_rng = np.random.default_rng(3)
        model = Sequential(
            Linear(8, 6, rng=model_rng), ReLU(), Linear(6, 1, rng=model_rng)
        )
        a = InferencePlan.from_model(model)
        b = InferencePlan.from_model(model)
        assert PlanSignature.of(a) == PlanSignature.of(b)

    def test_distinct_weights_distinct_signature(self):
        sig_a = PlanSignature.of(_plan(seed=1))
        sig_b = PlanSignature.of(_plan(seed=2))
        assert sig_a != sig_b
        # Same geometry, different bytes: only the digest differs.
        assert sig_a.steps == sig_b.steps
        assert sig_a.weights_digest != sig_b.weights_digest

    def test_distinct_geometry_distinct_steps(self):
        sig_a = PlanSignature.of(_plan(seed=1, hidden=6))
        sig_b = PlanSignature.of(_plan(seed=1, hidden=7))
        assert sig_a.steps != sig_b.steps

    def test_arch_string(self):
        sig = PlanSignature.of(_plan(n_in=8, hidden=6))
        assert sig.arch == "8->6->1"
        assert str(sig).startswith("8->6->1#")

    def test_hashable_dict_key(self):
        plan = _plan(seed=5)
        cohorts = {PlanSignature.of(plan): ["room-a"]}
        assert cohorts[PlanSignature.of(plan)] == ["room-a"]


class TestPlanRegistry:
    def test_register_and_get(self):
        registry = PlanRegistry()
        plan = _plan()
        signature = registry.register("room-a", plan)
        assert registry.get("room-a") is plan
        assert registry.signature("room-a") == signature
        assert "room-a" in registry
        assert len(registry) == 1
        assert registry.tenants == ("room-a",)

    def test_rejects_empty_tenant_id(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry().register("", _plan())

    def test_rejects_non_plan(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry().register("room-a", object())

    def test_rejects_duplicate_registration(self):
        registry = PlanRegistry()
        registry.register("room-a", _plan())
        with pytest.raises(ConfigurationError):
            registry.register("room-a", _plan(seed=9))

    def test_rejects_multi_output_plan(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry().register("room-a", _plan(n_out=2))

    def test_unknown_tenant_raises(self):
        registry = PlanRegistry()
        with pytest.raises(ConfigurationError):
            registry.get("room-zz")
        with pytest.raises(ConfigurationError):
            registry.signature("room-zz")

    def test_sharding_is_stable_and_in_range(self):
        a = PlanRegistry(n_shards=16)
        b = PlanRegistry(n_shards=16)
        for i in range(50):
            tenant = f"room-{i}"
            assert a.shard_of(tenant) == b.shard_of(tenant)
            assert 0 <= a.shard_of(tenant) < 16

    def test_shards_spread_tenants(self):
        registry = PlanRegistry(n_shards=8)
        shards = {registry.shard_of(f"room-{i}") for i in range(100)}
        assert len(shards) > 1

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry(n_shards=0)

    def test_cohorts_group_by_signature(self):
        registry = PlanRegistry()
        shared = _plan(seed=1)
        registry.register("room-a", shared)
        registry.register("room-b", shared)
        registry.register("room-c", _plan(seed=2))
        cohorts = registry.cohorts()
        assert len(cohorts) == 2
        assert cohorts[registry.signature("room-a")] == ("room-a", "room-b")
        assert cohorts[registry.signature("room-c")] == ("room-c",)


def _ids_on_shard(registry, shard, count):
    """Deterministic tenant ids whose hash home is the given shard."""
    ids = []
    i = 0
    while len(ids) < count:
        tenant_id = f"hot-{i:04d}"
        if registry.home_shard(tenant_id) == shard:
            ids.append(tenant_id)
        i += 1
    return ids


class TestShardRebalance:
    def test_skew_is_zero_when_empty_and_one_when_balanced(self):
        registry = PlanRegistry(n_shards=4)
        assert registry.skew() == 0.0
        plan = _plan()
        for shard in range(4):
            registry.register(_ids_on_shard(registry, shard, 1)[0], plan)
        assert registry.skew() == pytest.approx(1.0)
        assert registry.shard_counts() == (1, 1, 1, 1)

    def test_rebalance_rejects_skew_below_one(self):
        with pytest.raises(ConfigurationError):
            PlanRegistry(n_shards=2).rebalance(0.5)

    def test_rebalance_moves_off_overloaded_shard(self):
        registry = PlanRegistry(n_shards=4)
        plan = _plan()
        hot = _ids_on_shard(registry, 0, 6)
        for tenant_id in hot:
            registry.register(tenant_id, plan)
        assert registry.shard_counts() == (6, 0, 0, 0)
        migrations = registry.rebalance(1.0)
        # ceiling = ceil(6/4 * 1.0) = 2: four tenants had to move.
        assert len(migrations) == 4
        assert max(registry.shard_counts()) <= 2
        # Deterministic victim order: lexicographically smallest first.
        assert [m[0] for m in migrations] == sorted(hot)[:4]
        for tenant_id, src, dst in migrations:
            assert src == 0 and dst != 0
            assert registry.shard_of(tenant_id) == dst
            # The moved binding still resolves.
            assert registry.get(tenant_id) is plan

    def test_rebalance_is_stable_on_repeat(self):
        registry = PlanRegistry(n_shards=4)
        plan = _plan()
        for tenant_id in _ids_on_shard(registry, 1, 8):
            registry.register(tenant_id, plan)
        first = registry.rebalance(1.0)
        assert first
        assert registry.rebalance(1.0) == []

    def test_unaffected_tenants_never_move(self):
        registry = PlanRegistry(n_shards=4)
        plan = _plan()
        settled = _ids_on_shard(registry, 2, 1)[0]
        registry.register(settled, plan)
        for tenant_id in _ids_on_shard(registry, 3, 7):
            registry.register(tenant_id, plan)
        migrations = registry.rebalance(1.0)
        assert all(tenant_id != settled for tenant_id, _, _ in migrations)
        assert registry.shard_of(settled) == registry.home_shard(settled) == 2

    def test_remove_clears_assignment_override(self):
        registry = PlanRegistry(n_shards=4)
        plan = _plan()
        hot = _ids_on_shard(registry, 0, 6)
        for tenant_id in hot:
            registry.register(tenant_id, plan)
        moved = registry.rebalance(1.0)[0][0]
        assert registry.shard_of(moved) != registry.home_shard(moved)
        registry.remove(moved)
        # Re-registering lands back on the hash home shard.
        registry.register(moved, plan)
        assert registry.shard_of(moved) == registry.home_shard(moved)

    def test_replace_plan_rekeys_signature_on_migrated_tenant(self):
        """Shard lookup after replace_plan must work through an override,
        and a different-signature replacement re-keys the fusion cohort."""
        registry = PlanRegistry(n_shards=4)
        shared = _plan(seed=1)
        hot = _ids_on_shard(registry, 0, 6)
        for tenant_id in hot:
            registry.register(tenant_id, shared)
        moved = registry.rebalance(1.0)[0][0]
        old_signature = registry.signature(moved)
        fresh = _plan(seed=2)
        new_signature = registry.replace_plan(moved, fresh)
        assert new_signature != old_signature
        assert registry.get(moved) is fresh
        assert registry.shard_of(moved) != registry.home_shard(moved)
        # The old cohort still exists (other tenants carry it) but the
        # swapped tenant now fuses only with its new signature.
        assert registry.has_signature(old_signature)
        cohorts = registry.cohorts()
        assert cohorts[new_signature] == (moved,)
        assert moved not in cohorts[old_signature]
        # Swapping the rest away retires the old signature entirely.
        for tenant_id in hot:
            if tenant_id != moved:
                registry.replace_plan(tenant_id, fresh)
        assert not registry.has_signature(old_signature)

    def test_replace_plan_rejects_width_mismatch(self):
        registry = PlanRegistry()
        registry.register("room-a", _plan(n_in=8))
        with pytest.raises(ConfigurationError):
            registry.replace_plan("room-a", _plan(n_in=10))
        # The original binding survives the rejected swap.
        assert registry.signature("room-a") == PlanSignature.of(_plan(n_in=8))
