"""Tests for the declarative guard policy."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.guard.drift import ReferenceStats
from repro.guard.policy import GuardPolicy
from repro.guard.validation import EnvPlausibilityCheck
from repro.serve.metrics import MetricsRegistry


@pytest.fixture
def reference() -> ReferenceStats:
    rng = np.random.default_rng(0)
    return ReferenceStats.fit(rng.normal(0.0, 1.0, size=(200, 6)))


class TestGuardPolicy:
    def test_rejects_feature_width_mismatch(self, reference):
        with pytest.raises(ConfigurationError, match="8 features"):
            GuardPolicy(reference=reference, n_features=8)

    def test_build_manufactures_the_full_stack(self, reference):
        policy = GuardPolicy(
            reference=reference, n_features=6, env_slice=slice(4, 6)
        )
        validator, repairer, supervisor = policy.build(MetricsRegistry())
        names = [c.name for c in validator.checks]
        assert names == ["width", "finite", "amplitude", "monotonic", "env"]
        assert repairer.max_fill == policy.max_fill
        assert supervisor.breaker is not None
        assert supervisor.fallback_breaker is not None
        assert supervisor.sentinel is not None

    def test_env_check_skipped_for_csi_only_layouts(self, reference):
        policy = GuardPolicy(reference=reference, n_features=6)
        validator = policy.build_validator()
        assert not any(
            isinstance(c, EnvPlausibilityCheck) for c in validator.checks
        )

    def test_guard_fallback_off_drops_the_second_breaker(self, reference):
        policy = GuardPolicy(reference=reference, n_features=6, guard_fallback=False)
        supervisor = policy.build_supervisor()
        assert supervisor.fallback_breaker is None

    def test_breakers_get_distinct_jitter_seeds(self, reference):
        policy = GuardPolicy(reference=reference, n_features=6, seed=3)
        supervisor = policy.build_supervisor()
        primary, fallback = supervisor.breaker, supervisor.fallback_breaker
        for t in range(policy.failure_threshold):
            primary.record_failure(0.0)
            fallback.record_failure(0.0)
        assert (
            primary.snapshot()["open_until_s"] != fallback.snapshot()["open_until_s"]
        )

    def test_build_returns_fresh_instances_each_call(self, reference):
        # Per-link state must not leak between replays: two builds, two
        # distinct stateful objects all the way down.
        policy = GuardPolicy(reference=reference, n_features=6)
        first = policy.build()
        second = policy.build()
        for a, b in zip(first, second):
            assert a is not b
        first[1].observe("a", 0.0, np.zeros(6))
        assert second[1].interval_s("a") is None  # no shared cadence state

    def test_validator_envelope_comes_from_the_reference(self, reference):
        policy = GuardPolicy(reference=reference, n_features=6, amplitude_margin=0.0)
        validator = policy.build_validator()
        inside = np.clip(np.zeros(6), reference.minimum, reference.maximum)
        assert validator.validate("a", 0.0, inside) is None
        outside = reference.maximum + 1.0
        assert validator.validate("a", 1.0, outside).check == "amplitude"
