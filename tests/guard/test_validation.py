"""Tests for the frame-validation chain and the quarantine buffer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.guard.validation import (
    AmplitudeRangeCheck,
    EnvPlausibilityCheck,
    FiniteCheck,
    FrameValidator,
    QuarantineBuffer,
    QuarantinedFrame,
    SubcarrierCountCheck,
    TimestampMonotonicityCheck,
    ValidationFailure,
)


def _row(width: int = 4, value: float = 1.0) -> np.ndarray:
    return np.full(width, value)


class TestChecks:
    def test_finite_names_the_first_bad_column(self):
        row = np.array([1.0, np.nan, np.inf])
        failure = FiniteCheck().check("a", 0.0, row)
        assert failure.check == "finite"
        assert failure.column == 1

    def test_finite_passes_clean_rows(self):
        assert FiniteCheck().check("a", 0.0, _row()) is None

    def test_width_rejects_wrong_count_and_non_1d(self):
        check = SubcarrierCountCheck(4)
        assert check.check("a", 0.0, _row(4)) is None
        assert "3 features" in check.check("a", 0.0, _row(3)).message
        assert "1-D" in check.check("a", 0.0, np.ones((2, 4))).message

    def test_width_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            SubcarrierCountCheck(0)

    def test_amplitude_envelope_is_per_column(self):
        check = AmplitudeRangeCheck([0.0, 10.0], [1.0, 20.0])
        assert check.check("a", 0.0, np.array([0.5, 15.0])) is None
        failure = check.check("a", 0.0, np.array([0.5, 25.0]))
        assert failure.check == "amplitude"
        assert failure.column == 1

    def test_amplitude_rejects_inverted_envelope(self):
        with pytest.raises(ConfigurationError):
            AmplitudeRangeCheck([1.0], [0.0])

    def test_monotonicity_is_per_link(self):
        check = TimestampMonotonicityCheck(tolerance_s=1.0)
        assert check.check("a", 100.0, _row()) is None
        assert check.check("b", 5.0, _row()) is None  # other link, own clock
        assert check.check("a", 99.5, _row()) is None  # within tolerance
        failure = check.check("a", 50.0, _row())
        assert failure.check == "monotonic"
        assert "behind" in failure.message

    def test_monotonicity_anchor_never_moves_backwards(self):
        check = TimestampMonotonicityCheck(tolerance_s=1.0)
        check.check("a", 100.0, _row())
        check.check("a", 99.5, _row())  # tolerated, but must not lower anchor
        assert check.check("a", 98.0, _row()) is not None

    def test_monotonicity_reset_forgets_links(self):
        check = TimestampMonotonicityCheck()
        check.check("a", 100.0, _row())
        check.reset()
        assert check.check("a", 0.0, _row()) is None

    def test_env_plausibility_bounds(self):
        check = EnvPlausibilityCheck(env_slice=slice(2, 4))
        good = np.array([1.0, 1.0, 22.0, 50.0])
        assert check.check("a", 0.0, good) is None
        cold = np.array([1.0, 1.0, -40.0, 50.0])
        assert check.check("a", 0.0, cold).column == 2
        soaked = np.array([1.0, 1.0, 22.0, 180.0])
        assert check.check("a", 0.0, soaked).column == 3

    def test_env_plausibility_rejects_rows_without_env_columns(self):
        check = EnvPlausibilityCheck(env_slice=slice(64, 66))
        assert "does not carry T/H" in check.check("a", 0.0, _row(64)).message


class TestFrameValidator:
    def _validator(self) -> FrameValidator:
        return FrameValidator(
            [
                SubcarrierCountCheck(4),
                FiniteCheck(),
                AmplitudeRangeCheck(np.zeros(4), np.full(4, 10.0)),
            ]
        )

    def test_first_failure_wins(self):
        # A NaN row that is also out of envelope: finite fires first
        # because it sits earlier in the chain.
        failure = self._validator().validate("a", 0.0, [np.nan, 50.0, 1.0, 1.0])
        assert failure.check == "finite"

    def test_clean_row_passes_every_check(self):
        assert self._validator().validate("a", 0.0, _row(4)) is None

    def test_uncoercible_rows_fail_soft(self):
        failure = self._validator().validate("a", 0.0, ["not", "numbers", "!", "?"])
        assert failure.check == "coerce"

    def test_check_raises_typed_validation_error(self):
        with pytest.raises(ValidationError, match="'amplitude'") as excinfo:
            self._validator().check("a", 0.0, [1.0, 50.0, 1.0, 1.0])
        assert excinfo.value.column == 1

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameValidator([])

    def test_duplicate_check_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FrameValidator([FiniteCheck(), FiniteCheck()])

    def test_reset_propagates_to_stateful_checks(self):
        validator = FrameValidator([TimestampMonotonicityCheck()])
        validator.check("a", 100.0, _row())
        validator.reset()
        assert validator.validate("a", 0.0, _row()) is None


class TestQuarantineBuffer:
    def _frame(self, check: str = "finite", t_s: float = 0.0) -> QuarantinedFrame:
        return QuarantinedFrame("a", t_s, _row(), ValidationFailure(check, "bad"))

    def test_lifetime_counts_survive_eviction(self):
        buffer = QuarantineBuffer(capacity=2)
        for i in range(5):
            buffer.add(self._frame(t_s=float(i)))
        assert len(buffer) == 2  # only the newest two retained...
        assert buffer.total == 5  # ...but the ledger never forgets
        assert buffer.counts_by_check() == {"finite": 5}

    def test_counts_keyed_by_check(self):
        buffer = QuarantineBuffer()
        buffer.add(self._frame("finite"))
        buffer.add(self._frame("amplitude"))
        buffer.add(self._frame("amplitude"))
        assert buffer.counts_by_check() == {"finite": 1, "amplitude": 2}

    def test_drain_empties_retained_but_not_totals(self):
        buffer = QuarantineBuffer()
        buffer.add(self._frame(t_s=1.0))
        buffer.add(self._frame(t_s=2.0))
        drained = buffer.drain()
        assert [f.t_s for f in drained] == [1.0, 2.0]  # oldest first
        assert len(buffer) == 0
        assert buffer.total == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            QuarantineBuffer(capacity=0)
