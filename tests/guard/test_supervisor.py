"""Tests for the recovery supervisor's routing, feedback, and health rules."""

import numpy as np
import pytest

from repro.guard.breaker import BreakerState, CircuitBreaker
from repro.guard.drift import DriftSentinel, DriftState, ReferenceStats
from repro.guard.supervisor import RecoverySupervisor, ServingMode
from repro.serve.metrics import MetricsRegistry
from repro.serve.robustness import LinkHealth


def _breaker(seed: int = 0) -> CircuitBreaker:
    return CircuitBreaker(
        failure_threshold=2, cooldown_s=10.0, jitter=0.0, probe_batches=1, seed=seed
    )


def _reference() -> ReferenceStats:
    rng = np.random.default_rng(0)
    return ReferenceStats.fit(rng.normal(0.0, 1.0, size=(500, 2)))


class TestRouting:
    def test_default_supervisor_is_a_passthrough(self):
        supervisor = RecoverySupervisor()
        assert supervisor.decide(0.0) is ServingMode.PRIMARY
        supervisor.record_primary_failure(0.0)  # no breaker: a no-op
        assert supervisor.decide(1.0) is ServingMode.PRIMARY
        assert supervisor.resolve_health(LinkHealth.DEGRADED, "primary") == (
            LinkHealth.HEALTHY,
            True,
        )

    def test_open_primary_breaker_short_circuits_to_fallback(self):
        registry = MetricsRegistry()
        supervisor = RecoverySupervisor(breaker=_breaker(), registry=registry)
        supervisor.record_primary_failure(0.0)
        supervisor.record_primary_failure(1.0)
        assert supervisor.breaker.state is BreakerState.OPEN
        assert supervisor.decide(2.0) is ServingMode.FALLBACK
        assert registry.counter("guard_short_circuits").value == 1
        assert registry.counter("primary_breaker_opened_total").value == 1

    def test_both_breakers_open_means_reject(self):
        registry = MetricsRegistry()
        supervisor = RecoverySupervisor(
            breaker=_breaker(), fallback_breaker=_breaker(1), registry=registry
        )
        for t in (0.0, 1.0):
            supervisor.record_primary_failure(t)
            supervisor.record_fallback_failure(t)
        assert supervisor.decide(2.0) is ServingMode.REJECT
        assert registry.counter("guard_rejected_batches").value == 1

    def test_primary_recovers_through_probe(self):
        registry = MetricsRegistry()
        supervisor = RecoverySupervisor(breaker=_breaker(), registry=registry)
        supervisor.record_primary_failure(0.0)
        supervisor.record_primary_failure(1.0)  # trips at t=1, open 10 s
        assert supervisor.decide(5.0) is ServingMode.FALLBACK
        assert supervisor.decide(11.5) is ServingMode.PRIMARY  # the probe
        supervisor.record_primary_success(11.5)
        assert supervisor.breaker.state is BreakerState.CLOSED
        assert registry.counter("primary_breaker_closed_total").value == 1
        assert registry.counter("primary_breaker_probes_total").value == 1

    def test_drift_trip_reroutes_only_under_fallback_action(self):
        tripped = DriftSentinel(_reference(), alpha=0.9)
        tripped.observe(np.full((20, 2), 99.0))
        assert tripped.state is DriftState.TRIP

        warn_only = RecoverySupervisor(sentinel=tripped, drift_action="warn")
        assert warn_only.decide(0.0) is ServingMode.PRIMARY

        rerouting = RecoverySupervisor(sentinel=tripped, drift_action="fallback")
        assert rerouting.decide(0.0) is ServingMode.FALLBACK

    def test_rejects_unknown_drift_action(self):
        with pytest.raises(ValueError, match="drift_action"):
            RecoverySupervisor(drift_action="panic")


class TestDriftReporting:
    def test_observe_publishes_scores_and_counts_events(self):
        registry = MetricsRegistry()
        supervisor = RecoverySupervisor(
            sentinel=DriftSentinel(_reference(), alpha=0.9), registry=registry
        )
        supervisor.observe(np.full((20, 2), 99.0), now_s=3.0)
        assert registry.counter("drift_trip_total").value == 1
        assert registry.gauge("drift_state").value == 2
        assert registry.gauge("drift_z_score").value > 12.0

    def test_observe_without_sentinel_is_a_no_op(self):
        supervisor = RecoverySupervisor(registry=MetricsRegistry())
        supervisor.observe(np.ones((4, 2)), now_s=0.0)  # must not raise


class TestHealthAndBinding:
    def test_fallback_batches_keep_links_degraded(self):
        supervisor = RecoverySupervisor()
        assert supervisor.resolve_health(LinkHealth.HEALTHY, "fallback") == (
            LinkHealth.DEGRADED,
            False,
        )
        assert supervisor.resolve_health(LinkHealth.DEGRADED, "fallback") == (
            LinkHealth.DEGRADED,
            False,
        )

    def test_primary_batches_heal_and_report_the_edge_once(self):
        supervisor = RecoverySupervisor()
        health, recovered = supervisor.resolve_health(LinkHealth.DEGRADED, "primary")
        assert (health, recovered) == (LinkHealth.HEALTHY, True)
        health, recovered = supervisor.resolve_health(health, "primary")
        assert (health, recovered) == (LinkHealth.HEALTHY, False)

    def test_bind_registry_does_not_clobber_an_explicit_one(self):
        mine = MetricsRegistry()
        supervisor = RecoverySupervisor(breaker=_breaker(), registry=mine)
        supervisor.bind_registry(MetricsRegistry())
        supervisor.record_primary_failure(0.0)
        supervisor.record_primary_failure(1.0)
        assert mine.counter("primary_breaker_opened_total").value == 1

    def test_bind_registry_adopts_when_unset(self):
        adopted = MetricsRegistry()
        supervisor = RecoverySupervisor(breaker=_breaker())
        supervisor.bind_registry(adopted)
        supervisor.record_primary_failure(0.0)
        supervisor.record_primary_failure(1.0)
        assert adopted.counter("primary_breaker_opened_total").value == 1

    def test_snapshot_is_json_friendly(self):
        supervisor = RecoverySupervisor(breaker=_breaker())
        snap = supervisor.snapshot()
        assert snap["primary_breaker"]["state"] == "closed"
        assert snap["fallback_breaker"] is None
        assert snap["drift_state"] is None
        assert snap["drift_action"] == "warn"


class TestObserverEvents:
    def test_breaker_transitions_land_in_the_event_log(self):
        from repro.obs import Observer

        obs = Observer(label="t")
        supervisor = RecoverySupervisor(breaker=_breaker(), observer=obs)
        supervisor.record_primary_failure(0.0)
        supervisor.record_primary_failure(1.0)   # trips OPEN
        assert obs.events.count("breaker.opened") == 1
        opened = obs.events.tail(1)[0]
        assert opened.data == {"breaker": "primary", "trip_count": 1}
        assert opened.t_s == 1.0
        # Cooldown elapses; decide() lets a probe through (HALF_OPEN) and
        # its success closes the breaker.
        assert supervisor.decide(12.0) is ServingMode.PRIMARY
        supervisor.record_primary_success(12.0)
        assert obs.events.count("breaker.probe") == 1
        assert obs.events.count("breaker.closed") == 1
        closed = next(e for e in obs.events if e.kind == "breaker.closed")
        assert closed.data == {"breaker": "primary", "recovery_count": 1}

    def test_drift_events_carry_scores(self):
        from repro.obs import Observer

        obs = Observer(label="t")
        sentinel = DriftSentinel(
            _reference(), warn_z=1.0, trip_z=2.0, warn_psi=0.5, trip_psi=1.0,
            window=32, check_every=16,
        )
        supervisor = RecoverySupervisor(sentinel=sentinel, observer=obs)
        rng = np.random.default_rng(1)
        t = 0.0
        # One shifted row per observe() so the EWMA ramps through WARN
        # before TRIP instead of jumping both thresholds in one batch.
        while obs.events.count("drift.trip") == 0 and t < 200.0:
            supervisor.observe(rng.normal(25.0, 1.0, size=(1, 2)), t)
            t += 1.0
        assert obs.events.count("drift.warn") >= 1
        assert obs.events.count("drift.trip") == 1
        trip = next(e for e in obs.events if e.kind == "drift.trip")
        assert set(trip.data) == {"z", "psi", "previous"}
        assert trip.data["previous"] == "warn"
        assert trip.data["z"] >= 2.0

    def test_bind_observer_does_not_clobber_an_explicit_one(self):
        from repro.obs import Observer

        mine = Observer(label="mine")
        supervisor = RecoverySupervisor(breaker=_breaker(), observer=mine)
        supervisor.bind_observer(Observer(label="other"))
        assert supervisor.observer is mine

    def test_no_observer_is_safe(self):
        supervisor = RecoverySupervisor(breaker=_breaker())
        supervisor.record_primary_failure(0.0)
        supervisor.record_primary_failure(1.0)  # must not raise
