"""Property-based fuzzing of the frame-check chain and quarantine ledger.

Hand-rolled seeded-RNG generators (no hypothesis dependency): thousands
of adversarial rows — NaN/Inf spikes, ragged widths, wrong dimensions,
out-of-order timestamps, non-numeric junk — driven through the full
:class:`FrameValidator` chain.  The properties under test:

* ``validate`` never raises, whatever the row (first failure wins or the
  row passes);
* the raising form ``check`` only ever raises ``ValidationError``;
* the quarantine ledger reconciles exactly under ring eviction:
  lifetime ``total`` == sum of per-check counts == refusals fed in,
  while the retained window never exceeds capacity.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.guard.validation import (
    AmplitudeRangeCheck,
    EnvPlausibilityCheck,
    FiniteCheck,
    FrameValidator,
    QuarantineBuffer,
    QuarantinedFrame,
    SubcarrierCountCheck,
    TimestampMonotonicityCheck,
)

N_FEATURES = 16


def _full_chain() -> FrameValidator:
    # Amplitude envelope: tight over the CSI columns, wide over the T/H
    # tail so implausible-but-in-range env rows reach the env check.
    low = np.full(N_FEATURES, -10.0)
    high = np.full(N_FEATURES, 10.0)
    low[-2:], high[-2:] = -500.0, 500.0
    return FrameValidator(
        [
            SubcarrierCountCheck(N_FEATURES),
            FiniteCheck(),
            AmplitudeRangeCheck(low=low, high=high),
            TimestampMonotonicityCheck(tolerance_s=2.0),
            EnvPlausibilityCheck(env_slice=slice(N_FEATURES - 2, N_FEATURES)),
        ]
    )


def _adversarial_row(rng: np.random.Generator):
    """One random row drawn from a zoo of malformed and healthy shapes."""
    kind = rng.integers(0, 8)
    if kind == 0:  # healthy
        row = rng.normal(scale=2.0, size=N_FEATURES)
        row[-2:] = (22.0, 45.0)
        return row
    if kind == 1:  # NaN/Inf spikes
        row = rng.normal(size=N_FEATURES)
        idx = rng.integers(0, N_FEATURES, size=rng.integers(1, 4))
        row[idx] = rng.choice([np.nan, np.inf, -np.inf])
        return row
    if kind == 2:  # ragged width
        return rng.normal(size=int(rng.integers(0, 3 * N_FEATURES)))
    if kind == 3:  # wrong dimensionality
        return rng.normal(size=(int(rng.integers(1, 4)), N_FEATURES))
    if kind == 4:  # amplitude blow-up
        row = rng.normal(size=N_FEATURES)
        row[rng.integers(0, N_FEATURES)] = float(rng.choice([-1.0, 1.0])) * 10.0 ** rng.integers(2, 30)
        return row
    if kind == 5:  # implausible environment columns
        row = rng.normal(size=N_FEATURES)
        row[-2:] = (float(rng.uniform(-200, 200)), float(rng.uniform(-50, 300)))
        return row
    if kind == 6:  # non-numeric junk
        return rng.choice(
            np.array(["junk", None, object()], dtype=object),
            size=rng.integers(1, N_FEATURES + 1),
        )
    return np.array([])  # empty


class TestValidateNeverRaises:
    def test_fuzzed_rows_never_escape_the_chain(self):
        rng = np.random.default_rng(20260805)
        validator = _full_chain()
        t_s = 0.0
        verdicts = {"pass": 0, "fail": 0}
        for _ in range(3000):
            # Timestamps mostly advance, sometimes jump far backwards.
            t_s += float(rng.exponential(1.0)) - (
                10.0 if rng.random() < 0.05 else 0.0
            )
            failure = validator.validate("link-fuzz", t_s, _adversarial_row(rng))
            if failure is None:
                verdicts["pass"] += 1
            else:
                verdicts["fail"] += 1
                assert isinstance(failure.check, str) and failure.check
                assert isinstance(failure.message, str) and failure.message
        # The zoo must actually exercise both verdicts.
        assert verdicts["pass"] > 0 and verdicts["fail"] > 0

    def test_every_check_in_the_chain_fires_at_least_once(self):
        rng = np.random.default_rng(7)
        validator = _full_chain()
        fired = set()
        t_s = 0.0
        for _ in range(5000):
            t_s += float(rng.exponential(1.0)) - (
                15.0 if rng.random() < 0.1 else 0.0
            )
            failure = validator.validate("link-a", t_s, _adversarial_row(rng))
            if failure is not None:
                fired.add(failure.check)
        assert {"coerce", "finite", "width", "amplitude", "monotonic", "env"} <= fired

    def test_raising_form_only_raises_validation_error(self):
        rng = np.random.default_rng(99)
        validator = _full_chain()
        for i in range(500):
            row = _adversarial_row(rng)
            try:
                out = validator.check("link-b", float(i), row)
            except ValidationError:
                continue
            assert isinstance(out, np.ndarray) and out.dtype == float

    def test_reset_clears_per_link_state(self):
        validator = _full_chain()
        good = np.zeros(N_FEATURES)
        good[-2:] = (20.0, 50.0)
        assert validator.validate("a", 100.0, good) is None
        assert validator.validate("a", 10.0, good).check == "monotonic"
        validator.reset()
        assert validator.validate("a", 10.0, good) is None


class TestQuarantineLedgerFuzz:
    @pytest.mark.parametrize("capacity", [1, 7, 64])
    def test_ledger_reconciles_under_eviction(self, capacity):
        rng = np.random.default_rng(capacity)
        validator = _full_chain()
        buffer = QuarantineBuffer(capacity=capacity)
        refused = 0
        t_s = 0.0
        for _ in range(2000):
            t_s += float(rng.exponential(1.0)) - (
                10.0 if rng.random() < 0.05 else 0.0
            )
            row = _adversarial_row(rng)
            failure = validator.validate("link-q", t_s, row)
            if failure is not None:
                refused += 1
                buffer.add(QuarantinedFrame("link-q", t_s, row, failure))
                assert len(buffer) <= capacity
        counts = buffer.counts_by_check()
        assert buffer.total == refused
        assert sum(counts.values()) == refused
        assert all(count > 0 for count in counts.values())
        # Draining empties the window but never the lifetime ledger.
        drained = buffer.drain()
        assert len(drained) == min(capacity, refused)
        assert len(buffer) == 0
        assert buffer.total == refused
        assert buffer.counts_by_check() == counts

    def test_retained_frames_are_the_newest(self):
        buffer = QuarantineBuffer(capacity=3)
        validator = _full_chain()
        for i in range(10):
            failure = validator.validate("l", float(i), np.full(N_FEATURES, np.nan))
            buffer.add(QuarantinedFrame("l", float(i), None, failure))
        assert [f.t_s for f in buffer.drain()] == [7.0, 8.0, 9.0]
