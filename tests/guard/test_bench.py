"""Tests for the guard-bench ablation harness."""

import numpy as np
import pytest

from repro.config import BehaviorConfig, CampaignConfig
from repro.data.recording import CollectionCampaign
from repro.exceptions import ConfigurationError
from repro.guard import GuardPolicy, ReferenceStats
from repro.guard.bench import run_guard_bench
from repro.faults.bench import default_scenario_suite


class ConstantEstimator:
    def __init__(self, p: float = 0.9) -> None:
        self.p = p

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(x).shape[0], self.p)


@pytest.fixture(scope="module")
def bench_dataset():
    config = CampaignConfig(
        duration_h=1.5,
        sample_rate_hz=0.2,
        seed=41,
        behavior=BehaviorConfig(mean_stay_h=0.5, mean_gap_h=0.5),
    )
    return CollectionCampaign(config).run()


def _policy(dataset, seed: int = 0) -> GuardPolicy:
    features = np.hstack([dataset.csi, dataset.environment])
    n_csi = dataset.n_subcarriers
    return GuardPolicy(
        reference=ReferenceStats.fit(features),
        n_features=n_csi + 2,
        env_slice=slice(n_csi, n_csi + 2),
        seed=seed,
    )


def _scenarios(dataset, names: set[str]):
    t = dataset.timestamps_s
    suite = default_scenario_suite(
        float(t[0]), float(t[-1]), n_csi=dataset.n_subcarriers, include_env=True
    )
    return [s for s in suite if s.name in names]


@pytest.fixture(scope="module")
def report(bench_dataset):
    return run_guard_bench(
        ConstantEstimator(),
        bench_dataset,
        _policy(bench_dataset),
        scenarios=_scenarios(
            bench_dataset, {"baseline", "link-outage", "sensor-dropout"}
        ),
        include_env=True,
        seed=0,
    )


class TestGuardBench:
    def test_every_scenario_is_compared(self, report):
        assert [c.name for c in report.comparisons] == [
            "baseline",
            "link-outage",
            "sensor-dropout",
        ]

    def test_frame_ledger_reconciles_exactly(self, report):
        assert report.unaccounted_total == 0
        for result in report.baseline.results + report.guarded.results:
            assert result.n_unanswered == 0

    def test_guard_is_harmless_on_a_clean_stream(self, report):
        baseline = report.comparison("baseline")
        assert baseline.accuracy_on == pytest.approx(baseline.accuracy_off)
        assert baseline.n_quarantined == 0
        assert baseline.n_drift_trip == 0

    def test_recovery_never_loses_coverage_on_outage_scenarios(self, report):
        # The issue's acceptance bar: guard on >= guard off for the
        # outage and sensor-dropout scenarios.
        for name in ("link-outage", "sensor-dropout"):
            comparison = report.comparison(name)
            assert comparison.coverage_on >= comparison.coverage_off

    def test_describe_reports_the_ledger_verdict(self, report):
        text = report.describe()
        assert "guard-bench" in text
        assert "zero unaccounted frames" in text
        assert "link-outage" in text

    def test_unknown_scenario_lookup_raises(self, report):
        with pytest.raises(ConfigurationError):
            report.comparison("no-such-scenario")

    def test_same_seed_runs_are_identical(self, bench_dataset, report):
        again = run_guard_bench(
            ConstantEstimator(),
            bench_dataset,
            _policy(bench_dataset),
            scenarios=_scenarios(
                bench_dataset, {"baseline", "link-outage", "sensor-dropout"}
            ),
            include_env=True,
            seed=0,
        )
        assert [c.row() for c in again.comparisons] == [
            c.row() for c in report.comparisons
        ]
