"""Tests for reference statistics, PSI, and the drift sentinel."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SerializationError
from repro.guard.drift import (
    DriftSentinel,
    DriftState,
    ReferenceStats,
    psi,
)
from repro.nn.serialize import atomic_savez, encode_meta


@pytest.fixture
def gaussian_reference() -> ReferenceStats:
    rng = np.random.default_rng(0)
    return ReferenceStats.fit(rng.normal(0.0, 1.0, size=(2000, 3)))


class TestReferenceStats:
    def test_fit_summarises_each_feature(self, gaussian_reference):
        ref = gaussian_reference
        assert ref.n_features == 3
        assert ref.n_rows == 2000
        np.testing.assert_allclose(ref.mean, np.zeros(3), atol=0.1)
        np.testing.assert_allclose(ref.std, np.ones(3), atol=0.1)
        # decile histogram: each bin holds ~10% of the fitting rows
        np.testing.assert_allclose(ref.bin_probs.sum(axis=1), 1.0)
        assert ref.bin_probs.min() > 0.05

    def test_fit_rejects_degenerate_input(self):
        with pytest.raises(ConfigurationError):
            ReferenceStats.fit(np.ones((1, 3)))
        with pytest.raises(ConfigurationError):
            ReferenceStats.fit(np.ones(10))
        with pytest.raises(ConfigurationError):
            ReferenceStats.fit(np.ones((10, 3)), n_bins=1)

    def test_constant_feature_gets_floored_std(self):
        x = np.column_stack([np.arange(10.0), np.full(10, 7.0)])
        ref = ReferenceStats.fit(x)
        assert ref.std[1] == pytest.approx(1e-8)

    def test_amplitude_envelope_scales_with_feature_range(self):
        x = np.array([[0.0, 100.0], [1.0, 300.0]])
        low, high = ReferenceStats.fit(x).amplitude_envelope(margin=2.0)
        np.testing.assert_allclose(low, [-2.0, -300.0])
        np.testing.assert_allclose(high, [3.0, 700.0])
        with pytest.raises(ConfigurationError):
            ReferenceStats.fit(x).amplitude_envelope(margin=-1.0)

    def test_save_load_round_trip(self, gaussian_reference, tmp_path):
        path = gaussian_reference.save(tmp_path / "stats.npz")
        loaded = ReferenceStats.load(path)
        np.testing.assert_array_equal(loaded.mean, gaussian_reference.mean)
        np.testing.assert_array_equal(loaded.bin_edges, gaussian_reference.bin_edges)
        np.testing.assert_array_equal(loaded.bin_probs, gaussian_reference.bin_probs)
        assert loaded.n_rows == gaussian_reference.n_rows

    def test_load_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, weights=np.ones(3))
        with pytest.raises(SerializationError, match="not a reference-stats"):
            ReferenceStats.load(path)

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "model.npz"
        atomic_savez(
            path, {"__meta__": encode_meta({"kind": "something-else", "version": 1})}
        )
        with pytest.raises(SerializationError, match="something-else"):
            ReferenceStats.load(path)

    def test_load_rejects_missing_arrays(self, gaussian_reference, tmp_path):
        import zipfile

        path = gaussian_reference.save(tmp_path / "stats.npz")
        clipped = tmp_path / "clipped.npz"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(clipped, "w") as dst:
            for name in src.namelist():
                if name != "bin_probs.npy":
                    dst.writestr(name, src.read(name))
        with pytest.raises(SerializationError, match="bin_probs"):
            ReferenceStats.load(clipped)


class TestPsi:
    def test_identical_distributions_score_zero(self):
        p = np.full(10, 0.1)
        assert psi(p, p) == pytest.approx(0.0)

    def test_shift_scores_positive_and_symmetric_in_sign(self):
        p = np.array([0.5, 0.3, 0.2])
        q = np.array([0.2, 0.3, 0.5])
        assert psi(p, q) > 0.1
        assert psi(p, q) == pytest.approx(psi(q, p))

    def test_empty_bins_do_not_blow_up(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert np.isfinite(psi(p, q))


class TestDriftSentinel:
    def test_clean_stream_stays_ok(self, gaussian_reference):
        sentinel = DriftSentinel(gaussian_reference, window=64, check_every=16)
        rng = np.random.default_rng(1)
        events = sentinel.observe(rng.normal(0.0, 1.0, size=(256, 3)))
        assert events == []
        assert sentinel.state is DriftState.OK
        assert sentinel.z_score < 1.0

    def test_level_shift_escalates_through_warn_to_trip(self, gaussian_reference):
        sentinel = DriftSentinel(
            gaussian_reference, alpha=0.2, warn_z=6.0, trip_z=12.0
        )
        shifted = np.full((1, 3), 20.0)  # 20 sigma off the reference mean
        states = []
        for t in range(60):
            for event in sentinel.observe(shifted, t_s=float(t)):
                states.append((event.previous, event.state, event.escalation))
        assert states == [
            (DriftState.OK, DriftState.WARN, True),
            (DriftState.WARN, DriftState.TRIP, True),
        ]
        assert sentinel.state is DriftState.TRIP
        assert sentinel.z_score > 12.0

    def test_shape_change_trips_via_psi(self, gaussian_reference):
        # Rows squeezed into one decile: the mean barely moves but the
        # histogram collapses, which only the PSI channel can see.
        sentinel = DriftSentinel(
            gaussian_reference,
            alpha=0.001,  # EWMA effectively frozen: isolate the PSI channel
            warn_psi=0.5,
            trip_psi=1.0,
            window=64,
            check_every=16,
        )
        events = sentinel.observe(np.full((64, 3), 0.01), t_s=5.0)
        assert sentinel.psi_score > 1.0
        assert sentinel.z_score < 1.0
        assert events[-1].state is DriftState.TRIP
        assert events[-1].t_s == 5.0

    def test_recovery_emits_deescalation_event(self, gaussian_reference):
        sentinel = DriftSentinel(gaussian_reference, alpha=0.5)
        sentinel.observe(np.full((30, 3), 50.0))
        assert sentinel.state is DriftState.TRIP
        rng = np.random.default_rng(2)
        events = []
        for _ in range(40):
            events += sentinel.observe(rng.normal(0.0, 1.0, size=(4, 3)))
        assert sentinel.state is DriftState.OK
        assert not events[-1].escalation

    def test_reset_restores_reference_state(self, gaussian_reference):
        sentinel = DriftSentinel(gaussian_reference, alpha=0.5)
        sentinel.observe(np.full((30, 3), 50.0))
        sentinel.reset()
        assert sentinel.state is DriftState.OK
        assert sentinel.z_score == 0.0
        assert sentinel.psi_score == 0.0

    def test_feature_mismatch_rejected(self, gaussian_reference):
        sentinel = DriftSentinel(gaussian_reference)
        with pytest.raises(ConfigurationError, match="features"):
            sentinel.observe(np.ones((4, 5)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"warn_z": 12.0, "trip_z": 6.0},
            {"warn_psi": 6.0, "trip_psi": 3.0},
            {"window": 4},
            {"check_every": 0},
        ],
    )
    def test_rejects_bad_config(self, gaussian_reference, kwargs):
        with pytest.raises(ConfigurationError):
            DriftSentinel(gaussian_reference, **kwargs)
