"""Scalar <-> batch equivalence for the guard admission and repair paths.

The serving engine may run either form depending on traffic shape, so the
vectorized variants must be *byte-identical* to the scalar chain: same
verdicts, same failure messages, same per-link state evolution, same
repair ledger.  Streams here are seeded and deliberately nasty: NaN/inf
cells, non-monotonic and duplicate timestamps, ragged rows.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.guard.repair import GapRepairer
from repro.guard.validation import (
    AmplitudeRangeCheck,
    EnvPlausibilityCheck,
    FiniteCheck,
    FrameCheck,
    FrameValidator,
    SubcarrierCountCheck,
    TimestampMonotonicityCheck,
)

N_FEATURES = 10


def full_chain() -> FrameValidator:
    return FrameValidator(
        [
            FiniteCheck(),
            SubcarrierCountCheck(N_FEATURES),
            AmplitudeRangeCheck(np.full(N_FEATURES, -50.0), np.full(N_FEATURES, 50.0)),
            TimestampMonotonicityCheck(tolerance_s=0.01),
            EnvPlausibilityCheck(env_slice=slice(8, 10)),
        ]
    )


def nasty_stream(seed: int, n: int = 200):
    """A frame stream exercising every check: seeded, repeatable."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.uniform(0.05, 0.2, size=n))
    rows = rng.normal(loc=20.0, scale=5.0, size=(n, N_FEATURES))
    rows[:, 8] = rng.uniform(15.0, 30.0, size=n)   # temperature column
    rows[:, 9] = rng.uniform(30.0, 70.0, size=n)   # humidity column
    # Sprinkle failures of every kind.
    bad = rng.choice(n, size=n // 5, replace=False)
    for i, kind in zip(bad, range(len(bad))):
        k = kind % 6
        if k == 0:
            rows[i, rng.integers(N_FEATURES)] = np.nan
        elif k == 1:
            rows[i, rng.integers(N_FEATURES)] = np.inf
        elif k == 2:
            rows[i, rng.integers(8)] = 500.0          # amplitude out
        elif k == 3 and i > 0:
            t[i] = t[i - 1] - rng.uniform(0.5, 2.0)   # backwards jump
        elif k == 4:
            rows[i, 8] = -40.0                        # impossible temperature
        else:
            rows[i, 9] = 150.0                        # impossible humidity
    return t, rows


def assert_same_verdicts(scalar, batch):
    assert len(scalar) == len(batch)
    for i, (a, b) in enumerate(zip(scalar, batch)):
        assert (a is None) == (b is None), f"row {i}: {a} vs {b}"
        if a is not None:
            assert a == b, f"row {i}: {a} vs {b}"


class TestValidatorBatchEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_byte_identical_on_nasty_streams(self, seed):
        t, rows = nasty_stream(seed)
        scalar_v, batch_v = full_chain(), full_chain()
        scalar = [scalar_v.validate("l", float(tt), r) for tt, r in zip(t, rows)]
        batch = batch_v.validate_batch("l", t, rows)
        assert_same_verdicts(scalar, batch)
        assert any(v is not None for v in batch)  # the stream really is nasty
        # Per-link monotonicity state evolved identically.
        assert scalar_v.checks[3]._latest == batch_v.checks[3]._latest

    def test_chunked_batches_equal_one_big_batch(self):
        t, rows = nasty_stream(99)
        whole_v, chunk_v = full_chain(), full_chain()
        whole = whole_v.validate_batch("l", t, rows)
        chunked = []
        for lo in range(0, len(t), 7):
            chunked.extend(chunk_v.validate_batch("l", t[lo : lo + 7], rows[lo : lo + 7]))
        assert_same_verdicts(whole, chunked)

    def test_nan_timestamps_match_scalar(self):
        t = np.array([0.0, np.nan, 1.0, 0.5, np.nan, 2.0])
        rng = np.random.default_rng(0)
        rows = rng.uniform(0, 10, size=(6, N_FEATURES))
        rows[:, 8], rows[:, 9] = 20.0, 50.0
        scalar_v, batch_v = full_chain(), full_chain()
        scalar = [scalar_v.validate("l", float(tt), r) for tt, r in zip(t, rows)]
        assert_same_verdicts(scalar, batch_v.validate_batch("l", t, rows))

    def test_ragged_rows_fall_back_to_scalar_coercion(self):
        rows = [np.zeros(N_FEATURES), np.zeros(3), "not a row"]
        t = [0.0, 1.0, 2.0]
        verdicts = full_chain().validate_batch("l", t, rows)
        assert verdicts[0] is None
        assert verdicts[1] is not None and verdicts[1].check == "width"
        assert verdicts[2] is not None and verdicts[2].check == "coerce"

    def test_wrong_width_block_fails_every_row_with_scalar_message(self):
        t = np.array([0.0, 1.0])
        rows = np.zeros((2, 4))
        scalar_v, batch_v = full_chain(), full_chain()
        scalar = [scalar_v.validate("l", float(tt), r) for tt, r in zip(t, rows)]
        assert_same_verdicts(scalar, batch_v.validate_batch("l", t, rows))

    def test_monotonicity_state_shared_across_calls_and_links(self):
        v = full_chain()
        t1 = np.array([0.0, 1.0, 2.0])
        rows = np.full((3, N_FEATURES), 20.0)
        rows[:, 8], rows[:, 9] = 20.0, 50.0
        assert all(f is None for f in v.validate_batch("a", t1, rows))
        # Link a is now at t=2.0: an old frame on link a fails...
        late = v.validate_batch("a", np.array([0.5]), rows[:1])
        assert late[0] is not None and late[0].check == "monotonic"
        # ...but the same timestamp on a fresh link passes.
        assert v.validate_batch("b", np.array([0.5]), rows[:1]) == [None]

    def test_custom_check_uses_scalar_fallback(self):
        calls = []

        class Spy(FrameCheck):
            name = "spy"

            def check(self, link_id, t_s, row):
                calls.append(t_s)
                return None

        v = FrameValidator([Spy()])
        t = np.array([1.0, 2.0, 3.0])
        assert v.validate_batch("l", t, np.zeros((3, 2))) == [None] * 3
        assert calls == [1.0, 2.0, 3.0]


class TestRepairerBatchEquivalence:
    def run_both(self, t, rows, **kwargs):
        scalar, batch = GapRepairer(**kwargs), GapRepairer(**kwargs)
        scalar_fills = [scalar.observe("l", float(tt), r) for tt, r in zip(t, rows)]
        batch_fills = batch.observe_batch("l", t, rows)
        return scalar, batch, scalar_fills, batch_fills

    def assert_identical(self, scalar, batch, scalar_fills, batch_fills):
        assert len(scalar_fills) == len(batch_fills)
        for i, (a, b) in enumerate(zip(scalar_fills, batch_fills)):
            assert len(a) == len(b), f"frame {i}: {len(a)} vs {len(b)} fills"
            for fa, fb in zip(a, b):
                assert fa.t_s == fb.t_s
                np.testing.assert_array_equal(fa.row, fb.row)
        assert scalar.gaps_repaired == batch.gaps_repaired
        assert scalar.frames_filled == batch.frames_filled
        assert scalar.gaps_unrepaired == batch.gaps_unrepaired
        sa, sb = scalar._links["l"], batch._links["l"]
        assert sa.last_t == sb.last_t and sa.interval_s == sb.interval_s
        np.testing.assert_array_equal(sa.last_row, sb.last_row)

    @pytest.mark.parametrize("mode", ["hold", "linear"])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_gappy_streams(self, mode, seed):
        rng = np.random.default_rng(seed)
        n = 120
        deltas = rng.uniform(0.09, 0.11, size=n)
        # Inject gaps of assorted sizes, plus reordered duplicates.
        for i in rng.choice(n, size=12, replace=False):
            deltas[i] = rng.choice([0.35, 0.52, 1.1, 3.0, 25.0])
        t = np.cumsum(deltas)
        for i in rng.choice(np.arange(1, n), size=6, replace=False):
            t[i] = t[i - 1] - rng.uniform(0.01, 0.2)  # goes backwards
        rows = rng.normal(size=(n, 5))
        self.assert_identical(*self.run_both(t, rows, mode=mode))

    def test_learned_cadence_matches(self):
        rng = np.random.default_rng(7)
        t = np.cumsum(np.concatenate([np.full(10, 0.1), [0.5], np.full(10, 0.1)]))
        rows = rng.normal(size=(t.size, 3))
        scalar, batch, sf, bf = self.run_both(t, rows)  # learns interval
        self.assert_identical(scalar, batch, sf, bf)
        assert batch.interval_s("l") == pytest.approx(0.1)
        assert batch.gaps_repaired == 1

    def test_configured_cadence_matches(self):
        rng = np.random.default_rng(8)
        t = np.cumsum([0.1, 0.1, 0.45, 0.1, 0.95, 0.1])
        rows = rng.normal(size=(t.size, 3))
        self.assert_identical(
            *self.run_both(t, rows, expected_interval_s=0.1, max_fill=4, mode="linear")
        )

    def test_batch_split_points_do_not_matter(self):
        rng = np.random.default_rng(9)
        deltas = np.full(60, 0.1)
        deltas[[20, 40]] = 0.75
        t = np.cumsum(deltas)
        rows = rng.normal(size=(60, 4))
        whole = GapRepairer()
        whole_fills = whole.observe_batch("l", t, rows)
        parts = GapRepairer()
        part_fills = []
        for lo in range(0, 60, 13):
            part_fills.extend(parts.observe_batch("l", t[lo : lo + 13], rows[lo : lo + 13]))
        assert len(whole_fills) == len(part_fills)
        for a, b in zip(whole_fills, part_fills):
            assert [f.t_s for f in a] == [f.t_s for f in b]
        assert whole.gaps_repaired == parts.gaps_repaired

    def test_rejects_bad_shapes(self):
        repairer = GapRepairer()
        with pytest.raises(ConfigurationError):
            repairer.observe_batch("l", np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            repairer.observe_batch("l", np.zeros(3), np.zeros((2, 3)))

    def test_fill_rows_are_owned_copies_in_hold_mode(self):
        t = np.array([0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 1.0])
        rows = np.ones((7, 3))
        repairer = GapRepairer(mode="hold")
        fills = repairer.observe_batch("l", t, rows)
        filled = [f for frame in fills for f in frame]
        assert filled
        rows[:] = -99.0  # caller reuses its buffer
        for fill in filled:
            np.testing.assert_array_equal(fill.row, np.ones(3))
