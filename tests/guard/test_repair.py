"""Tests for the gap repairer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.guard.repair import GapRepairer


class TestGapRepairer:
    def test_no_fill_on_nominal_cadence(self):
        repairer = GapRepairer(1.0)
        for t in range(5):
            assert repairer.observe("a", float(t), np.full(2, t)) == []
        assert repairer.gaps_repaired == 0

    def test_hold_mode_repeats_the_last_good_row(self):
        repairer = GapRepairer(1.0, mode="hold")
        repairer.observe("a", 0.0, np.array([1.0, 2.0]))
        fills = repairer.observe("a", 4.0, np.array([9.0, 9.0]))  # 3 missing
        assert [f.t_s for f in fills] == [1.0, 2.0, 3.0]  # on the grid
        for fill in fills:
            np.testing.assert_allclose(fill.row, [1.0, 2.0])
        assert repairer.gaps_repaired == 1
        assert repairer.frames_filled == 3

    def test_linear_mode_blends_between_bracketing_frames(self):
        repairer = GapRepairer(1.0, mode="linear")
        repairer.observe("a", 0.0, np.array([0.0]))
        fills = repairer.observe("a", 4.0, np.array([4.0]))
        np.testing.assert_allclose([f.row[0] for f in fills], [1.0, 2.0, 3.0])

    def test_long_gaps_left_open_and_counted(self):
        repairer = GapRepairer(1.0, max_fill=2)
        repairer.observe("a", 0.0, np.zeros(1))
        assert repairer.observe("a", 10.0, np.zeros(1)) == []  # 9 missing > 2
        assert repairer.gaps_unrepaired == 1
        assert repairer.frames_filled == 0

    def test_interval_learned_per_link_from_median_delta(self):
        repairer = GapRepairer(None, learn_frames=3)
        for t in (0.0, 2.0, 4.0, 6.0):
            repairer.observe("slow", t, np.zeros(1))
        for t in (0.0, 0.5, 1.0, 1.5):
            repairer.observe("fast", t, np.zeros(1))
        assert repairer.interval_s("slow") == pytest.approx(2.0)
        assert repairer.interval_s("fast") == pytest.approx(0.5)
        assert repairer.interval_s("unseen") is None
        # the learned cadence drives repair: a 3-interval hole on "slow"
        fills = repairer.observe("slow", 12.0, np.zeros(1))
        assert [f.t_s for f in fills] == [8.0, 10.0]

    def test_no_repair_while_still_learning(self):
        repairer = GapRepairer(None, learn_frames=5)
        repairer.observe("a", 0.0, np.zeros(1))
        assert repairer.observe("a", 7.0, np.zeros(1)) == []  # no cadence yet
        assert repairer.gaps_repaired == 0

    def test_reordered_duplicate_keeps_newest_anchor(self):
        repairer = GapRepairer(1.0)
        repairer.observe("a", 5.0, np.array([5.0]))
        assert repairer.observe("a", 3.0, np.array([3.0])) == []  # dt <= 0
        fills = repairer.observe("a", 8.0, np.array([8.0]))
        assert [f.t_s for f in fills] == [6.0, 7.0]  # anchored at t=5, not 3

    def test_jitter_within_tolerance_is_not_a_gap(self):
        repairer = GapRepairer(1.0, tolerance=0.5)
        repairer.observe("a", 0.0, np.zeros(1))
        assert repairer.observe("a", 1.4, np.zeros(1)) == []

    def test_reset_clears_links_and_ledger(self):
        repairer = GapRepairer(1.0)
        repairer.observe("a", 0.0, np.zeros(1))
        repairer.observe("a", 3.0, np.zeros(1))
        assert repairer.gaps_repaired == 1
        repairer.reset()
        assert repairer.gaps_repaired == 0
        assert repairer.observe("a", 100.0, np.zeros(1)) == []  # fresh anchor

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"expected_interval_s": 0.0},
            {"max_fill": 0},
            {"mode": "spline"},
            {"tolerance": -0.1},
            {"learn_frames": 1},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            GapRepairer(**{"expected_interval_s": 1.0, **kwargs})
