"""Tests for the circuit breaker state machine."""

import pytest

from repro.exceptions import ConfigurationError
from repro.guard.breaker import BreakerState, CircuitBreaker


def _breaker(**kwargs) -> CircuitBreaker:
    defaults = dict(
        failure_threshold=3,
        cooldown_s=10.0,
        backoff_factor=2.0,
        max_cooldown_s=100.0,
        jitter=0.0,  # deterministic cooldowns for exact assertions
        probe_batches=2,
        seed=0,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestStateMachine:
    def test_starts_closed_and_allows_traffic(self):
        breaker = _breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_trips_after_consecutive_failures_only(self):
        breaker = _breaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)  # success resets the streak
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(5.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trip_count == 1

    def test_open_short_circuits_until_cooldown_expires(self):
        breaker = _breaker(cooldown_s=10.0)
        for t in range(3):
            breaker.record_failure(float(t))
        assert not breaker.allow(5.0)
        assert not breaker.allow(11.9)  # tripped at t=2, open until t=12
        assert breaker.allow(12.0)  # cooldown over: admit the probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_successes_close_the_breaker(self):
        breaker = _breaker(probe_batches=2)
        for t in range(3):
            breaker.record_failure(float(t))
        breaker.allow(100.0)  # -> HALF_OPEN
        breaker.record_success(100.0)
        assert breaker.state is BreakerState.HALF_OPEN  # one probe is not enough
        breaker.record_success(101.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.recovery_count == 1

    def test_failed_probe_reopens_immediately(self):
        breaker = _breaker()
        for t in range(3):
            breaker.record_failure(float(t))
        breaker.allow(100.0)
        breaker.record_failure(100.0)  # probe dies: no three-strikes grace
        assert breaker.state is BreakerState.OPEN
        assert breaker.trip_count == 2

    def test_backoff_doubles_per_retrip_and_is_capped(self):
        breaker = _breaker(cooldown_s=10.0, backoff_factor=2.0, max_cooldown_s=25.0)
        for t in range(3):
            breaker.record_failure(float(t))  # trip 1 at t=2: cooldown 10
        assert not breaker.allow(11.0)
        assert breaker.allow(12.0)
        breaker.record_failure(12.0)  # trip 2: cooldown 20
        assert not breaker.allow(31.0)
        assert breaker.allow(32.0)
        breaker.record_failure(32.0)  # trip 3: 40 capped to 25
        assert not breaker.allow(56.0)
        assert breaker.allow(57.0)

    def test_recovery_resets_the_backoff_ladder(self):
        breaker = _breaker(cooldown_s=10.0, probe_batches=1)
        for t in range(3):
            breaker.record_failure(float(t))
        breaker.allow(100.0)
        breaker.record_success(100.0)  # full recovery
        assert breaker.state is BreakerState.CLOSED
        for t in range(3):
            breaker.record_failure(200.0 + t)  # re-trip after recovery
        assert not breaker.allow(211.9)  # base cooldown again, not 20 s
        assert breaker.allow(212.0)

    def test_jitter_is_seeded_and_bounded(self):
        def open_until(seed: int) -> float:
            breaker = _breaker(jitter=0.1, seed=seed)
            for t in range(3):
                breaker.record_failure(0.0)
            return breaker.snapshot()["open_until_s"]

        assert open_until(1) == open_until(1)  # same seed, same cooldown
        assert 9.0 <= open_until(1) <= 11.0  # within +-10% of 10 s
        assert open_until(1) != open_until(2)

    def test_snapshot_reports_live_state(self):
        breaker = _breaker()
        breaker.record_failure(0.0)
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1
        assert snap["trip_count"] == 0

    def test_reset_returns_to_pristine_closed(self):
        breaker = _breaker()
        for t in range(3):
            breaker.record_failure(float(t))
        breaker.reset()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)
        # lifetime counters intentionally survive reset
        assert breaker.trip_count == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_s": 0.0},
            {"cooldown_s": 50.0, "max_cooldown_s": 10.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"probe_batches": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            _breaker(**kwargs)
