"""Tests for the Nexmon-like receiver front end."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.sniffer import NexmonSniffer, SnifferConfig
from repro.channel.subcarriers import SubcarrierGrid
from repro.exceptions import ChannelError, ShapeError


@pytest.fixture
def grid() -> SubcarrierGrid:
    return SubcarrierGrid(20e6, 2.412e9)


def make_sniffer(grid, seed=0, **overrides) -> NexmonSniffer:
    return NexmonSniffer(grid, SnifferConfig(**overrides), rng=np.random.default_rng(seed))


class TestSnifferConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"noise_sigma": -0.1},
            {"agc_target": 0.0},
            {"agc_step_db": 0.0},
            {"amplitude_lsb": 0.0},
            {"frame_loss_rate": 1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ChannelError):
            SnifferConfig(**kwargs)


class TestCapture:
    def test_output_shape_and_nonnegativity(self, grid):
        sniffer = make_sniffer(grid)
        amp = sniffer.capture(np.ones(64, dtype=complex))
        assert amp is not None
        assert amp.shape == (64,)
        assert np.all(amp >= 0)

    def test_guard_bins_report_leakage_floor(self, grid):
        sniffer = make_sniffer(grid)
        amp = sniffer.capture(np.ones(64, dtype=complex))
        assert np.all(amp[grid.is_guard] == sniffer.config.guard_floor)

    def test_amplitudes_are_quantized(self, grid):
        sniffer = make_sniffer(grid, amplitude_lsb=0.01)
        amp = sniffer.capture(np.ones(64, dtype=complex))
        assert np.allclose(amp, np.round(amp / 0.01) * 0.01)

    def test_agc_normalizes_scale(self, grid):
        # Two frames differing by 20 dB produce nearly the same output RMS.
        sniffer = make_sniffer(grid, noise_sigma=0.0)
        weak = sniffer.capture(0.1 * np.ones(64, dtype=complex))
        strong = sniffer.capture(10.0 * np.ones(64, dtype=complex))
        mask = ~grid.is_guard
        rms_weak = np.sqrt(np.mean(weak[mask] ** 2))
        rms_strong = np.sqrt(np.mean(strong[mask] ** 2))
        assert rms_weak == pytest.approx(rms_strong, rel=0.05)

    def test_agc_preserves_spectral_shape(self, grid):
        sniffer = make_sniffer(grid, noise_sigma=0.0)
        rng = np.random.default_rng(1)
        h = rng.normal(1, 0.2, 64) + 0j
        amp = sniffer.capture(h)
        mask = ~grid.is_guard
        corr = np.corrcoef(amp[mask], np.abs(h)[mask])[0, 1]
        assert corr > 0.99

    def test_wrong_shape_rejected(self, grid):
        with pytest.raises(ShapeError):
            make_sniffer(grid).capture(np.ones(32, dtype=complex))

    def test_frame_loss(self, grid):
        sniffer = make_sniffer(grid, frame_loss_rate=0.5)
        results = [sniffer.capture(np.ones(64, dtype=complex)) for _ in range(200)]
        lost = sum(r is None for r in results)
        assert 50 < lost < 150

    def test_zero_frame_loss_never_drops(self, grid):
        sniffer = make_sniffer(grid, frame_loss_rate=0.0)
        assert all(
            sniffer.capture(np.ones(64, dtype=complex)) is not None for _ in range(50)
        )


class TestCaptureMany:
    def test_matches_scalar_path_statistics(self, grid):
        h = np.tile(np.linspace(0.5, 1.5, 64) + 0j, (100, 1))
        amps, kept = make_sniffer(grid).capture_many(h)
        assert kept.all()
        assert amps.shape == (100, 64)
        single = make_sniffer(grid, seed=1).capture(h[0])
        mask = ~grid.is_guard
        assert np.allclose(amps[:, mask].mean(axis=0), single[mask], atol=0.1)

    def test_shape_validation(self, grid):
        with pytest.raises(ShapeError):
            make_sniffer(grid).capture_many(np.ones((10, 32), dtype=complex))

    def test_frame_loss_mask(self, grid):
        sniffer = make_sniffer(grid, frame_loss_rate=0.3)
        amps, kept = sniffer.capture_many(np.ones((500, 64), dtype=complex))
        assert amps.shape[0] == kept.sum()
        assert 250 < kept.sum() < 450

    @settings(max_examples=20)
    @given(st.integers(1, 30))
    def test_property_row_count_preserved_without_loss(self, n):
        local_grid = SubcarrierGrid(20e6, 2.412e9)
        amps, kept = make_sniffer(local_grid).capture_many(
            np.ones((n, 64), dtype=complex)
        )
        assert amps.shape == (n, 64)
        assert kept.all()
