"""Tests for the 3D primitives and image-method geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.geometry import (
    Room,
    Vec3,
    WallPlane,
    fresnel_radius_m,
    reflect_point,
    segment_point_distance,
    segment_vertical_cylinder_distance,
)
from repro.exceptions import GeometryError

finite = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestVec3:
    def test_arithmetic(self):
        a = Vec3(1, 2, 3)
        b = Vec3(4, 5, 6)
        assert (a + b) == Vec3(5, 7, 9)
        assert (b - a) == Vec3(3, 3, 3)
        assert (a * 2) == Vec3(2, 4, 6)
        assert (2 * a) == Vec3(2, 4, 6)

    def test_norm_and_distance(self):
        assert Vec3(3, 4, 0).norm() == pytest.approx(5.0)
        assert Vec3(0, 0, 0).distance_to(Vec3(1, 1, 1)) == pytest.approx(np.sqrt(3))

    def test_normalized(self):
        n = Vec3(0, 0, 5).normalized()
        assert n == Vec3(0, 0, 1)

    def test_normalize_zero_raises(self):
        with pytest.raises(GeometryError):
            Vec3(0, 0, 0).normalized()

    def test_array_round_trip(self):
        v = Vec3(1.5, -2.5, 3.25)
        assert Vec3.from_array(v.as_array()) == v

    @given(finite, finite, finite)
    def test_property_norm_non_negative(self, x, y, z):
        assert Vec3(x, y, z).norm() >= 0

    @given(finite, finite, finite)
    def test_property_dot_with_self_is_norm_squared(self, x, y, z):
        v = Vec3(x, y, z)
        assert v.dot(v) == pytest.approx(v.norm() ** 2, abs=1e-6, rel=1e-6)


class TestWallPlane:
    def test_mirror_across_x_plane(self):
        plane = WallPlane(0, 2.0, "concrete", "w")
        assert plane.mirror(Vec3(1, 5, 5)) == Vec3(3, 5, 5)

    def test_mirror_is_involution(self):
        plane = WallPlane(2, 3.0, "glass", "ceiling")
        p = Vec3(1.2, 3.4, 0.5)
        assert plane.mirror(plane.mirror(p)) == p

    def test_reflect_point_alias(self):
        plane = WallPlane(1, 0.0, "concrete", "w")
        assert reflect_point(Vec3(1, 2, 3), plane) == Vec3(1, -2, 3)

    def test_bad_axis_rejected(self):
        with pytest.raises(GeometryError):
            WallPlane(3, 0.0, "concrete", "w")


class TestRoom:
    def test_paper_office_dimensions(self):
        room = Room(12.0, 6.0, 3.0)
        assert room.contains(Vec3(5, 0.5, 1.4))
        assert not room.contains(Vec3(13, 0.5, 1.4))
        assert room.diagonal_m() == pytest.approx(np.sqrt(144 + 36 + 9))

    def test_six_walls_with_materials(self):
        walls = list(Room(12, 6, 3).walls())
        assert len(walls) == 6
        materials = {w.material_key for w in walls}
        assert materials == {"plasterboard", "concrete", "glass"}

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(GeometryError):
            Room(0.0, 6, 3)

    def test_boundary_tolerance(self):
        room = Room(12, 6, 3)
        assert room.contains(Vec3(12.0, 6.0, 3.0))
        assert room.contains(Vec3(0.0, 0.0, 0.0))


class TestSegmentDistances:
    def test_point_on_segment(self):
        assert segment_point_distance(Vec3(0, 0, 0), Vec3(2, 0, 0), Vec3(1, 0, 0)) == 0

    def test_point_beside_segment(self):
        d = segment_point_distance(Vec3(0, 0, 0), Vec3(2, 0, 0), Vec3(1, 3, 0))
        assert d == pytest.approx(3.0)

    def test_point_beyond_endpoint_clamps(self):
        d = segment_point_distance(Vec3(0, 0, 0), Vec3(2, 0, 0), Vec3(5, 0, 0))
        assert d == pytest.approx(3.0)

    def test_degenerate_segment(self):
        d = segment_point_distance(Vec3(1, 1, 1), Vec3(1, 1, 1), Vec3(1, 1, 2))
        assert d == pytest.approx(1.0)

    def test_cylinder_through_segment(self):
        # A vertical cylinder axis crossing the segment's midpoint.
        d = segment_vertical_cylinder_distance(
            Vec3(0, 0, 1), Vec3(2, 0, 1), (1.0, 0.0), (0.0, 2.0)
        )
        assert d == pytest.approx(0.0, abs=0.15)

    def test_cylinder_below_segment(self):
        # Cylinder spans z in [0, 1]; the segment is at z = 2.
        d = segment_vertical_cylinder_distance(
            Vec3(0, 0, 2), Vec3(2, 0, 2), (1.0, 0.0), (0.0, 1.0)
        )
        assert d == pytest.approx(1.0, abs=0.01)

    def test_invalid_z_range(self):
        with pytest.raises(GeometryError):
            segment_vertical_cylinder_distance(
                Vec3(0, 0, 0), Vec3(1, 0, 0), (0, 0), (2.0, 1.0)
            )


class TestFresnelRadius:
    def test_midpoint_of_2m_link_at_2_4ghz(self):
        # The paper's link: 2 m TX-RX separation at ~12.4 cm wavelength.
        r = fresnel_radius_m(0.124, 1.0, 1.0)
        assert r == pytest.approx(np.sqrt(0.124 * 0.5), rel=1e-6)

    def test_radius_vanishes_at_endpoints(self):
        assert fresnel_radius_m(0.124, 0.0, 2.0) == 0.0

    def test_rejects_negative_segments(self):
        with pytest.raises(GeometryError):
            fresnel_radius_m(0.124, -1.0, 2.0)

    def test_rejects_zero_total(self):
        with pytest.raises(GeometryError):
            fresnel_radius_m(0.124, 0.0, 0.0)

    @given(
        st.floats(0.01, 1.0),
        st.floats(0.01, 50.0),
        st.floats(0.01, 50.0),
    )
    def test_property_maximal_at_midpoint(self, wavelength, d1, d2):
        total = d1 + d2
        r = fresnel_radius_m(wavelength, d1, d2)
        r_mid = fresnel_radius_m(wavelength, total / 2, total / 2)
        assert r <= r_mid + 1e-12
