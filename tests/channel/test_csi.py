"""Tests for the CSI frame/matrix containers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.channel.csi import CSIFrame, CSIMatrix
from repro.exceptions import ShapeError


def frame(t=0.0, n=64, seed=0) -> CSIFrame:
    rng = np.random.default_rng(seed)
    return CSIFrame(t, rng.normal(size=n) + 1j * rng.normal(size=n))


class TestCSIFrame:
    def test_amplitude_and_phase(self):
        f = CSIFrame(0.0, np.array([3 + 4j, 1 + 0j]))
        assert f.amplitude == pytest.approx([5.0, 1.0])
        assert f.phase[1] == pytest.approx(0.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ShapeError):
            CSIFrame(0.0, np.ones((2, 64)))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            CSIFrame(0.0, np.array([]))

    def test_power_db_floors_zero(self):
        f = CSIFrame(0.0, np.array([0.0 + 0j, 1.0 + 0j]))
        p = f.power_db()
        assert np.isfinite(p).all()
        assert p[1] == pytest.approx(0.0)

    def test_n_subcarriers(self):
        assert frame(n=32).n_subcarriers == 32


class TestCSIMatrix:
    def test_from_frames_round_trip(self):
        frames = [frame(t=float(i), seed=i) for i in range(5)]
        matrix = CSIMatrix.from_frames(frames)
        assert len(matrix) == 5
        assert matrix[2].timestamp_s == 2.0
        assert np.allclose(matrix[2].h, frames[2].h)

    def test_iteration_yields_frames(self):
        matrix = CSIMatrix.from_frames([frame(t=float(i)) for i in range(3)])
        assert [f.timestamp_s for f in matrix] == [0.0, 1.0, 2.0]

    def test_rejects_unsorted_timestamps(self):
        with pytest.raises(ShapeError):
            CSIMatrix(np.array([1.0, 0.0]), np.ones((2, 4), dtype=complex))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ShapeError):
            CSIMatrix(np.array([0.0]), np.ones((2, 4), dtype=complex))

    def test_rejects_inconsistent_widths(self):
        with pytest.raises(ShapeError):
            CSIMatrix.from_frames([frame(n=64), frame(t=1.0, n=32)])

    def test_rejects_zero_frames(self):
        with pytest.raises(ShapeError):
            CSIMatrix.from_frames([])

    def test_subcarrier_series(self):
        matrix = CSIMatrix.from_frames([frame(t=float(i), seed=i) for i in range(4)])
        series = matrix.subcarrier_series(10)
        assert series.shape == (4,)
        assert series[1] == pytest.approx(abs(matrix[1].h[10]))

    def test_subcarrier_series_bounds(self):
        matrix = CSIMatrix.from_frames([frame()])
        with pytest.raises(ShapeError):
            matrix.subcarrier_series(64)

    def test_window_selects_half_open_interval(self):
        matrix = CSIMatrix.from_frames([frame(t=float(i)) for i in range(10)])
        window = matrix.window(2.0, 5.0)
        assert len(window) == 3
        assert window.timestamps_s[0] == 2.0

    def test_window_empty_raises(self):
        matrix = CSIMatrix.from_frames([frame(t=float(i)) for i in range(3)])
        with pytest.raises(ShapeError):
            matrix.window(100.0, 200.0)

    def test_window_inverted_raises(self):
        matrix = CSIMatrix.from_frames([frame(t=float(i)) for i in range(3)])
        with pytest.raises(ShapeError):
            matrix.window(2.0, 1.0)

    @given(
        arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(0, 100, allow_nan=False),
        )
    )
    def test_property_amplitude_non_negative(self, magnitudes):
        t = np.arange(len(magnitudes), dtype=float)
        h = magnitudes[:, None] * np.exp(1j * 0.3) * np.ones((1, 8))
        matrix = CSIMatrix(t, h)
        assert np.all(matrix.amplitude >= 0)
        assert matrix.amplitude.shape == (len(magnitudes), 8)
