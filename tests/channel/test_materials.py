"""Tests for the material catalogue."""

import pytest
from hypothesis import given, strategies as st

from repro.channel.materials import MATERIALS, Material, get_material
from repro.exceptions import ConfigurationError


class TestCatalogue:
    def test_office_materials_present(self):
        # The paper's office: plasterboard internal walls, concrete external
        # walls, glass windows; plus furniture wood and the human body.
        for key in ("plasterboard", "concrete", "glass", "wood", "human"):
            assert key in MATERIALS

    def test_get_material_error_lists_known_keys(self):
        with pytest.raises(ConfigurationError, match="plasterboard"):
            get_material("adamantium")

    def test_concrete_reflects_stronger_than_plasterboard(self):
        # Reinforced concrete is the better 2.4 GHz reflector.
        concrete = get_material("concrete").reflection_coefficient()
        plaster = get_material("plasterboard").reflection_coefficient()
        assert concrete > plaster

    def test_concrete_blocks_transmission(self):
        assert get_material("concrete").penetration_loss_db > 20


class TestReflectionCoefficient:
    def test_reference_humidity_matches_loss(self):
        m = Material("m", reflection_loss_db=6.0)
        assert m.reflection_coefficient(40.0) == pytest.approx(10 ** (-6.0 / 20.0))

    def test_hygroscopic_material_weakens_when_wet(self):
        plaster = get_material("plasterboard")
        dry = plaster.reflection_coefficient(20.0)
        wet = plaster.reflection_coefficient(60.0)
        assert wet < dry

    def test_glass_is_humidity_insensitive(self):
        glass = get_material("glass")
        assert glass.reflection_coefficient(10.0) == glass.reflection_coefficient(90.0)

    def test_negative_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            Material("bad", reflection_loss_db=-1.0)

    @given(st.sampled_from(sorted(MATERIALS)), st.floats(0, 100))
    def test_property_coefficient_in_unit_interval(self, key, humidity):
        coeff = get_material(key).reflection_coefficient(humidity)
        assert 0.0 <= coeff <= 1.0
