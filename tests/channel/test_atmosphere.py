"""Tests for the environmental (T/H) coupling into the radio chain."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.atmosphere import (
    REFERENCE_HUMIDITY_RH,
    REFERENCE_TEMPERATURE_C,
    AtmosphereState,
    EnvironmentalGainModel,
    environmental_gain,
)
from repro.exceptions import ConfigurationError


class TestAtmosphereState:
    def test_valid_state(self):
        s = AtmosphereState(21.0, 40.0)
        assert s.temperature_c == 21.0

    def test_rejects_absurd_temperature(self):
        with pytest.raises(ConfigurationError):
            AtmosphereState(200.0, 40.0)

    def test_rejects_humidity_out_of_range(self):
        with pytest.raises(ConfigurationError):
            AtmosphereState(21.0, 101.0)


class TestEnvironmentalGainModel:
    def test_reference_state_is_near_unity(self):
        model = EnvironmentalGainModel(64)
        g = model.gain(AtmosphereState(REFERENCE_TEMPERATURE_C, REFERENCE_HUMIDITY_RH))
        # At the reference only the centred quadratic offsets remain
        # (|d_k|/2, bounded by the quadratic magnitude times the signature
        # peak of ~3 RMS).
        assert np.all(np.abs(g - 1.0) < 0.2)

    def test_deterministic_in_seed(self):
        a = EnvironmentalGainModel(64, seed=3).gain(AtmosphereState(25, 55))
        b = EnvironmentalGainModel(64, seed=3).gain(AtmosphereState(25, 55))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = EnvironmentalGainModel(64, seed=3).gain(AtmosphereState(25, 55))
        b = EnvironmentalGainModel(64, seed=4).gain(AtmosphereState(25, 55))
        assert not np.allclose(a, b)

    def test_temperature_changes_the_gain(self):
        model = EnvironmentalGainModel(64)
        cold = model.gain(AtmosphereState(17.0, 40.0))
        warm = model.gain(AtmosphereState(25.0, 40.0))
        assert not np.allclose(cold, warm)

    def test_humidity_changes_the_gain(self):
        model = EnvironmentalGainModel(64)
        dry = model.gain(AtmosphereState(21.0, 20.0))
        humid = model.gain(AtmosphereState(21.0, 60.0))
        assert not np.allclose(dry, humid)

    def test_coupling_is_nonlinear_in_temperature(self):
        # The even (quadratic) component makes g(T0-dT) != mirror of
        # g(T0+dT) impossible to reproduce with a purely linear map: the
        # midpoint gain differs from the average of the endpoint gains.
        model = EnvironmentalGainModel(64)
        lo = model.gain(AtmosphereState(REFERENCE_TEMPERATURE_C - 4, 40.0))
        hi = model.gain(AtmosphereState(REFERENCE_TEMPERATURE_C + 4, 40.0))
        mid = model.gain(AtmosphereState(REFERENCE_TEMPERATURE_C, 40.0))
        assert not np.allclose((lo + hi) / 2, mid, atol=1e-4)

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            EnvironmentalGainModel(0)
        with pytest.raises(ConfigurationError):
            EnvironmentalGainModel(64, temperature_scale_c=0.0)

    @settings(max_examples=50)
    @given(st.floats(-10, 45), st.floats(0, 100))
    def test_property_gain_bounded(self, t, h):
        model = EnvironmentalGainModel(64)
        g = model.gain(AtmosphereState(t, h))
        assert np.all((0.5 <= g) & (g <= 1.5))
        assert g.shape == (64,)


def test_environmental_gain_wrapper():
    g = environmental_gain(AtmosphereState(23, 50), 32, seed=1)
    assert g.shape == (32,)
