"""Tests for the three-component Rician fading model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.fading import RicianFading
from repro.exceptions import ChannelError


def make(seed=0, **kwargs) -> RicianFading:
    return RicianFading(64, rng=np.random.default_rng(seed), **kwargs)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ChannelError):
            RicianFading(0)
        with pytest.raises(ChannelError):
            RicianFading(64, drift_fraction=1.5)
        with pytest.raises(ChannelError):
            RicianFading(64, drift_tau_s=0.0)
        with pytest.raises(ChannelError):
            RicianFading(64, mobility_power_boost=-1.0)


class TestDiffuseSigma:
    def test_k_factor_sets_power_ratio(self):
        fading = make(k_factor_db=10.0)
        sigma = fading.diffuse_sigma(specular_power=1.0)
        assert sigma == pytest.approx(np.sqrt(0.1))

    def test_rejects_negative_power(self):
        with pytest.raises(ChannelError):
            make().diffuse_sigma(-1.0)


class TestTemporalStructure:
    def test_static_room_is_quasi_frozen(self):
        # Two frames 1 s apart in an empty room are nearly identical.
        fading = make()
        a = fading.step(1.0, mobility=0.0).copy()
        b = fading.step(1.0, mobility=0.0)
        assert np.abs(a - b).max() < 0.2

    def test_motion_decorrelates_frames(self):
        fading = make()
        a = fading.step(1.0, mobility=1.0).copy()
        b = fading.step(1.0, mobility=1.0)
        # At full mobility the motion component redraws every frame.
        assert np.abs(a - b).mean() > 0.3

    def test_empty_room_stays_near_campaign_clutter(self):
        # Over a simulated day the static diffuse field stays close to the
        # frozen clutter vector (drift is a small fraction of the power).
        fading = make()
        start = fading.step(1.0, 0.0).copy()
        for _ in range(24):
            state = fading.step(3600.0, 0.0)
        drift_dist = np.abs(state - start).mean()
        assert drift_dist < 0.6

    def test_mobility_adds_power(self):
        fading = make()
        static_frames = [fading.step(1.0, 0.0).copy() for _ in range(50)]
        moving_frames = [fading.step(1.0, 1.0).copy() for _ in range(50)]
        p_static = np.mean([np.mean(np.abs(f) ** 2) for f in static_frames])
        p_moving = np.mean([np.mean(np.abs(f) ** 2) for f in moving_frames])
        assert p_moving > 1.5 * p_static

    def test_rejects_bad_step_arguments(self):
        fading = make()
        with pytest.raises(ChannelError):
            fading.step(-1.0)
        with pytest.raises(ChannelError):
            fading.step(1.0, mobility=2.0)


class TestApply:
    def test_shape_check(self):
        fading = make()
        with pytest.raises(ChannelError):
            fading.apply(np.ones(32, dtype=complex), 1.0)

    def test_output_near_specular_for_high_k(self):
        fading = make(k_factor_db=30.0)
        specular = np.full(64, 1.0 + 0j)
        faded = fading.apply(specular, 1.0)
        assert np.abs(faded - specular).max() < 0.2

    @settings(max_examples=20)
    @given(st.floats(0, 1), st.floats(0.01, 10.0))
    def test_property_apply_preserves_shape(self, mobility, dt):
        fading = make()
        out = fading.apply(np.ones(64, dtype=complex), dt, mobility)
        assert out.shape == (64,)
        assert np.all(np.isfinite(out.real)) and np.all(np.isfinite(out.imag))

    def test_reproducible_with_seeded_rng(self):
        a = make(seed=5).apply(np.ones(64, dtype=complex), 0.5, 0.3)
        b = make(seed=5).apply(np.ones(64, dtype=complex), 0.5, 0.3)
        assert np.array_equal(a, b)
