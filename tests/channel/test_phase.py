"""Tests for CSI phase sanitization."""

import numpy as np
import pytest

from repro.channel.phase import phase_difference, sanitize_phase, unwrap_phase
from repro.exceptions import ShapeError


def synth_frame(slope=0.0, offset=0.0, signal=None, d=64):
    """Complex frame with a phase ramp slope*k + offset plus a signal term."""
    k = np.arange(d)
    phase = slope * k + offset
    if signal is not None:
        phase = phase + signal
    return np.exp(1j * phase)


class TestUnwrap:
    def test_continuous_ramp_recovered(self):
        phase = np.linspace(0, 6 * np.pi, 64)
        wrapped = np.angle(np.exp(1j * phase))
        unwrapped = unwrap_phase(wrapped)
        np.testing.assert_allclose(np.diff(unwrapped), np.diff(phase), atol=1e-9)

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            unwrap_phase(np.zeros((2, 2, 2)))


class TestSanitizePhase:
    def test_removes_linear_ramp(self):
        # Pure STO ramp sanitizes to (near) zero.
        frame = synth_frame(slope=0.3, offset=1.2)
        sanitized = sanitize_phase(frame)
        assert np.abs(sanitized).max() < 1e-9

    def test_preserves_nonlinear_structure(self):
        k = np.arange(64)
        signal = 0.4 * np.sin(2 * np.pi * k / 16)
        frame = synth_frame(slope=0.2, offset=-0.5, signal=signal)
        sanitized = sanitize_phase(frame)
        # The sinusoid survives (up to its own mean/slope components).
        assert np.std(sanitized) > 0.1
        assert np.corrcoef(sanitized, signal)[0, 1] > 0.95

    def test_batch_and_single_agree(self):
        rng = np.random.default_rng(0)
        frames = np.exp(1j * rng.uniform(-1, 1, size=(5, 64)))
        batch = sanitize_phase(frames)
        single = np.stack([sanitize_phase(f) for f in frames])
        np.testing.assert_allclose(batch, single, atol=1e-12)

    def test_guard_mask_excluded_from_fit(self):
        frame = synth_frame(slope=0.1)
        # Corrupt guard bins with huge phase noise.
        corrupted = frame.copy()
        corrupted[:6] *= np.exp(1j * 2.5)
        mask = np.zeros(64, dtype=bool)
        mask[:6] = True
        sanitized = sanitize_phase(corrupted, guard_mask=mask)
        # Non-guard bins stay near zero despite the corrupted guards.
        assert np.abs(sanitized[6:]).max() < 1e-6

    def test_invariant_to_sto_and_cpo(self):
        # Two captures of the same channel with different receiver offsets
        # sanitize to the same result — the whole point.
        k = np.arange(64)
        signal = 0.3 * np.cos(2 * np.pi * k / 10)
        a = sanitize_phase(synth_frame(slope=0.05, offset=0.3, signal=signal))
        b = sanitize_phase(synth_frame(slope=-0.2, offset=2.0, signal=signal))
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_mask_shape_validated(self):
        with pytest.raises(ShapeError):
            sanitize_phase(synth_frame(), guard_mask=np.zeros(10, dtype=bool))

    def test_too_few_fit_bins(self):
        mask = np.ones(64, dtype=bool)
        mask[5] = False
        with pytest.raises(ShapeError):
            sanitize_phase(synth_frame(), guard_mask=mask)


class TestPhaseDifference:
    def test_static_channel_zero_difference(self):
        frame = synth_frame(slope=0.1, offset=0.5,
                            signal=0.2 * np.sin(np.arange(64) / 5))
        # Same channel, different receiver offsets between frames.
        frame2 = frame * np.exp(1j * (0.8 + 0.03 * np.arange(64)))
        delta = phase_difference(frame2, frame)
        assert np.abs(delta).max() < 1e-6

    def test_motion_produces_difference(self):
        k = np.arange(64)
        before = synth_frame(signal=0.3 * np.sin(2 * np.pi * k / 12))
        after = synth_frame(signal=0.3 * np.sin(2 * np.pi * k / 12 + 0.8))
        delta = phase_difference(after, before)
        assert np.abs(delta).max() > 0.05

    def test_wrapped_into_pi(self):
        a = synth_frame(signal=np.zeros(64))
        b = synth_frame(signal=np.full(64, 0.0))
        delta = phase_difference(a, b)
        assert np.all(np.abs(delta) <= np.pi + 1e-12)
