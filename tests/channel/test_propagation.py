"""Tests for the multipath ray tracer."""

import numpy as np
import pytest

from repro.channel.atmosphere import AtmosphereState
from repro.channel.geometry import Room, Vec3
from repro.channel.propagation import MultipathChannel, PathComponent, Scatterer
from repro.channel.subcarriers import SubcarrierGrid
from repro.exceptions import ChannelError, GeometryError


@pytest.fixture
def channel() -> MultipathChannel:
    grid = SubcarrierGrid(20e6, 2.412e9)
    room = Room(12, 6, 3)
    return MultipathChannel(room, grid, Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4))


class TestConstruction:
    def test_antennas_must_be_inside(self):
        grid = SubcarrierGrid(20e6, 2.412e9)
        room = Room(12, 6, 3)
        with pytest.raises(GeometryError):
            MultipathChannel(room, grid, Vec3(-1, 0, 0), Vec3(7, 0.5, 1.4))

    def test_coincident_antennas_rejected(self):
        grid = SubcarrierGrid(20e6, 2.412e9)
        room = Room(12, 6, 3)
        p = Vec3(5, 0.5, 1.4)
        with pytest.raises(GeometryError):
            MultipathChannel(room, grid, p, p)

    def test_unsupported_reflection_order(self):
        grid = SubcarrierGrid(20e6, 2.412e9)
        room = Room(12, 6, 3)
        with pytest.raises(ChannelError):
            MultipathChannel(room, grid, Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4), max_reflection_order=3)


class TestStaticPaths:
    def test_los_plus_six_reflections(self, channel):
        paths = channel.static_paths
        assert len(paths) == 7
        assert paths[0].kind == "los"
        assert sum(p.kind.startswith("reflection") for p in paths) == 6

    def test_los_is_shortest(self, channel):
        paths = channel.static_paths
        assert all(paths[0].length_m <= p.length_m for p in paths)
        assert paths[0].length_m == pytest.approx(2.0)

    def test_los_amplitude_follows_inverse_distance(self, channel):
        assert channel.static_paths[0].base_amplitude == pytest.approx(0.5)

    def test_reflection_lengths_match_image_method(self, channel):
        # Floor bounce: TX and RX at z=1.4 -> image at z=-1.4, path length
        # = sqrt(2^2 + 2.8^2).
        floor = next(p for p in channel.static_paths if p.kind == "reflection:floor")
        assert floor.length_m == pytest.approx(np.hypot(2.0, 2.8))

    def test_reflection_segments_touch_the_wall(self, channel):
        ceiling = next(p for p in channel.static_paths if p.kind == "reflection:ceiling")
        (a, bounce1), (bounce2, b) = ceiling.segments
        assert bounce1 == bounce2
        assert bounce1.z == pytest.approx(3.0)

    def test_order_zero_keeps_only_los(self):
        grid = SubcarrierGrid(20e6, 2.412e9)
        room = Room(12, 6, 3)
        ch = MultipathChannel(room, grid, Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4), max_reflection_order=0)
        assert len(ch.static_paths) == 1

    def test_order_two_adds_double_bounces(self):
        grid = SubcarrierGrid(20e6, 2.412e9)
        room = Room(12, 6, 3)
        ch = MultipathChannel(
            room, grid, Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4), max_reflection_order=2
        )
        # 1 LoS + 6 single bounces + 6*5 ordered wall pairs.
        assert len(ch.static_paths) == 37
        doubles = [p for p in ch.static_paths if p.kind.startswith("reflection2")]
        assert len(doubles) == 30
        # Each double bounce has three physical segments and two materials.
        for p in doubles:
            assert len(p.segments) == 3
            assert len(p.materials) == 2

    def test_floor_ceiling_double_bounce_length(self):
        # Image method by hand: TX mirrored across the floor (z -> -1.4)
        # then the ceiling (z -> 7.4); straight distance to RX.
        grid = SubcarrierGrid(20e6, 2.412e9)
        room = Room(12, 6, 3)
        ch = MultipathChannel(
            room, grid, Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4), max_reflection_order=2
        )
        path = next(
            p for p in ch.static_paths if p.kind == "reflection2:floor+ceiling"
        )
        assert path.length_m == pytest.approx(np.sqrt(2.0**2 + 6.0**2))

    def test_double_bounces_weaker_than_singles(self):
        grid = SubcarrierGrid(20e6, 2.412e9)
        room = Room(12, 6, 3)
        ch = MultipathChannel(
            room, grid, Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4), max_reflection_order=2
        )
        max_double = max(
            p.base_amplitude for p in ch.static_paths if p.kind.startswith("reflection2")
        )
        max_single = max(
            p.base_amplitude
            for p in ch.static_paths
            if p.kind.startswith("reflection:")
        )
        assert max_double < max_single


class TestResponse:
    def test_shape_and_dtype(self, channel):
        h = channel.response()
        assert h.shape == (64,)
        assert np.iscomplexobj(h)

    def test_frequency_selectivity(self, channel):
        # Multipath interference must vary across the band.
        amp = channel.amplitude()
        assert amp.std() > 0.01

    def test_deterministic(self, channel):
        assert np.array_equal(channel.response(), channel.response())

    def test_occupant_changes_response(self, channel):
        empty = channel.amplitude()
        occupied = channel.amplitude(scatterers=[Scatterer(Vec3(6, 3, 0))])
        assert not np.allclose(empty, occupied)

    def test_occupant_far_corner_still_perturbs(self, channel):
        # A body far from the direct link still shadows wall reflections —
        # the mechanism that makes WiFi sensing work room-wide.
        empty = channel.amplitude()
        far = channel.amplitude(scatterers=[Scatterer(Vec3(11, 5.5, 0))])
        assert np.max(np.abs(far - empty)) > 1e-4

    def test_body_on_los_attenuates_strongly(self, channel):
        empty = channel.amplitude()
        blocking = channel.amplitude(scatterers=[Scatterer(Vec3(6.0, 0.5, 0))])
        far = channel.amplitude(scatterers=[Scatterer(Vec3(11, 5.5, 0))])
        delta_blocking = np.mean(np.abs(blocking - empty))
        delta_far = np.mean(np.abs(far - empty))
        assert delta_blocking > delta_far

    def test_environment_changes_response(self, channel):
        cold = channel.amplitude(atmosphere=AtmosphereState(17, 30))
        warm = channel.amplitude(atmosphere=AtmosphereState(25, 30))
        assert not np.allclose(cold, warm)

    def test_response_composes_from_fields(self, channel):
        scatterers = [Scatterer(Vec3(6, 3, 0))]
        atmosphere = AtmosphereState(23, 45)
        composed = (
            channel.static_field(scatterers, atmosphere)
            + channel.scattered_field(scatterers)
        ) * channel.environmental_gain(atmosphere)
        assert np.allclose(composed, channel.response(scatterers, atmosphere))

    def test_scattered_field_empty_list_is_zero(self, channel):
        assert np.allclose(channel.scattered_field([]), 0.0)


class TestScatterer:
    def test_center_is_mid_height(self):
        s = Scatterer(Vec3(1, 1, 0), height_m=1.8)
        assert s.center.z == pytest.approx(0.9)

    def test_rejects_bad_build(self):
        with pytest.raises(GeometryError):
            Scatterer(Vec3(0, 0, 0), radius_m=-0.1)
        with pytest.raises(GeometryError):
            Scatterer(Vec3(0, 0, 0), reflectivity=1.5)


class TestPathComponent:
    def test_rejects_non_positive_length(self):
        with pytest.raises(ChannelError):
            PathComponent(length_m=0.0, base_amplitude=1.0, kind="los")

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ChannelError):
            PathComponent(length_m=1.0, base_amplitude=-0.1, kind="los")
