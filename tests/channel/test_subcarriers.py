"""Tests for the OFDM subcarrier grid (Section II-A's d_H rule)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.subcarriers import SubcarrierGrid, csi_dimension
from repro.exceptions import ConfigurationError


class TestCsiDimension:
    def test_paper_example_20mhz(self):
        # Section II-A: "if we transmit ... over a 20MHz channel, we obtain
        # a CSI vector H(t_i) of dimension d_H = 64".
        assert csi_dimension(20e6) == 64

    @pytest.mark.parametrize(
        "bandwidth_mhz,expected", [(20, 64), (40, 128), (80, 256), (160, 512)]
    )
    def test_all_80211ac_widths(self, bandwidth_mhz, expected):
        assert csi_dimension(bandwidth_mhz * 1e6) == expected


class TestSubcarrierGrid:
    def make(self, bandwidth_mhz=20) -> SubcarrierGrid:
        return SubcarrierGrid(bandwidth_mhz * 1e6, 2.412e9)

    def test_n_subcarriers_matches_formula(self):
        assert self.make().n_subcarriers == 64
        assert self.make(40).n_subcarriers == 128

    def test_spacing_is_312_5_khz(self):
        # 802.11 OFDM spacing is bandwidth / n = 312.5 kHz at every width.
        assert self.make().spacing_hz == pytest.approx(312_500.0)
        assert self.make(80).spacing_hz == pytest.approx(312_500.0)

    def test_rejects_non_standard_bandwidth(self):
        with pytest.raises(ConfigurationError):
            SubcarrierGrid(30e6, 2.412e9)

    def test_rejects_carrier_below_bandwidth(self):
        with pytest.raises(ConfigurationError):
            SubcarrierGrid(20e6, 10e6)

    def test_frequencies_center_on_carrier(self):
        grid = self.make()
        freqs = grid.frequencies_hz
        assert len(freqs) == 64
        # Mean offset is half a spacing below the carrier (even FFT size).
        assert abs(freqs.mean() - grid.carrier_hz) <= grid.spacing_hz

    def test_offsets_span_the_bandwidth(self):
        grid = self.make()
        offsets = grid.baseband_offsets_hz
        assert offsets[0] == pytest.approx(-grid.bandwidth_hz / 2)
        assert offsets[-1] == pytest.approx(grid.bandwidth_hz / 2 - grid.spacing_hz)
        assert np.all(np.diff(offsets) == pytest.approx(grid.spacing_hz))

    def test_guard_mask_legacy_layout(self):
        grid = self.make()
        mask = grid.is_guard
        assert mask[:6].all(), "6 low guard bins"
        assert mask[-5:].all(), "5 high guard bins"
        assert mask[32], "DC bin is null"
        assert not mask[10], "data bins are not guards"
        assert grid.n_data_subcarriers == 64 - 6 - 5 - 1

    def test_guard_mask_scales_with_width(self):
        grid = self.make(40)
        mask = grid.is_guard
        assert mask[:12].all()
        assert mask[-10:].all()
        assert mask[64]

    def test_wavelengths_near_12_5_cm(self):
        # 2.4 GHz wavelength is ~12.4 cm; all subcarriers are close.
        wl = self.make().wavelengths_m()
        assert np.all((0.120 < wl) & (wl < 0.130))
        # Higher frequency -> shorter wavelength, strictly monotone.
        assert np.all(np.diff(wl) < 0)

    def test_indices_are_nexmon_order(self):
        grid = self.make()
        assert grid.indices[0] == 0
        assert grid.indices[-1] == 63

    @given(st.sampled_from([20, 40, 80, 160]))
    def test_property_dimension_rule_holds(self, mhz):
        grid = SubcarrierGrid(mhz * 1e6, 5.5e9)
        assert grid.n_subcarriers == int(3.2 * mhz)
        assert grid.frequencies_hz.shape == (grid.n_subcarriers,)
        assert grid.is_guard.sum() < grid.n_subcarriers / 2
