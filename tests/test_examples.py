"""Smoke checks for the example scripts.

Full example runs simulate multi-hour campaigns and train paper-size
models — too slow for the unit suite (they run in CI-style usage via
``python examples/<name>.py``).  Here we verify each script compiles,
exposes a ``main`` entry point, and documents itself.
"""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {p.name for p in EXAMPLE_FILES}
    assert {
        "quickstart.py",
        "smart_building_monitor.py",
        "environment_sensing.py",
        "explain_and_deploy.py",
        "activity_and_counting.py",
        "streaming_service.py",
        "chaos_drill.py",
        "self_healing_service.py",
        "self_updating_service.py",
        "traced_service.py",
        "overloaded_service.py",
        "fleet_service.py",
        "elastic_fleet.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExampleScript:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_has_main_guard_and_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions
        assert '__name__ == "__main__"' in path.read_text()

    def test_imports_only_public_api(self, path):
        # Examples must demonstrate the public surface: imports come from
        # `repro` (any depth) or numpy, nothing private.
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                assert root in ("repro", "numpy"), f"{path.name} imports {node.module}"
                assert not any(part.startswith("_") for part in node.module.split(".")), (
                    f"{path.name} imports private module {node.module}"
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    assert alias.name.split(".")[0] in ("repro", "numpy")
