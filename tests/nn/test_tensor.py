"""Autograd engine tests, including finite-difference gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import AutogradError, ShapeError
from repro.nn.tensor import Tensor, grad_enabled, no_grad


def finite_difference(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        x_hi = x.copy()
        x_lo = x.copy()
        x_hi[idx] += eps
        x_lo[idx] -= eps
        grad[idx] = (f(x_hi) - f(x_lo)) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(op, x: np.ndarray, tolerance: float = 1e-5) -> None:
    """Compare autograd and finite-difference gradients for y = sum(op(x))."""
    t = Tensor(x, requires_grad=True)
    op(t).sum().backward()
    expected = finite_difference(lambda v: float(np.sum(op(Tensor(v)).data)), x)
    np.testing.assert_allclose(t.grad, expected, rtol=tolerance, atol=tolerance)


class TestGradcheckUnary:
    X = np.array([[0.5, -1.2, 2.0], [0.3, 1.7, -0.4]])

    def test_relu(self):
        check_gradient(lambda t: t.relu(), self.X)

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid(), self.X)

    def test_tanh(self):
        check_gradient(lambda t: t.tanh(), self.X)

    def test_exp(self):
        check_gradient(lambda t: t.exp(), self.X)

    def test_log(self):
        check_gradient(lambda t: t.log(), np.abs(self.X) + 0.5)

    def test_abs(self):
        check_gradient(lambda t: t.abs(), self.X)

    def test_neg(self):
        check_gradient(lambda t: -t, self.X)

    def test_pow(self):
        check_gradient(lambda t: t**3, self.X)

    def test_clip(self):
        check_gradient(lambda t: t.clip(-1.0, 1.5), self.X)

    def test_reshape(self):
        check_gradient(lambda t: t.reshape(3, 2).sigmoid(), self.X)

    def test_transpose(self):
        check_gradient(lambda t: t.transpose().tanh(), self.X)

    def test_getitem(self):
        check_gradient(lambda t: t[0:1] * 3.0, self.X)

    def test_mean_axis(self):
        check_gradient(lambda t: t.mean(axis=1).sigmoid(), self.X)

    def test_sum_keepdims(self):
        check_gradient(lambda t: t.sum(axis=0, keepdims=True).tanh(), self.X)


class TestGradcheckBinary:
    A = np.array([[0.5, -1.2], [0.3, 1.7]])
    B = np.array([[1.5, 0.2], [-0.3, 0.7]])

    def _check_pair(self, op):
        ta = Tensor(self.A, requires_grad=True)
        tb = Tensor(self.B, requires_grad=True)
        op(ta, tb).sum().backward()
        fa = finite_difference(
            lambda v: float(np.sum(op(Tensor(v), Tensor(self.B)).data)), self.A
        )
        fb = finite_difference(
            lambda v: float(np.sum(op(Tensor(self.A), Tensor(v)).data)), self.B
        )
        np.testing.assert_allclose(ta.grad, fa, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(tb.grad, fb, rtol=1e-5, atol=1e-6)

    def test_add(self):
        self._check_pair(lambda a, b: a + b)

    def test_sub(self):
        self._check_pair(lambda a, b: a - b)

    def test_mul(self):
        self._check_pair(lambda a, b: a * b)

    def test_div(self):
        self._check_pair(lambda a, b: a / (b + 2.0))

    def test_matmul(self):
        self._check_pair(lambda a, b: a @ b)

    def test_composite_expression(self):
        self._check_pair(lambda a, b: ((a @ b).relu() * a).sigmoid())


class TestBroadcasting:
    def test_bias_broadcast_gradient(self):
        x = Tensor(np.ones((4, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_scalar_broadcast_gradient(self):
        s = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((3, 3)))
        (x * s).sum().backward()
        assert s.grad == pytest.approx(9.0)

    def test_keepdim_column_broadcast(self):
        c = Tensor(np.ones((4, 1)), requires_grad=True)
        x = Tensor(np.full((4, 3), 2.0))
        (x * c).sum().backward()
        np.testing.assert_allclose(c.grad, np.full((4, 1), 6.0))

    @settings(max_examples=30)
    @given(st.integers(1, 5), st.integers(1, 5))
    def test_property_broadcast_grad_shape_matches_input(self, n, m):
        row = Tensor(np.ones(m), requires_grad=True)
        x = Tensor(np.ones((n, m)))
        (x + row).sum().backward()
        assert row.grad.shape == (m,)
        np.testing.assert_allclose(row.grad, n)


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(3)).sum().backward()

    def test_backward_non_scalar_needs_gradient(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AutogradError):
            (t * 2).backward()

    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3 + x * 4  # x used twice
        y.sum().backward()
        assert x.grad == pytest.approx([7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2
        b = x * 3
        (a * b).sum().backward()
        # d/dx (6 x^2) = 12 x
        assert x.grad == pytest.approx([18.0])

    def test_zero_grad_resets(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad

    def test_deep_chain_does_not_overflow(self):
        # The iterative topological sort must handle graphs deeper than the
        # Python recursion limit.
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.0001
        y.sum().backward()
        assert x.grad == pytest.approx([1.0])


class TestNoGrad:
    def test_context_disables_taping(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._parents == ()

    def test_context_restores_state(self):
        assert grad_enabled()
        with no_grad():
            assert not grad_enabled()
        assert grad_enabled()

    def test_nested_contexts(self):
        with no_grad():
            with no_grad():
                pass
            assert not grad_enabled()


class TestShapesAndErrors:
    def test_matmul_requires_2d(self):
        with pytest.raises(ShapeError):
            Tensor(np.ones(3)) @ Tensor(np.ones(3))

    def test_item_requires_single_element(self):
        with pytest.raises(ShapeError):
            Tensor(np.ones(2)).item()

    def test_log_of_negative_raises(self):
        with pytest.raises(AutogradError):
            Tensor(np.array([-1.0])).log()

    def test_clip_inverted_bounds(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(2)).clip(1.0, 0.0)

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(1), requires_grad=True))

    def test_len_and_size(self):
        t = Tensor(np.ones((4, 2)))
        assert len(t) == 4
        assert t.size == 8
        assert t.ndim == 2
