"""Tests for model persistence."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.nn.modules import Linear, ReLU, Sequential
from repro.nn.serialize import _META_KEY, load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


def make_model(seed=0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))


class TestRoundTrip:
    def test_save_load_preserves_outputs(self, tmp_path):
        a = make_model(seed=1)
        path = save_state_dict(a, tmp_path / "model.npz")
        b = make_model(seed=2)
        load_state_dict(b, path)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_returns_path(self, tmp_path):
        path = save_state_dict(make_model(), tmp_path / "m.npz")
        assert path.exists()

    def test_suffixless_path_normalized_to_npz(self, tmp_path):
        path = save_state_dict(make_model(), tmp_path / "model")
        assert path.name == "model.npz"
        assert path.exists()
        load_state_dict(make_model(seed=3), path)

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        save_state_dict(make_model(), tmp_path / "m.npz")
        # A crash-safe writer leaves exactly the final artifact behind.
        assert [p.name for p in tmp_path.iterdir()] == ["m.npz"]

    def test_overwrite_existing_file(self, tmp_path):
        a = make_model(seed=1)
        path = save_state_dict(a, tmp_path / "m.npz")
        b = make_model(seed=2)
        save_state_dict(b, path)
        c = make_model(seed=3)
        load_state_dict(c, path)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        np.testing.assert_allclose(b(x).data, c(x).data)


class TestErrors:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_state_dict(make_model(), tmp_path / "nope.npz")

    def test_load_non_model_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(SerializationError):
            load_state_dict(make_model(), path)

    def test_tampered_manifest_detected(self, tmp_path):
        path = save_state_dict(make_model(), tmp_path / "m.npz")
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["layers.0.weight"] = np.zeros((1, 1))
        np.savez(path, **payload)
        with pytest.raises(SerializationError):
            load_state_dict(make_model(), path)

    def test_save_parameterless_model(self, tmp_path):
        with pytest.raises(SerializationError):
            save_state_dict(Sequential(ReLU()), tmp_path / "m.npz")

    def test_truncated_archive(self, tmp_path):
        path = save_state_dict(make_model(), tmp_path / "m.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        with pytest.raises(SerializationError, match="truncated or corrupt"):
            load_state_dict(make_model(), path)

    def test_corrupt_json_metadata(self, tmp_path):
        path = save_state_dict(make_model(), tmp_path / "m.npz")
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload[_META_KEY] = np.frombuffer(b"{not json!", dtype=np.uint8)
        np.savez(path, **payload)
        with pytest.raises(SerializationError, match="metadata"):
            load_state_dict(make_model(), path)
