"""Tests for the module system."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.modules import Dropout, Linear, Module, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.tensor import Tensor


def make_mlp(seed=0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng), Sigmoid()
    )


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 8, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 8)

    def test_parameter_count_formula(self):
        # The paper's per-layer counts: in*out + out (e.g. 64*128+128=8320).
        layer = Linear(64, 128, rng=np.random.default_rng(0))
        assert layer.weight.size + layer.bias.size == 8320

    def test_no_bias_option(self):
        layer = Linear(4, 8, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).data == pytest.approx(np.zeros((2, 8)))

    def test_wrong_input_width_raises(self):
        layer = Linear(4, 8, rng=np.random.default_rng(0))
        with pytest.raises(ShapeError):
            layer(Tensor(np.ones((5, 3))))

    def test_rejects_bad_features(self):
        with pytest.raises(ConfigurationError):
            Linear(0, 8)

    def test_unknown_initializer(self):
        with pytest.raises(ConfigurationError):
            Linear(4, 8, init="fancy_init")


class TestActivations:
    @pytest.mark.parametrize(
        "module,fn",
        [
            (ReLU(), lambda x: np.maximum(x, 0)),
            (Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
            (Tanh(), np.tanh),
        ],
    )
    def test_elementwise(self, module, fn):
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_allclose(module(Tensor(x)).data, fn(x), rtol=1e-12)


class TestDropout:
    def test_identity_in_eval(self):
        drop = Dropout(0.9, rng=np.random.default_rng(0))
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_masks_in_train(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100))))
        kept = np.count_nonzero(out.data)
        assert 0 < kept < 100 * 100

    def test_inverted_scaling_preserves_mean(self):
        drop = Dropout(0.3, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((200, 200))))
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_rejects_p_of_one(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestSequential:
    def test_forward_chains(self):
        model = make_mlp()
        out = model(Tensor(np.zeros((2, 4))))
        assert out.shape == (2, 3)
        assert np.all((0 < out.data) & (out.data < 1))

    def test_len_and_getitem(self):
        model = make_mlp()
        assert len(model) == 4
        assert isinstance(model[0], Linear)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential()

    def test_forward_with_activations(self):
        model = make_mlp()
        out, activations = model.forward_with_activations(Tensor(np.ones((2, 4))))
        assert len(activations) == 4
        np.testing.assert_array_equal(activations[-1].data, out.data)
        assert activations[0].shape == (2, 8)

    def test_repr_lists_layers(self):
        assert "Linear" in repr(make_mlp())


class TestModulePlumbing:
    def test_parameters_found_recursively(self):
        model = make_mlp()
        params = list(model.parameters())
        assert len(params) == 4  # two weights + two biases

    def test_named_parameters_stable_paths(self):
        model = make_mlp()
        names = [name for name, _ in model.named_parameters()]
        assert names == [
            "layers.0.weight",
            "layers.0.bias",
            "layers.2.weight",
            "layers.2.bias",
        ]

    def test_n_parameters(self):
        model = make_mlp()
        assert model.n_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), Dropout(0.5))
        model.eval()
        assert not model.layers[1].training
        model.train()
        assert model.layers[1].training

    def test_zero_grad_clears_all(self):
        model = make_mlp()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_round_trip(self):
        a = make_mlp(seed=1)
        b = make_mlp(seed=2)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_is_a_copy(self):
        model = make_mlp()
        state = model.state_dict()
        state["layers.0.weight"][:] = 0.0
        assert not np.allclose(model.layers[0].weight.data, 0.0)

    def test_load_state_dict_rejects_mismatch(self):
        model = make_mlp()
        state = model.state_dict()
        del state["layers.0.bias"]
        with pytest.raises(ConfigurationError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_wrong_shape(self):
        model = make_mlp()
        state = model.state_dict()
        state["layers.0.weight"] = np.zeros((2, 2))
        with pytest.raises(ShapeError):
            model.load_state_dict(state)


class TestSequentialParamCache:
    """parameters() memoizes the walk: hot on zero_grad every step."""

    def test_repeat_calls_yield_same_tensor_objects(self):
        model = make_mlp()
        first = list(model.parameters())
        second = list(model.parameters())
        assert len(first) == 4
        assert all(a is b for a, b in zip(first, second))

    def test_cache_does_not_duplicate_or_drop_parameters(self):
        model = make_mlp()
        list(model.parameters())  # prime the cache
        named = dict(model.named_parameters())
        cached = list(model.parameters())
        assert len(cached) == len(named)
        assert {id(p) for p in cached} == {id(p) for p in named.values()}

    def test_gradient_updates_flow_through_cache(self):
        model = make_mlp()
        params = list(model.parameters())  # cached
        out = model(Tensor(np.ones((2, 4))))
        out.backward(np.ones(out.shape))
        assert any(p.grad is not None and np.any(p.grad) for p in params)
        model.zero_grad()
        assert all(p.grad is None or not np.any(p.grad) for p in params)

    def test_load_state_dict_invalidates_but_stays_correct(self):
        a, b = make_mlp(seed=0), make_mlp(seed=1)
        before = list(a.parameters())
        a.load_state_dict(b.state_dict())
        assert a._param_cache is None  # defensively invalidated
        after = list(a.parameters())
        # Tensor objects persist (load assigns .data in place)...
        assert all(x is y for x, y in zip(before, after))
        # ...and now hold b's values.
        np.testing.assert_array_equal(
            a.layers[0].weight.data, b.layers[0].weight.data
        )

    def test_n_parameters_uses_cache_consistently(self):
        model = make_mlp()
        assert model.n_parameters() == model.n_parameters() == 4 * 8 + 8 + 8 * 3 + 3


class TestLayerListInvalidation:
    """Direct mutation of model.layers must invalidate the param cache."""

    def test_append_invalidates(self):
        model = make_mlp()
        before = list(model.parameters())
        model.layers.append(Linear(3, 2, rng=np.random.default_rng(1)))
        after = list(model.parameters())
        assert len(after) == len(before) + 2

    def test_setitem_invalidates(self):
        model = make_mlp()
        list(model.parameters())
        replacement = Linear(4, 8, rng=np.random.default_rng(9))
        model.layers[0] = replacement
        assert replacement.weight in model.parameters()

    def test_delitem_and_pop_invalidate(self):
        model = make_mlp()
        list(model.parameters())
        model.layers.pop()
        del model.layers[2]
        assert len(list(model.parameters())) == 2

    def test_extend_insert_remove_invalidate(self):
        model = make_mlp()
        list(model.parameters())
        extra = Linear(3, 3, rng=np.random.default_rng(2))
        model.layers.extend([extra])
        assert extra.weight in model.parameters()
        model.layers.remove(extra)
        assert extra.weight not in model.parameters()
        model.layers.insert(0, extra)
        assert extra.weight in model.parameters()

    def test_reassigning_layers_list_invalidates(self):
        model = make_mlp()
        list(model.parameters())
        model.layers = [Linear(4, 1, rng=np.random.default_rng(3))]
        assert len(list(model.parameters())) == 2

    def test_mutated_model_trains_through_new_layer(self):
        # The regression that motivated invalidation: an optimizer built
        # after a layer swap must see the new weights, not stale ones.
        model = make_mlp()
        list(model.parameters())
        fresh = Linear(8, 3, rng=np.random.default_rng(4))
        model.layers[2] = fresh
        x = Tensor(np.random.default_rng(5).normal(size=(6, 4)))
        out = model(x)
        out.backward(np.ones_like(out.data))
        assert fresh.weight.grad is not None
