"""Tests for the optimisers, especially AdamW's decoupled decay."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.optim import SGD, Adam, AdamW
from repro.nn.tensor import Tensor


def quadratic_step(optimizer_cls, steps=200, **kwargs):
    """Minimise f(w) = ||w - 3||^2 from w=0; returns final w."""
    w = Tensor(np.zeros(4), requires_grad=True)
    opt = optimizer_cls([w], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        loss = ((w - Tensor(np.full(4, 3.0))) ** 2).sum()
        loss.backward()
        opt.step()
    return w.data


class TestConvergence:
    def test_sgd_converges_on_quadratic(self):
        w = quadratic_step(SGD, lr=0.1)
        np.testing.assert_allclose(w, 3.0, atol=1e-3)

    def test_sgd_momentum_converges(self):
        w = quadratic_step(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(w, 3.0, atol=1e-2)

    def test_adam_converges(self):
        w = quadratic_step(Adam, lr=0.1, steps=500)
        np.testing.assert_allclose(w, 3.0, atol=1e-2)

    def test_adamw_converges(self):
        w = quadratic_step(AdamW, lr=0.1, steps=500)
        np.testing.assert_allclose(w, 3.0, atol=1e-2)


class TestDecaySemantics:
    def test_adamw_decay_is_decoupled(self):
        # With zero gradient, AdamW still shrinks weights multiplicatively;
        # coupled Adam moves them through the moment estimates instead.
        w = Tensor(np.full(3, 10.0), requires_grad=True)
        opt = AdamW([w], lr=0.1, weight_decay=0.1)
        w.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(w.data, 10.0 * (1 - 0.1 * 0.1), rtol=1e-9)

    def test_adam_coupled_decay_differs_from_adamw(self):
        def run(cls):
            w = Tensor(np.full(3, 10.0), requires_grad=True)
            opt = cls([w], lr=0.1, weight_decay=0.1)
            for _ in range(5):
                opt.zero_grad()
                (w * Tensor(np.ones(3))).sum().backward()
                opt.step()
            return w.data.copy()

        assert not np.allclose(run(Adam), run(AdamW))

    def test_sgd_weight_decay_shrinks(self):
        w = Tensor(np.full(3, 1.0), requires_grad=True)
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        w.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(w.data, 0.9)


class TestBookkeeping:
    def test_parameters_without_grad_skipped(self):
        w = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([w], lr=0.1)
        opt.step()  # no grad set: must not crash or move
        np.testing.assert_allclose(w.data, 1.0)

    def test_zero_grad(self):
        w = Tensor(np.ones(2), requires_grad=True)
        w.grad = np.ones(2)
        SGD([w], lr=0.1).zero_grad()
        assert w.grad is None

    def test_adam_bias_correction_first_step(self):
        # After one step with constant gradient g, Adam moves by ~lr*sign(g).
        w = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([w], lr=0.01)
        w.grad = np.array([5.0])
        opt.step()
        assert w.data[0] == pytest.approx(-0.01, rel=1e-3)

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (SGD, {"lr": 0.0}),
            (SGD, {"lr": 0.1, "momentum": 1.0}),
            (SGD, {"lr": 0.1, "weight_decay": -1.0}),
            (Adam, {"lr": 0.1, "betas": (1.0, 0.9)}),
            (Adam, {"lr": 0.1, "eps": 0.0}),
        ],
    )
    def test_rejects_bad_hyperparameters(self, cls, kwargs):
        w = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ConfigurationError):
            cls([w], **kwargs)

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)
