"""Tests for crash-safe checkpoints and kill-and-resume training."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SerializationError
from repro.nn.checkpoint import (
    CheckpointCallback,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn.losses import mse_loss
from repro.nn.modules import Linear, ReLU, Sequential
from repro.nn.optim import SGD, AdamW
from repro.nn.train import Trainer, TrainingHistory


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 12, rng=rng), ReLU(), Linear(12, 1, rng=rng))


def make_data(n=128, seed=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 6))
    y = (x @ rng.normal(size=6) + 0.1 * rng.normal(size=n))[:, None]
    return x, y


def make_trainer(seed=0):
    model = make_model(seed=seed)
    optimizer = AdamW(model.parameters(), lr=1e-2, weight_decay=1e-2)
    return Trainer(model, optimizer, mse_loss, batch_size=32,
                   rng=np.random.default_rng(11))


def flat_params(model):
    return np.concatenate([p.data.ravel() for p in model.parameters()])


class TestSaveLoadRoundTrip:
    def test_round_trip_restores_everything(self, tmp_path):
        trainer = make_trainer()
        x, y = make_data()
        history = trainer.fit(x, y, epochs=3)
        path = save_checkpoint(
            tmp_path / "ckpt.npz",
            model=trainer.model,
            optimizer=trainer.optimizer,
            epoch=2,
            history=history,
            rng=trainer._rng,
        )
        fresh = make_trainer(seed=99)
        checkpoint = load_checkpoint(path)
        checkpoint.restore(model=fresh.model, optimizer=fresh.optimizer, rng=fresh._rng)
        np.testing.assert_array_equal(flat_params(fresh.model), flat_params(trainer.model))
        assert fresh.optimizer._t == trainer.optimizer._t
        for a, b in zip(fresh.optimizer._m, trainer.optimizer._m):
            np.testing.assert_array_equal(a, b)
        assert fresh._rng.bit_generator.state == trainer._rng.bit_generator.state
        assert checkpoint.epoch == 2
        assert checkpoint.history.train_loss == history.train_loss

    def test_suffix_normalized(self, tmp_path):
        trainer = make_trainer()
        path = save_checkpoint(
            tmp_path / "ckpt",
            model=trainer.model,
            optimizer=trainer.optimizer,
            epoch=0,
            history=TrainingHistory(train_loss=[1.0]),
        )
        assert path.name == "ckpt.npz"
        assert path.exists()

    def test_truncated_archive_is_serialization_error(self, tmp_path):
        trainer = make_trainer()
        path = save_checkpoint(
            tmp_path / "ckpt.npz",
            model=trainer.model,
            optimizer=trainer.optimizer,
            epoch=0,
            history=TrainingHistory(train_loss=[1.0]),
        )
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(SerializationError):
            load_checkpoint(path)

    def test_missing_rng_state_raises_on_restore(self, tmp_path):
        trainer = make_trainer()
        path = save_checkpoint(
            tmp_path / "ckpt.npz",
            model=trainer.model,
            optimizer=trainer.optimizer,
            epoch=0,
            history=TrainingHistory(train_loss=[1.0]),
            rng=None,
        )
        with pytest.raises(SerializationError, match="no RNG state"):
            load_checkpoint(path).restore(rng=np.random.default_rng(0))

    def test_sgd_momentum_round_trips(self, tmp_path):
        model = make_model()
        optimizer = SGD(model.parameters(), lr=1e-2, momentum=0.9)
        trainer = Trainer(model, optimizer, mse_loss, batch_size=32,
                          rng=np.random.default_rng(1))
        x, y = make_data()
        trainer.fit(x, y, epochs=2)
        path = save_checkpoint(
            tmp_path / "sgd.npz", model=model, optimizer=optimizer,
            epoch=1, history=TrainingHistory(train_loss=[1.0, 0.5]),
        )
        fresh_model = make_model(seed=5)
        fresh_opt = SGD(fresh_model.parameters(), lr=5e-3, momentum=0.9)
        load_checkpoint(path).restore(model=fresh_model, optimizer=fresh_opt)
        assert fresh_opt.lr == optimizer.lr
        for a, b in zip(fresh_opt._velocity, optimizer._velocity):
            np.testing.assert_array_equal(a, b)


class TestKillAndResume:
    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        """Checkpoint at epoch k, kill, resume ⇒ identical tail and params."""
        x, y = make_data()
        x_val, y_val = make_data(n=48, seed=7)

        uninterrupted = make_trainer()
        full_history = uninterrupted.fit(x, y, epochs=6, x_val=x_val, y_val=y_val)

        killed = make_trainer()
        callback = CheckpointCallback(killed, tmp_path / "ckpts", keep_last=2)
        killed.fit(x, y, epochs=3, x_val=x_val, y_val=y_val, callbacks=[callback])
        assert callback.latest is not None and callback.latest.name == "epoch-0002.npz"

        resumed = make_trainer(seed=42)  # different init: checkpoint overrides
        resumed_history = resumed.fit(
            x, y, epochs=6, x_val=x_val, y_val=y_val, resume_from=callback.latest
        )

        np.testing.assert_allclose(
            flat_params(resumed.model), flat_params(uninterrupted.model), atol=1e-6
        )
        np.testing.assert_allclose(
            resumed_history.train_loss, full_history.train_loss, atol=1e-6
        )
        np.testing.assert_allclose(
            resumed_history.val_loss, full_history.val_loss, atol=1e-6
        )
        assert resumed_history.n_epochs == 6

    def test_resume_past_target_epochs_is_a_no_op(self, tmp_path):
        trainer = make_trainer()
        x, y = make_data()
        callback = CheckpointCallback(trainer, tmp_path)
        trainer.fit(x, y, epochs=4, callbacks=[callback])
        resumed = make_trainer()
        history = resumed.fit(x, y, epochs=4, resume_from=callback.latest)
        assert history.n_epochs == 4  # restored history, no extra epochs


class TestCheckpointCallback:
    def test_keeps_last_k_and_best(self, tmp_path):
        trainer = make_trainer()
        x, y = make_data()
        x_val, y_val = make_data(n=48, seed=7)
        callback = CheckpointCallback(trainer, tmp_path, keep_last=2)
        trainer.fit(x, y, epochs=5, x_val=x_val, y_val=y_val, callbacks=[callback])
        on_disk = sorted(p.name for p in tmp_path.glob("*.npz"))
        assert on_disk == ["best.npz", "epoch-0003.npz", "epoch-0004.npz"]
        best = load_checkpoint(tmp_path / "best.npz")
        assert best.epoch == int(np.argmin(trainer.history.val_loss))

    def test_monitor_falls_back_to_train_loss(self, tmp_path):
        trainer = make_trainer()
        x, y = make_data()
        callback = CheckpointCallback(trainer, tmp_path, keep_last=1)
        trainer.fit(x, y, epochs=3, callbacks=[callback])
        assert callback.best_path is not None

    def test_validation(self, tmp_path):
        trainer = make_trainer()
        with pytest.raises(ConfigurationError):
            CheckpointCallback(trainer, tmp_path, keep_last=0)
        with pytest.raises(ConfigurationError):
            CheckpointCallback(trainer, tmp_path, divergence_factor=1.0)


class PoisonAfter:
    """Loss function that turns NaN after ``n_calls`` training batches."""

    def __init__(self, inner, n_calls: int) -> None:
        self.inner = inner
        self.n_calls = n_calls
        self.calls = 0

    def __call__(self, output, target):
        self.calls += 1
        loss = self.inner(output, target)
        if self.calls > self.n_calls:
            return loss * float("nan")
        return loss


class TestDivergenceGuard:
    def test_nan_epoch_rolls_back_and_stops(self, tmp_path):
        x, y = make_data()
        model = make_model()
        optimizer = AdamW(model.parameters(), lr=1e-2)
        loss = PoisonAfter(mse_loss, n_calls=2 * (len(x) // 32 + 1))
        trainer = Trainer(model, optimizer, loss, batch_size=32,
                          rng=np.random.default_rng(11))
        callback = CheckpointCallback(trainer, tmp_path / "ckpts", keep_last=3)
        history = trainer.fit(x, y, epochs=10, callbacks=[callback])

        assert callback.rollbacks == 1
        assert history.n_epochs < 10  # stopped, did not grind through NaN
        assert not np.isfinite(history.train_loss[-1])  # honest history
        assert np.isfinite(flat_params(trainer.model)).all()  # clean weights
        good = load_checkpoint(callback.restored_from)
        np.testing.assert_array_equal(
            flat_params(trainer.model),
            np.concatenate([good.model_state[k].ravel() for k in good.model_state]),
        )

class TestRollbackThenResume:
    """NaN rollback × ``resume_from``: the poisoned epoch must be gone."""

    def _poisoned_run(self, tmp_path):
        x, y = make_data()
        model = make_model()
        optimizer = AdamW(model.parameters(), lr=1e-2, weight_decay=1e-2)
        loss = PoisonAfter(mse_loss, n_calls=2 * (len(x) // 32 + 1))
        trainer = Trainer(model, optimizer, loss, batch_size=32,
                          rng=np.random.default_rng(11))
        callback = CheckpointCallback(trainer, tmp_path / "ckpts", keep_last=3)
        history = trainer.fit(x, y, epochs=6, callbacks=[callback])
        return x, y, trainer, callback, history

    def test_nan_guard_fires_before_save(self, tmp_path):
        """The diverged epoch is never written: no checkpoint can be poisoned."""
        x, y, trainer, callback, history = self._poisoned_run(tmp_path)
        assert callback.rollbacks == 1
        diverged_epoch = history.n_epochs - 1
        on_disk = {p.name for p in (tmp_path / "ckpts").glob("epoch-*.npz")}
        assert f"epoch-{diverged_epoch:04d}.npz" not in on_disk
        assert callback.restored_from == callback.latest
        assert load_checkpoint(callback.latest).epoch == diverged_epoch - 1
        for path in (tmp_path / "ckpts").glob("*.npz"):
            state = load_checkpoint(path).model_state
            assert all(np.isfinite(v).all() for v in state.values()), path.name

    def test_rollback_restores_rng_bit_generator_state(self, tmp_path):
        x, y, trainer, callback, _ = self._poisoned_run(tmp_path)
        # The trainer's shuffle RNG must sit exactly where the restored
        # checkpoint recorded it — not where the poisoned epoch left it —
        # or a resumed run would replay different batches.
        witness = np.random.default_rng(0)
        load_checkpoint(callback.restored_from).restore(rng=witness)
        assert trainer._rng.bit_generator.state == witness.bit_generator.state

    def test_resume_after_rollback_matches_clean_run(self, tmp_path):
        """Resuming from the rollback target replays the never-poisoned run."""
        x, y, _, callback, _ = self._poisoned_run(tmp_path)

        reference = make_trainer()
        ref_history = reference.fit(x, y, epochs=6)

        resumed = make_trainer(seed=42)  # different init: checkpoint overrides
        resumed_history = resumed.fit(x, y, epochs=6, resume_from=callback.latest)

        np.testing.assert_allclose(
            flat_params(resumed.model), flat_params(reference.model), atol=1e-6
        )
        np.testing.assert_allclose(
            resumed_history.train_loss, ref_history.train_loss, atol=1e-6
        )
        # The poisoned epoch appears nowhere in the resumed history.
        assert np.isfinite(resumed_history.train_loss).all()
        assert resumed_history.n_epochs == 6


class TestDivergenceFactor:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_divergence_factor_triggers_on_explosion(self, tmp_path):
        x, y = make_data()
        model = make_model()
        # Absurd learning rate: loss explodes without going NaN immediately.
        optimizer = SGD(model.parameters(), lr=50.0)
        trainer = Trainer(model, optimizer, mse_loss, batch_size=32,
                          rng=np.random.default_rng(11))
        callback = CheckpointCallback(
            trainer, tmp_path, keep_last=3, divergence_factor=10.0
        )
        history = trainer.fit(x, y, epochs=10, callbacks=[callback])
        assert callback.rollbacks == 1
        assert history.n_epochs < 10
