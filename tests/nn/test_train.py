"""Tests for the mini-batch trainer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.losses import bce_with_logits_loss, mse_loss
from repro.nn.modules import Linear, ReLU, Sequential
from repro.nn.optim import AdamW
from repro.nn.train import Trainer, TrainerCallback, TrainingHistory


def make_trainer(seed=0, in_dim=2, out_dim=1, loss=bce_with_logits_loss, batch_size=32):
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(in_dim, 16, rng=rng), ReLU(), Linear(16, out_dim, rng=rng))
    opt = AdamW(model.parameters(), lr=1e-2, weight_decay=1e-4)
    return Trainer(model, opt, loss, batch_size=batch_size, rng=rng)


def xor_data(n=512, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = ((x[:, 0] * x[:, 1]) > 0).astype(float)
    return x, y


class TestFit:
    def test_learns_xor(self):
        x, y = xor_data()
        trainer = make_trainer()
        history = trainer.fit(x, y, epochs=30)
        pred = (trainer.predict(x).ravel() > 0).astype(float)
        assert (pred == y).mean() > 0.95
        assert history.n_epochs == 30

    def test_loss_decreases(self):
        x, y = xor_data()
        trainer = make_trainer()
        history = trainer.fit(x, y, epochs=20)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_validation_tracking(self):
        x, y = xor_data()
        trainer = make_trainer()
        history = trainer.fit(x[:400], y[:400], epochs=5, x_val=x[400:], y_val=y[400:])
        assert len(history.val_loss) == 5

    def test_metric_fn_recorded(self):
        x, y = xor_data()
        trainer = make_trainer()

        def accuracy(y_true, y_pred):
            return float(((y_pred.ravel() > 0) == y_true.ravel()).mean())

        history = trainer.fit(
            x[:400], y[:400], epochs=3, x_val=x[400:], y_val=y[400:], metric_fn=accuracy
        )
        assert len(history.val_metric) == 3
        assert all(0 <= m <= 1 for m in history.val_metric)

    def test_early_stopping_halts(self):
        x, y = xor_data()
        trainer = make_trainer()
        # Validation on training data converges; a tiny patience must stop
        # before the full epoch budget once improvement stalls.
        history = trainer.fit(
            x, y, epochs=200, x_val=x, y_val=y, early_stopping_patience=2
        )
        assert history.n_epochs < 200

    def test_regression_path(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(256, 3))
        y = x @ np.array([[1.0], [2.0], [-1.0]])
        trainer = make_trainer(in_dim=3, loss=mse_loss)
        trainer.fit(x, y, epochs=50)
        assert trainer.evaluate_loss(x, y) < 0.1

    def test_scheduler_steps_per_epoch(self):
        from repro.nn.schedulers import ExponentialLR

        x, y = xor_data(128)
        trainer = make_trainer()
        scheduler = ExponentialLR(trainer.optimizer, gamma=0.5)
        trainer.fit(x, y, epochs=3, scheduler=scheduler)
        assert trainer.optimizer.lr == pytest.approx(1e-2 * 0.5**3)

    def test_deterministic_given_seed(self):
        x, y = xor_data()
        h1 = make_trainer(seed=9).fit(x, y, epochs=3)
        h2 = make_trainer(seed=9).fit(x, y, epochs=3)
        assert h1.train_loss == h2.train_loss


class TestValidationAndErrors:
    def test_rejects_1d_inputs(self):
        trainer = make_trainer()
        with pytest.raises(ShapeError):
            trainer.fit(np.ones(10), np.ones(10), epochs=1)

    def test_rejects_mismatched_lengths(self):
        trainer = make_trainer()
        with pytest.raises(ShapeError):
            trainer.fit(np.ones((10, 2)), np.ones(5), epochs=1)

    def test_rejects_zero_epochs(self):
        trainer = make_trainer()
        with pytest.raises(ConfigurationError):
            trainer.fit(np.ones((4, 2)), np.ones(4), epochs=0)

    def test_rejects_bad_patience(self):
        trainer = make_trainer()
        with pytest.raises(ConfigurationError):
            trainer.fit(np.ones((4, 2)), np.ones(4), epochs=1, early_stopping_patience=0)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            make_trainer(batch_size=0)

    def test_predict_batches_large_input(self):
        trainer = make_trainer()
        x, y = xor_data(64)
        trainer.fit(x, y, epochs=1)
        out = trainer.predict(np.ones((5000, 2)))
        assert out.shape == (5000, 1)


class RecordingCallback(TrainerCallback):
    def __init__(self):
        self.calls = []

    def on_epoch_end(self, epoch, logs):
        self.calls.append((epoch, dict(logs)))


class TestCallbacks:
    def test_called_once_per_epoch_with_logs(self):
        x, y = xor_data(128)
        trainer = make_trainer()
        callback = RecordingCallback()
        trainer.fit(x, y, epochs=3, callbacks=[callback])
        assert [epoch for epoch, _ in callback.calls] == [0, 1, 2]
        for _, logs in callback.calls:
            assert set(logs) == {"train_loss", "duration_s"}
            assert logs["duration_s"] >= 0

    def test_validation_logs_included(self):
        x, y = xor_data(128)
        trainer = make_trainer()
        callback = RecordingCallback()

        def accuracy(y_true, y_pred):
            return float(((y_pred.ravel() > 0) == y_true.ravel()).mean())

        trainer.fit(
            x[:96], y[:96], epochs=2, x_val=x[96:], y_val=y[96:],
            metric_fn=accuracy, callbacks=[callback],
        )
        for _, logs in callback.calls:
            assert {"train_loss", "val_loss", "val_metric", "duration_s"} <= set(logs)

    def test_early_stop_epoch_still_reported(self):
        x, y = xor_data(128)
        trainer = make_trainer()
        callback = RecordingCallback()
        history = trainer.fit(
            x, y, epochs=200, x_val=x, y_val=y,
            early_stopping_patience=2, callbacks=[callback],
        )
        # The epoch that triggered the stop is observed too.
        assert len(callback.calls) == history.n_epochs

    def test_multiple_callbacks_all_fire(self):
        x, y = xor_data(64)
        trainer = make_trainer()
        first, second = RecordingCallback(), RecordingCallback()
        trainer.fit(x, y, epochs=2, callbacks=[first, second])
        assert len(first.calls) == len(second.calls) == 2

    def test_base_callback_is_noop(self):
        x, y = xor_data(64)
        make_trainer().fit(x, y, epochs=1, callbacks=[TrainerCallback()])


class TestTrainingHistory:
    def test_best_epoch_prefers_validation(self):
        history = TrainingHistory(train_loss=[3, 2, 1], val_loss=[1.0, 0.5, 0.8])
        assert history.best_epoch() == 1

    def test_best_epoch_falls_back_to_train(self):
        history = TrainingHistory(train_loss=[3, 1, 2])
        assert history.best_epoch() == 1

    def test_empty_history_raises(self):
        with pytest.raises(ConfigurationError):
            TrainingHistory().best_epoch()
