"""Tests for weight initialisation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.init import (
    INITIALIZERS,
    get_initializer,
    kaiming_normal,
    kaiming_uniform,
    xavier_normal,
    xavier_uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestShapesAndScales:
    @pytest.mark.parametrize("fn", list(INITIALIZERS.values()))
    def test_shape(self, fn, rng):
        assert fn(64, 128, rng).shape == (64, 128)

    def test_kaiming_uniform_bound(self, rng):
        w = kaiming_uniform(100, 50, rng)
        bound = np.sqrt(6.0 / 100)
        assert np.all(np.abs(w) <= bound)

    def test_kaiming_normal_std(self, rng):
        w = kaiming_normal(1000, 200, rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.05)

    def test_xavier_uniform_bound(self, rng):
        w = xavier_uniform(60, 40, rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 100))

    def test_xavier_normal_std(self, rng):
        w = xavier_normal(500, 500, rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.05)

    def test_kaiming_preserves_relu_second_moment(self, rng):
        # He init: E[relu(xW)^2] = Var(xW)/2 = fan * var_x * (2/fan) / 2
        # = var_x, so the signal magnitude is preserved layer to layer.
        x = rng.normal(size=(2000, 256))
        w = kaiming_normal(256, 256, rng)
        out = np.maximum(x @ w, 0)
        assert np.mean(out**2) == pytest.approx(x.var(), rel=0.15)


class TestLookup:
    def test_get_by_name(self):
        assert get_initializer("kaiming_uniform") is kaiming_uniform

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_initializer("glorot")

    @pytest.mark.parametrize("fn", list(INITIALIZERS.values()))
    def test_rejects_bad_fans(self, fn, rng):
        with pytest.raises(ConfigurationError):
            fn(0, 8, rng)
