"""Tests for the functional namespace."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestFunctional:
    def test_relu(self):
        out = F.relu(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_sigmoid_midpoint(self):
        assert F.sigmoid(Tensor(np.array([0.0]))).data[0] == pytest.approx(0.5)

    def test_tanh(self):
        np.testing.assert_allclose(
            F.tanh(Tensor(np.array([0.5]))).data, np.tanh([0.5])
        )

    def test_exp_log_inverse(self):
        x = Tensor(np.array([0.5, 1.5]))
        np.testing.assert_allclose(F.log(F.exp(x)).data, x.data, rtol=1e-12)

    def test_linear_with_bias(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.ones((3, 4)))
        b = Tensor(np.ones(4))
        np.testing.assert_allclose(F.linear(x, w, b).data, 4.0)

    def test_linear_without_bias(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(F.linear(x, w).data, 3.0)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        out = F.softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0, rtol=1e-9)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]])))
        np.testing.assert_allclose(out.data, 0.5)

    def test_softmax_gradient_flows(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        (F.softmax(x) * Tensor(np.array([[1.0, 0.0, 0.0]]))).sum().backward()
        assert x.grad is not None
        # Softmax gradient rows sum to ~0.
        assert abs(x.grad.sum()) < 1e-9

    def test_mean(self):
        assert F.mean(Tensor(np.array([1.0, 3.0]))).item() == 2.0
