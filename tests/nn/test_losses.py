"""Tests for the loss functions (paper Eq. 4 and the regression losses)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ShapeError
from repro.nn.losses import bce_loss, bce_with_logits_loss, bce_value, l1_loss, mse_loss
from repro.nn.tensor import Tensor


class TestBCE:
    def test_perfect_prediction_near_zero(self):
        p = Tensor(np.array([[0.9999], [0.0001]]))
        y = Tensor(np.array([[1.0], [0.0]]))
        assert bce_loss(p, y).item() < 0.001

    def test_worst_prediction_large(self):
        p = Tensor(np.array([[0.0001]]))
        y = Tensor(np.array([[1.0]]))
        assert bce_loss(p, y).item() > 5.0

    def test_matches_eq4_by_hand(self):
        # BCE = -(y log p + (1-y) log(1-p)) averaged.
        p = Tensor(np.array([[0.8], [0.3]]))
        y = Tensor(np.array([[1.0], [0.0]]))
        expected = -0.5 * (np.log(0.8) + np.log(0.7))
        assert bce_loss(p, y).item() == pytest.approx(expected, rel=1e-6)

    def test_logits_form_matches_probability_form(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(20, 1))
        y = rng.integers(0, 2, size=(20, 1)).astype(float)
        a = bce_with_logits_loss(Tensor(z), Tensor(y)).item()
        b = bce_loss(Tensor(1 / (1 + np.exp(-z))), Tensor(y)).item()
        assert a == pytest.approx(b, rel=1e-5)

    def test_logits_form_stable_at_extremes(self):
        z = Tensor(np.array([[1000.0], [-1000.0]]))
        y = Tensor(np.array([[1.0], [0.0]]))
        assert bce_with_logits_loss(z, y).item() == pytest.approx(0.0, abs=1e-9)

    def test_gradient_matches_sigmoid_minus_target(self):
        # d BCE / d z = (sigmoid(z) - y) / N away from the z=0 kink.
        z_val = np.full((4, 1), 0.3)
        z = Tensor(z_val, requires_grad=True)
        y = Tensor(np.ones((4, 1)))
        bce_with_logits_loss(z, y).backward()
        expected = (1 / (1 + np.exp(-z_val)) - 1.0) / 4
        np.testing.assert_allclose(z.grad, expected, rtol=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            bce_loss(Tensor(np.ones((2, 1))), Tensor(np.ones((3, 1))))

    def test_bce_value_numpy_path(self):
        p = np.array([0.8, 0.3])
        y = np.array([1.0, 0.0])
        expected = -0.5 * (np.log(0.8) + np.log(0.7))
        assert bce_value(p, y) == pytest.approx(expected, rel=1e-6)

    @settings(max_examples=30)
    @given(
        arrays(np.float64, (5, 1), elements=st.floats(-10, 10)),
        arrays(np.float64, (5, 1), elements=st.sampled_from([0.0, 1.0])),
    )
    def test_property_bce_non_negative(self, z, y):
        assert bce_with_logits_loss(Tensor(z), Tensor(y)).item() >= 0.0


class TestRegressionLosses:
    def test_mse_by_hand(self):
        a = Tensor(np.array([[1.0], [3.0]]))
        b = Tensor(np.array([[2.0], [1.0]]))
        assert mse_loss(a, b).item() == pytest.approx((1 + 4) / 2)

    def test_l1_by_hand(self):
        a = Tensor(np.array([[1.0], [3.0]]))
        b = Tensor(np.array([[2.0], [1.0]]))
        assert l1_loss(a, b).item() == pytest.approx(1.5)

    def test_zero_at_equality(self):
        x = Tensor(np.ones((3, 2)))
        assert mse_loss(x, x).item() == 0.0
        assert l1_loss(x, x).item() == 0.0

    def test_mse_gradient(self):
        a = Tensor(np.array([[2.0]]), requires_grad=True)
        b = Tensor(np.array([[0.0]]))
        mse_loss(a, b).backward()
        np.testing.assert_allclose(a.grad, [[4.0]])

    @settings(max_examples=30)
    @given(arrays(np.float64, (4, 2), elements=st.floats(-100, 100)))
    def test_property_mse_dominates_squared_l1_per_element(self, x):
        # RMS >= mean absolute (Jensen): mse >= l1^2.
        zero = Tensor(np.zeros_like(x))
        mse = mse_loss(Tensor(x), zero).item()
        l1 = l1_loss(Tensor(x), zero).item()
        assert mse >= l1**2 - 1e-9
