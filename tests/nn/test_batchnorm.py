"""Tests for BatchNorm1d and gradient clipping."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.modules import BatchNorm1d, Linear, ReLU, Sequential
from repro.nn.optim import SGD, clip_grad_norm
from repro.nn.tensor import Tensor


class TestBatchNorm1d:
    def test_training_normalizes_batch(self):
        bn = BatchNorm1d(3)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(5.0, 2.0, size=(256, 3)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, rtol=1e-2)

    def test_running_stats_converge(self):
        bn = BatchNorm1d(2, momentum=0.5)
        rng = np.random.default_rng(0)
        for _ in range(50):
            bn(Tensor(rng.normal(3.0, 1.5, size=(128, 2))))
        np.testing.assert_allclose(bn.running_mean, 3.0, atol=0.3)
        np.testing.assert_allclose(np.sqrt(bn.running_var), 1.5, atol=0.3)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2)
        rng = np.random.default_rng(0)
        # Enough batches for the momentum-0.1 running mean to converge:
        # 1 - 0.9^60 ~ 0.998 of the way to the true mean.
        for _ in range(60):
            bn(Tensor(rng.normal(3.0, 1.0, size=(128, 2))))
        bn.eval()
        single = bn(Tensor(np.array([[3.0, 3.0]])))
        np.testing.assert_allclose(single.data, 0.0, atol=0.3)

    def test_eval_deterministic_single_sample(self):
        bn = BatchNorm1d(2)
        bn(Tensor(np.random.default_rng(0).normal(size=(64, 2))))
        bn.eval()
        x = Tensor(np.array([[0.5, -0.5]]))
        np.testing.assert_array_equal(bn(x).data, bn(x).data)

    def test_affine_parameters_trainable(self):
        bn = BatchNorm1d(2)
        params = list(bn.parameters())
        assert len(params) == 2
        out = bn(Tensor(np.random.default_rng(0).normal(size=(32, 2))))
        out.sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None

    def test_inside_sequential(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Linear(4, 8, rng=rng), BatchNorm1d(8), ReLU(), Linear(8, 1, rng=rng)
        )
        out = model(Tensor(rng.normal(size=(16, 4))))
        assert out.shape == (16, 1)
        out.sum().backward()
        assert model.layers[0].weight.grad is not None

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            BatchNorm1d(3)(Tensor(np.ones((4, 5))))

    @pytest.mark.parametrize(
        "kwargs",
        [{"n_features": 0}, {"n_features": 2, "momentum": 0.0}, {"n_features": 2, "eps": 0.0}],
    )
    def test_construction_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchNorm1d(**kwargs)


class TestClipGradNorm:
    def test_large_gradient_scaled_to_max(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_small_gradient_untouched(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_global_norm_across_parameters(self):
        a = Tensor(np.zeros(1), requires_grad=True)
        b = Tensor(np.zeros(1), requires_grad=True)
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_no_gradients_returns_zero(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        assert clip_grad_norm([p], 1.0) == 0.0

    def test_rejects_bad_max_norm(self):
        with pytest.raises(ConfigurationError):
            clip_grad_norm([], 0.0)

    def test_stabilizes_training_step(self):
        # One pathological batch must not fling the weights away.
        w = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([w], lr=0.1)
        w.grad = np.full(2, 1e6)
        clip_grad_norm([w], max_norm=1.0)
        opt.step()
        assert np.all(np.abs(w.data - 1.0) < 0.2)
