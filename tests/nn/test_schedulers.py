"""Tests for the learning-rate schedulers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.optim import SGD
from repro.nn.schedulers import CosineAnnealingLR, ExponentialLR, StepLR
from repro.nn.tensor import Tensor


def make_optimizer(lr=0.1) -> SGD:
    return SGD([Tensor(np.ones(2), requires_grad=True)], lr=lr)


class TestStepLR:
    def test_halves_every_step_size(self):
        opt = make_optimizer(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(6)]
        assert rates == pytest.approx([0.1, 0.05, 0.05, 0.025, 0.025, 0.0125])
        assert opt.lr == pytest.approx(0.0125)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StepLR(make_optimizer(), step_size=0)
        with pytest.raises(ConfigurationError):
            StepLR(make_optimizer(), gamma=0.0)


class TestCosine:
    def test_decays_to_min(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=10, min_lr=1e-4)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(1e-4)

    def test_monotone_decreasing(self):
        sched = CosineAnnealingLR(make_optimizer(0.1), t_max=20)
        rates = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_clamps_past_t_max(self):
        sched = CosineAnnealingLR(make_optimizer(0.1), t_max=5, min_lr=1e-4)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(1e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CosineAnnealingLR(make_optimizer(), t_max=0)
        with pytest.raises(ConfigurationError):
            CosineAnnealingLR(make_optimizer(), t_max=5, min_lr=0.0)


class TestExponential:
    def test_geometric_decay(self):
        sched = ExponentialLR(make_optimizer(1.0), gamma=0.5)
        rates = [sched.step() for _ in range(3)]
        assert rates == pytest.approx([0.5, 0.25, 0.125])

    def test_gamma_one_is_constant(self):
        sched = ExponentialLR(make_optimizer(0.3), gamma=1.0)
        assert sched.step() == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialLR(make_optimizer(), gamma=1.5)


class TestIntegration:
    def test_scheduler_drives_training(self):
        # A scheduler-stepped run still converges on a quadratic.
        w = Tensor(np.zeros(3), requires_grad=True)
        opt = SGD([w], lr=0.2)
        sched = ExponentialLR(opt, gamma=0.95)
        for _ in range(200):
            opt.zero_grad()
            ((w - Tensor(np.full(3, 2.0))) ** 2).sum().backward()
            opt.step()
            sched.step()
        np.testing.assert_allclose(w.data, 2.0, atol=1e-2)
