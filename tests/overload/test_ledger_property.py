"""Property test: the frame ledger balances under randomized burst load.

For any burst schedule — random per-tenant rates, random burst timing,
random service cadence, overload plane on or off — every submitted frame
must end in exactly one typed terminal outcome once the surface is
flushed at shutdown:

    submitted + fills == answered + rejected + quarantined
                       + policy_rejected + stale + overflow
                       + rate_limited + deadline_expired + shed

and the serving surface's own per-tenant tallies must agree with the
observer's event-side ledger cause by cause.  Both serving surfaces
(engine and fleet) are driven through the same randomized schedules.
"""

import numpy as np
import pytest

from repro.fastpath.plan import InferencePlan
from repro.fleet.service import Fleet
from repro.nn.modules import Linear, ReLU, Sequential
from repro.obs.observer import Observer
from repro.overload.governor import OverloadPolicy, ServiceMode
from repro.serve.config import ServeConfig
from repro.serve.engine import InferenceEngine

N_INPUTS = 8
SEEDS = [0, 1, 2, 3, 4, 5]

#: Every terminal cause in the ledger identity, ledger-key order.
CAUSES = (
    "rejected",
    "quarantined",
    "policy_rejected",
    "stale",
    "overflow",
    "rate_limited",
    "deadline_expired",
    "shed",
)


def make_plan(rng):
    return InferencePlan.from_model(
        Sequential(Linear(N_INPUTS, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng))
    )


def random_schedule(rng):
    """(t_s, tenant, row) arrivals with random bursts, plus pump times."""
    tenants = [f"t{i}" for i in range(int(rng.integers(1, 4)))]
    arrivals = []
    t = 0.0
    for _ in range(int(rng.integers(50, 250))):
        t += float(rng.exponential(0.05))
        tenant = tenants[int(rng.integers(len(tenants)))]
        if rng.random() < 0.3:  # burst: several frames at ~the same instant
            for k in range(int(rng.integers(2, 8))):
                arrivals.append((t + k * 1e-3, tenant))
        else:
            arrivals.append((t, tenant))
    arrivals.sort()
    return arrivals


def random_config(rng, observer):
    """A ServeConfig with the overload plane randomly on or off."""
    kwargs = dict(
        max_batch=4,
        max_latency_ms=None,
        queue_capacity=int(rng.integers(8, 33)),
        auto_flush=False,
        observer=observer,
    )
    if rng.random() < 0.7:
        kwargs["rate_limit_hz"] = float(rng.uniform(2.0, 20.0))
    if rng.random() < 0.7:
        kwargs["deadline_ms"] = float(rng.uniform(200.0, 3000.0))
    if rng.random() < 0.5:
        kwargs["queue_credit"] = int(rng.integers(2, kwargs["queue_capacity"] + 1))
    if rng.random() < 0.7:
        kwargs["overload"] = OverloadPolicy(
            fastpath_at=0.3, fallback_at=0.5, shed_at=0.7,
            alpha=1.0, hold_ticks=1, probe_cooldown_s=0.5,
            seed=int(rng.integers(1000)),
        )
    return ServeConfig(**kwargs)


def assert_ledger_balances(ledger):
    assert ledger["unaccounted"] == 0
    assert ledger["pending"] == 0
    total_in = ledger["submitted"] + ledger["fills"]
    total_out = ledger["answered"] + sum(ledger[c] for c in CAUSES)
    assert total_in == total_out


class TestEngineLedgerProperty:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_admitted_equals_served_plus_shed_by_cause(self, seed):
        rng = np.random.default_rng(seed)
        observer = Observer(trace_capacity=64, event_capacity=64)
        config = random_config(rng, observer)
        plan = make_plan(rng)
        engine = InferenceEngine(plan, config)
        engine.attach_fastpath(plan)

        for t, tenant in random_schedule(rng):
            engine.submit_frame(tenant, t, rng.normal(size=N_INPUTS))
            if rng.random() < 0.3:  # random finite-capacity service cadence
                engine.pump(int(rng.integers(1, 6)))
        engine.flush()  # shutdown: nothing may stay pending

        ledger = observer.ledger()
        assert_ledger_balances(ledger)
        # The engine-side tallies agree with the event ledger per cause.
        stats = [engine.link_stats(link) for link in engine.link_ids]
        assert sum(s["frames_out"] for s in stats) == ledger["answered"]
        for cause, key in (
            ("rejected", "rejected"),
            ("quarantined", "quarantined"),
            ("policy_rejected", "policy_rejected"),
            ("stale", "stale_dropped"),
            ("overflow", "overflow"),
            ("rate_limited", "rate_limited"),
            ("deadline_expired", "deadline_expired"),
            ("shed", "overload_shed"),
        ):
            assert sum(s[key] for s in stats) == ledger[cause], cause


class TestFleetLedgerProperty:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_admitted_equals_served_plus_shed_by_cause(self, seed):
        rng = np.random.default_rng(seed)
        observers = {}

        def factory():
            observer = Observer(
                label=f"t{len(observers)}", trace_capacity=64, event_capacity=64
            )
            observers[observer.label] = observer
            return observer

        config = random_config(rng, None)
        plan = make_plan(rng)
        fleet = Fleet(config, observer_factory=factory)
        schedule = random_schedule(rng)
        for tenant in sorted({tenant for _, tenant in schedule}):
            fleet.attach(tenant, plan)

        for t, tenant in schedule:
            fleet.submit(tenant, t, rng.normal(size=N_INPUTS))
            if rng.random() < 0.2:
                fleet.tick(t)
        fleet.flush()  # shutdown: nothing may stay ringed

        for tenant in fleet.tenant_ids:
            ledger = fleet.ledger(tenant)
            assert_ledger_balances(ledger)
            counters = fleet.counters(tenant)
            assert counters["frames_out"] == ledger["answered"]
            for cause, key in (
                ("rejected", "rejected"),
                ("quarantined", "quarantined"),
                ("policy_rejected", "policy_rejected"),
                ("stale", "stale_dropped"),
                ("overflow", "overflow_dropped"),
                ("rate_limited", "rate_limited"),
                ("deadline_expired", "deadline_expired"),
                ("shed", "overload_shed"),
            ):
                assert counters[key] == ledger[cause], (tenant, cause)

    #: counters-key ↔ ledger-key pairs shared by the churn assertions.
    CAUSE_KEYS = (
        ("rejected", "rejected"),
        ("quarantined", "quarantined"),
        ("policy_rejected", "policy_rejected"),
        ("stale_dropped", "stale"),
        ("overflow_dropped", "overflow"),
        ("rate_limited", "rate_limited"),
        ("deadline_expired", "deadline_expired"),
        ("overload_shed", "shed"),
    )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ledger_balances_under_churn(self, seed):
        """The per-cause ledger identity survives random tenant churn.

        Same randomized burst traffic and overload plane as above, but
        tenants now detach mid-run (draining their rings), re-attach as
        fresh incarnations, and hot-swap plans — every incarnation's
        observer must still close exactly, and every detach must be
        drain-exact.
        """
        rng = np.random.default_rng(seed + 100)
        observers = {}  # tenant -> [observer per incarnation, in order]
        attach_label = []

        def factory():
            observer = Observer(trace_capacity=64, event_capacity=64)
            observers.setdefault(attach_label[-1], []).append(observer)
            return observer

        def attach(tenant):
            attach_label.append(tenant)
            fleet.attach(tenant, plan)

        config = random_config(rng, None)
        plan = make_plan(rng)
        fleet = Fleet(config, observer_factory=factory, rebalance_skew=1.5)
        schedule = random_schedule(rng)
        for tenant in sorted({tenant for _, tenant in schedule}):
            attach(tenant)

        detach_reports = []  # (tenant, final counters) in detach order
        for t, tenant in schedule:
            if tenant not in fleet.tenant_ids:
                if rng.random() < 0.5:
                    attach(tenant)  # re-attach: a fresh incarnation
                else:
                    continue
            fleet.submit(tenant, t, rng.normal(size=N_INPUTS))
            if rng.random() < 0.2:
                fleet.tick(t)
            churn = rng.random()
            if churn < 0.05 and len(fleet.tenant_ids) > 1:
                live = fleet.tenant_ids
                victim = live[int(rng.integers(len(live)))]
                detach_reports.append((victim, fleet.detach(victim, now_s=t)))
                fleet.take_drained()
            elif churn < 0.08:
                live = fleet.tenant_ids
                target = live[int(rng.integers(len(live)))]
                fleet.replace_plan(target, make_plan(rng), now_s=t)
                fleet.take_drained()
        fleet.flush()
        for tenant in list(fleet.tenant_ids):
            detach_reports.append((tenant, fleet.detach(tenant)))
        fleet.take_drained()

        # Every incarnation of every tenant closes its ledger exactly.
        for tenant, incarnations in observers.items():
            for observer in incarnations:
                assert_ledger_balances(observer.ledger())
        # Every detach was drain-exact, and its archived counters agree
        # with that incarnation's observer cause by cause.
        per_tenant_reports = {}
        for tenant, report in detach_reports:
            per_tenant_reports.setdefault(tenant, []).append(report)
        for tenant, reports in per_tenant_reports.items():
            assert len(reports) == len(observers[tenant])
            for report, observer in zip(reports, observers[tenant]):
                assert report["drained"] == (
                    report["drain_served"] + report["drain_shed"]
                )
                ledger = observer.ledger()
                assert report["frames_out"] == ledger["answered"]
                for counters_key, ledger_key in self.CAUSE_KEYS:
                    assert report[counters_key] == ledger[ledger_key], (
                        tenant, counters_key,
                    )

    def test_churn_burst_during_governor_degradation_reconciles(self):
        """Detaching while the saturation governor is shedding still
        reconciles every per-cause count exactly: drained frames land in
        ``overload_shed``, never vanish."""
        observers = {}
        attach_label = []

        def factory():
            observer = Observer(trace_capacity=64, event_capacity=64)
            observers.setdefault(attach_label[-1], []).append(observer)
            return observer

        def attach(tenant):
            attach_label.append(tenant)
            fleet.attach(tenant, plan)

        config = ServeConfig(
            max_batch=4,
            max_latency_ms=None,
            queue_capacity=8,
            auto_flush=False,
            overload=OverloadPolicy(
                fastpath_at=0.01, fallback_at=0.02, shed_at=0.05,
                alpha=1.0, hold_ticks=5, probe_cooldown_s=60.0, seed=0,
            ),
        )
        rng = np.random.default_rng(0)
        plan = make_plan(rng)
        fleet = Fleet(config, observer_factory=factory)
        for tenant in ("t0", "t1", "t2"):
            attach(tenant)

        # Flood every ring without serving: saturation rockets past the
        # shed threshold on the next tick.
        for i in range(8):
            for tenant in ("t0", "t1", "t2"):
                fleet.submit(tenant, i * 0.01, rng.normal(size=N_INPUTS))
        assert fleet.tick(0.1) == []  # governor shed the whole tick
        assert fleet.mode is ServiceMode.SHED

        # Churn burst while degraded: refill one ring and detach it.
        for i in range(4):
            fleet.submit("t1", 0.2 + i * 0.01, rng.normal(size=N_INPUTS))
        report = fleet.detach("t1", now_s=0.3)
        fleet.take_drained()
        # The drain ran under SHED: everything pending was shed, counted.
        assert report["drained"] == 4
        assert report["drain_served"] == 0
        assert report["drain_shed"] == 4
        assert report["overload_shed"] >= 4

        fleet.flush()
        for tenant in list(fleet.tenant_ids):
            fleet.detach(tenant)
        fleet.take_drained()
        for tenant, incarnations in observers.items():
            for observer in incarnations:
                ledger = observer.ledger()
                assert_ledger_balances(ledger)
        ledger_t1 = observers["t1"][0].ledger()
        assert ledger_t1["shed"] == report["overload_shed"]
        assert ledger_t1["answered"] == report["frames_out"]
