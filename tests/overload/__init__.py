"""Tests for the overload control plane (repro.overload)."""
