"""Tests for the overload-bench harness (small runs; gates must hold)."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.overload.bench import make_traffic, run_overload_bench


@pytest.fixture(scope="module")
def report():
    return run_overload_bench(quick=True, seed=11)


class TestMakeTraffic:
    def test_exact_emission_counts(self):
        traffic = make_traffic(
            duration_s=40.0, step_s=0.05, n_cold=2, cold_hz=4.0,
            hot_base_hz=4.0, hot_burst_hz=40.0, burst_period_s=10.0,
            burst_duty=0.5, n_inputs=8, seed=0,
        )
        # Cold: 4 Hz * 40 s; hot: half at 4 Hz, half at 40 Hz.
        assert traffic.per_tenant["cold-0"] == 160
        assert traffic.per_tenant["cold-1"] == 160
        assert traffic.per_tenant["hot"] == 20 * 4 + 20 * 40

    def test_arrivals_time_ordered(self):
        traffic = make_traffic(
            duration_s=10.0, step_s=0.1, n_cold=1, cold_hz=3.0,
            hot_base_hz=3.0, hot_burst_hz=30.0, burst_period_s=5.0,
            burst_duty=0.5, n_inputs=4, seed=0,
        )
        times = [t for t, _, _ in traffic.arrivals]
        assert times == sorted(times)

    def test_same_seed_same_schedule(self):
        kwargs = dict(
            duration_s=10.0, step_s=0.1, n_cold=1, cold_hz=3.0,
            hot_base_hz=3.0, hot_burst_hz=30.0, burst_period_s=5.0,
            burst_duty=0.5, n_inputs=4, seed=3,
        )
        assert make_traffic(**kwargs).arrivals == make_traffic(**kwargs).arrivals


class TestRunOverloadBench:
    def test_all_gates_hold(self, report):
        assert report.reconciled
        assert report.deadline_honest
        assert report.fairness_ok
        assert report.ladder_walked
        assert report.passed

    def test_unprotected_arm_shows_the_problem(self, report):
        # The control arm loses cold-tenant frames to anonymous eviction.
        arm = report.unprotected
        assert arm.shed_by_cause["overflow"] > 0
        assert any(
            arm.answered[t] < arm.arrivals[t] for t in ("cold-0", "cold-1", "cold-2")
        )

    def test_protected_arm_serves_every_cold_frame(self, report):
        for arm in (report.protected, report.fleet):
            for tenant in ("cold-0", "cold-1", "cold-2"):
                assert arm.rate_limited[tenant] == 0
                assert arm.answered[tenant] == arm.arrivals[tenant]
            assert arm.rate_limited["hot"] > 0

    def test_governed_arm_walked_the_ladder(self, report):
        snap = report.governed.governor
        assert snap["escalations"] >= 1
        assert snap["probes"] >= 1
        assert report.governed.peak_severity >= 1
        assert report.governed.final_severity < report.governed.peak_severity
        # The outage produced typed deadline/shed outcomes, not silence.
        assert (
            report.governed.shed_by_cause["deadline_expired"]
            + report.governed.shed_by_cause["shed"]
        ) > 0

    def test_json_round_trips(self, report):
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["bench"] == "overload-bench"
        assert payload["gates"]["passed"] is True
        assert set(payload["arms"]) == {
            "unprotected", "protected", "governed", "fleet",
        }

    def test_describe_mentions_every_gate(self, report):
        text = report.describe()
        for needle in ("ledger", "deadline", "fairness", "ladder", "PASSED"):
            assert needle in text

    def test_same_seed_byte_identical(self):
        a = run_overload_bench(quick=True, seed=5).to_json()
        b = run_overload_bench(quick=True, seed=5).to_json()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            run_overload_bench(duration_s=10.0)  # < 4 burst periods
        with pytest.raises(ConfigurationError):
            run_overload_bench(n_cold=0)
        with pytest.raises(ConfigurationError):
            run_overload_bench(cold_hz=8.0, reserved_hz=8.0)
        with pytest.raises(ConfigurationError):
            run_overload_bench(service_hz=1.0)
