"""Tests for the stream-time token buckets (repro.overload.limiter)."""

import pytest

from repro.exceptions import ConfigError, RateLimitError
from repro.overload.limiter import RateLimiter, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate_hz=2.0, burst=4.0)
        assert bucket.available(0.0) == 4.0

    def test_burst_defaults_to_rate_with_floor_of_one(self):
        assert TokenBucket(rate_hz=5.0).burst == 5.0
        assert TokenBucket(rate_hz=0.25).burst == 1.0

    def test_take_spends_and_refuses_when_empty(self):
        bucket = TokenBucket(rate_hz=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_by_stream_time(self):
        bucket = TokenBucket(rate_hz=2.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 0.5 s of stream time at 2 Hz buys exactly one token back.
        assert bucket.try_take(0.5)
        assert not bucket.try_take(0.5)

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate_hz=10.0, burst=3.0)
        bucket.try_take(0.0)
        assert bucket.available(1000.0) == 3.0

    def test_time_going_backwards_does_not_refill(self):
        bucket = TokenBucket(rate_hz=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        assert not bucket.try_take(5.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate_hz=0.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate_hz=-1.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate_hz=1.0, burst=0.5)


class TestRateLimiter:
    def test_buckets_are_per_tenant(self):
        limiter = RateLimiter(rate_hz=1.0, burst=1.0)
        assert limiter.admit("a", 0.0)
        # "a" is now empty, but "b" still holds its own full bucket.
        assert not limiter.admit("a", 0.0)
        assert limiter.admit("b", 0.0)

    def test_within_rate_tenant_is_never_refused(self):
        limiter = RateLimiter(rate_hz=2.0, burst=2.0)
        for i in range(100):
            assert limiter.admit("steady", i * 0.5)
        assert limiter.limited("steady") == 0

    def test_over_rate_tenant_is_refused_and_counted(self):
        limiter = RateLimiter(rate_hz=1.0, burst=1.0)
        admitted = sum(limiter.admit("hot", i * 0.1) for i in range(100))
        # ~9.9 s of stream time at 1 Hz plus the initial token.
        assert admitted == 10
        assert limiter.limited("hot") == 90
        assert limiter.limited_total == 90

    def test_overrides_give_tenants_their_own_rate(self):
        limiter = RateLimiter(rate_hz=1.0, overrides={"vip": 10.0})
        assert limiter.reserved_hz("vip") == 10.0
        assert limiter.reserved_hz("anyone-else") == 1.0
        admitted = sum(limiter.admit("vip", i * 0.1) for i in range(50))
        assert admitted == 50

    def test_require_raises_typed_error(self):
        limiter = RateLimiter(rate_hz=1.0, burst=1.0)
        limiter.require("hot", 0.0)
        with pytest.raises(RateLimitError, match="hot"):
            limiter.require("hot", 0.0)

    def test_snapshot_shape(self):
        limiter = RateLimiter(rate_hz=1.0, burst=1.0)
        limiter.admit("a", 0.0)
        limiter.admit("a", 0.0)
        snap = limiter.snapshot()
        assert snap["tenants"] == 1
        assert snap["limited_total"] == 1
        assert snap["limited_by_tenant"] == {"a": 1}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            RateLimiter(rate_hz=0.0)
        with pytest.raises(ConfigError):
            RateLimiter(rate_hz=1.0, overrides={"t": -1.0})
