"""Tests for the saturation governor (repro.overload.governor)."""

import pytest

from repro.exceptions import ConfigError
from repro.obs.observer import Observer
from repro.overload.governor import OverloadPolicy, SaturationGovernor, ServiceMode
from repro.serve.metrics import MetricsRegistry


def make_governor(**policy_kwargs):
    defaults = dict(alpha=1.0, hold_ticks=1, probe_cooldown_s=1.0, jitter=0.0)
    defaults.update(policy_kwargs)
    return SaturationGovernor(
        OverloadPolicy(**defaults), capacity=100, latency_budget_s=1.0
    )


class TestLadder:
    def test_severity_ordering(self):
        assert [m.severity for m in (
            ServiceMode.FULL,
            ServiceMode.FASTPATH_ONLY,
            ServiceMode.FALLBACK_ONLY,
            ServiceMode.SHED,
        )] == [0, 1, 2, 3]

    def test_calm_stays_full(self):
        governor = make_governor()
        for t in range(10):
            assert governor.observe(5, 0.1, float(t)) is ServiceMode.FULL
        assert governor.mode_changes == 0

    def test_escalation_is_immediate_and_can_skip_rungs(self):
        governor = make_governor()
        assert governor.observe(100, 2.0, 0.0) is ServiceMode.SHED
        assert governor.escalations == 1

    def test_each_rung_engages_at_its_threshold(self):
        for depth, mode in (
            (49, ServiceMode.FULL),
            (50, ServiceMode.FASTPATH_ONLY),
            (75, ServiceMode.FALLBACK_ONLY),
            (90, ServiceMode.SHED),
        ):
            governor = make_governor()
            assert governor.observe(depth, 0.0, 0.0) is mode

    def test_score_is_max_of_depth_and_wait(self):
        governor = make_governor()
        # Depth is tiny but the oldest frame waited 0.95 of its budget.
        assert governor.observe(1, 0.95, 0.0) is ServiceMode.SHED


class TestRecovery:
    def test_recovery_steps_one_rung_per_probe(self):
        governor = make_governor()
        governor.observe(100, 0.0, 0.0)
        assert governor.mode is ServiceMode.SHED
        # Calm again: each probe (after the cooldown) drops one rung.
        modes = [governor.observe(0, 0.0, 10.0 * (i + 1)) for i in range(3)]
        assert modes == [
            ServiceMode.FALLBACK_ONLY,
            ServiceMode.FASTPATH_ONLY,
            ServiceMode.FULL,
        ]
        assert governor.probes == 3

    def test_hysteresis_blocks_recovery_near_the_threshold(self):
        governor = make_governor(hysteresis=0.1)
        governor.observe(90, 0.0, 0.0)
        assert governor.mode is ServiceMode.SHED
        # 0.85 is below shed_at=0.9 but inside the hysteresis band.
        for t in range(1, 20):
            assert governor.observe(85, 0.0, float(t * 10)) is ServiceMode.SHED

    def test_hold_ticks_requires_consecutive_calm(self):
        governor = make_governor(hold_ticks=3)
        governor.observe(100, 0.0, 0.0)
        assert governor.observe(0, 0.0, 10.0) is ServiceMode.SHED  # calm 1
        assert governor.observe(0, 0.0, 20.0) is ServiceMode.SHED  # calm 2
        assert governor.observe(0, 0.0, 30.0) is not ServiceMode.SHED

    def test_probe_cooldown_blocks_early_probes(self):
        governor = make_governor(probe_cooldown_s=100.0, max_cooldown_s=100.0)
        governor.observe(100, 0.0, 0.0)
        assert governor.observe(0, 0.0, 1.0) is ServiceMode.SHED
        assert governor.observe(0, 0.0, 101.0) is ServiceMode.FALLBACK_ONLY

    def test_backoff_grows_per_reescalation_and_resets_at_full(self):
        governor = make_governor(probe_cooldown_s=1.0, backoff_factor=2.0)
        governor.observe(100, 0.0, 0.0)
        streak_after_first = governor.snapshot()["escalation_streak"]
        governor.observe(100, 0.0, 1.0)
        # Same rung: no re-escalation, streak unchanged.
        assert governor.snapshot()["escalation_streak"] == streak_after_first
        # Walk all the way down: the streak resets only at FULL.
        t = 100.0
        while governor.mode is not ServiceMode.FULL:
            governor.observe(0, 0.0, t)
            t += 100.0
        assert governor.snapshot()["escalation_streak"] == 0

    def test_same_seed_replay_is_identical(self):
        def walk(seed):
            governor = SaturationGovernor(
                OverloadPolicy(alpha=0.5, jitter=0.5, seed=seed), capacity=10
            )
            trace = []
            for i in range(200):
                depth = 10 if (i // 20) % 2 == 0 else 0
                trace.append(governor.observe(depth, 0.0, float(i)).value)
            return trace

        assert walk(7) == walk(7)


class TestInstrumentation:
    def test_events_reach_the_observer(self):
        observer = Observer()
        governor = SaturationGovernor(
            OverloadPolicy(alpha=1.0, hold_ticks=1, probe_cooldown_s=1.0, jitter=0.0),
            capacity=10,
            observer=observer,
        )
        governor.observe(10, 0.0, 0.0)
        governor.observe(0, 0.0, 10.0)
        kinds = observer.events.counts_by_kind()
        assert kinds["governor.mode_change"] == 2
        assert kinds["governor.probe"] == 1

    def test_metrics_published(self):
        registry = MetricsRegistry()
        governor = SaturationGovernor(
            OverloadPolicy(alpha=1.0), capacity=10, registry=registry
        )
        governor.observe(10, 0.0, 0.0)
        assert registry.gauge("governor_mode").value == ServiceMode.SHED.severity
        assert registry.counter("governor_escalations_total").value == 1

    def test_snapshot_is_json_friendly(self):
        import json

        governor = make_governor()
        governor.observe(100, 0.5, 0.0)
        json.dumps(governor.snapshot())


class TestPolicyValidation:
    def test_thresholds_must_increase(self):
        with pytest.raises(ConfigError):
            OverloadPolicy(fastpath_at=0.8, fallback_at=0.5)

    def test_bad_knobs_rejected(self):
        for kwargs in (
            dict(hysteresis=-0.1),
            dict(alpha=0.0),
            dict(alpha=1.5),
            dict(hold_ticks=0),
            dict(probe_cooldown_s=0.0),
            dict(probe_cooldown_s=10.0, max_cooldown_s=5.0),
            dict(backoff_factor=0.5),
            dict(jitter=1.0),
            dict(degraded_quota=0),
        ):
            with pytest.raises(ConfigError):
                OverloadPolicy(**kwargs)

    def test_governor_validates_capacity_and_budget(self):
        with pytest.raises(ConfigError):
            SaturationGovernor(OverloadPolicy(), capacity=0)
        with pytest.raises(ConfigError):
            SaturationGovernor(OverloadPolicy(), capacity=1, latency_budget_s=0.0)
