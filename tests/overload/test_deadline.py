"""Tests for stream-time deadline budgets (repro.overload.deadline)."""

import math
from dataclasses import dataclass

import pytest

from repro.exceptions import ConfigError, DeadlineError
from repro.overload.deadline import (
    check_served_within_deadline,
    deadline_for,
    expired,
)


@dataclass
class _Result:
    t_s: float
    frame_id: int = 0
    link_id: str = "room"


class TestDeadlineFor:
    def test_absolute_deadline(self):
        assert deadline_for(10.0, 2.0) == 12.0

    def test_no_budget_never_expires(self):
        assert deadline_for(10.0, None) == math.inf
        assert not expired(deadline_for(10.0, None), 1e12)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigError):
            deadline_for(0.0, 0.0)
        with pytest.raises(ConfigError):
            deadline_for(0.0, -1.0)


class TestExpired:
    def test_strictly_after_deadline(self):
        assert not expired(12.0, 12.0)  # exactly at the deadline still lives
        assert expired(12.0, 12.0 + 1e-9)
        assert not expired(12.0, 11.0)


class TestCheckServedWithinDeadline:
    def test_all_within_budget_returns_count(self):
        results = [_Result(t_s=10.0), _Result(t_s=10.5)]
        assert check_served_within_deadline(results, 11.0, 2.0) == 2

    def test_no_budget_trivially_passes(self):
        assert check_served_within_deadline([_Result(t_s=0.0)], 1e9, None) == 1

    def test_violation_raises_with_context(self):
        results = [_Result(t_s=10.0), _Result(t_s=5.0, frame_id=7)]
        with pytest.raises(DeadlineError, match="frame 7"):
            check_served_within_deadline(results, 11.0, 2.0)
