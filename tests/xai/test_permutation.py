"""Tests for permutation feature importance."""

import numpy as np
import pytest

from repro.baselines.forest import RandomForestClassifier
from repro.baselines.logistic import LogisticRegression
from repro.exceptions import ShapeError
from repro.metrics.classification import accuracy
from repro.xai.permutation import permutation_importance, top_features


def informative_data(informative=2, n=600, d=6, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = (x[:, informative] > 0).astype(int)
    return x, y


class TestPermutationImportance:
    def test_informative_feature_found_for_forest(self):
        x, y = informative_data(informative=3)
        model = RandomForestClassifier(n_estimators=10, max_depth=4).fit(x, y)
        importance = permutation_importance(
            lambda m: accuracy(y, model.predict(m)), x,
            rng=np.random.default_rng(0),
        )
        assert int(np.argmax(importance)) == 3

    def test_informative_feature_found_for_logistic(self):
        x, y = informative_data(informative=1)
        model = LogisticRegression().fit(x, y)
        importance = permutation_importance(
            lambda m: accuracy(y, model.predict(m)), x,
            rng=np.random.default_rng(0),
        )
        assert int(np.argmax(importance)) == 1

    def test_unused_features_near_zero(self):
        x, y = informative_data(informative=0)
        model = RandomForestClassifier(n_estimators=10, max_depth=4).fit(x, y)
        importance = permutation_importance(
            lambda m: accuracy(y, model.predict(m)), x,
            rng=np.random.default_rng(0),
        )
        assert np.all(np.abs(importance[1:]) < 0.05)
        assert importance[0] > 0.2

    def test_input_not_mutated(self):
        x, y = informative_data()
        before = x.copy()
        model = LogisticRegression().fit(x, y)
        permutation_importance(
            lambda m: accuracy(y, model.predict(m)), x,
            rng=np.random.default_rng(0),
        )
        np.testing.assert_array_equal(x, before)

    def test_validation(self):
        with pytest.raises(ShapeError):
            permutation_importance(lambda m: 0.0, np.ones(5))
        with pytest.raises(ShapeError):
            permutation_importance(lambda m: 0.0, np.ones((5, 2)), n_repeats=0)

    def test_agrees_with_gradcam_on_mlp(self):
        # Cross-method check: the paper's Grad-CAM and model-agnostic
        # permutation importance should name the same dominant input.
        from repro.config import TrainingConfig
        from repro.core.detector import OccupancyDetector

        x, y = informative_data(informative=4, n=800)
        detector = OccupancyDetector(
            6, TrainingConfig(epochs=12, hidden_sizes=(16,), batch_size=64)
        ).fit(x, y)
        perm = permutation_importance(
            lambda m: detector.score(m, y), x, rng=np.random.default_rng(0)
        )
        probe = x[y == 1][:200]
        gradcam = detector.explain(probe, target_class=1).feature_importance
        assert int(np.argmax(perm)) == int(np.argmax(gradcam)) == 4


class TestTopFeatures:
    def test_descending_order(self):
        importance = np.array([0.1, 0.5, 0.3])
        np.testing.assert_array_equal(top_features(importance, 3), [1, 2, 0])

    def test_k_validation(self):
        with pytest.raises(ShapeError):
            top_features(np.ones(3), 0)
        with pytest.raises(ShapeError):
            top_features(np.ones(3), 4)
