"""Tests for the Grad-CAM explainer (paper Eqs. 5-6 / Figure 3)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.losses import bce_with_logits_loss
from repro.nn.modules import Linear, ReLU, Sequential
from repro.nn.optim import AdamW
from repro.nn.train import Trainer
from repro.xai.gradcam import GradCAM


def train_model_on_feature(informative: int, n_features: int = 6, seed: int = 0):
    """A model trained so only one input feature carries the label."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(800, n_features))
    y = (x[:, informative] > 0).astype(float)
    model = Sequential(
        Linear(n_features, 16, rng=rng), ReLU(), Linear(16, 1, rng=rng)
    )
    trainer = Trainer(model, AdamW(model.parameters(), lr=1e-2),
                      bce_with_logits_loss, batch_size=64, rng=rng)
    trainer.fit(x, y, epochs=30)
    return model, x


class TestExplain:
    def test_informative_feature_ranks_first(self):
        # Grad-CAM for class c is evaluated on class-c samples (as in the
        # paper's Figure 3, computed for the "occupied" decision).
        model, x = train_model_on_feature(informative=3)
        probe = x[x[:, 3] > 0][:200]
        ranking = GradCAM(model).feature_ranking(probe, target_class=1)
        assert ranking[0] == 3

    def test_uninformative_features_score_lower(self):
        model, x = train_model_on_feature(informative=2)
        probe = x[x[:, 2] > 0][:200]
        result = GradCAM(model).explain(probe, target_class=1)
        importance = result.feature_importance
        others = np.delete(importance, 2)
        assert importance[2] > others.max()

    def test_importance_rectified(self):
        model, x = train_model_on_feature(informative=0)
        result = GradCAM(model).explain(x[:100])
        assert np.all(result.feature_importance >= 0)

    def test_signed_relevance_can_be_negative(self):
        model, x = train_model_on_feature(informative=0)
        pos = GradCAM(model).explain(x[:100], target_class=1)
        neg = GradCAM(model).explain(x[:100], target_class=0)
        # The two class scores are negatives of each other, so signed
        # relevances flip sign.
        np.testing.assert_allclose(pos.signed_relevance, -neg.signed_relevance, atol=1e-9)

    def test_layer_maps_rectified_and_shaped(self):
        model, x = train_model_on_feature(informative=0)
        result = GradCAM(model).explain(x[:50])
        # Hidden layers: Linear(6->16) and ReLU(16), excluding the logit.
        assert len(result.layer_maps) == 2
        assert result.layer_maps[0].shape == (16,)
        assert all(np.all(m >= 0) for m in result.layer_maps)
        assert len(result.layer_alphas) == len(result.layer_maps)

    def test_rejects_bad_class(self):
        model, x = train_model_on_feature(informative=0)
        with pytest.raises(ConfigurationError):
            GradCAM(model).explain(x[:10], target_class=2)

    def test_rejects_1d_probe(self):
        model, x = train_model_on_feature(informative=0)
        with pytest.raises(ShapeError):
            GradCAM(model).explain(x[0])

    def test_rejects_multi_output_model(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))
        with pytest.raises(ShapeError):
            GradCAM(model).explain(np.ones((5, 4)))

    def test_rejects_non_sequential(self):
        with pytest.raises(ConfigurationError):
            GradCAM(Linear(4, 1, rng=np.random.default_rng(0)))
