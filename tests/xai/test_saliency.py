"""Tests for the gradient-saliency baseline."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.modules import Linear, ReLU, Sequential
from repro.xai.saliency import input_gradient_saliency
from tests.xai.test_gradcam import train_model_on_feature


class TestSaliency:
    def test_informative_feature_dominates(self):
        model, x = train_model_on_feature(informative=4)
        saliency = input_gradient_saliency(model, x[:200])
        assert np.argmax(saliency) == 4

    def test_non_negative(self):
        model, x = train_model_on_feature(informative=0)
        assert np.all(input_gradient_saliency(model, x[:50]) >= 0)

    def test_agrees_with_gradcam_on_top_feature(self):
        # The "sanity check" property: both attribution methods identify
        # the same dominant input on a model that genuinely uses it.
        from repro.xai.gradcam import GradCAM

        model, x = train_model_on_feature(informative=1)
        saliency_top = int(np.argmax(input_gradient_saliency(model, x[:200])))
        gradcam_top = int(GradCAM(model).feature_ranking(x[:200])[0])
        assert saliency_top == gradcam_top == 1

    def test_class_argument_validated(self):
        model, x = train_model_on_feature(informative=0)
        with pytest.raises(ConfigurationError):
            input_gradient_saliency(model, x[:5], target_class=5)

    def test_probe_must_be_2d(self):
        model, x = train_model_on_feature(informative=0)
        with pytest.raises(ShapeError):
            input_gradient_saliency(model, x[0])

    def test_multi_output_rejected(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        with pytest.raises(ShapeError):
            input_gradient_saliency(model, np.ones((3, 4)))
