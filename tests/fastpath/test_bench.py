"""Tests for the perf-bench harness (quick mode, so CI stays fast)."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath import PerfBenchReport, run_perf_bench
from repro.fastpath.bench import BatchThroughput


@pytest.fixture(scope="module")
def report():
    return run_perf_bench(
        n_inputs=16,
        hidden_sizes=(16, 8),
        seed=0,
        quick=True,
        batch_sizes=(1, 7),
        guard_frames=256,
    )


class TestRunPerfBench:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            run_perf_bench(n_inputs=0)
        with pytest.raises(ConfigurationError):
            run_perf_bench(batch_sizes=(0,))
        with pytest.raises(ConfigurationError):
            run_perf_bench(n_repeats=0)

    def test_equivalence_holds(self, report):
        assert report.equivalent
        assert 0.0 <= report.max_divergence <= report.tolerance

    def test_timings_are_positive(self, report):
        assert report.tensor_p50_ms > 0
        assert report.fastpath_p50_ms > 0
        assert report.tensor_p99_ms >= report.tensor_p50_ms
        assert report.fastpath_p99_ms >= report.fastpath_p50_ms

    def test_throughput_covers_requested_batches(self, report):
        assert [row.batch for row in report.throughput] == [1, 7]
        assert all(row.tensor_fps > 0 and row.fastpath_fps > 0
                   for row in report.throughput)

    def test_guard_micro_bench_ran(self, report):
        assert report.guard_scalar_fps > 0
        assert report.guard_batch_fps > 0

    def test_model_metadata(self, report):
        assert report.n_inputs == 16
        assert report.hidden_sizes == (16, 8)
        assert report.n_parameters > 0


class TestQuantizedArm:
    def test_both_modes_reported_and_gated(self, report):
        assert [row.mode for row in report.quantized] == ["int8", "float16"]
        for row in report.quantized:
            assert row.ok
            assert row.parameter_bytes < row.float32_parameter_bytes
            assert row.compression > 1.0
            assert row.throughput_fps > 0
        assert report.quantized_ok
        assert report.float32_parameter_bytes > 0

    def test_describe_mentions_quantized_modes(self, report):
        text = report.describe()
        assert "int8" in text and "float16" in text


class TestSaturatedArm:
    def test_loads_cover_sub_and_super_capacity(self, report):
        ratios = [row.offered_ratio for row in report.saturated]
        assert len(ratios) >= 3
        assert min(ratios) < 1.0 < max(ratios)
        assert report.saturated_capacity_fps > 0

    def test_every_load_reconciles_exactly(self, report):
        for row in report.saturated:
            assert row.ok
            assert row.ledger_unaccounted == 0
            assert row.arena_in_use_after == 0
            dropped = sum(row.dropped.values())
            assert row.answered + dropped == row.n_offered
            assert 0 < row.sojourn_p50_ms <= row.sojourn_p99_ms
        assert report.saturated_ok

    def test_overload_sheds_while_undercapacity_serves_all(self, report):
        by_ratio = {row.offered_ratio: row for row in report.saturated}
        under = by_ratio[min(by_ratio)]
        over = by_ratio[max(by_ratio)]
        assert sum(under.dropped.values()) == 0
        assert sum(over.dropped.values()) > 0
        # Queueing delay compounds past capacity.
        assert over.sojourn_p99_ms >= under.sojourn_p99_ms

    def test_gates_passed_aggregates_all_arms(self, report):
        assert report.gates_passed == (
            report.equivalent and report.quantized_ok and report.saturated_ok
        )
        assert report.gates_passed


class TestReport:
    def test_describe_mentions_equivalence(self, report):
        text = report.describe()
        assert "OK" in text and "p50" in text and "fr/s" in text

    def test_describe_flags_divergence(self, report):
        bad = PerfBenchReport(
            n_inputs=4, hidden_sizes=(4,), n_parameters=10, n_repeats=1,
            tolerance=1e-5, n_probe=4, max_divergence=0.5,
            tensor_p50_ms=1.0, tensor_p99_ms=1.0,
            fastpath_p50_ms=0.5, fastpath_p99_ms=0.5,
        )
        assert not bad.equivalent
        assert "DIVERGED" in bad.describe()

    def test_nan_divergence_is_not_equivalent(self):
        bad = PerfBenchReport(
            n_inputs=4, hidden_sizes=(4,), n_parameters=10, n_repeats=1,
            tolerance=1e-5, n_probe=4, max_divergence=float("nan"),
            tensor_p50_ms=1.0, tensor_p99_ms=1.0,
            fastpath_p50_ms=0.5, fastpath_p99_ms=0.5,
        )
        assert not bad.equivalent

    def test_speedup_properties(self):
        row = BatchThroughput(batch=4, tensor_fps=100.0, fastpath_fps=300.0)
        assert row.speedup == pytest.approx(3.0)
        report = PerfBenchReport(
            n_inputs=4, hidden_sizes=(4,), n_parameters=10, n_repeats=1,
            tolerance=1e-5, n_probe=4, max_divergence=0.0,
            tensor_p50_ms=3.0, tensor_p99_ms=4.0,
            fastpath_p50_ms=1.0, fastpath_p99_ms=2.0,
            guard_scalar_fps=100.0, guard_batch_fps=400.0,
        )
        assert report.single_frame_speedup == pytest.approx(3.0)
        assert report.guard_speedup == pytest.approx(4.0)

    def test_json_round_trips_and_is_gateable(self, report, tmp_path):
        path = report.save_json(tmp_path / "BENCH_serve.json")
        loaded = json.loads(path.read_text())
        assert loaded["bench"] == "perf-bench"
        assert loaded["equivalence"]["equivalent"] is True
        assert loaded["equivalence"]["max_divergence"] <= loaded["equivalence"]["tolerance"]
        assert loaded["model"]["n_inputs"] == 16
        assert [row["batch"] for row in loaded["throughput_fps"]] == [1, 7]
        assert loaded["quantized"]["ok"] is True
        assert [m["mode"] for m in loaded["quantized"]["modes"]] == ["int8", "float16"]
        assert loaded["quantized"]["bytes_target"] == 15 * 1024
        assert loaded["saturated"]["ok"] is True
        assert all(
            load["ledger_unaccounted"] == 0 for load in loaded["saturated"]["loads"]
        )
        assert loaded["gates_passed"] is True
        # The whole payload must be plain JSON scalars (no numpy leakage).
        json.dumps(loaded)

    def test_quick_mode_caps_work(self):
        report = run_perf_bench(
            n_inputs=8, hidden_sizes=(8,), quick=True, n_repeats=10_000,
            guard_frames=128, batch_sizes=(1,),
        )
        assert report.n_repeats <= 60


def test_deterministic_divergence_across_runs():
    """The probe and weights are seeded: divergence is reproducible."""
    kwargs = dict(n_inputs=8, hidden_sizes=(8,), seed=42, quick=True,
                  batch_sizes=(1,), guard_frames=128)
    a = run_perf_bench(**kwargs)
    b = run_perf_bench(**kwargs)
    assert a.max_divergence == b.max_divergence
