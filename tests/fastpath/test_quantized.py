"""Quantized inference plans: accuracy gates, round-trips, footprint.

The storage contract under test: quantization is a *storage* transform —
int8 codes (symmetric per-output-channel scales) or float16 casts are
dequantized once at construction into the same float32 execution steps
every plan runs, so a quantized plan is an ordinary plan with smaller
serialized weights.  Consequences verified here:

* predictions stay within the perf-bench accuracy gates versus the
  float32 plan (max |Δp| and decision-flip rate);
* ``export_plan``/``load_plan`` round-trips are **bit-identical** (the
  stored codes are reloaded, never re-quantized) with dtype and scale
  metadata intact in the archive;
* ``parameter_bytes()`` reflects the stored artifact, beating the
  float32 footprint and the paper's 15 KiB deployment target.
"""

import numpy as np
import pytest

from repro.baselines.scaler import StandardScaler
from repro.core.model_zoo import build_paper_mlp
from repro.deploy.export import export_plan, load_plan
from repro.exceptions import ConfigurationError
from repro.fastpath import InferencePlan
from repro.fastpath.bench import QUANT_DELTA_GATES, QUANT_FLIP_GATE, PLAN_BYTES_TARGET


def _fitted_scaler(n_inputs, rng):
    scaler = StandardScaler()
    scaler.fit(rng.normal(loc=2.0, scale=1.5, size=(256, n_inputs)))
    return scaler


def _plans(n_inputs=12, hidden=(32, 16), seed=0, quantize=None):
    rng = np.random.default_rng(seed)
    model = build_paper_mlp(n_inputs, hidden_sizes=hidden, seed=seed)
    scaler = _fitted_scaler(n_inputs, rng)
    plan = InferencePlan.from_model(model, scaler=scaler, quantize=quantize)
    probe = rng.normal(loc=2.0, scale=1.5, size=(512, n_inputs))
    return plan, probe


class TestAccuracyGates:
    @pytest.mark.parametrize("mode", ["int8", "float16"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_quantized_predictions_within_gates(self, mode, seed):
        plan, probe = _plans(seed=seed)
        quant = plan.quantized(mode)
        p32 = plan.predict_proba(probe)
        pq = quant.predict_proba(probe)
        max_delta = float(np.max(np.abs(pq - p32)))
        flips = float(np.mean((pq >= 0.5) != (p32 >= 0.5)))
        assert max_delta <= QUANT_DELTA_GATES[mode]
        assert flips <= QUANT_FLIP_GATE

    def test_float16_is_tighter_than_int8(self):
        plan, probe = _plans(seed=7)
        p32 = plan.predict_proba(probe)
        delta16 = np.max(np.abs(plan.quantized("float16").predict_proba(probe) - p32))
        delta8 = np.max(np.abs(plan.quantized("int8").predict_proba(probe) - p32))
        assert delta16 <= delta8


class TestConstruction:
    def test_invalid_mode_raises(self):
        plan, _ = _plans()
        with pytest.raises(ConfigurationError, match="quantize"):
            plan.quantized("int4")
        model = build_paper_mlp(12, hidden_sizes=(32, 16), seed=0)
        with pytest.raises(ConfigurationError, match="quantize"):
            InferencePlan.from_model(model, quantize="bf16")

    def test_requantizing_a_quantized_plan_raises(self):
        plan, _ = _plans()
        quant = plan.quantized("int8")
        with pytest.raises(ConfigurationError):
            quant.quantized("float16")
        with pytest.raises(ConfigurationError):
            quant.quantized("int8")

    def test_from_model_quantize_matches_quantized_method(self):
        plan, probe = _plans()
        via_kwarg, _ = _plans(quantize="int8")
        via_method = plan.quantized("int8")
        np.testing.assert_array_equal(
            via_kwarg.predict_proba(probe), via_method.predict_proba(probe)
        )

    def test_execution_dtype_stays_float32(self):
        # Quantization is storage-only: runtime steps are always float32.
        plan, _ = _plans(quantize="int8")
        for step in plan.steps:
            assert step.weight.dtype == np.float32

    def test_repr_names_the_mode(self):
        plan, _ = _plans()
        assert "int8" in repr(plan.quantized("int8"))


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["int8", "float16"])
    def test_export_load_is_bit_identical(self, tmp_path, mode):
        plan, probe = _plans(seed=4)
        quant = plan.quantized(mode)
        path = export_plan(quant, tmp_path / f"plan_{mode}.npz")
        loaded = load_plan(path)
        assert loaded.quantize == mode
        want = quant.predict_proba(probe)
        got = loaded.predict_proba(probe)
        assert want.tobytes() == got.tobytes()

    def test_export_quantize_kwarg_quantizes_on_the_way_out(self, tmp_path):
        plan, probe = _plans(seed=5)
        path = export_plan(plan, tmp_path / "plan.npz", quantize="int8")
        loaded = load_plan(path)
        assert loaded.quantize == "int8"
        np.testing.assert_array_equal(
            loaded.predict_proba(probe),
            plan.quantized("int8").predict_proba(probe),
        )

    def test_export_conflicting_mode_raises(self, tmp_path):
        plan, _ = _plans()
        quant = plan.quantized("int8")
        with pytest.raises(ConfigurationError):
            export_plan(quant, tmp_path / "plan.npz", quantize="float16")
        # Matching mode is a no-op passthrough, not a re-quantize.
        export_plan(quant, tmp_path / "plan.npz", quantize="int8")

    def test_archive_stores_codes_and_scales(self, tmp_path):
        plan, _ = _plans()
        path = export_plan(plan.quantized("int8"), tmp_path / "plan.npz")
        with np.load(path, allow_pickle=False) as archive:
            weight_keys = sorted(k for k in archive if k.startswith("w") and k[1:].isdigit())
            assert weight_keys
            for key in weight_keys:
                assert archive[key].dtype == np.int8
                scales = archive["ws" + key[1:]]
                assert scales.dtype == np.float32
                assert scales.shape == (archive[key].shape[1],)

        path16 = export_plan(plan.quantized("float16"), tmp_path / "plan16.npz")
        with np.load(path16, allow_pickle=False) as archive:
            assert all(
                archive[k].dtype == np.float16
                for k in archive
                if k.startswith("w") and k[1:].isdigit()
            )


class TestFootprint:
    def test_quantized_artifact_is_smaller(self):
        plan, _ = _plans()
        base = plan.parameter_bytes()
        int8 = plan.quantized("int8").parameter_bytes()
        f16 = plan.quantized("float16").parameter_bytes()
        assert int8 < f16 < base
        # int8 approaches 4x on the weight matrices; float32 biases,
        # scales and scaler stats dilute the ratio on tiny architectures.
        assert base / int8 > 2.5
        # The paper-size detector is weight-dominated: closer to 4x.
        big = InferencePlan.from_model(build_paper_mlp(52, seed=0))
        assert big.parameter_bytes() / big.quantized("int8").parameter_bytes() > 3.5

    def test_paper_architecture_meets_deployment_target_once_quantized(self):
        # The paper's 128-256-128 detector on a 52-subcarrier frame.
        model = build_paper_mlp(52, seed=0)
        plan = InferencePlan.from_model(model)
        assert plan.quantized("int8").parameter_bytes() < plan.parameter_bytes()
        # The small serving architecture beats 15 KiB outright at int8.
        small, _ = _plans(n_inputs=52, hidden=(16, 8), seed=0)
        assert small.quantized("int8").parameter_bytes() <= PLAN_BYTES_TARGET
