"""Tests for the frozen inference plan (construction, buffers, persistence)."""

import numpy as np
import pytest

from repro.baselines.scaler import StandardScaler
from repro.core.model_zoo import build_paper_mlp
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.fastpath import InferencePlan, PlanStep, freeze_detector
from repro.nn.modules import (
    BatchNorm1d,
    Dropout,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)


def _step(n_in, n_out, activation="none", bias=True, seed=0):
    rng = np.random.default_rng(seed)
    w = np.ascontiguousarray(rng.normal(size=(n_in, n_out)), dtype=np.float32)
    b = rng.normal(size=n_out).astype(np.float32) if bias else None
    return PlanStep(w, b, activation)


class TestPlanStep:
    def test_rejects_float64_weight(self):
        with pytest.raises(ConfigurationError):
            PlanStep(np.zeros((2, 3)), None, "none")

    def test_rejects_non_contiguous_weight(self):
        w = np.zeros((4, 6), dtype=np.float32)[:, ::2]
        with pytest.raises(ConfigurationError):
            PlanStep(w, None, "none")

    def test_rejects_bad_bias_shape(self):
        w = np.zeros((2, 3), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            PlanStep(w, np.zeros(2, dtype=np.float32), "none")

    def test_rejects_unknown_activation(self):
        w = np.zeros((2, 3), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            PlanStep(w, None, "gelu")

    def test_geometry(self):
        step = _step(5, 7)
        assert step.in_features == 5 and step.out_features == 7


class TestConstruction:
    def test_needs_steps(self):
        with pytest.raises(ConfigurationError):
            InferencePlan([])

    def test_rejects_width_mismatch(self):
        with pytest.raises(ConfigurationError, match="widths"):
            InferencePlan([_step(4, 8), _step(9, 1)])

    def test_scaler_stats_come_together(self):
        with pytest.raises(ConfigurationError):
            InferencePlan([_step(4, 1)], input_mean=np.zeros(4))

    def test_rejects_zero_scale(self):
        with pytest.raises(ConfigurationError):
            InferencePlan(
                [_step(4, 1)], input_mean=np.zeros(4), input_scale=np.zeros(4)
            )

    def test_rejects_wrong_stat_shape(self):
        with pytest.raises(ShapeError):
            InferencePlan(
                [_step(4, 1)], input_mean=np.zeros(3), input_scale=np.ones(3)
            )

    def test_repr_shows_architecture(self):
        plan = InferencePlan([_step(4, 8, "relu"), _step(8, 1)])
        assert "4->8->1" in repr(plan)

    def test_n_parameters_matches_model(self):
        model = build_paper_mlp(64, (128, 256, 128), n_outputs=1, seed=0)
        plan = InferencePlan.from_model(model)
        assert plan.n_parameters() == model.n_parameters()

    def test_nbytes_positive(self):
        plan = InferencePlan([_step(4, 8, "relu"), _step(8, 1)])
        assert plan.nbytes() > 0


class TestFromModel:
    def test_rejects_non_sequential(self):
        with pytest.raises(ConfigurationError):
            InferencePlan.from_model(Linear(4, 2))

    def test_rejects_unsupported_layer(self):
        model = Sequential(Linear(4, 4), BatchNorm1d(4), Linear(4, 1))
        with pytest.raises(ConfigurationError, match="cannot freeze"):
            InferencePlan.from_model(model)

    def test_rejects_leading_activation(self):
        with pytest.raises(ConfigurationError, match="before any Linear"):
            InferencePlan.from_model(Sequential(ReLU(), Linear(4, 1)))

    def test_rejects_stacked_activations(self):
        model = Sequential(Linear(4, 4), ReLU(), Tanh(), Linear(4, 1))
        with pytest.raises(ConfigurationError, match="already carries"):
            InferencePlan.from_model(model)

    def test_rejects_activation_only_model(self):
        with pytest.raises(ConfigurationError):
            InferencePlan.from_model(Sequential(Dropout(0.2)))

    def test_rejects_unfitted_scaler(self):
        model = Sequential(Linear(4, 1))
        with pytest.raises(NotFittedError):
            InferencePlan.from_model(model, scaler=StandardScaler())

    def test_dropout_is_dropped(self):
        model = Sequential(Linear(4, 8), ReLU(), Dropout(0.5), Linear(8, 1))
        plan = InferencePlan.from_model(model)
        assert len(plan.steps) == 2
        assert [s.activation for s in plan.steps] == ["relu", "none"]

    def test_sigmoid_and_tanh_fuse(self):
        model = Sequential(Linear(4, 8), Tanh(), Linear(8, 1), Sigmoid())
        plan = InferencePlan.from_model(model)
        assert [s.activation for s in plan.steps] == ["tanh", "sigmoid"]

    def test_plan_holds_copies(self):
        model = Sequential(Linear(4, 1))
        plan = InferencePlan.from_model(model)
        before = plan.forward(np.ones(4)).copy()
        model.layers[0].weight.data += 100.0
        after = plan.forward(np.ones(4))
        np.testing.assert_array_equal(before, after)


class TestForward:
    def test_1d_input_promotes_to_batch_of_one(self):
        plan = InferencePlan([_step(4, 2)])
        out = plan.forward(np.zeros(4))
        assert out.shape == (1, 2)

    def test_rejects_wrong_width(self):
        plan = InferencePlan([_step(4, 2)])
        with pytest.raises(ShapeError):
            plan.forward(np.zeros((3, 5)))

    def test_rejects_3d_input(self):
        plan = InferencePlan([_step(4, 2)])
        with pytest.raises(ShapeError):
            plan.forward(np.zeros((2, 3, 4)))

    def test_capacity_grows_geometrically_and_never_shrinks(self):
        plan = InferencePlan([_step(4, 2)], capacity=2)
        assert plan.capacity == 2
        plan.forward(np.zeros((3, 4)))
        assert plan.capacity == 4  # 2x growth
        plan.forward(np.zeros((100, 4)))
        assert plan.capacity == 100
        plan.forward(np.zeros((1, 4)))
        assert plan.capacity == 100

    def test_steady_state_reuses_buffers(self):
        plan = InferencePlan([_step(4, 2)], capacity=8)
        a = plan.forward(np.zeros((3, 4)))
        b = plan.forward(np.ones((3, 4)))
        # Same storage, overwritten in place: the view contract.
        assert a.base is b.base

    def test_predict_logits_returns_owned_copy(self):
        plan = InferencePlan([_step(4, 2)], capacity=8)
        a = plan.predict_logits(np.zeros((3, 4)))
        plan.forward(np.ones((3, 4)))
        np.testing.assert_array_equal(a, plan.predict_logits(np.zeros((3, 4))))

    def test_non_contiguous_input_accepted(self):
        plan = InferencePlan([_step(4, 2)])
        x = np.zeros((6, 8))[:, ::2]
        assert plan.forward(x).shape == (6, 2)

    def test_predict_proba_needs_single_output(self):
        plan = InferencePlan([_step(4, 2)])
        with pytest.raises(ShapeError):
            plan.predict_proba(np.zeros(4))

    def test_predict_proba_of_sigmoid_head_is_passthrough(self):
        model = Sequential(Linear(4, 1), Sigmoid())
        plan = InferencePlan.from_model(model)
        x = np.random.default_rng(0).normal(size=(5, 4))
        np.testing.assert_allclose(
            plan.predict_proba(x), plan.forward(x)[:, 0], rtol=0, atol=0
        )

    def test_predict_thresholds_at_half(self):
        plan = InferencePlan([_step(4, 1, seed=5)])
        x = np.random.default_rng(1).normal(size=(40, 4))
        proba = plan.predict_proba(x)
        np.testing.assert_array_equal(plan.predict(x), (proba >= 0.5).astype(int))

    def test_saturated_logits_clip_like_the_detector(self):
        w = np.full((1, 1), 1.0, dtype=np.float32)
        plan = InferencePlan([PlanStep(w, None, "none")])
        proba = plan.predict_proba(np.array([[1e7], [-1e7]]))
        # The detector clips logits to +/-500 before the logistic; huge
        # inputs must produce exactly the clipped values, not overflow.
        expected = 1.0 / (1.0 + np.exp(-np.clip([1e7, -1e7], -500, 500)))
        np.testing.assert_array_equal(proba, expected)


class TestScalerFolding:
    def test_fold_matches_explicit_normalization(self, rng):
        model = build_paper_mlp(10, (16,), n_outputs=1, seed=2)
        x_fit = rng.normal(3.0, 2.0, size=(64, 10))
        scaler = StandardScaler().fit(x_fit)
        folded = InferencePlan.from_model(model, scaler=scaler)
        bare = InferencePlan.from_model(model)
        x = rng.normal(3.0, 2.0, size=(9, 10))
        np.testing.assert_allclose(
            folded.predict_proba(x),
            bare.predict_proba(scaler.transform(x)),
            atol=1e-6,
        )

    def test_payload_keeps_unfolded_weights(self, rng):
        model = build_paper_mlp(6, (8,), n_outputs=1, seed=0)
        scaler = StandardScaler().fit(rng.normal(size=(32, 6)))
        plan = InferencePlan.from_model(model, scaler=scaler)
        arrays, meta = plan.payload()
        np.testing.assert_array_equal(arrays["w0"], plan.steps[0].weight)
        assert meta["has_scaler"] is True

    def test_payload_round_trip_is_bit_identical(self, rng):
        model = build_paper_mlp(6, (8, 4), n_outputs=1, seed=0)
        scaler = StandardScaler().fit(rng.normal(size=(32, 6)))
        plan = InferencePlan.from_model(model, scaler=scaler)
        arrays, meta = plan.payload()
        rebuilt = InferencePlan.from_payload(arrays, meta)
        x = rng.normal(size=(11, 6))
        np.testing.assert_array_equal(
            plan.predict_proba(x), rebuilt.predict_proba(x)
        )

    def test_from_payload_rejects_wrong_kind(self):
        with pytest.raises(ConfigurationError):
            InferencePlan.from_payload({}, {"kind": "banana"})


class TestFreezeDetector:
    def test_requires_model_attribute(self):
        with pytest.raises(ConfigurationError, match="no .model"):
            freeze_detector(object())

    def test_requires_module_model(self):
        class Fake:
            model = "not a module"

        with pytest.raises(ConfigurationError, match="not a Module"):
            freeze_detector(Fake())
