"""Fastpath <-> tensor-path equivalence, property-style.

The contract the whole subsystem rests on: for every supported
architecture, a frozen plan's probabilities match the production tensor
path to <= 1e-5 elementwise.  Shapes are sampled (seeded) across depths,
widths and batch sizes, including the paper's 64-input CSI and 66-input
CSI+Env layouts.
"""

import numpy as np
import pytest

from repro.baselines.scaler import StandardScaler
from repro.core.model_zoo import build_paper_mlp
from repro.fastpath import InferencePlan
from repro.nn.modules import Dropout, Linear, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.tensor import Tensor, no_grad

TOLERANCE = 1e-5


def tensor_proba(model, scaler, x):
    """The production path: scale, eval, no_grad forward, clipped logistic."""
    scaled = scaler.transform(np.asarray(x, dtype=float)) if scaler else x
    model.eval()
    with no_grad():
        logits = model(Tensor(np.asarray(scaled, dtype=float))).data
    return 1.0 / (1.0 + np.exp(-np.clip(logits.ravel(), -500, 500)))


@pytest.mark.parametrize("n_inputs", [64, 66])
@pytest.mark.parametrize("batch", [1, 7, 64])
def test_paper_architectures_match(n_inputs, batch):
    model = build_paper_mlp(n_inputs, (128, 256, 128), n_outputs=1, seed=n_inputs)
    rng = np.random.default_rng(batch)
    scaler = StandardScaler().fit(rng.normal(10.0, 3.0, size=(128, n_inputs)))
    plan = InferencePlan.from_model(model, scaler=scaler)
    x = rng.normal(10.0, 3.0, size=(batch, n_inputs))
    delta = np.abs(tensor_proba(model, scaler, x) - plan.predict_proba(x))
    assert delta.max() <= TOLERANCE


@pytest.mark.parametrize("seed", range(8))
def test_random_architectures_match(seed):
    rng = np.random.default_rng(seed)
    n_inputs = int(rng.integers(2, 80))
    depth = int(rng.integers(1, 4))
    hidden = tuple(int(rng.integers(4, 96)) for _ in range(depth))
    model = build_paper_mlp(n_inputs, hidden, n_outputs=1, seed=seed)
    scaler = StandardScaler().fit(rng.normal(5.0, 2.0, size=(64, n_inputs)))
    plan = InferencePlan.from_model(model, scaler=scaler)
    batch = int(rng.integers(1, 65))
    x = rng.normal(5.0, 2.0, size=(batch, n_inputs))
    delta = np.abs(tensor_proba(model, scaler, x) - plan.predict_proba(x))
    assert delta.max() <= TOLERANCE, (n_inputs, hidden, batch, delta.max())


def test_mixed_activations_match():
    rng = np.random.default_rng(7)
    model = Sequential(
        Linear(12, 24, rng=rng), Tanh(), Linear(24, 8, rng=rng), ReLU(),
        Linear(8, 1, rng=rng),
    )
    plan = InferencePlan.from_model(model)
    x = rng.normal(size=(33, 12))
    delta = np.abs(tensor_proba(model, None, x) - plan.predict_proba(x))
    assert delta.max() <= TOLERANCE


def test_sigmoid_head_matches_tensor_sigmoid():
    rng = np.random.default_rng(11)
    model = Sequential(Linear(6, 10, rng=rng), ReLU(), Linear(10, 1, rng=rng), Sigmoid())
    plan = InferencePlan.from_model(model)
    x = rng.normal(size=(17, 6))
    model.eval()
    with no_grad():
        expected = model(Tensor(x)).data.ravel()
    assert np.abs(expected - plan.predict_proba(x)).max() <= TOLERANCE


def test_dropout_model_matches_in_eval_mode():
    """Dropout must be identity in the frozen plan: eval-mode semantics."""
    rng = np.random.default_rng(13)
    model = Sequential(
        Linear(10, 20, rng=rng), ReLU(), Dropout(0.5),
        Linear(20, 1, rng=rng),
    )
    plan = InferencePlan.from_model(model)
    x = rng.normal(size=(21, 10))
    # Freeze ignores training mode entirely; the reference is eval mode.
    model.train()
    delta = np.abs(tensor_proba(model, None, x) - plan.predict_proba(x))
    assert delta.max() <= TOLERANCE
    # And the plan is deterministic call over call (no dropout sampling).
    np.testing.assert_array_equal(plan.predict_proba(x), plan.predict_proba(x))


def test_batch_size_does_not_change_answers():
    """Row i's probability is the same alone and inside any batch.

    BLAS may pick different GEMM kernels (different summation blocking)
    per batch size, so the guarantee is the plan's equivalence tolerance,
    not bit-identity.
    """
    rng = np.random.default_rng(17)
    model = build_paper_mlp(16, (32, 16), n_outputs=1, seed=3)
    plan = InferencePlan.from_model(model)
    x = rng.normal(size=(64, 16))
    whole = plan.predict_proba(x)
    singles = np.concatenate([plan.predict_proba(x[i : i + 1]) for i in range(64)])
    np.testing.assert_allclose(whole, singles, rtol=0, atol=TOLERANCE)
    sevens = np.concatenate(
        [plan.predict_proba(x[lo : lo + 7]) for lo in range(0, 64, 7)]
    )
    np.testing.assert_allclose(whole, sevens, rtol=0, atol=TOLERANCE)
    # Repeating the same batch size is deterministic, though.
    np.testing.assert_array_equal(whole, plan.predict_proba(x))


def test_hard_predictions_agree_with_detector_threshold():
    rng = np.random.default_rng(19)
    model = build_paper_mlp(8, (16,), n_outputs=1, seed=5)
    scaler = StandardScaler().fit(rng.normal(size=(64, 8)))
    plan = InferencePlan.from_model(model, scaler=scaler)
    x = rng.normal(size=(200, 8))
    expected = (tensor_proba(model, scaler, x) >= 0.5).astype(int)
    predicted = plan.predict(x)
    # Probabilities agree to 1e-5; decisions can only differ for rows
    # sitting within that band of 0.5.
    proba = plan.predict_proba(x)
    decided = np.abs(proba - 0.5) > TOLERANCE
    np.testing.assert_array_equal(predicted[decided], expected[decided])
