"""Tests for the serving metrics registry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TrainingMetricsCallback,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_last_value(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_summary(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 100
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == pytest.approx(50.5)
        assert s["p95"] == pytest.approx(95.05)
        assert s["max"] == 100

    def test_empty_percentile_is_nan(self):
        assert np.isnan(Histogram().percentile(50))
        assert np.isnan(Histogram().mean)

    def test_bounded_window_keeps_exact_totals(self):
        h = Histogram(max_samples=4)
        for v in (1, 2, 3, 4, 100, 100, 100, 100):
            h.observe(v)
        # Lifetime totals are exact; the percentile window holds the
        # most recent max_samples values only.
        assert h.count == 8
        assert h.total == 410
        assert h.percentile(50) == 100

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            Histogram(max_samples=0)

    def test_summary_max_reflects_retained_window_only(self):
        h = Histogram(max_samples=3)
        for v in (100, 1, 2, 3):  # the 100 is evicted by the wrap
            h.observe(v)
        s = h.summary()
        assert s["max"] == 3
        assert s["p95"] <= 3
        assert h.percentile(50) == 2
        # ...while count/mean stay lifetime-exact, including the evicted 100.
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(106 / 4)

    def test_values_preserve_observation_order_across_wrap(self):
        h = Histogram(max_samples=4)
        for v in (1, 2, 3, 4):
            h.observe(v)
        assert h.values() == [1, 2, 3, 4]
        h.observe(5)  # overwrites 1; oldest survivor must lead
        h.observe(6)  # overwrites 2
        assert h.values() == [3, 4, 5, 6]
        assert Histogram().values() == []

    def test_capacity_one_window_tracks_newest_sample(self):
        h = Histogram(max_samples=1)
        for v in (7, 8, 9):
            h.observe(v)
        assert h.values() == [9]
        assert h.summary()["max"] == 9
        assert h.percentile(0) == 9 and h.percentile(100) == 9
        assert h.count == 3 and h.total == 24

    def test_exactly_full_window_does_not_wrap(self):
        h = Histogram(max_samples=3)
        for v in (1, 2, 3):
            h.observe(v)
        assert h.values() == [1, 2, 3]
        assert h.summary()["max"] == 3

    def test_empty_summary_is_all_nan_but_zero_count(self):
        s = Histogram().summary()
        assert s["count"] == 0
        for key in ("mean", "p50", "p95", "max"):
            assert np.isnan(s[key])


class TestMetricsRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c") is r.histogram("c")

    def test_kind_collision_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ConfigurationError):
            r.gauge("x")
        with pytest.raises(ConfigurationError):
            r.histogram("x")

    def test_as_dict_and_report(self):
        r = MetricsRegistry()
        r.counter("frames_in").inc(7)
        r.gauge("queue_depth").set(2)
        r.histogram("latency_ms").observe(1.0)
        snapshot = r.as_dict()
        assert snapshot["frames_in"] == 7
        assert snapshot["queue_depth"] == 2
        assert snapshot["latency_ms"]["count"] == 1
        text = r.report("title:")
        assert text.startswith("title:")
        for name in ("frames_in", "queue_depth", "latency_ms", "p95"):
            assert name in text

    def test_report_formats_empty_histogram(self):
        r = MetricsRegistry()
        r.histogram("never_observed_ms")
        text = r.report()
        assert "never_observed_ms" in text
        assert "count=0" in text and "nan" in text

    def test_empty_registry_report(self):
        assert MetricsRegistry().report() == ""
        assert MetricsRegistry().report("title:") == "title:"

    def test_kind_views_are_snapshots(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g").set(1)
        r.histogram("h").observe(2.0)
        assert set(r.counters) == {"c"}
        assert set(r.gauges) == {"g"}
        assert set(r.histograms) == {"h"}
        # Mutating the snapshot must not touch the registry.
        r.counters["rogue"] = Counter()
        assert "rogue" not in r.counters


class TestTrainingMetricsCallback:
    def test_records_epochs(self):
        r = MetricsRegistry()
        cb = TrainingMetricsCallback(r, prefix="t")
        cb.on_epoch_end(0, {"train_loss": 0.5, "duration_s": 0.1})
        cb.on_epoch_end(1, {"train_loss": 0.25, "duration_s": 0.2, "val_loss": 0.3})
        assert r.counter("t_epochs").value == 2
        assert r.gauge("t_loss").value == 0.25
        assert r.gauge("t_val_loss").value == 0.3
        assert r.histogram("t_epoch_time_s").count == 2

    def test_integrates_with_trainer(self, rng):
        from repro.nn.losses import mse_loss
        from repro.nn.modules import Linear
        from repro.nn.optim import SGD
        from repro.nn.train import Trainer

        x = rng.normal(size=(32, 3))
        y = x @ np.array([[1.0], [-2.0], [0.5]])
        registry = MetricsRegistry()
        model = Linear(3, 1)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01),
                          mse_loss, batch_size=8, rng=rng)
        trainer.fit(x, y, epochs=3, callbacks=[TrainingMetricsCallback(registry)])
        assert registry.counter("train_epochs").value == 3
        assert registry.histogram("train_epoch_time_s").count == 3
