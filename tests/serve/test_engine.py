"""Tests for the micro-batched inference engine."""

import numpy as np
import pytest

from repro.baselines.pipeline import ScaledLogistic
from repro.config import TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.data.streaming import StreamingDetector
from repro.exceptions import ConfigurationError, ServingError
from repro.overload.governor import OverloadPolicy, ServiceMode
from repro.serve.config import ServeConfig
from repro.serve.engine import InferenceEngine
from repro.serve.queue import PendingFrame
from repro.serve.robustness import LinkHealth, PriorFallback


class ConstantEstimator:
    """Always answers the same probability — cheap and deterministic."""

    def __init__(self, p: float = 0.9) -> None:
        self.p = p

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(x).shape[0], self.p)


class EchoEstimator:
    """Probability = first feature of each row (frames script their vote)."""

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x)[:, 0]


class BrokenEstimator:
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        raise RuntimeError("weights corrupted")


class WrongLengthEstimator:
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(x).shape[0] + 1, 0.5)


class FailNTimesEstimator:
    """Primary that dies for the first ``n`` calls, then comes back."""

    def __init__(self, n: int, p: float = 0.6) -> None:
        self.n = n
        self.p = p
        self.calls = 0

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self.calls += 1
        if self.calls <= self.n:
            raise RuntimeError("transient outage")
        return np.full(np.asarray(x).shape[0], self.p)


def _row(value: float = 0.9, width: int = 4) -> np.ndarray:
    return np.full(width, value)


class TestBatching:
    def test_flushes_on_max_batch(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=4, max_latency_ms=None))
        for i in range(3):
            assert engine.submit("a", float(i), _row()) == []
        results = engine.submit("a", 3.0, _row())
        assert len(results) == 4
        assert [r.t_s for r in results] == [0.0, 1.0, 2.0, 3.0]
        assert all(r.source == "primary" for r in results)
        assert engine.registry.counter("batches").value == 1
        assert engine.registry.histogram("batch_size").percentile(50) == 4

    def test_latency_trigger_uses_stream_time(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=100, max_latency_ms=1000.0))
        assert engine.submit("a", 0.0, _row()) == []
        # Second frame advances stream time past the 1 s budget of the first.
        results = engine.submit("a", 2.0, _row())
        assert len(results) == 2

    def test_flush_drains_everything(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=100, max_latency_ms=None))
        for i in range(5):
            engine.submit("a", float(i), _row())
        results = engine.flush()
        assert len(results) == 5
        assert engine.queue.depth == 0
        assert engine.registry.counter("frames_out").value == 5

    def test_overflow_evicts_oldest_and_counts(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=4, max_latency_ms=None, queue_capacity=4))
        # Pre-load the queue to capacity behind the engine's back, so the
        # next admission exercises the drop-oldest backpressure path.
        for i in range(4):
            engine.queue._pending.append(PendingFrame("a", float(i), _row()))
        results = engine.submit("a", 4.0, _row())
        assert engine.registry.counter("frames_dropped_overflow").value == 1
        # The oldest (t=0) was evicted; the surviving four were served.
        assert [r.t_s for r in results] == [1.0, 2.0, 3.0, 4.0]


class TestAdmission:
    def test_rejects_non_finite_frames(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=2, max_latency_ms=None))
        bad = _row()
        bad[1] = np.nan
        assert engine.submit("a", 0.0, bad) == []
        assert engine.registry.counter("frames_rejected").value == 1
        assert engine.registry.counter("frames_in").value == 0

    def test_rejects_wrong_shape(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=2, max_latency_ms=None))
        assert engine.submit("a", 0.0, np.ones((2, 4))) == []
        assert engine.registry.counter("frames_rejected").value == 1

    def test_stale_frames_dropped_and_link_degraded(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=3, max_latency_ms=None, stale_after_s=5.0))
        engine.submit("old", 0.0, _row())
        engine.submit("fresh", 100.0, _row())
        results = engine.submit("fresh", 100.1, _row())
        assert len(results) == 2
        assert all(r.link_id == "fresh" for r in results)
        assert engine.registry.counter("frames_dropped_stale").value == 1
        assert engine.health("old") is LinkHealth.DEGRADED
        assert engine.health("fresh") is LinkHealth.HEALTHY


class TestRobustness:
    def test_fallback_keeps_stream_alive(self):
        engine = InferenceEngine(BrokenEstimator(), ServeConfig(max_batch=4, max_latency_ms=None, fallback=PriorFallback(prior=0.8)))
        results = [r for i in range(8) for r in engine.submit("a", float(i), _row())]
        assert len(results) == 8  # no frame dropped on model failure
        assert all(r.source == "fallback" for r in results)
        assert all(r.probability == pytest.approx(0.8) for r in results)
        assert engine.health("a") is LinkHealth.DEGRADED
        assert engine.registry.counter("primary_failures").value == 2
        assert engine.registry.counter("fallback_frames").value == 8

    def test_degraded_link_recovers_on_next_primary_batch(self):
        engine = InferenceEngine(FailNTimesEstimator(n=1), ServeConfig(max_batch=2, max_latency_ms=None, fallback=PriorFallback(prior=0.8)))
        engine.submit("a", 0.0, _row())
        first = engine.submit("a", 1.0, _row())  # primary dies -> fallback
        assert all(r.source == "fallback" for r in first)
        assert engine.health("a") is LinkHealth.DEGRADED
        assert engine.registry.counter("link_recovered_total").value == 0

        engine.submit("a", 2.0, _row())
        second = engine.submit("a", 3.0, _row())  # primary back -> recovery
        assert all(r.source == "primary" for r in second)
        assert engine.health("a") is LinkHealth.HEALTHY
        assert engine.registry.counter("link_recovered_total").value == 1

        engine.submit("a", 4.0, _row())
        engine.submit("a", 5.0, _row())  # stays healthy: no double count
        assert engine.registry.counter("link_recovered_total").value == 1

    def test_flush_recovers_degraded_link_exactly_once(self):
        # A flush batch holding several frames of one DEGRADED link must
        # bump link_recovered_total once, not once per frame.
        engine = InferenceEngine(FailNTimesEstimator(n=1), ServeConfig(max_batch=4, max_latency_ms=None, fallback=PriorFallback(prior=0.8)))
        for i in range(4):
            engine.submit("a", float(i), _row())  # full batch -> primary dies
        assert engine.health("a") is LinkHealth.DEGRADED
        assert engine.registry.counter("link_recovered_total").value == 0

        engine.submit("a", 4.0, _row())
        engine.submit("a", 5.0, _row())  # two pending frames, no batch yet
        results = engine.flush()  # primary healed: one batch, one recovery
        assert len(results) == 2
        assert all(r.source == "primary" for r in results)
        assert engine.health("a") is LinkHealth.HEALTHY
        assert engine.registry.counter("link_recovered_total").value == 1

        engine.submit("a", 6.0, _row())
        assert engine.flush()  # healthy link: flush must not count again
        assert engine.registry.counter("link_recovered_total").value == 1

    def test_flush_counts_one_recovery_per_degraded_link(self):
        engine = InferenceEngine(FailNTimesEstimator(n=1), ServeConfig(max_batch=2, max_latency_ms=None, fallback=PriorFallback(prior=0.8)))
        engine.submit("a", 0.0, _row())
        engine.submit("b", 0.5, _row())  # full batch -> both links degrade
        assert engine.health("a") is LinkHealth.DEGRADED
        assert engine.health("b") is LinkHealth.DEGRADED

        engine.submit("a", 1.0, _row())
        results = engine.submit("b", 1.5, _row())
        if not results:
            results = engine.flush()
        assert all(r.source == "primary" for r in results)
        assert engine.registry.counter("link_recovered_total").value == 2

    def test_stale_degraded_link_recovers_with_fresh_frames(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=2, max_latency_ms=None, stale_after_s=5.0))
        engine.submit("old", 0.0, _row())
        engine.submit("fresh", 100.0, _row())
        engine.submit("fresh", 100.1, _row())  # drops the stale frame
        assert engine.health("old") is LinkHealth.DEGRADED
        engine.submit("old", 100.2, _row())
        engine.submit("old", 100.3, _row())  # fresh frames, primary batch
        assert engine.health("old") is LinkHealth.HEALTHY
        assert engine.registry.counter("link_recovered_total").value == 1

    def test_both_tiers_failing_raises(self):
        engine = InferenceEngine(BrokenEstimator(), ServeConfig(max_batch=2, max_latency_ms=None, fallback=BrokenEstimator()))
        engine.submit("a", 0.0, _row())
        with pytest.raises(ServingError):
            engine.submit("a", 1.0, _row())

    def test_wrong_length_probabilities_raise(self):
        engine = InferenceEngine(WrongLengthEstimator(), ServeConfig(max_batch=2, max_latency_ms=None))
        engine.submit("a", 0.0, _row())
        with pytest.raises(ServingError):
            engine.submit("a", 1.0, _row())

    def test_estimator_without_predict_proba_rejected(self):
        with pytest.raises(ConfigurationError):
            InferenceEngine(object())


class TestLinks:
    def test_unknown_link_rejected(self):
        engine = InferenceEngine(ConstantEstimator())
        with pytest.raises(ConfigurationError):
            engine.health("ghost")
        with pytest.raises(ConfigurationError):
            engine.state("ghost")

    def test_links_are_idle_until_first_result(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=8, max_latency_ms=None))
        engine.submit("a", 0.0, _row())
        assert engine.health("a") is LinkHealth.IDLE
        engine.flush()
        assert engine.health("a") is LinkHealth.HEALTHY
        assert engine.link_ids == ("a",)

    def test_per_link_debounce_is_independent(self):
        # Link "on" streams occupied votes, link "off" empty votes; each
        # link's debouncer must see only its own frames.
        engine = InferenceEngine(EchoEstimator(), ServeConfig(max_batch=4, max_latency_ms=None, window=1, hold_frames=1))
        results = []
        for i in range(8):
            link, value = ("on", 0.9) if i % 2 == 0 else ("off", 0.1)
            results.extend(engine.submit(link, float(i), _row(value)))
        results.extend(engine.flush())
        assert engine.state("on") == 1
        assert engine.state("off") == 0
        on_transitions = [r.transition for r in results
                         if r.link_id == "on" and r.transition is not None]
        assert len(on_transitions) == 1 and on_transitions[0].occupied
        assert not any(r.transition for r in results if r.link_id == "off")


@pytest.fixture(scope="module")
def fitted_logistic(smoke_dataset):
    half = len(smoke_dataset) // 2
    model = ScaledLogistic()
    model.fit(smoke_dataset.csi[:half], smoke_dataset.occupancy[:half])
    return model


class TestEquivalence:
    def test_matches_streaming_detector_transitions(self, smoke_dataset, fitted_logistic):
        """Micro-batching must not change the answer, only the cost."""
        start = len(smoke_dataset) // 2
        t = smoke_dataset.timestamps_s
        csi = smoke_dataset.csi
        n = min(600, len(smoke_dataset) - start)

        reference = StreamingDetector(fitted_logistic, window=5, hold_frames=3)
        expected = []
        for i in range(start, start + n):
            event = reference.update(float(t[i]), csi[i])
            if event is not None:
                expected.append((event.t_s, event.occupied))

        engine = InferenceEngine(fitted_logistic, ServeConfig(max_batch=64, max_latency_ms=None, window=5, hold_frames=3))
        got = []
        for i in range(start, start + n):
            for r in engine.submit("link-0", float(t[i]), csi[i]):
                if r.transition is not None:
                    got.append((r.transition.t_s, r.transition.occupied))
        for r in engine.flush():
            if r.transition is not None:
                got.append((r.transition.t_s, r.transition.occupied))

        assert got == expected
        assert engine.state("link-0") == reference.state

    def test_serves_the_neural_detector(self, smoke_dataset):
        config = TrainingConfig(epochs=2, hidden_sizes=(16,), batch_size=256)
        detector = OccupancyDetector(smoke_dataset.n_subcarriers, config)
        detector.fit(smoke_dataset.csi[:800], smoke_dataset.occupancy[:800])

        engine = InferenceEngine(detector, ServeConfig(max_batch=32, max_latency_ms=None))
        results = []
        for i in range(64):
            results.extend(
                engine.submit(f"link-{i % 2}", float(smoke_dataset.timestamps_s[i]),
                              smoke_dataset.csi[i])
            )
        assert len(results) == 64
        assert all(0.0 <= r.probability <= 1.0 for r in results)
        assert all(r.source == "primary" for r in results)


class TestObserverIntegration:
    def _engine(self, **kwargs):
        from repro.obs import Observer

        obs = Observer(label="t")
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(observer=obs, max_latency_ms=None, **kwargs),
        )
        return engine, obs

    def test_frame_ids_are_monotonic_and_returned(self):
        engine, obs = self._engine(max_batch=4)
        results = []
        for i in range(8):
            results.extend(engine.submit("a", float(i), _row()))
        results.extend(engine.flush())
        assert [r.frame_id for r in results] == list(range(8))
        assert obs.ledger()["answered"] == 8

    def test_ids_assigned_even_without_observer(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=2, max_latency_ms=None))
        assert engine.observer.enabled is False
        results = engine.submit("a", 0.0, _row()) + engine.submit("a", 1.0, _row())
        assert [r.frame_id for r in results] == [0, 1]

    def test_rejected_frame_sealed_with_rejected_outcome(self):
        engine, obs = self._engine(max_batch=4)
        engine.submit("a", 0.0, np.full(4, np.nan))
        assert obs.events.count("frame.rejected") == 1
        event = obs.events.tail(1)[0]
        assert event.frame_id == 0 and event.data["gate"] == "shape"
        assert obs.tracer.trace(0).outcome == "rejected"

    def test_overflow_eviction_seals_the_evicted_frame(self):
        engine, obs = self._engine(max_batch=4, queue_capacity=4)
        for i in range(6):  # two evictions before any flush trigger at 4+
            engine.submit("a", float(i), _row())
            engine.queue.max_batch = 100  # hold the queue closed
        assert obs.events.count("frame.overflow") == 2
        evicted = [e.frame_id for e in obs.events if e.kind == "frame.overflow"]
        assert evicted == [0, 1]  # drop-oldest
        ledger = obs.ledger()
        assert ledger["overflow"] == 2 and ledger["unaccounted"] == 0

    def test_stale_drop_emits_age(self):
        engine, obs = self._engine(max_batch=100, stale_after_s=5.0)
        engine.submit("a", 0.0, _row())
        engine.submit("a", 100.0, _row())
        engine.flush()
        assert obs.events.count("frame.stale") == 1
        event = next(e for e in obs.events if e.kind == "frame.stale")
        assert event.frame_id == 0 and event.data["age_s"] == 100.0
        assert obs.ledger()["unaccounted"] == 0

    def test_batch_flush_event_carries_size_and_source(self):
        engine, obs = self._engine(max_batch=3)
        for i in range(3):
            engine.submit("a", float(i), _row())
        event = next(e for e in obs.events if e.kind == "batch.flush")
        assert event.data == {"n": 3, "source": "primary"}

    def test_fallback_recovery_emits_link_recovered(self):
        from repro.obs import Observer

        obs = Observer(label="t")
        engine = InferenceEngine(FailNTimesEstimator(1), ServeConfig(observer=obs, max_batch=2, max_latency_ms=None, fallback=PriorFallback()))
        for i in range(4):
            engine.submit("a", float(i), _row())
        assert obs.events.count("link.recovered") == 1
        answered = [e for e in obs.events if e.kind == "frame.answered"]
        assert [e.data["source"] for e in answered] == [
            "fallback", "fallback", "primary", "primary",
        ]

    def test_traces_record_pipeline_stages(self):
        engine, obs = self._engine(max_batch=2)
        engine.submit("a", 0.0, _row())
        engine.submit("a", 1.0, _row())
        trace = obs.tracer.trace(0)
        assert trace.outcome == "answered"
        for stage in ("enqueue", "queue_wait", "supervise", "predict", "emit"):
            assert stage in trace.stages, stage
        assert trace.total_ms > 0.0

    def test_observer_shares_engine_registry(self):
        engine, obs = self._engine(max_batch=2)
        engine.submit("a", 0.0, _row())
        engine.submit("a", 1.0, _row())
        assert obs.registry is engine.registry
        assert engine.registry.histogram("stage_predict_ms").count == 2
        dump = obs.dump()
        assert "repro_frames_in" in dump["prometheus"]


class TestOverloadPlane:
    """The engine half of the overload control plane (repro.overload)."""

    def test_rate_limited_frames_get_typed_outcome(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=4, max_latency_ms=None,
                        rate_limit_hz=1.0, rate_limit_burst=1.0),
        )
        assert engine.submit_frame("a", 0.0, _row()).outcome == "enqueued"
        ticket = engine.submit_frame("a", 0.0, _row())
        assert ticket.outcome == "rate_limited"
        assert not ticket.admitted
        assert engine.registry.counter("frames_rate_limited").value == 1
        assert engine.link_stats("a")["rate_limited"] == 1
        # Tokens refill in stream time: one second buys the next frame.
        assert engine.submit_frame("a", 1.0, _row()).outcome == "enqueued"

    def test_rate_limit_is_per_link(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=8, max_latency_ms=None,
                        rate_limit_hz=1.0, rate_limit_burst=1.0),
        )
        engine.submit_frame("chatty", 0.0, _row())
        assert engine.submit_frame("chatty", 0.0, _row()).outcome == "rate_limited"
        # The quiet link's bucket is untouched by the chatty one.
        assert engine.submit_frame("quiet", 0.0, _row()).outcome == "enqueued"

    def test_malformed_frames_spend_no_tokens(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=4, max_latency_ms=None,
                        rate_limit_hz=1.0, rate_limit_burst=1.0),
        )
        bad = _row()
        bad[0] = np.nan
        assert engine.submit_frame("a", 0.0, bad).outcome == "rejected"
        # The shape gate ran first, so the bucket still holds its token.
        assert engine.submit_frame("a", 0.0, _row()).outcome == "enqueued"

    def test_expired_frames_shed_at_dequeue(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=16, max_latency_ms=None,
                        deadline_ms=1000.0, auto_flush=False),
        )
        engine.submit("a", 0.0, _row())
        engine.submit("a", 5.0, _row())
        results = engine.pump(now_s=5.0)
        # The t=0 frame waited 5 s against a 1 s budget: shed, not served.
        assert [r.t_s for r in results] == [5.0]
        assert engine.link_stats("a")["deadline_expired"] == 1
        assert engine.registry.counter("frames_deadline_expired").value == 1
        # Deadline sheds are load decisions, never link faults.
        assert engine.health("a") is LinkHealth.HEALTHY

    def test_queue_credit_bounds_one_links_share(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=16, max_latency_ms=None, queue_capacity=16,
                        queue_credit=2, auto_flush=False),
        )
        for i in range(5):
            engine.submit("hog", float(i), _row())
        engine.submit("meek", 5.0, _row())
        # The hog evicted its own oldest frames at its credit bound; the
        # meek link's frame still sits in plentiful global capacity.
        assert engine.link_stats("hog")["overflow"] == 3
        assert engine.link_stats("meek")["overflow"] == 0
        served = engine.flush()
        assert sorted(r.t_s for r in served if r.link_id == "hog") == [3.0, 4.0]

    def test_governor_serves_fastpath_under_pressure(self):
        engine = InferenceEngine(
            EchoEstimator(),
            ServeConfig(
                max_batch=8, max_latency_ms=None, queue_capacity=8,
                auto_flush=False,
                overload=OverloadPolicy(
                    fastpath_at=0.01, fallback_at=5.0, shed_at=6.0,
                    alpha=1.0, hold_ticks=1, jitter=0.0,
                ),
            ),
        )
        engine.attach_fastpath(ConstantEstimator(0.25))
        for i in range(4):
            engine.submit("a", float(i), _row(0.9))
        results = engine.pump()
        assert engine.mode is ServiceMode.FASTPATH_ONLY
        assert all(r.source == "fastpath" for r in results)
        assert all(r.probability == pytest.approx(0.25) for r in results)
        # Fastpath answers count as primary for link health.
        assert engine.health("a") is LinkHealth.HEALTHY

    def test_governor_without_fastpath_falls_through_to_primary(self):
        engine = InferenceEngine(
            EchoEstimator(),
            ServeConfig(
                max_batch=8, max_latency_ms=None, queue_capacity=8,
                auto_flush=False,
                overload=OverloadPolicy(
                    fastpath_at=0.01, fallback_at=5.0, shed_at=6.0,
                    alpha=1.0, hold_ticks=1, jitter=0.0,
                ),
            ),
        )
        for i in range(4):
            engine.submit("a", float(i), _row(0.9))
        results = engine.pump()
        assert all(r.source == "primary" for r in results)

    def test_governor_fallback_only_skips_primary(self):
        engine = InferenceEngine(
            EchoEstimator(),
            ServeConfig(
                max_batch=8, max_latency_ms=None, queue_capacity=8,
                auto_flush=False, fallback=PriorFallback(prior=0.8),
                overload=OverloadPolicy(
                    fastpath_at=0.01, fallback_at=0.02, shed_at=6.0,
                    alpha=1.0, hold_ticks=1, jitter=0.0,
                ),
            ),
        )
        for i in range(4):
            engine.submit("a", float(i), _row(0.9))
        results = engine.pump()
        assert engine.mode is ServiceMode.FALLBACK_ONLY
        assert all(r.source == "fallback" for r in results)
        assert all(r.probability == pytest.approx(0.8) for r in results)

    def test_governor_shed_mode_drops_typed_and_health_neutral(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(
                max_batch=8, max_latency_ms=None, queue_capacity=8,
                auto_flush=False,
                overload=OverloadPolicy(
                    fastpath_at=0.01, fallback_at=0.02, shed_at=0.03,
                    alpha=1.0, hold_ticks=1, jitter=0.0,
                ),
            ),
        )
        for i in range(4):
            engine.submit("a", float(i), _row())
        results = engine.pump()
        assert engine.mode is ServiceMode.SHED
        assert results == []
        assert engine.link_stats("a")["overload_shed"] == 4
        assert engine.registry.counter("frames_shed_overload").value == 4
        assert engine.health("a") is LinkHealth.IDLE  # untouched by sheds

    def test_governor_recovers_after_calm(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(
                max_batch=8, max_latency_ms=None, queue_capacity=8,
                auto_flush=False,
                overload=OverloadPolicy(
                    fastpath_at=0.4, fallback_at=5.0, shed_at=6.0,
                    alpha=1.0, hold_ticks=1, probe_cooldown_s=1.0,
                    jitter=0.0,
                ),
            ),
        )
        for i in range(4):
            engine.submit("a", float(i), _row())
        engine.pump()
        assert engine.mode is ServiceMode.FASTPATH_ONLY
        # One calm, post-cooldown batch probes back down to FULL.
        engine.submit("a", 100.0, _row())
        engine.pump(now_s=100.0)
        assert engine.mode is ServiceMode.FULL

    def test_supervisor_reject_wins_over_governor(self):
        # Breakers hold both tiers open: the governor cannot force
        # traffic onto a tier the supervisor rejects.
        from repro.guard.breaker import CircuitBreaker
        from repro.guard.supervisor import RecoverySupervisor

        supervisor = RecoverySupervisor(
            breaker=CircuitBreaker(failure_threshold=1, cooldown_s=1e6, max_cooldown_s=1e6),
            fallback_breaker=CircuitBreaker(failure_threshold=1, cooldown_s=1e6, max_cooldown_s=1e6),
        )
        supervisor.record_primary_failure(0.0)
        supervisor.record_fallback_failure(0.0)
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(
                max_batch=8, max_latency_ms=None, queue_capacity=8,
                auto_flush=False, supervisor=supervisor,
                overload=OverloadPolicy(
                    fastpath_at=0.01, fallback_at=5.0, shed_at=6.0,
                    alpha=1.0, hold_ticks=1, jitter=0.0,
                ),
            ),
        )
        engine.attach_fastpath(ConstantEstimator(0.25))
        engine.submit("a", 0.0, _row())
        assert engine.pump(now_s=0.5) == []
        assert engine.link_stats("a")["policy_rejected"] == 1

    def test_full_mode_governor_is_byte_identical_noop(self):
        # A governor that never leaves FULL must not change a single
        # answer or shed a single frame vs the ungoverned engine.
        def run(overload):
            engine = InferenceEngine(
                EchoEstimator(),
                ServeConfig(max_batch=4, max_latency_ms=None,
                            overload=overload),
            )
            rng = np.random.default_rng(7)
            out = []
            for i in range(64):
                row = np.abs(rng.normal(size=4)) + 0.01
                out.extend(engine.submit("a", float(i), row))
            out.extend(engine.flush())
            return engine, out

        plain_engine, plain = run(None)
        governed_engine, governed = run(OverloadPolicy())
        assert governed_engine.mode is ServiceMode.FULL
        assert [r.probability for r in governed] == [r.probability for r in plain]
        assert [r.t_s for r in governed] == [r.t_s for r in plain]
        stats = governed_engine.link_stats("a")
        assert stats["overload_shed"] == 0
        assert stats["deadline_expired"] == 0
        assert stats["rate_limited"] == 0
        assert stats["frames_out"] == plain_engine.link_stats("a")["frames_out"]

    def test_attach_fastpath_validates_and_detaches(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=4, max_latency_ms=None))
        with pytest.raises(ConfigurationError):
            engine.attach_fastpath(object())  # no predict_proba
        engine.attach_fastpath(ConstantEstimator(0.5))
        engine.attach_fastpath(None)  # detach is allowed
        assert engine._fastpath is None

    def test_link_stats_unknown_link_raises(self):
        engine = InferenceEngine(ConstantEstimator(), ServeConfig(max_batch=4, max_latency_ms=None))
        with pytest.raises(ConfigurationError):
            engine.link_stats("nope")


class TestPump:
    def test_auto_flush_off_defers_service_to_pump(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=2, max_latency_ms=None, auto_flush=False),
        )
        for i in range(6):
            assert engine.submit("a", float(i), _row()) == []
        assert engine.queue.depth == 6
        assert len(engine.pump(3)) == 3
        assert engine.queue.depth == 3
        assert len(engine.pump()) == 3  # None drains the rest
        assert engine.queue.depth == 0

    def test_pump_respects_max_batch(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=2, max_latency_ms=None, auto_flush=False),
        )
        for i in range(5):
            engine.submit("a", float(i), _row())
        engine.pump()
        assert engine.registry.histogram("batch_size").percentile(100) <= 2

    def test_pump_advances_stream_time(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=4, max_latency_ms=None, auto_flush=False,
                        stale_after_s=2.0),
        )
        engine.submit("a", 0.0, _row())
        engine.pump(now_s=10.0)
        # Stream time moved to 10 s, so the frame aged out as stale.
        assert engine.link_stats("a")["stale_dropped"] == 1

    def test_pump_rejects_negative_budget(self):
        engine = InferenceEngine(
            ConstantEstimator(),
            ServeConfig(max_batch=2, max_latency_ms=None, auto_flush=False),
        )
        with pytest.raises(ConfigurationError):
            engine.pump(-1)
