"""Tests for ServeConfig and the engine's legacy-kwarg deprecation path."""

import warnings

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.guard.repair import GapRepairer
from repro.guard.supervisor import RecoverySupervisor
from repro.guard.validation import AmplitudeRangeCheck, FrameValidator
from repro.serve import InferenceEngine, ServeConfig
from repro.serve.metrics import MetricsRegistry


class _Estimator:
    def predict_proba(self, x):
        return np.full(len(np.atleast_2d(x)), 0.8)


class TestServeConfigValidation:
    def test_defaults_construct(self):
        config = ServeConfig()
        assert config.max_batch == 32
        assert config.max_latency_ms == 250.0
        assert config.queue_capacity == 256

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch=0)

    def test_rejects_capacity_below_batch(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch=64, queue_capacity=32)

    def test_rejects_non_positive_latency(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_latency_ms=0.0)
        assert ServeConfig(max_latency_ms=None).max_latency_ms is None

    def test_rejects_non_positive_staleness(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(stale_after_s=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServeConfig().max_batch = 5

    def test_with_overrides_revalidates(self):
        config = ServeConfig(max_batch=8)
        bumped = config.with_overrides(max_batch=16)
        assert bumped.max_batch == 16
        assert config.max_batch == 8
        with pytest.raises(ConfigurationError):
            config.with_overrides(max_batch=-1)


class TestBuildGuards:
    def test_no_guard_config_yields_nones(self):
        assert ServeConfig().build_guards() == (None, None, None)

    def test_explicit_components_pass_through(self):
        validator = FrameValidator([AmplitudeRangeCheck(0.0, 1.0)])
        repairer = GapRepairer(expected_interval_s=1.0)
        supervisor = RecoverySupervisor()
        config = ServeConfig(
            validator=validator, repairer=repairer, supervisor=supervisor
        )
        assert config.build_guards() == (validator, repairer, supervisor)

    def test_policy_builds_fresh_components_per_call(self):
        from repro.guard import GuardPolicy, ReferenceStats

        rng = np.random.default_rng(0)
        features = np.abs(rng.normal(size=(64, 4))) + 0.1
        policy = GuardPolicy(reference=ReferenceStats.fit(features), n_features=4)
        config = ServeConfig(guard=policy)
        first = config.build_guards()
        second = config.build_guards()
        for a, b in zip(first, second):
            assert a is not None
            assert a is not b  # fresh per call — per-tenant isolation


class TestEngineAcceptsConfig:
    def test_config_replaces_kwargs(self):
        registry = MetricsRegistry()
        engine = InferenceEngine(
            _Estimator(),
            ServeConfig(max_batch=4, max_latency_ms=None, registry=registry),
        )
        assert engine.config.max_batch == 4
        assert engine.registry is registry
        ticket = engine.submit_frame("link-0", 0.0, np.ones(3))
        assert ticket.admitted

    def test_legacy_kwargs_warn_and_still_work(self):
        with pytest.warns(DeprecationWarning):
            engine = InferenceEngine(_Estimator(), max_batch=4, max_latency_ms=None)
        assert engine.config.max_batch == 4
        assert engine.config.max_latency_ms is None

    def test_legacy_kwargs_override_config(self):
        with pytest.warns(DeprecationWarning):
            engine = InferenceEngine(
                _Estimator(), ServeConfig(max_batch=8), max_batch=2
            )
        assert engine.config.max_batch == 2

    def test_config_only_construction_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            InferenceEngine(_Estimator(), ServeConfig())

    def test_legacy_and_config_behave_identically(self):
        rng = np.random.default_rng(0)
        rows = np.abs(rng.normal(size=(12, 4))) + 0.1
        modern = InferenceEngine(_Estimator(), ServeConfig(max_batch=3, window=3))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = InferenceEngine(_Estimator(), max_batch=3, window=3)
        for i, row in enumerate(rows):
            a = modern.submit("link-0", float(i), row)
            b = legacy.submit("link-0", float(i), row)
            assert [r.probability for r in a] == [r.probability for r in b]
        assert [r.probability for r in modern.flush()] == [
            r.probability for r in legacy.flush()
        ]
