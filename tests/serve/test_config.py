"""Tests for ServeConfig and the engine's removed legacy-kwarg path."""

import warnings

import numpy as np
import pytest

from repro.exceptions import ConfigError, ConfigurationError
from repro.guard.repair import GapRepairer
from repro.guard.supervisor import RecoverySupervisor
from repro.guard.validation import AmplitudeRangeCheck, FrameValidator
from repro.serve import InferenceEngine, ServeConfig
from repro.serve.metrics import MetricsRegistry


class _Estimator:
    def predict_proba(self, x):
        return np.full(len(np.atleast_2d(x)), 0.8)


class TestServeConfigValidation:
    def test_defaults_construct(self):
        config = ServeConfig()
        assert config.max_batch == 32
        assert config.max_latency_ms == 250.0
        assert config.queue_capacity == 256

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch=0)

    def test_rejects_capacity_below_batch(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch=64, queue_capacity=32)

    def test_batching_triple_errors_name_the_offending_field(self):
        # min_batch <= max_batch <= queue_capacity: each violation is
        # reported against the field the caller has to fix.
        with pytest.raises(ConfigurationError, match="min_batch"):
            ServeConfig(min_batch=0)
        with pytest.raises(ConfigurationError, match=r"min_batch \(16\).*max_batch \(8\)"):
            ServeConfig(min_batch=16, max_batch=8)
        with pytest.raises(ConfigurationError, match="queue_capacity"):
            ServeConfig(max_batch=64, queue_capacity=32)

    def test_batching_triple_accepts_the_boundary(self):
        config = ServeConfig(min_batch=8, max_batch=8, queue_capacity=8)
        assert (config.min_batch, config.max_batch, config.queue_capacity) == (8, 8, 8)

    def test_rejects_bad_arena_slots(self):
        with pytest.raises(ConfigurationError, match="arena_slots"):
            ServeConfig(arena_slots=0)
        assert ServeConfig(arena_slots=None).arena_slots is None
        assert ServeConfig(arena_slots=1).arena_slots == 1

    def test_adaptive_defaults_off(self):
        config = ServeConfig()
        assert config.adaptive_batching is False
        assert config.min_batch == 1
        assert config.arena_slots is None

    def test_rejects_non_positive_latency(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_latency_ms=0.0)
        assert ServeConfig(max_latency_ms=None).max_latency_ms is None

    def test_rejects_non_positive_staleness(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(stale_after_s=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServeConfig().max_batch = 5

    def test_with_overrides_revalidates(self):
        config = ServeConfig(max_batch=8)
        bumped = config.with_overrides(max_batch=16)
        assert bumped.max_batch == 16
        assert config.max_batch == 8
        with pytest.raises(ConfigurationError):
            config.with_overrides(max_batch=-1)


class TestBuildGuards:
    def test_no_guard_config_yields_nones(self):
        assert ServeConfig().build_guards() == (None, None, None)

    def test_explicit_components_pass_through(self):
        validator = FrameValidator([AmplitudeRangeCheck(0.0, 1.0)])
        repairer = GapRepairer(expected_interval_s=1.0)
        supervisor = RecoverySupervisor()
        config = ServeConfig(
            validator=validator, repairer=repairer, supervisor=supervisor
        )
        assert config.build_guards() == (validator, repairer, supervisor)

    def test_policy_builds_fresh_components_per_call(self):
        from repro.guard import GuardPolicy, ReferenceStats

        rng = np.random.default_rng(0)
        features = np.abs(rng.normal(size=(64, 4))) + 0.1
        policy = GuardPolicy(reference=ReferenceStats.fit(features), n_features=4)
        config = ServeConfig(guard=policy)
        first = config.build_guards()
        second = config.build_guards()
        for a, b in zip(first, second):
            assert a is not None
            assert a is not b  # fresh per call — per-tenant isolation


class TestEngineAcceptsConfig:
    def test_config_replaces_kwargs(self):
        registry = MetricsRegistry()
        engine = InferenceEngine(
            _Estimator(),
            ServeConfig(max_batch=4, max_latency_ms=None, registry=registry),
        )
        assert engine.config.max_batch == 4
        assert engine.registry is registry
        ticket = engine.submit_frame("link-0", 0.0, np.ones(3))
        assert ticket.admitted

    def test_legacy_kwargs_raise_typed_config_error(self):
        with pytest.raises(ConfigError) as exc_info:
            InferenceEngine(_Estimator(), max_batch=4, max_latency_ms=None)
        message = str(exc_info.value)
        # The migration hint names the offending kwargs and the fix.
        assert "max_batch" in message
        assert "max_latency_ms" in message
        assert "ServeConfig" in message

    def test_legacy_kwargs_rejected_even_with_config(self):
        with pytest.raises(ConfigError):
            InferenceEngine(_Estimator(), ServeConfig(max_batch=8), max_batch=2)

    def test_config_error_is_configuration_error(self):
        # Callers catching the broad typed hierarchy keep working.
        with pytest.raises(ConfigurationError):
            InferenceEngine(_Estimator(), window=3)
        with pytest.raises(ValueError):
            InferenceEngine(_Estimator(), window=3)

    def test_legacy_rejection_happens_before_side_effects(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            InferenceEngine(_Estimator(), registry=registry)
        assert registry.counters == {}

    def test_config_only_construction_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            InferenceEngine(_Estimator(), ServeConfig())


class TestOverloadConfigValidation:
    def test_valid_overload_config_accepted(self):
        from repro.overload.governor import OverloadPolicy

        config = ServeConfig(
            rate_limit_hz=8.0, rate_limit_burst=16.0,
            deadline_ms=2000.0, queue_credit=32,
            overload=OverloadPolicy(),
        )
        assert config.rate_limit_hz == 8.0
        assert config.queue_credit == 32

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ConfigError):
            ServeConfig(rate_limit_hz=0.0)
        with pytest.raises(ConfigError):
            ServeConfig(rate_limit_hz=-1.0)

    def test_rejects_burst_without_rate(self):
        with pytest.raises(ConfigError):
            ServeConfig(rate_limit_burst=4.0)

    def test_rejects_sub_frame_burst(self):
        with pytest.raises(ConfigError):
            ServeConfig(rate_limit_hz=1.0, rate_limit_burst=0.5)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ConfigError):
            ServeConfig(deadline_ms=0.0)

    def test_rejects_bad_queue_credit(self):
        with pytest.raises(ConfigError):
            ServeConfig(queue_credit=0)

    def test_overload_errors_catchable_as_configuration_error(self):
        # ConfigError subclasses ConfigurationError, so existing handlers
        # written against the old name still catch overload-plane knobs.
        with pytest.raises(ConfigurationError):
            ServeConfig(deadline_ms=-5.0)
