"""Zero-copy frame arena: unit contracts and engine-integration properties.

The load-bearing guarantees under test:

* **zero slab double-use** — generation counters turn double-release and
  use-after-recycle into typed :class:`~repro.exceptions.ServingError`s,
  and :meth:`~repro.serve.arena.FrameArena.check` audits the free-list
  bookkeeping after every campaign;
* **exact frame-ledger reconciliation** — over randomized burst/lull
  schedules with rejects, repairs, overflow, staleness and deadlines, the
  engine's per-link tallies balance to zero unaccounted frames and the
  arena drains back to zero occupancy;
* **numeric equivalence** — the arena path (float32 slab views) matches
  the legacy owned-float64 path per frame to float32 precision, with
  identical outcome accounting.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ServingError
from repro.serve import FrameArena, InferenceEngine, ServeConfig, SlotRef
from repro.serve.arena import FrameArena as ArenaDirect


class RowMean:
    """Row-deterministic estimator: numerics independent of batch shape."""

    def predict_proba(self, x):
        return np.asarray(x, dtype=float).mean(axis=1)


class TestFrameArenaUnit:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            FrameArena(0, 4)
        with pytest.raises(ConfigurationError):
            FrameArena(4, 0)

    def test_acquire_copies_once_and_row_views_the_slab(self):
        arena = FrameArena(2, 3)
        source = np.array([1.0, 2.0, 3.0])
        ref = arena.acquire(source)
        source[0] = 99.0  # the caller's array is decoupled after acquire
        view = arena.row(ref)
        assert view.base is arena.slab
        np.testing.assert_array_equal(view, [1.0, 2.0, 3.0])

    def test_exhaustion_returns_none_not_error(self):
        arena = FrameArena(1, 2)
        first = arena.acquire(np.zeros(2))
        assert first is not None
        assert arena.acquire(np.zeros(2)) is None
        arena.release(first)
        assert arena.acquire(np.zeros(2)) is not None

    def test_width_mismatch_returns_none(self):
        arena = FrameArena(2, 3)
        assert arena.acquire(np.zeros(4)) is None
        assert arena.acquire(np.zeros((2, 3))) is None
        assert arena.in_use == 0

    def test_double_release_raises(self):
        arena = FrameArena(2, 2)
        ref = arena.acquire(np.zeros(2))
        arena.release(ref)
        with pytest.raises(ServingError):
            arena.release(ref)

    def test_use_after_recycle_raises(self):
        arena = FrameArena(1, 2)
        stale = arena.acquire(np.zeros(2))
        arena.release(stale)
        fresh = arena.acquire(np.ones(2))  # same slot, new generation
        assert fresh.slot == stale.slot
        with pytest.raises(ServingError):
            arena.row(stale)
        with pytest.raises(ServingError):
            arena.release(stale)
        arena.release(fresh)

    def test_forged_ref_raises(self):
        arena = FrameArena(2, 2)
        with pytest.raises(ServingError):
            arena.row(SlotRef(7, 0))
        with pytest.raises(ServingError):
            arena.release(SlotRef(0, 3))

    def test_check_and_stats_balance(self):
        arena = FrameArena(4, 2)
        refs = [arena.acquire(np.full(2, i)) for i in range(3)]
        arena.check()
        stats = arena.stats()
        assert stats["in_use"] == 3
        assert stats["acquired_total"] == 3
        for ref in refs:
            arena.release(ref)
        arena.check()
        assert arena.stats()["released_total"] == 3
        assert arena.in_use == 0

    def test_check_detects_tally_imbalance(self):
        arena = FrameArena(2, 2)
        arena.acquire(np.zeros(2))
        arena.acquired_total += 1  # corrupt the tally on purpose
        with pytest.raises(ServingError):
            arena.check()

    def test_import_path_is_the_package_export(self):
        assert FrameArena is ArenaDirect


class TestEngineArenaIntegration:
    def _config(self, **overrides):
        base = dict(
            max_batch=8,
            max_latency_ms=50.0,
            queue_capacity=32,
            arena_slots=48,
        )
        base.update(overrides)
        return ServeConfig(**base)

    def test_pending_frames_hold_slab_views(self):
        engine = InferenceEngine(RowMean(), self._config(max_batch=64,
                                                         queue_capacity=64))
        engine.submit("a", 0.0, np.arange(4, dtype=float))
        frame = engine.queue._pending[0]
        assert frame.slot is not None
        assert frame.csi.base is engine.arena.slab
        assert engine.arena.in_use == 1
        engine.flush()
        assert engine.arena.in_use == 0

    def test_matches_legacy_path_numerically(self):
        rng = np.random.default_rng(11)
        rows = rng.normal(loc=10.0, scale=3.0, size=(200, 6))
        arena_engine = InferenceEngine(RowMean(), self._config())
        legacy_engine = InferenceEngine(RowMean(), self._config(arena_slots=None))
        got, want = [], []
        for i, row in enumerate(rows):
            got += arena_engine.submit("a", i * 0.01, row)
            want += legacy_engine.submit("a", i * 0.01, row)
        got += arena_engine.flush()
        want += legacy_engine.flush()
        assert len(got) == len(want) == len(rows)
        for a, b in zip(got, want):
            assert (a.link_id, a.t_s, a.frame_id, a.source) == (
                b.link_id, b.t_s, b.frame_id, b.source
            )
            # float32 slab vs float64 owned rows: equal to f32 precision.
            assert a.probability == pytest.approx(b.probability, abs=1e-6)
            assert a.state == b.state
        assert arena_engine.link_stats("a") == legacy_engine.link_stats("a")
        arena_engine.arena.check()
        assert arena_engine.arena.in_use == 0

    def test_malformed_and_nonfinite_frames_reject_without_leaking(self):
        engine = InferenceEngine(RowMean(), self._config())
        engine.submit("a", 0.0, np.ones(6))
        assert not engine.submit("a", 0.1, np.ones((2, 3)))
        bad = np.ones(6)
        bad[3] = np.nan
        assert not engine.submit("a", 0.2, bad)
        engine.flush()
        stats = engine.link_stats("a")
        assert stats["rejected"] == 2
        assert stats["frames_out"] == 1
        engine.arena.check()
        assert engine.arena.in_use == 0

    def test_exhaustion_falls_back_and_serves_every_frame(self):
        # 4 slots against a queue of 32: most frames take the legacy path.
        engine = InferenceEngine(
            RowMean(),
            self._config(arena_slots=4, max_batch=16, max_latency_ms=None),
        )
        n = 40
        for i in range(n):
            engine.submit("a", i * 0.01, np.full(6, float(i)))
        engine.flush()
        stats = engine.link_stats("a")
        assert stats["frames_in"] == n
        assert stats["frames_out"] == n
        assert engine.registry.counter("arena_fallback_total").value > 0
        engine.arena.check()
        assert engine.arena.in_use == 0

    def test_width_change_mid_stream_falls_back(self):
        engine = InferenceEngine(RowMean(), self._config())
        engine.submit("a", 0.0, np.ones(6))
        engine.flush()  # ragged batches raise by contract, so drain first
        engine.submit("b", 0.1, np.ones(9))  # arena sized for width 6
        assert engine.arena.width == 6
        assert engine.registry.counter("arena_fallback_total").value == 1
        engine.flush()
        assert engine.link_stats("b")["frames_out"] == 1
        engine.arena.check()
        assert engine.arena.in_use == 0

    def test_registry_mirrors_arena_tallies(self):
        engine = InferenceEngine(RowMean(), self._config())
        for i in range(20):
            engine.submit("a", i * 0.01, np.ones(6))
        engine.flush()
        assert (
            engine.registry.gauge("arena_acquired_total").value
            == engine.arena.acquired_total
        )
        assert (
            engine.registry.gauge("arena_released_total").value
            == engine.arena.released_total
        )
        assert engine.registry.gauge("arena_in_use").value == 0
        assert engine.registry.gauge("arena_slots").value == 48


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    phases=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=40),   # frames in the phase
            st.sampled_from([0.001, 0.01, 0.2]),      # inter-arrival dt
        ),
        min_size=1,
        max_size=6,
    ),
    arena_slots=st.integers(min_value=2, max_value=64),
    bad_every=st.integers(min_value=5, max_value=11),
    data_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_arena_ledger_reconciles_over_random_schedules(
    phases, arena_slots, bad_every, data_seed
):
    """Burst/lull schedules with faults: exact accounting, zero double-use.

    Overflow, staleness, deadlines and malformed frames all fire at
    random; the run completing without :class:`ServingError` *is* the
    zero-double-use assertion (any slab misuse raises), and afterwards
    the engine-side ledger must balance exactly with the arena fully
    recycled.
    """
    config = ServeConfig(
        max_batch=8,
        max_latency_ms=30.0,
        queue_capacity=16,
        arena_slots=arena_slots,
        stale_after_s=0.5,
        deadline_ms=800.0,
    )
    engine = InferenceEngine(RowMean(), config)
    rng = np.random.default_rng(data_seed)
    answered = 0
    t = 0.0
    i = 0
    for n_frames, dt in phases:
        for _ in range(n_frames):
            t += dt
            i += 1
            if i % bad_every == 0:
                row = np.full(5, np.inf)  # refused at the finite gate
            else:
                row = rng.normal(loc=10.0, scale=3.0, size=5)
            answered += len(engine.submit("link", t, row))
    answered += len(engine.flush())

    stats = engine.link_stats("link")
    dropped = (
        stats["stale_dropped"]
        + stats["deadline_expired"]
        + stats["overflow"]
        + stats["overload_shed"]
        + stats["policy_rejected"]
    )
    assert stats["frames_out"] == answered
    assert stats["frames_in"] + stats["repaired"] == answered + dropped
    assert engine.queue.depth == 0
    if engine.arena is not None:
        engine.arena.check()
        assert engine.arena.in_use == 0
        assert (
            engine.arena.acquired_total
            == engine.arena.released_total
        )
