"""Tests for the bounded micro-batch queue."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serve.queue import MicroBatchQueue, PendingFrame


def _frame(i: int, t_s: float | None = None) -> PendingFrame:
    return PendingFrame(f"link-{i % 2}", float(i if t_s is None else t_s),
                        np.full(4, float(i)))


class TestValidation:
    def test_rejects_bad_max_batch(self):
        with pytest.raises(ConfigurationError):
            MicroBatchQueue(max_batch=0)

    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigurationError):
            MicroBatchQueue(max_latency_s=0.0)
        with pytest.raises(ConfigurationError):
            MicroBatchQueue(max_latency_s=-1.0)

    def test_rejects_capacity_below_max_batch(self):
        with pytest.raises(ConfigurationError):
            MicroBatchQueue(max_batch=8, capacity=4)


class TestBackpressure:
    def test_push_within_capacity_evicts_nothing(self):
        q = MicroBatchQueue(max_batch=2, max_latency_s=None, capacity=3)
        assert q.push(_frame(0)) is None
        assert q.depth == 1

    def test_push_at_capacity_evicts_oldest(self):
        q = MicroBatchQueue(max_batch=2, max_latency_s=None, capacity=3)
        for i in range(3):
            q.push(_frame(i))
        evicted = q.push(_frame(3))
        assert evicted is not None
        assert evicted.t_s == 0.0  # drop-oldest
        assert q.depth == 3


class TestFlushTriggers:
    def test_max_batch_trigger(self):
        q = MicroBatchQueue(max_batch=3, max_latency_s=None)
        q.push(_frame(0))
        q.push(_frame(1))
        assert not q.ready(now_s=1e9)
        q.push(_frame(2))
        assert q.ready(now_s=0.0)

    def test_latency_trigger_in_stream_time(self):
        q = MicroBatchQueue(max_batch=100, max_latency_s=2.0)
        q.push(_frame(0, t_s=10.0))
        assert not q.ready(now_s=11.9)
        assert q.ready(now_s=12.0)  # inclusive at the budget

    def test_none_latency_disables_trigger(self):
        q = MicroBatchQueue(max_batch=100, max_latency_s=None)
        q.push(_frame(0, t_s=0.0))
        assert not q.ready(now_s=1e9)

    def test_empty_queue_never_ready(self):
        assert not MicroBatchQueue(max_latency_s=0.1).ready(now_s=1e9)


class TestDrain:
    def test_drain_is_fifo_and_capped_at_max_batch(self):
        q = MicroBatchQueue(max_batch=3, max_latency_s=None, capacity=16)
        for i in range(5):
            q.push(_frame(i))
        batch = q.drain()
        assert [f.t_s for f in batch] == [0.0, 1.0, 2.0]
        assert q.depth == 2

    def test_drain_with_explicit_limit(self):
        q = MicroBatchQueue(max_batch=3, max_latency_s=None, capacity=16)
        for i in range(5):
            q.push(_frame(i))
        assert len(q.drain(limit=1)) == 1
        assert q.depth == 4

    def test_drain_all_empties(self):
        q = MicroBatchQueue(max_batch=3, max_latency_s=None, capacity=16)
        for i in range(5):
            q.push(_frame(i))
        batch = q.drain_all()
        assert [f.t_s for f in batch] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert q.depth == 0
        assert len(q) == 0


class TestQueueCredit:
    def _q(self, credit=2, capacity=8):
        return MicroBatchQueue(max_batch=4, max_latency_s=None,
                               capacity=capacity, credit=credit)

    def test_rejects_bad_credit(self):
        with pytest.raises(ConfigurationError):
            MicroBatchQueue(max_batch=2, credit=0)

    def test_link_over_credit_evicts_its_own_oldest(self):
        q = self._q(credit=2)
        q.push(PendingFrame("hog", 0.0, np.zeros(4)))
        q.push(PendingFrame("meek", 1.0, np.zeros(4)))
        q.push(PendingFrame("hog", 2.0, np.zeros(4)))
        evicted = q.push(PendingFrame("hog", 3.0, np.zeros(4)))
        # The hog pays with its own oldest frame, not the meek link's.
        assert evicted is not None
        assert (evicted.link_id, evicted.t_s) == ("hog", 0.0)
        assert q.link_depth("meek") == 1
        assert q.link_depth("hog") == 2

    def test_full_queue_still_evicts_global_oldest(self):
        q = MicroBatchQueue(max_batch=2, max_latency_s=None, capacity=2,
                            credit=2)
        q.push(PendingFrame("a", 0.0, np.zeros(4)))
        q.push(PendingFrame("b", 1.0, np.zeros(4)))
        evicted = q.push(PendingFrame("c", 2.0, np.zeros(4)))
        assert (evicted.link_id, evicted.t_s) == ("a", 0.0)

    def test_link_depth_tracks_drain(self):
        q = self._q(credit=4)
        for i in range(3):
            q.push(PendingFrame("a", float(i), np.zeros(4)))
        assert q.link_depth("a") == 3
        q.drain(2)
        assert q.link_depth("a") == 1
        assert q.link_depth("never-seen") == 0

    def test_oldest_t_s(self):
        q = self._q()
        assert q.oldest_t_s is None
        q.push(PendingFrame("a", 5.0, np.zeros(4)))
        q.push(PendingFrame("a", 7.0, np.zeros(4)))
        assert q.oldest_t_s == 5.0
        q.drain_all()
        assert q.oldest_t_s is None
