"""Tests for the fallback predictors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.serve.robustness import EnvThresholdFallback, PriorFallback


class TestPriorFallback:
    def test_fit_uses_empirical_rate(self):
        fallback = PriorFallback().fit(np.ones((4, 2)), np.array([1, 1, 1, 0]))
        assert fallback.prior == pytest.approx(0.75)

    def test_rejects_bad_prior(self):
        with pytest.raises(ConfigurationError):
            PriorFallback(prior=1.5)


class TestEnvThresholdFallback:
    def test_warm_room_reads_occupied(self):
        rows = np.hstack([np.ones((2, 64)), [[25.0, 50.0], [18.0, 35.0]]])
        p = EnvThresholdFallback().predict_proba(rows)
        assert p[0] > 0.9  # 25 C, well above the 21.5 C threshold
        assert p[1] < 0.1  # 18 C office is empty

    def test_csi_only_rows_raise_clear_shape_error(self):
        # 64-wide rows have no T/H columns; the old code crashed with a
        # bare IndexError from an empty slice.
        with pytest.raises(ShapeError, match="CSI-only rows have no T/H"):
            EnvThresholdFallback().predict_proba(np.ones((3, 64)))

    def test_error_names_expected_layout(self):
        with pytest.raises(ShapeError, match="64:66"):
            EnvThresholdFallback().predict_proba(np.ones((1, 10)))

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(ShapeError, match="2-D"):
            EnvThresholdFallback().predict_proba(np.ones(66))

    def test_custom_env_slice(self):
        fallback = EnvThresholdFallback(env_slice=slice(2, 4))
        rows = np.array([[0.0, 0.0, 30.0, 60.0]])
        assert fallback.predict_proba(rows)[0] > 0.99

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ConfigurationError):
            EnvThresholdFallback(scale_c=0.0)

    def test_exactly_at_threshold_reads_occupied(self):
        # 21.5 C exactly -> z = 0 -> p = 0.5; the >= 0.5 decision rule
        # resolves the boundary toward "occupied".
        rows = np.hstack([np.ones((1, 64)), [[21.5, 50.0]]])
        fallback = EnvThresholdFallback()
        assert fallback.predict_proba(rows)[0] == pytest.approx(0.5)
        assert fallback.predict(rows)[0] == 1

    def test_width_65_rows_rejected_not_silently_missing_humidity(self):
        # One column short of the 64+2 layout: slice(64, 66) on width 65
        # is *non-empty* (it yields column 64 alone), so only the explicit
        # stop > width check stands between us and reading humidity as
        # temperature.  Pin it.
        with pytest.raises(ShapeError, match="width 65"):
            EnvThresholdFallback().predict_proba(np.ones((1, 65)))

    def test_width_66_is_the_minimum_accepted(self):
        rows = np.hstack([np.ones((1, 64)), [[25.0, 50.0]]])
        assert EnvThresholdFallback().predict_proba(rows).shape == (1,)

    def test_extra_trailing_columns_do_not_shift_the_env_read(self):
        # Wider rows are fine as long as T/H still sit at 64:66.
        rows = np.hstack([np.ones((1, 64)), [[25.0, 50.0, 99.0, -3.0]]])
        assert EnvThresholdFallback().predict_proba(rows)[0] > 0.9
