"""Tests for the fallback predictors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.serve.robustness import EnvThresholdFallback, PriorFallback


class TestPriorFallback:
    def test_fit_uses_empirical_rate(self):
        fallback = PriorFallback().fit(np.ones((4, 2)), np.array([1, 1, 1, 0]))
        assert fallback.prior == pytest.approx(0.75)

    def test_rejects_bad_prior(self):
        with pytest.raises(ConfigurationError):
            PriorFallback(prior=1.5)


class TestEnvThresholdFallback:
    def test_warm_room_reads_occupied(self):
        rows = np.hstack([np.ones((2, 64)), [[25.0, 50.0], [18.0, 35.0]]])
        p = EnvThresholdFallback().predict_proba(rows)
        assert p[0] > 0.9  # 25 C, well above the 21.5 C threshold
        assert p[1] < 0.1  # 18 C office is empty

    def test_csi_only_rows_raise_clear_shape_error(self):
        # 64-wide rows have no T/H columns; the old code crashed with a
        # bare IndexError from an empty slice.
        with pytest.raises(ShapeError, match="CSI-only rows have no T/H"):
            EnvThresholdFallback().predict_proba(np.ones((3, 64)))

    def test_error_names_expected_layout(self):
        with pytest.raises(ShapeError, match="64:66"):
            EnvThresholdFallback().predict_proba(np.ones((1, 10)))

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(ShapeError, match="2-D"):
            EnvThresholdFallback().predict_proba(np.ones(66))

    def test_custom_env_slice(self):
        fallback = EnvThresholdFallback(env_slice=slice(2, 4))
        rows = np.array([[0.0, 0.0, 30.0, 60.0]])
        assert fallback.predict_proba(rows)[0] > 0.99

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ConfigurationError):
            EnvThresholdFallback(scale_c=0.0)
