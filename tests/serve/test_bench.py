"""Tests for the serve-bench harness."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serve.bench import ServeBenchReport, _interleaved_frames, run_serve_bench
from repro.serve.metrics import MetricsRegistry


class ThresholdEstimator:
    """Cheap deterministic stand-in: occupied when mean amplitude is high."""

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        margin = np.mean(np.asarray(x, dtype=float), axis=1) - self.threshold
        return 1.0 / (1.0 + np.exp(-np.clip(margin, -500, 500)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(int)


class TestInterleaving:
    def test_round_robin_assignment(self, smoke_dataset):
        frames = _interleaved_frames(smoke_dataset, n_links=3)
        assert len(frames) == len(smoke_dataset)
        assert [f[0] for f in frames[:4]] == ["link-0", "link-1", "link-2", "link-0"]
        assert frames[5][1] == float(smoke_dataset.timestamps_s[5])


class TestRunServeBench:
    def test_rejects_bad_link_count(self, smoke_dataset):
        with pytest.raises(ConfigurationError):
            run_serve_bench(ThresholdEstimator(0.0), smoke_dataset, n_links=0)

    def test_replays_and_reports(self, smoke_dataset):
        estimator = ThresholdEstimator(float(np.mean(smoke_dataset.csi)))
        report = run_serve_bench(
            estimator, smoke_dataset, n_links=2, max_batch=64
        )
        assert report.n_frames == len(smoke_dataset)
        assert report.n_links == 2
        assert report.per_frame_s > 0 and report.batched_s > 0
        # Identical model + identical smoothing: same behaviour, batched.
        assert report.batched_transitions == report.per_frame_transitions
        assert report.registry.counter("frames_out").value == len(smoke_dataset)
        assert report.registry.counter("frames_in").value == len(smoke_dataset)
        text = report.describe()
        for token in ("frames/s", "speedup", "batch_latency_ms", "queue_depth"):
            assert token in text

    def test_fps_properties(self):
        report = ServeBenchReport(
            n_frames=100, n_links=1, max_batch=8,
            per_frame_s=2.0, batched_s=0.5,
            per_frame_transitions=3, batched_transitions=3,
            registry=MetricsRegistry(),
        )
        assert report.per_frame_fps == pytest.approx(50.0)
        assert report.batched_fps == pytest.approx(200.0)
        assert report.speedup == pytest.approx(4.0)
