"""Adaptive batching: controller law, engine integration, byte identity.

The contract under test, per the design doc:

* the EWMA inter-arrival estimate drives ``(batch, deadline)`` decisions
  snapped to powers of two inside ``[min_batch, max_batch]``, with the
  deadline clamped to ``[budget/8, budget]``;
* any overload-governor escalation forces the drain configuration — the
  batcher never fights the ladder;
* applied batch-size changes surface as closed-taxonomy
  ``serve.batch_resize`` events plus registry counters;
* with a row-deterministic estimator, an adaptive engine's results are
  **byte-identical** to a fixed-batch engine's on the same seed (batching
  is a scheduling decision, never a numerics decision), and the frame
  ledger reconciles exactly on both.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.obs.observer import Observer
from repro.serve import AdaptiveBatcher, InferenceEngine, ServeConfig
from repro.serve.queue import MicroBatchQueue


class RowMean:
    """Row-deterministic estimator: numerics independent of batch shape."""

    def predict_proba(self, x):
        return np.asarray(x, dtype=float).mean(axis=1)


class TestAdaptiveBatcherUnit:
    def test_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(0, 8, 0.1)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(8, 4, 0.1)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(1, 8, 0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(1, 8, 0.1, alpha=0.0)

    def test_cold_start_recommends_the_ceiling(self):
        batcher = AdaptiveBatcher(2, 64, 0.1)
        assert batcher.rate_hz is None
        assert batcher.decide() == (64, 0.1)
        batcher.observe(0.0)  # one arrival: still no interval estimate
        assert batcher.decide() == (64, 0.1)

    def test_none_budget_means_backlogged_regime(self):
        batcher = AdaptiveBatcher(2, 64, None)
        for i in range(10):
            batcher.observe(i * 0.01)
        assert batcher.decide() == (64, None)

    def test_fast_stream_saturates_to_max_batch(self):
        batcher = AdaptiveBatcher(2, 64, 0.1)
        for i in range(50):
            batcher.observe(i * 0.0001)  # 10 kHz >> 64 frames per budget
        batch, deadline = batcher.decide()
        assert batch == 64
        # The batch fills in 6.4 ms, far under budget: deadline floors.
        assert deadline == pytest.approx(0.1 * AdaptiveBatcher.MIN_DEADLINE_FRACTION)

    def test_lull_shrinks_batch_and_deadline_floors(self):
        batcher = AdaptiveBatcher(2, 64, 0.1)
        for i in range(50):
            batcher.observe(i * 1.0)  # 1 Hz: 0.1 frames per budget
        batch, deadline = batcher.decide()
        assert batch == 2
        # Fill time (2 s) caps at the budget; the floor is budget/8.
        assert deadline == pytest.approx(0.1)

    def test_mid_rate_snaps_to_power_of_two(self):
        batcher = AdaptiveBatcher(1, 64, 0.1)
        for i in range(200):
            batcher.observe(i * 0.002)  # 500 Hz -> 50 frames per budget
        batch, deadline = batcher.decide()
        assert batch == 64  # geometric snap: 50 rounds up past sqrt(2048)
        assert 0.1 / 8 <= deadline <= 0.1

    def test_governor_escalation_forces_drain_configuration(self):
        batcher = AdaptiveBatcher(2, 64, 0.1)
        for i in range(50):
            batcher.observe(i * 1.0)
        assert batcher.decide(governor_severity=0)[0] == 2
        assert batcher.decide(governor_severity=1) == (64, 0.1)
        assert batcher.decide(governor_severity=3) == (64, 0.1)

    def test_reordered_timestamps_do_not_poison_the_estimate(self):
        batcher = AdaptiveBatcher(1, 64, 0.1)
        batcher.observe(0.0)
        batcher.observe(0.010)
        before = batcher.interval_s
        batcher.observe(0.005)  # out of order: negative delta ignored
        assert batcher.interval_s == before

    def test_snap_is_monotone_in_target(self):
        batcher = AdaptiveBatcher(1, 256, 1.0)
        snapped = [batcher._snap(t) for t in np.linspace(0.5, 300.0, 200)]
        assert all(b <= a for a, b in zip(snapped[1:], snapped))  # non-decreasing
        assert all(
            value in {1, 2, 4, 8, 16, 32, 64, 128, 256} for value in snapped
        )


class TestQueueResize:
    def test_resize_moves_triggers_within_capacity(self):
        queue = MicroBatchQueue(max_batch=8, max_latency_s=0.25, capacity=32)
        queue.resize(16, 0.1)
        assert queue.max_batch == 16
        assert queue.max_latency_s == 0.1
        queue.resize(4, None)
        assert queue.max_latency_s is None

    def test_resize_validates(self):
        queue = MicroBatchQueue(max_batch=8, max_latency_s=0.25, capacity=32)
        with pytest.raises(ConfigurationError):
            queue.resize(0, 0.1)
        with pytest.raises(ConfigurationError):
            queue.resize(64, 0.1)  # beyond capacity
        with pytest.raises(ConfigurationError):
            queue.resize(8, 0.0)


class TestEngineAdaptiveIntegration:
    def _engine(self, observer=None, **overrides):
        base = dict(
            max_batch=64,
            min_batch=2,
            max_latency_ms=100.0,
            queue_capacity=128,
            adaptive_batching=True,
            arena_slots=192,
        )
        base.update(overrides)
        if observer is not None:
            base["observer"] = observer
        return InferenceEngine(RowMean(), ServeConfig(**base))

    def test_resize_emits_event_and_counters(self):
        observer = Observer()
        engine = self._engine(observer=observer)
        rng = np.random.default_rng(0)
        # Fast burst then a hard lull: the controller must step down.
        t = 0.0
        for i in range(200):
            t += 0.0005 if i < 100 else 0.2
            engine.submit("a", t, rng.normal(size=5))
        engine.flush()
        assert observer.events.count("serve.batch_resize") >= 1
        assert engine.registry.counter("batch_resizes_total").value >= 1
        event = next(
            e for e in observer.events if e.kind == "serve.batch_resize"
        )
        assert {"previous", "batch", "deadline_ms"} <= set(event.data)
        assert engine.queue.max_batch >= 2

    def test_batch_stays_inside_configured_bounds(self):
        engine = self._engine()
        rng = np.random.default_rng(1)
        t = 0.0
        for i in range(500):
            t += float(rng.choice([0.0002, 0.01, 0.3]))
            engine.submit("a", t, rng.normal(size=5))
            assert 2 <= engine.queue.max_batch <= 64
            latency = engine.queue.max_latency_s
            assert latency is None or 0.1 / 8 <= latency <= 0.1 + 1e-12
        engine.flush()

    def test_governor_escalation_pins_the_drain_configuration(self):
        from repro.overload.governor import OverloadPolicy

        engine = self._engine(
            overload=OverloadPolicy(
                fastpath_at=0.05, fallback_at=0.1, shed_at=0.95, alpha=1.0
            ),
            queue_capacity=64,
            arena_slots=96,
            auto_flush=False,
        )
        rng = np.random.default_rng(2)
        t = 0.0
        for i in range(40):  # flood: queue depth well over the first rung
            t += 0.001
            engine.submit("a", t, rng.normal(size=5))
        engine.pump(max_frames=8, now_s=t)  # governor observes the backlog
        assert engine.mode.severity > 0
        # While escalated, every subsequent decision is max drain.
        t += 0.001
        engine.submit("a", t, rng.normal(size=5))
        assert engine.queue.max_batch == 64
        engine.flush()


class TestAdaptiveByteIdentity:
    def _serve(self, adaptive: bool, schedule, width=5, data_seed=3):
        config = ServeConfig(
            max_batch=32,
            min_batch=2,
            max_latency_ms=50.0,
            queue_capacity=512,  # ample: overflow would couple the arms
            adaptive_batching=adaptive,
            arena_slots=600,
        )
        engine = InferenceEngine(RowMean(), config)
        rng = np.random.default_rng(data_seed)
        results = []
        t = 0.0
        for dt in schedule:
            t += dt
            results += engine.submit("a", t, rng.normal(size=width))
        results += engine.flush()
        stats = engine.link_stats("a")
        engine.arena.check()
        assert engine.arena.in_use == 0
        return results, stats

    def test_adaptive_matches_fixed_batching_byte_for_byte(self):
        rng = np.random.default_rng(42)
        schedule = [
            float(rng.choice([0.0003, 0.004, 0.12])) for _ in range(400)
        ]
        adaptive, stats_a = self._serve(True, schedule)
        fixed, stats_f = self._serve(False, schedule)
        assert len(adaptive) == len(fixed) == 400
        for a, f in zip(adaptive, fixed):
            assert a.frame_id == f.frame_id
            assert a.t_s == f.t_s
            # Bit-level equality: batching must never touch numerics.
            assert np.float64(a.probability).tobytes() == np.float64(
                f.probability
            ).tobytes()
            assert a.state == f.state
            assert a.source == f.source
        assert stats_a == stats_f
        assert stats_a["frames_in"] == stats_a["frames_out"] == 400


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    phases=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=50),
            st.sampled_from([0.0005, 0.01, 0.15]),
        ),
        min_size=1,
        max_size=5,
    ),
    data_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_adaptive_ledger_reconciles_over_random_schedules(phases, data_seed):
    """Randomized burst/lull property: exact accounting under adaptation."""
    config = ServeConfig(
        max_batch=16,
        min_batch=2,
        max_latency_ms=40.0,
        queue_capacity=32,
        adaptive_batching=True,
        arena_slots=48,
        stale_after_s=1.0,
    )
    engine = InferenceEngine(RowMean(), config)
    rng = np.random.default_rng(data_seed)
    answered = 0
    t = 0.0
    for n_frames, dt in phases:
        for _ in range(n_frames):
            t += dt
            answered += len(engine.submit("x", t, rng.normal(size=4)))
    answered += len(engine.flush())
    stats = engine.link_stats("x")
    dropped = (
        stats["stale_dropped"]
        + stats["deadline_expired"]
        + stats["overflow"]
        + stats["overload_shed"]
        + stats["policy_rejected"]
    )
    assert stats["frames_out"] == answered
    assert stats["frames_in"] == answered + dropped
    if engine.arena is not None:
        engine.arena.check()
        assert engine.arena.in_use == 0
