"""Tests for FrameTicket and the tenant_id/frame_id result contract."""

import numpy as np
import pytest

from repro.serve import (
    TICKET_OUTCOMES,
    FrameTicket,
    InferenceEngine,
    ServeConfig,
)


class _Estimator:
    def predict_proba(self, x):
        return np.full(len(np.atleast_2d(x)), 0.9)


def _engine(**overrides):
    return InferenceEngine(
        _Estimator(), ServeConfig(max_batch=2, max_latency_ms=None, **overrides)
    )


class TestFrameTicket:
    def test_outcome_vocabulary(self):
        assert TICKET_OUTCOMES == (
            "enqueued",
            "rejected",
            "quarantined",
            "rate_limited",
        )

    def test_admitted_only_when_enqueued(self):
        enq = FrameTicket("link-0", 0, 0.0, "enqueued")
        rej = FrameTicket("link-0", 1, 0.0, "rejected")
        lim = FrameTicket("link-0", 2, 0.0, "rate_limited")
        assert enq.admitted and not rej.admitted and not lim.admitted

    def test_require_admitted(self):
        from repro.exceptions import RateLimitError, StreamError

        enq = FrameTicket("link-0", 0, 0.0, "enqueued")
        assert enq.require_admitted() is enq
        with pytest.raises(RateLimitError):
            FrameTicket("link-0", 1, 0.0, "rate_limited").require_admitted()
        with pytest.raises(StreamError):
            FrameTicket("link-0", 2, 0.0, "quarantined").require_admitted()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FrameTicket("link-0", 0, 0.0, "enqueued").outcome = "rejected"


class TestSubmitFrame:
    def test_enqueued_ticket_carries_identity(self):
        engine = _engine()
        ticket = engine.submit_frame("link-7", 1.5, np.ones(4))
        assert isinstance(ticket, FrameTicket)
        assert ticket.tenant_id == "link-7"
        assert ticket.t_s == 1.5
        assert ticket.outcome == "enqueued"
        assert ticket.results == ()

    def test_batch_completion_attaches_results(self):
        engine = _engine()
        first = engine.submit_frame("link-0", 0.0, np.ones(4))
        second = engine.submit_frame("link-0", 1.0, np.ones(4))
        assert first.results == ()
        assert len(second.results) == 2
        # The submitting frame's own result is findable by frame_id.
        mine = [r for r in second.results if r.frame_id == second.frame_id]
        assert len(mine) == 1

    def test_frame_ids_are_monotonic(self):
        engine = _engine()
        ids = [
            engine.submit_frame("link-0", float(i), np.ones(4)).frame_id
            for i in range(4)
        ]
        assert ids == sorted(ids)
        assert len(set(ids)) == 4

    def test_rejected_ticket(self):
        engine = _engine()
        ticket = engine.submit_frame("link-0", 0.0, np.full(4, np.nan))
        assert ticket.outcome == "rejected"
        assert not ticket.admitted
        assert ticket.results == ()

    def test_legacy_submit_still_returns_result_list(self):
        engine = _engine()
        assert engine.submit("link-0", 0.0, np.ones(4)) == []
        results = engine.submit("link-0", 1.0, np.ones(4))
        assert len(results) == 2

    def test_results_expose_tenant_id_alias(self):
        engine = _engine()
        engine.submit_frame("link-3", 0.0, np.ones(4))
        results = engine.flush()
        assert results
        for result in results:
            assert result.tenant_id == result.link_id == "link-3"
            assert isinstance(result.frame_id, int)
