"""Tests for the thermostat-driven temperature model."""

import numpy as np
import pytest

from repro.config import ThermalConfig
from repro.environment.thermal import ThermalSimulator
from repro.exceptions import ConfigurationError


def simulate(hours, n_occupants=0, start_hour=0.0, config=None, dt_s=60.0):
    sim = ThermalSimulator(config or ThermalConfig(), start_hour)
    trace = []
    steps = int(hours * 3600 / dt_s)
    for i in range(steps):
        trace.append(sim.step(i * dt_s, dt_s, n_occupants))
    return np.array(trace), sim


class TestSetpointSchedule:
    def test_day_and_night_setpoints(self):
        sim = ThermalSimulator(ThermalConfig(), start_hour_of_day=0.0)
        assert sim.setpoint_c(3 * 3600.0) == ThermalConfig().setpoint_night_c
        assert sim.setpoint_c(12 * 3600.0) == ThermalConfig().setpoint_day_c

    def test_outdoor_peaks_mid_afternoon(self):
        sim = ThermalSimulator(ThermalConfig(), start_hour_of_day=0.0)
        t_peak = sim.outdoor_c(15 * 3600.0)
        t_trough = sim.outdoor_c(3 * 3600.0)
        assert t_peak > t_trough

    def test_invalid_start_hour(self):
        with pytest.raises(ConfigurationError):
            ThermalSimulator(ThermalConfig(), 24.0)


class TestDynamics:
    def test_stays_within_plausible_indoor_band(self):
        trace, _ = simulate(48.0)
        assert trace.min() > 10.0
        assert trace.max() < 30.0

    def test_thermostat_regulates_towards_setpoint(self):
        trace, _ = simulate(24.0, start_hour=8.0)
        cfg = ThermalConfig()
        # After warm-up, wall-clock daytime (simulated hours 2-10 map to
        # 10:00-18:00) hovers near the day setpoint.
        daytime = trace[2 * 60 : 10 * 60]
        assert abs(daytime.mean() - cfg.setpoint_day_c) < 2.5

    def test_night_setback_cools_the_room(self):
        trace, _ = simulate(24.0, start_hour=0.0)
        night = trace[2 * 60 : 5 * 60]  # 02:00-05:00
        day = trace[13 * 60 : 16 * 60]  # 13:00-16:00
        assert night.mean() < day.mean()

    def test_occupants_warm_the_room(self):
        empty, _ = simulate(8.0, n_occupants=0, start_hour=8.0)
        crowded, _ = simulate(8.0, n_occupants=6, start_hour=8.0)
        assert crowded.mean() > empty.mean()

    def test_hysteresis_prevents_fast_cycling(self):
        _, sim = simulate(2.0)
        config = ThermalConfig()
        # Drive the temperature just above the setpoint: heater must not
        # flip until the hysteresis band is crossed.
        sim.temperature_c = config.setpoint_night_c + config.hysteresis_c / 2
        sim.heater_on = True
        sim._update_thermostat(3 * 3600.0)
        assert sim.heater_on

    def test_rejects_negative_dt(self):
        sim = ThermalSimulator(ThermalConfig(), 0.0)
        with pytest.raises(ConfigurationError):
            sim.step(0.0, -1.0, 0)

    def test_rejects_negative_occupants(self):
        sim = ThermalSimulator(ThermalConfig(), 0.0)
        with pytest.raises(ConfigurationError):
            sim.step(0.0, 1.0, -1)

    def test_heater_cycle_produces_sawtooth(self):
        # The bang-bang controller yields temperature oscillation whose
        # peak-to-peak spans at least the hysteresis band.
        trace, _ = simulate(12.0, start_hour=9.0)
        settled = trace[4 * 60 :]
        assert settled.max() - settled.min() >= ThermalConfig().hysteresis_c
