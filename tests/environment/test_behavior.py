"""Tests for the world simulator that ties the substrate together."""

import numpy as np
import pytest

from repro.channel.geometry import Room, Vec3
from repro.config import BehaviorConfig, ThermalConfig
from repro.environment.behavior import BehaviorSimulator
from repro.exceptions import ConfigurationError


@pytest.fixture
def simulator(rng) -> BehaviorSimulator:
    return BehaviorSimulator(
        Room(12, 6, 3),
        BehaviorConfig(),
        ThermalConfig(),
        Vec3(5, 0.5, 1.4),
        Vec3(7, 0.5, 1.4),
        start_hour_of_day=8.0,
        duration_h=12.0,
        rng=rng,
    )


class TestStep:
    def test_state_fields_consistent(self, simulator):
        state = simulator.step(60.0)
        assert state.t_s == pytest.approx(60.0)
        assert state.occupied == (state.n_occupants > 0)
        assert len(state.occupant_scatterers) == state.n_occupants
        assert 0.0 <= state.mobility <= 1.0
        assert len(state.furniture_scatterers) == len(simulator.layout.items)

    def test_time_advances(self, simulator):
        simulator.step(30.0)
        simulator.step(30.0)
        assert simulator.t_s == pytest.approx(60.0)

    def test_rejects_non_positive_dt(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.step(0.0)

    def test_combined_scatterers_property(self, simulator):
        state = simulator.step(60.0)
        assert state.scatterers == state.occupant_scatterers + state.furniture_scatterers

    def test_environment_evolves(self, simulator):
        first = simulator.step(60.0)
        for _ in range(240):
            last = simulator.step(60.0)
        assert last.temperature_c != first.temperature_c

    def test_occupancy_appears_during_workday(self, simulator):
        # Starting 08:00 with a 12 h horizon, someone shows up eventually.
        counts = [simulator.step(60.0).n_occupants for _ in range(600)]
        assert max(counts) > 0

    def test_mobility_zero_when_room_empty(self, simulator):
        for _ in range(600):
            state = simulator.step(60.0)
            if state.n_occupants == 0:
                assert state.mobility == 0.0

    def test_occupants_outside_exclusion_zone(self, simulator):
        for _ in range(400):
            state = simulator.step(60.0)
            for s in state.occupant_scatterers:
                assert not simulator.exclusion.contains(s.position)

    def test_furniture_version_monotone(self, simulator):
        versions = [simulator.step(60.0).furniture_version for _ in range(600)]
        assert all(b >= a for a, b in zip(versions, versions[1:]))


class TestReproducibility:
    def _trace(self, seed: int) -> list[tuple[int, float]]:
        sim = BehaviorSimulator(
            Room(12, 6, 3),
            BehaviorConfig(),
            ThermalConfig(),
            Vec3(5, 0.5, 1.4),
            Vec3(7, 0.5, 1.4),
            8.0,
            6.0,
            np.random.default_rng(seed),
        )
        return [(s.n_occupants, s.temperature_c) for s in (sim.step(60.0) for _ in range(200))]

    def test_same_seed_same_world(self):
        assert self._trace(42) == self._trace(42)

    def test_different_seed_different_world(self):
        assert self._trace(42) != self._trace(43)
