"""Tests for the presence-schedule generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BehaviorConfig
from repro.environment.schedule import (
    PresenceInterval,
    ScheduleGenerator,
    occupancy_count,
    occupancy_counts,
)
from repro.exceptions import ConfigurationError


def make_generator(seed=0, duration_h=74.0, start=15.13, **behavior) -> ScheduleGenerator:
    return ScheduleGenerator(
        BehaviorConfig(**behavior), start, duration_h, np.random.default_rng(seed)
    )


class TestPresenceInterval:
    def test_covers_half_open(self):
        iv = PresenceInterval(0, 10.0, 20.0)
        assert iv.covers(10.0)
        assert iv.covers(19.999)
        assert not iv.covers(20.0)

    def test_duration(self):
        assert PresenceInterval(0, 5.0, 8.0).duration_s == 3.0

    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError):
            PresenceInterval(0, 10.0, 10.0)


class TestClockHelpers:
    def test_hour_of_day_wraps(self):
        gen = make_generator(start=23.0)
        assert gen.hour_of_day(0.0) == pytest.approx(23.0)
        assert gen.hour_of_day(2 * 3600.0) == pytest.approx(1.0)

    def test_day_index(self):
        gen = make_generator(start=15.0)
        assert gen.day_index(0.0) == 0
        assert gen.day_index(10 * 3600.0) == 1  # past midnight


class TestGenerate:
    def test_intervals_sorted_and_within_campaign(self):
        gen = make_generator()
        intervals = gen.generate()
        assert intervals
        starts = [iv.start_s for iv in intervals]
        assert starts == sorted(starts)
        campaign_end = 74.0 * 3600.0
        assert all(0 <= iv.start_s < iv.end_s <= campaign_end for iv in intervals)

    def test_nights_are_empty(self):
        # Nobody is present outside the workday window: probe 02:00.
        gen = make_generator()
        intervals = gen.generate()
        for day in range(1, 3):
            t_2am = ((day * 24.0 + 2.0) - 15.13) * 3600.0
            assert occupancy_count(intervals, t_2am) == 0

    def test_deterministic_in_seed(self):
        a = make_generator(seed=5).generate()
        b = make_generator(seed=5).generate()
        assert [(iv.subject_id, iv.start_s) for iv in a] == [
            (iv.subject_id, iv.start_s) for iv in b
        ]

    def test_empty_fraction_near_table_ii(self):
        # Table II: 63.2 % of the campaign has an empty office.  The
        # generator is tuned to land near that; accept a generous band.
        gen = make_generator(seed=1)
        intervals = gen.generate()
        times = np.arange(0, 74 * 3600, 60.0)
        counts = occupancy_counts(intervals, times)
        empty = float(np.mean(counts == 0))
        assert 0.5 < empty < 0.8

    def test_occupant_histogram_decays(self):
        # More simultaneous occupants are rarer (Table II's shape).
        gen = make_generator(seed=2)
        counts = occupancy_counts(gen.generate(), np.arange(0, 74 * 3600, 60.0))
        hist = np.bincount(counts, minlength=5)
        assert hist[1] > hist[3]

    def test_subject_ids_within_population(self):
        gen = make_generator(n_subjects=3)
        assert all(iv.subject_id < 3 for iv in gen.generate())

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduleGenerator(BehaviorConfig(), 15.0, 0.0, np.random.default_rng(0))


class TestOccupancyCounts:
    def test_vectorised_matches_scalar(self):
        gen = make_generator(seed=3, duration_h=24.0)
        intervals = gen.generate()
        times = np.linspace(0, 24 * 3600, 500)
        vectorised = occupancy_counts(intervals, times)
        scalar = np.array([occupancy_count(intervals, float(t)) for t in times])
        assert np.array_equal(vectorised, scalar)

    def test_empty_schedule(self):
        assert np.array_equal(occupancy_counts([], np.array([0.0, 1.0])), [0, 0])

    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0.1, 50)), max_size=20))
    def test_property_counts_bounded_by_interval_count(self, raw):
        intervals = [
            PresenceInterval(i, start, start + length)
            for i, (start, length) in enumerate(raw)
        ]
        times = np.linspace(0, 200, 50)
        counts = occupancy_counts(intervals, times)
        assert np.all(counts >= 0)
        assert np.all(counts <= len(intervals))
