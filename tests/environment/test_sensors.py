"""Tests for the Thingy-like T/H sensor model."""

import numpy as np
import pytest

from repro.environment.sensors import ThingySensor
from repro.exceptions import ConfigurationError


def make(seed=0, **kwargs) -> ThingySensor:
    return ThingySensor(rng=np.random.default_rng(seed), **kwargs)


class TestThingySensor:
    def test_humidity_reported_as_integer_percent(self):
        # Table I logs humidity as whole percents.
        sensor = make()
        readings = [sensor.read(21.0, 43.3, 1.0)[1] for _ in range(20)]
        assert all(r == round(r) for r in readings)

    def test_temperature_resolution(self):
        sensor = make(temperature_noise_c=0.0)
        t, _ = sensor.read(21.12345, 40.0, 1.0)
        assert t == pytest.approx(round(21.12345 / 0.01) * 0.01, abs=1e-9)

    def test_noise_spreads_readings(self):
        sensor = make(temperature_noise_c=0.2)
        readings = [sensor.read(21.0, 40.0, 1000.0)[0] for _ in range(100)]
        assert np.std(readings) > 0.05

    def test_calibration_offset_applied(self):
        sensor = make(temperature_noise_c=0.0, humidity_noise_rh=0.0,
                      temperature_offset_c=0.5, humidity_offset_rh=-2.0)
        t, h = sensor.read(20.0, 40.0, 1e9)
        assert t == pytest.approx(20.5, abs=0.02)
        assert h == pytest.approx(38.0, abs=1.0)

    def test_response_lag_smooths_steps(self):
        # A step change in truth is followed only gradually (tau = 60 s).
        sensor = make(temperature_noise_c=0.0, humidity_noise_rh=0.0)
        sensor.read(20.0, 40.0, 1.0)
        t_after_step, _ = sensor.read(25.0, 40.0, 1.0)
        assert t_after_step < 21.0

    def test_lag_converges_eventually(self):
        sensor = make(temperature_noise_c=0.0, humidity_noise_rh=0.0)
        sensor.read(20.0, 40.0, 1.0)
        for _ in range(100):
            t, _ = sensor.read(25.0, 40.0, 10.0)
        assert t == pytest.approx(25.0, abs=0.1)

    def test_humidity_clipped_to_percent_range(self):
        sensor = make(humidity_noise_rh=0.0, humidity_offset_rh=20.0)
        _, h = sensor.read(21.0, 95.0, 1e9)
        assert h <= 100.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature_noise_c": -0.1},
            {"response_tau_s": 0.0},
            {"temperature_resolution_c": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ThingySensor(**kwargs)
