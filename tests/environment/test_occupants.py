"""Tests for the occupant kinematics and radar signature."""

import numpy as np
import pytest

from repro.channel.geometry import Room, Vec3
from repro.environment.occupants import (
    Activity,
    ExclusionBox,
    Occupant,
    default_population,
)
from repro.exceptions import GeometryError


@pytest.fixture
def room() -> Room:
    return Room(12, 6, 3)


@pytest.fixture
def forbidden() -> ExclusionBox:
    return ExclusionBox.around_link(Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4))


def make_occupant(**kwargs) -> Occupant:
    defaults = dict(subject_id=0, height_m=1.75, radius_m=0.22, desk=Vec3(3, 3, 0))
    defaults.update(kwargs)
    return Occupant(**defaults)


class TestOccupant:
    def test_away_by_default(self):
        occupant = make_occupant()
        assert not occupant.present
        assert occupant.as_scatterer() is None

    def test_present_when_active(self):
        occupant = make_occupant(activity=Activity.SITTING)
        assert occupant.present
        assert occupant.as_scatterer() is not None

    def test_sitting_reduces_effective_height(self):
        occupant = make_occupant(activity=Activity.SITTING)
        assert occupant.effective_height_m() == pytest.approx(0.75 * 1.75)
        occupant.activity = Activity.STANDING
        assert occupant.effective_height_m() == pytest.approx(1.75)

    def test_mobility_ordering(self):
        # Walking decorrelates the channel more than standing than sitting.
        values = {}
        for activity in Activity:
            occupant = make_occupant(activity=activity)
            values[activity] = occupant.mobility()
        assert values[Activity.AWAY] == 0.0
        assert (
            values[Activity.SITTING]
            < values[Activity.STANDING]
            < values[Activity.WALKING]
        )

    def test_rejects_bad_build(self):
        with pytest.raises(GeometryError):
            make_occupant(height_m=-1.0)

    def test_sitting_pins_to_desk(self, room, forbidden, rng):
        occupant = make_occupant(activity=Activity.SITTING, position=Vec3(1, 1, 0))
        occupant.step(1.0, room, rng, forbidden)
        assert occupant.position == occupant.desk

    def test_walking_moves_at_walk_speed(self, room, forbidden, rng):
        occupant = make_occupant(activity=Activity.WALKING, walk_speed_mps=1.0)
        start = occupant.position
        occupant.step(1.0, room, rng, forbidden)
        assert start.distance_to(occupant.position) <= 1.0 + 1e-9
        assert start.distance_to(occupant.position) > 0.0

    def test_walking_avoids_exclusion_box(self, room, forbidden, rng):
        occupant = make_occupant(activity=Activity.WALKING, position=Vec3(4, 1, 0))
        for _ in range(300):
            occupant.step(0.5, room, rng, forbidden)
            assert not forbidden.contains(occupant.position)

    def test_away_does_not_move(self, room, forbidden, rng):
        occupant = make_occupant()
        start = occupant.position
        occupant.step(10.0, room, rng, forbidden)
        assert occupant.position == start


class TestExclusionBox:
    def test_around_link_includes_margin(self):
        box = ExclusionBox.around_link(Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4), margin_m=0.4)
        assert box.contains(Vec3(6, 0.5, 0))
        assert box.contains(Vec3(4.7, 0.3, 0))
        assert not box.contains(Vec3(4.0, 0.5, 0))

    def test_degenerate_box_rejected(self):
        with pytest.raises(GeometryError):
            ExclusionBox(1, 1, 0, 2)


class TestDefaultPopulation:
    def test_six_subjects(self, room, rng):
        population = default_population(rng, room)
        assert len(population) == 6
        assert {o.subject_id for o in population} == set(range(6))

    def test_varied_builds(self, room, rng):
        population = default_population(rng, room)
        heights = {o.height_m for o in population}
        assert len(heights) == 6

    def test_desks_inside_room(self, room, rng):
        for occupant in default_population(rng, room):
            assert room.contains(occupant.desk)

    def test_all_start_away(self, room, rng):
        assert all(o.activity is Activity.AWAY for o in default_population(rng, room))
