"""Tests for the humidity dynamics."""

import numpy as np
import pytest

from repro.config import ThermalConfig
from repro.environment.hygro import HumiditySimulator
from repro.exceptions import ConfigurationError


def run(hours, n_occupants, temperature_c=21.0, config=None, dt_s=60.0):
    sim = HumiditySimulator(config or ThermalConfig())
    trace = []
    for _ in range(int(hours * 3600 / dt_s)):
        trace.append(sim.step(dt_s, n_occupants, temperature_c))
    return np.array(trace)


class TestHumidityDynamics:
    def test_empty_room_relaxes_to_baseline(self):
        cfg = ThermalConfig()
        trace = run(24.0, n_occupants=0)
        assert trace[-1] == pytest.approx(cfg.humidity_base_rh, abs=1.0)

    def test_occupants_raise_humidity(self):
        empty = run(6.0, 0)
        crowded = run(6.0, 6)
        assert crowded[-1] > empty[-1]

    def test_heating_dries_the_air(self):
        # Psychrometric coupling: rising temperature at fixed moisture
        # content lowers relative humidity.
        sim = HumiditySimulator(ThermalConfig())
        sim.step(60.0, 0, 20.0)
        before = sim.humidity_rh
        sim.step(60.0, 0, 22.0)  # +2 degC in one tick
        assert sim.humidity_rh < before

    def test_stays_within_physical_bounds(self):
        trace = run(48.0, 6)
        assert trace.min() >= 5.0
        assert trace.max() <= 95.0

    def test_table_iii_envelope(self):
        # Table III observed 16-49 %RH; a nominal simulation should stay
        # inside a slightly wider band.
        trace = run(48.0, 3)
        assert trace.min() > 10.0
        assert trace.max() < 65.0

    def test_rejects_negative_dt(self):
        sim = HumiditySimulator(ThermalConfig())
        with pytest.raises(ConfigurationError):
            sim.step(-1.0, 0, 21.0)

    def test_rejects_negative_occupants(self):
        sim = HumiditySimulator(ThermalConfig())
        with pytest.raises(ConfigurationError):
            sim.step(1.0, -1, 21.0)

    def test_first_step_has_no_psychrometric_jump(self):
        # No previous temperature -> no dT term on the first tick.
        sim = HumiditySimulator(ThermalConfig())
        first = sim.step(60.0, 0, 35.0)
        assert abs(first - ThermalConfig().initial_humidity_rh) < 1.0
