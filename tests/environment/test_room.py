"""Tests for the office layout and movable furniture."""

import numpy as np
import pytest

from repro.channel.geometry import Room, Vec3
from repro.environment.room import FurnitureItem, OfficeLayout, default_furniture
from repro.exceptions import GeometryError


@pytest.fixture
def room() -> Room:
    return Room(12, 6, 3)


@pytest.fixture
def layout(room, rng) -> OfficeLayout:
    return OfficeLayout(room, rng=rng)


class TestFurnitureItem:
    def test_position_defaults_to_home(self):
        item = FurnitureItem("chair", Vec3(1, 1, 0), 0.05, 1.0)
        assert item.position == item.home

    def test_rejects_bad_reflectivity(self):
        with pytest.raises(GeometryError):
            FurnitureItem("x", Vec3(0, 0, 0), 1.5, 1.0)

    def test_displacement_bounded_by_radius(self, room, rng):
        item = FurnitureItem("chair", Vec3(6, 3, 0), 0.05, 1.0, movable_radius_m=0.4)
        for _ in range(20):
            moved = item.displaced(rng, room)
            assert moved.position.distance_to(item.home) <= 0.4 + 1e-9

    def test_immovable_item_never_moves(self, room, rng):
        item = FurnitureItem("cabinet", Vec3(6, 3, 0), 0.08, 2.0, movable_radius_m=0.0)
        assert item.displaced(rng, room) is item

    def test_displacement_stays_inside_room(self, rng):
        small = Room(1.0, 1.0, 3.0)
        item = FurnitureItem("chair", Vec3(0.5, 0.5, 0), 0.05, 1.0, movable_radius_m=5.0)
        for _ in range(50):
            moved = item.displaced(rng, small)
            assert small.contains(moved.position)

    def test_as_scatterer_weakly_blocking(self):
        item = FurnitureItem("desk", Vec3(1, 1, 0), 0.05, 0.75)
        s = item.as_scatterer()
        assert s.blocking_db <= 3.0
        assert s.reflectivity == 0.05


class TestDefaultFurniture:
    def test_office_inventory(self):
        items = default_furniture()
        names = [i.name for i in items]
        assert sum(n.startswith("desk") for n in names) == 6
        assert sum(n.startswith("chair") for n in names) == 6
        assert sum(n.startswith("curtain") for n in names) == 3
        assert "cabinet" in names

    def test_all_inside_paper_office(self):
        room = Room(12, 6, 3)
        for item in default_furniture():
            assert room.contains(item.position), item.name


class TestOfficeLayout:
    def test_version_bumps_on_perturb(self, layout):
        v0 = layout.version
        moved = layout.perturb(2)
        assert moved
        assert layout.version == v0 + 1

    def test_perturb_zero_is_noop(self, layout):
        v0 = layout.version
        assert layout.perturb(0) == []
        assert layout.version == v0

    def test_curtain_toggle_changes_reflectivity(self, layout):
        before = {i.name: i.reflectivity for i in layout.items}
        name = layout.toggle_curtain()
        assert name is not None and name.startswith("curtain")
        after = {i.name: i.reflectivity for i in layout.items}
        assert before[name] != after[name]

    def test_toggle_is_reversible(self, rng):
        room = Room(12, 6, 3)
        curtain = FurnitureItem("curtain_0", Vec3(2, 5.9, 0), 0.03, 2.2, movable_radius_m=0.0)
        layout = OfficeLayout(room, [curtain], rng=rng)
        layout.toggle_curtain()
        layout.toggle_curtain()
        assert layout.items[0].reflectivity == pytest.approx(0.03)

    def test_static_scatterers_one_per_item(self, layout):
        assert len(layout.static_scatterers()) == len(layout.items)

    def test_rejects_furniture_outside_room(self, rng):
        room = Room(2, 2, 3)
        bad = FurnitureItem("x", Vec3(5, 5, 0), 0.05, 1.0)
        with pytest.raises(GeometryError):
            OfficeLayout(room, [bad], rng=rng)

    def test_perturbation_moves_only_movables(self, layout):
        movable_names = {i.name for i in layout.items if i.movable_radius_m > 0}
        for _ in range(30):
            for name in layout.perturb(1):
                assert name in movable_names
