"""End-to-end integration tests: generate -> split -> train -> evaluate
-> explain -> deploy, exercising the public API exactly as the examples
and benchmarks do."""

import numpy as np
import pytest

import repro
from repro.config import TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.core.features import FeatureSet, extract_features
from repro.deploy.export import export_c_header
from repro.deploy.footprint import estimate_footprint
from repro.deploy.quantize import quantize_model


FAST = TrainingConfig(epochs=4, hidden_sizes=(32, 32), batch_size=128)


class TestPublicApi:
    def test_top_level_exports(self):
        assert repro.__version__
        for name in ("CampaignConfig", "OccupancyDetector", "generate_benchmark_folds"):
            assert hasattr(repro, name)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline(self, day_split):
        """Train a CSI detector on fold 0 of the shared day campaign."""
        x_train = extract_features(day_split.train.data, FeatureSet.CSI)
        detector = OccupancyDetector(64, FAST)
        detector.fit(x_train, day_split.train.data.occupancy)
        return detector, day_split

    def test_temporal_generalization(self, pipeline):
        # The paper's protocol: never retrain, evaluate on future folds.
        detector, split = pipeline
        accuracies = []
        for fold in split.tests:
            x = extract_features(fold.data, FeatureSet.CSI)
            accuracies.append(detector.score(x, fold.data.occupancy))
        assert np.mean(accuracies) > 0.8

    def test_gradcam_on_trained_detector(self, pipeline):
        detector, split = pipeline
        x = extract_features(split.train.data, FeatureSet.CSI)
        occupied = x[split.train.data.occupancy == 1][:128]
        result = detector.explain(occupied, target_class=1)
        assert result.feature_importance.shape == (64,)
        # Guard bins carry a constant floor: zero importance.
        assert result.feature_importance[0] == pytest.approx(0.0, abs=1e-6)

    def test_deploy_chain(self, pipeline, tmp_path):
        detector, split = pipeline
        quantized = quantize_model(detector.model)
        report = estimate_footprint(quantized)
        assert report.fits

        header = export_c_header(quantized, tmp_path / "model.h")
        assert header.exists()

        # Quantized predictions agree with the float model.
        x = extract_features(split.tests[0].data, FeatureSet.CSI)[:200]
        scaled = detector.scaler.transform(x)
        float_logits = detector._trainer.predict(scaled).ravel()
        quant_logits = quantized.forward(scaled).ravel()
        agreement = np.mean((float_logits > 0) == (quant_logits > 0))
        assert agreement > 0.97

    def test_dataset_save_load_retrain(self, day_dataset, tmp_path):
        from repro.data.io import load_npz, save_npz
        from repro.data.folds import make_paper_folds

        path = save_npz(day_dataset, tmp_path / "campaign.npz")
        restored = load_npz(path)
        split = make_paper_folds(restored)
        assert len(split.tests) == 5
