"""Tests for the configuration dataclasses."""

import pytest

from repro.config import (
    BehaviorConfig,
    CampaignConfig,
    RadioConfig,
    RoomConfig,
    ThermalConfig,
    TrainingConfig,
)
from repro.exceptions import ConfigurationError


class TestRadioConfig:
    def test_paper_defaults(self):
        radio = RadioConfig()
        assert radio.n_subcarriers == 64
        assert radio.wavelength_m == pytest.approx(0.1243, abs=1e-3)

    def test_subcarrier_rule_other_bandwidths(self):
        assert RadioConfig(bandwidth_hz=40e6).n_subcarriers == 128

    def test_rejects_bandwidth_above_carrier(self):
        with pytest.raises(ConfigurationError):
            RadioConfig(carrier_hz=10e6, bandwidth_hz=20e6)


class TestRoomConfig:
    def test_paper_office(self):
        room = RoomConfig()
        assert (room.length_m, room.width_m, room.height_m) == (12.0, 6.0, 3.0)
        # AP and RP1 2 m apart at 1.4 m height (Sec. IV-A).
        tx, rx = room.tx_position, room.rx_position
        assert tx[2] == rx[2] == 1.4
        assert abs(tx[0] - rx[0]) == 2.0

    def test_rejects_antenna_outside(self):
        with pytest.raises(ConfigurationError):
            RoomConfig(tx_position=(99.0, 0.5, 1.4))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ConfigurationError):
            RoomConfig(length_m=-1.0)


class TestThermalConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ThermalConfig(hysteresis_c=0.0)
        with pytest.raises(ConfigurationError):
            ThermalConfig(leakage_tau_h=0.0)
        with pytest.raises(ConfigurationError):
            ThermalConfig(humidity_base_rh=150.0)


class TestBehaviorConfig:
    def test_paper_population(self):
        assert BehaviorConfig().n_subjects == 6

    def test_rejects_bad_hours(self):
        with pytest.raises(ConfigurationError):
            BehaviorConfig(workday_start_h=20.0, workday_end_h=8.0)

    def test_rejects_empty_population(self):
        with pytest.raises(ConfigurationError):
            BehaviorConfig(n_subjects=0)


class TestCampaignConfig:
    def test_paper_scale_row_arithmetic(self):
        # Section V-A: 74 h at 20 Hz -> 5,328,000 rows, within rounding of
        # the reported 5,362,340 (their campaign slightly exceeds 74 h).
        full = CampaignConfig.paper_scale()
        assert full.n_samples == 74 * 3600 * 20

    def test_default_is_scaled_down(self):
        assert CampaignConfig().n_samples < CampaignConfig.paper_scale().n_samples

    def test_smoke_scale_tiny(self):
        assert CampaignConfig.smoke_scale().n_samples < 10_000

    def test_overrides_pass_through(self):
        cfg = CampaignConfig.paper_scale(seed=7)
        assert cfg.seed == 7
        assert cfg.sample_rate_hz == 20.0

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(duration_h=0.0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(start_hour_of_day=25.0)


class TestTrainingConfig:
    def test_paper_hyperparameters(self):
        cfg = TrainingConfig()
        assert cfg.epochs == 10  # "trained for 10 epochs"
        assert cfg.learning_rate == pytest.approx(5e-3)  # "lr of 5e-3"
        assert cfg.hidden_sizes == (128, 256, 128)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(learning_rate=-1.0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(hidden_sizes=(0,))
