"""Rollout wiring through the real serving surfaces: engine and fleet."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath.plan import InferencePlan
from repro.fleet import Fleet
from repro.guard.drift import DriftState
from repro.nn.modules import Linear, Sequential
from repro.obs import Observer
from repro.rollout import RolloutManager, RolloutState, SequentialComparison
from repro.serve import ServeConfig
from repro.serve.engine import InferenceEngine

N_IN = 4


def _plan(seed=0, *, version=0, label=None, negate=False):
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(N_IN, 1, rng=rng))
    if negate:
        for p in model.parameters():
            p.data[:] = -p.data
    return InferencePlan.from_model(model, version=version, label=label)


class _Const:
    """Constant-probability estimator for drain-order assertions."""

    def __init__(self, p):
        self.p = p

    def predict_proba(self, x):
        return np.full(len(np.atleast_2d(x)), self.p)


class _StubTrigger:
    def __init__(self, challenger_factory, min_frames=4):
        self.challenger_factory = challenger_factory
        self.min_frames = min_frames
        self._rows = []
        self._armed = True
        self.retrains = 0

    @property
    def buffered(self):
        return len(self._rows)

    def buffered_rows(self):
        return np.stack(self._rows)

    def record(self, rows, labels):
        for row in np.atleast_2d(rows):
            self._rows.append(np.array(row, copy=True))

    def observe_state(self, state):
        if state is DriftState.TRIP and self._armed:
            self._armed = False
            return True
        if state is DriftState.OK:
            self._armed = True
        return False

    def clear(self):
        self._rows.clear()

    def retrain(self, *, version=0, label=None):
        self.retrains += 1
        plan = self.challenger_factory()
        plan.version = version
        plan.label = label
        return plan


class _StubSentinel:
    def __init__(self, state=DriftState.TRIP):
        self.state = state
        self.reference = None

    def reset(self):
        pass


class TestEngineHotSwap:
    def _engine(self, estimator):
        return InferenceEngine(
            estimator,
            ServeConfig(max_batch=8, max_latency_ms=None, stale_after_s=None),
        )

    def test_empty_queue_swaps_immediately(self):
        engine = self._engine(_Const(0.9))
        new = _Const(0.1)
        old = engine.replace_estimator(new)
        assert old.p == 0.9
        assert engine.estimator is new
        assert engine.registry.counter("estimator_swaps_total").value == 1

    def test_queued_frames_drain_on_old_estimator_first(self):
        engine = self._engine(_Const(0.9))
        for i in range(3):
            engine.submit_frame("a", float(i), np.ones(N_IN))
        new = _Const(0.1)
        old = engine.replace_estimator(new)
        # Deferred: the incumbent keeps serving until the queue empties.
        assert old.p == 0.9
        assert engine.estimator is old
        results = engine.flush()
        assert len(results) == 3
        assert all(r.probability == pytest.approx(0.9) for r in results)
        # The drain completed inside flush: the swap is now applied.
        assert engine.estimator is new
        assert engine.registry.counter("estimator_swaps_total").value == 1
        engine.submit_frame("a", 3.0, np.ones(N_IN))
        assert engine.flush()[0].probability == pytest.approx(0.1)

    def test_drain_false_swaps_under_queued_frames(self):
        engine = self._engine(_Const(0.9))
        engine.submit_frame("a", 0.0, np.ones(N_IN))
        new = _Const(0.1)
        engine.replace_estimator(new, drain=False)
        assert engine.estimator is new
        assert engine.flush()[0].probability == pytest.approx(0.1)

    def test_swap_validates_estimator(self):
        engine = self._engine(_Const(0.9))
        with pytest.raises(ConfigurationError):
            engine.replace_estimator(object())

    def test_detach_rollout_returns_manager(self):
        engine = self._engine(_Const(0.9))
        sentinel = object()
        engine.attach_rollout(sentinel)
        assert engine.detach_rollout() is sentinel
        assert engine.detach_rollout() is None


class TestEngineRolloutCycle:
    def test_full_cycle_promotes_with_zero_drops(self):
        champion = _plan(0, version=0, label="champion")
        challenger = _plan(0, negate=True)
        engine = InferenceEngine(
            champion,
            ServeConfig(
                max_batch=4,
                max_latency_ms=None,
                stale_after_s=None,
                observer=Observer(label="engine"),
            ),
        )
        trigger = _StubTrigger(lambda: challenger)

        def label_fn(frame):
            # The champion is always wrong; its negated twin always right.
            p = float(champion.predict_proba(frame.csi[None, :])[0])
            return 1 - int(p >= 0.5)

        manager = RolloutManager.for_engine(
            engine,
            trigger,
            label_fn=label_fn,
            comparison_factory=lambda: SequentialComparison(
                min_frames=8, max_frames=256
            ),
            guard_frames=8,
            refresh_reference=False,
        )
        assert engine._rollout is manager
        manager.sentinel = _StubSentinel()  # permanently tripped oracle

        rng = np.random.default_rng(7)
        submitted = 0
        for i in range(200):
            ticket = engine.submit_frame("room", i * 0.5, rng.random(N_IN))
            assert ticket.admitted
            submitted += 1
            if manager.promotions and manager.state is RolloutState.IDLE:
                break
        engine.flush()

        assert manager.promotions == 1
        assert manager.rollbacks == 0
        assert isinstance(engine.estimator, InferencePlan)
        assert engine.estimator.version == 1
        assert engine.estimator.label == "challenger"
        events = engine.observer.events
        assert events.count("rollout.shadow_start") == 1
        assert events.count("rollout.promoted") == 1
        assert events.count("rollout.rolled_back") == 0
        # The hot-swap dropped nothing: every submitted frame answered.
        ledger = engine.observer.ledger()
        assert ledger["submitted"] == submitted
        assert ledger["answered"] == submitted
        assert ledger["pending"] == 0
        assert ledger["unaccounted"] == 0
        # And the shadow leg saw exactly the champion's served traffic.
        assert manager.last_reconciliation["exact"] is True

    def test_for_engine_inherits_champion_version(self):
        engine = InferenceEngine(
            _plan(0, version=7), ServeConfig(max_latency_ms=None)
        )
        manager = RolloutManager.for_engine(
            engine, _StubTrigger(lambda: _plan(1))
        )
        assert manager.champion_version == 7


def _row(rng):
    return rng.random(N_IN)


class TestFleetHotSwap:
    def _fleet(self):
        fleet = Fleet(
            ServeConfig(max_batch=8, max_latency_ms=None, stale_after_s=None),
            observer_factory=lambda: Observer(),
        )
        return fleet

    def test_replace_plan_drains_on_old_plan_first(self):
        fleet = self._fleet()
        old_plan, new_plan = _plan(1), _plan(2)
        fleet.attach("room-a", old_plan)
        rng = np.random.default_rng(0)
        rows = [_row(rng) for _ in range(3)]
        for i, row in enumerate(rows):
            fleet.submit("room-a", float(i), row)
        fleet.replace_plan("room-a", new_plan, now_s=3.0)
        # The cutover tick drained every pending frame before the swap:
        # the tenant's event log shows all three answered frames ahead of
        # the fleet.plan_swap marker.
        kinds = [e.kind for e in fleet._tenant("room-a").observer.events]
        assert kinds.count("frame.answered") == 3
        assert kinds.index("fleet.plan_swap") > max(
            i for i, k in enumerate(kinds) if k == "frame.answered"
        )
        assert fleet.counters("room-a")["frames_out"] == 3
        assert fleet.metrics.counter("fleet_plan_swaps_total").value == 1
        swap_events = [
            e for e in fleet._tenant("room-a").observer.events
            if e.kind == "fleet.plan_swap"
        ]
        assert swap_events[0].data["old_digest"] != swap_events[0].data["new_digest"]
        assert swap_events[0].data["new_version"] == new_plan.version
        # New traffic lands on the new plan.
        row = _row(rng)
        fleet.submit("room-a", 4.0, row)
        results = fleet.flush()
        assert results[0].probability == pytest.approx(
            float(new_plan.predict_proba(row[None, :])[0])
        )

    def test_replace_plan_rejects_width_change(self):
        fleet = self._fleet()
        fleet.attach("room-a", _plan(1))
        rng = np.random.default_rng(0)
        wide = InferencePlan.from_model(Sequential(Linear(N_IN + 2, 1, rng=rng)))
        with pytest.raises(ConfigurationError):
            fleet.replace_plan("room-a", wide)

    def test_replace_plan_unknown_tenant(self):
        with pytest.raises(ConfigurationError):
            self._fleet().replace_plan("ghost", _plan(1))

    def test_detach_drains_and_seals_ledger(self):
        fleet = self._fleet()
        fleet.attach("room-a", _plan(1))
        fleet.attach("room-b", _plan(2))
        rng = np.random.default_rng(0)
        for i in range(3):
            fleet.submit("room-a", float(i), _row(rng))
        observer = fleet._tenant("room-a").observer
        final = fleet.detach("room-a", now_s=3.0)
        # Pending frames were drained (answered events precede the seal).
        assert final["frames_in"] == 3
        assert final["frames_out"] == 3
        kinds = [e.kind for e in observer.events]
        assert kinds.count("frame.answered") == 3
        assert kinds.index("fleet.detach") == len(kinds) - 1
        assert fleet.tenant_ids == ("room-b",)
        assert fleet.metrics.counter("fleet_detaches_total").value == 1
        assert fleet.metrics.gauge("fleet_tenants").value == 1
        detach_events = [e for e in observer.events if e.kind == "fleet.detach"]
        assert len(detach_events) == 1
        assert detach_events[0].data["frames_out"] == 3
        with pytest.raises(ConfigurationError):
            fleet.submit("room-a", 4.0, _row(rng))

    def test_detach_removes_rollout_binding(self):
        fleet = self._fleet()
        fleet.attach("room-a", _plan(1))
        fleet.attach_rollout("room-a", object())
        fleet.detach("room-a")
        assert fleet.detach_rollout("room-a") is None

    def test_attach_rollout_requires_known_tenant(self):
        with pytest.raises(ConfigurationError):
            self._fleet().attach_rollout("ghost", object())


class TestFleetRolloutCycle:
    def test_tenant_rollout_promotes_through_registry(self):
        fleet = Fleet(
            ServeConfig(max_batch=4, max_latency_ms=None, stale_after_s=None),
            observer_factory=lambda: Observer(),
        )
        champion = _plan(0, version=0, label="champion")
        challenger = _plan(0, negate=True)
        fleet.attach("room-a", champion)
        fleet.attach("room-b", _plan(9))
        trigger = _StubTrigger(lambda: challenger)

        def label_fn(frame):
            p = float(champion.predict_proba(frame.row[None, :])[0])
            return 1 - int(p >= 0.5)

        manager = RolloutManager.for_fleet_tenant(
            fleet,
            "room-a",
            trigger,
            label_fn=label_fn,
            comparison_factory=lambda: SequentialComparison(
                min_frames=8, max_frames=256
            ),
            guard_frames=8,
            refresh_reference=False,
        )
        assert manager.link_id == "room-a"
        manager.sentinel = _StubSentinel()

        rng = np.random.default_rng(7)
        for i in range(60):
            fleet.submit("room-a", float(i), _row(rng))
            fleet.submit("room-b", float(i), _row(rng))
            fleet.tick(float(i))
            if manager.promotions and manager.state is RolloutState.IDLE:
                break
        fleet.flush()

        assert manager.promotions == 1
        assert manager.rollbacks == 0
        promoted = fleet.plans.get("room-a")
        assert promoted.version == 1
        assert promoted.label == "challenger"
        # The other tenant is untouched.
        assert fleet.plans.get("room-b").version == _plan(9).version
        observer = fleet._tenant("room-a").observer
        assert observer.events.count("rollout.promoted") == 1
        assert observer.events.count("fleet.plan_swap") == 1
        assert manager.last_reconciliation["exact"] is True
        counters = fleet.counters("room-a")
        assert counters["frames_in"] == counters["frames_out"]

    def test_detach_during_shadow_aborts_rollout_cleanly(self):
        """Detaching mid-SHADOW aborts the shadow and closes its ledger.

        Regression: detach used to drop the rollout binding without
        stopping the shadow, leaving a half-open comparison whose ledger
        never sealed.  Now the abort runs *before* the drain, so the
        shadow never mirrors frames the comparison will not score.
        """
        fleet = Fleet(
            ServeConfig(max_batch=4, max_latency_ms=None, stale_after_s=None),
            observer_factory=lambda: Observer(),
        )
        fleet.attach("room-a", _plan(0, version=0, label="champion"))
        trigger = _StubTrigger(lambda: _plan(0, negate=True))
        manager = RolloutManager.for_fleet_tenant(
            fleet,
            "room-a",
            trigger,
            label_fn=lambda frame: 1,
            # A verdict this run can never reach: the shadow stays live
            # until the detach aborts it.
            comparison_factory=lambda: SequentialComparison(
                min_frames=10_000, max_frames=20_000
            ),
            refresh_reference=False,
        )
        manager.sentinel = _StubSentinel()
        rng = np.random.default_rng(3)
        i = 0
        while manager.state is not RolloutState.SHADOW:
            fleet.submit("room-a", float(i), _row(rng))
            fleet.tick(float(i))
            i += 1
            assert i < 100, "shadow never started"
        for _ in range(3):
            fleet.submit("room-a", float(i), _row(rng))
            fleet.tick(float(i))
            i += 1
        # One frame left pending so the detach drain does real work
        # after the abort.
        fleet.submit("room-a", float(i), _row(rng))
        observer = fleet._tenant("room-a").observer
        final = fleet.detach("room-a", now_s=float(i + 1))

        assert manager.state is RolloutState.IDLE
        assert manager.shadow is None
        assert manager.stops == 1
        assert manager.promotions == 0
        # The shadow ledger closed exactly: every champion-served frame
        # up to the abort was mirrored, none after.
        assert manager.last_reconciliation["exact"] is True
        assert fleet.metrics.counter("rollout_stops_total").value == 1
        events = list(observer.events)
        kinds = [e.kind for e in events]
        stop_at = kinds.index("rollout.futility_stop")
        assert events[stop_at].data["decision"] == "aborted"
        # Abort precedes the drain's served frame and the detach seal.
        assert stop_at < kinds.index("fleet.detach")
        assert final["drained"] == 1
        assert final["drain_served"] == 1
        assert final["drain_shed"] == 0
        assert fleet.detach_rollout("room-a") is None
