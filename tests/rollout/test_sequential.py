"""Tests for the anytime-valid sequential comparison."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rollout import SequentialComparison, Verdict


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ConfigurationError):
            SequentialComparison(alpha=0.0)
        with pytest.raises(ConfigurationError):
            SequentialComparison(alpha=1.0)

    def test_margin_bounds(self):
        with pytest.raises(ConfigurationError):
            SequentialComparison(margin=-0.1)
        with pytest.raises(ConfigurationError):
            SequentialComparison(margin=1.0)

    def test_lambda_bounds_depend_on_margin(self):
        # 1/(1+margin) shrinks the admissible bet sizes.
        SequentialComparison(margin=0.5, lambdas=(0.6,))
        with pytest.raises(ConfigurationError):
            SequentialComparison(margin=0.5, lambdas=(0.7,))
        with pytest.raises(ConfigurationError):
            SequentialComparison(lambdas=())
        with pytest.raises(ConfigurationError):
            SequentialComparison(lambdas=(1.0,))

    def test_frame_budget_bounds(self):
        with pytest.raises(ConfigurationError):
            SequentialComparison(min_frames=0)
        with pytest.raises(ConfigurationError):
            SequentialComparison(min_frames=10, max_frames=5)


class TestDecisions:
    def test_strictly_better_challenger_promotes(self):
        comparison = SequentialComparison(min_frames=8, max_frames=4096)
        n = 0
        while not comparison.verdict.decided:
            comparison.update(champion_correct=False, challenger_correct=True)
            n += 1
            assert n < 200, "a pure winner must promote quickly"
        assert comparison.verdict is Verdict.PROMOTE
        assert comparison.decided_at == n
        assert comparison.e_win >= 1.0 / comparison.alpha

    def test_strictly_worse_challenger_rejects(self):
        comparison = SequentialComparison(min_frames=8)
        while not comparison.verdict.decided:
            comparison.update(champion_correct=True, challenger_correct=False)
        assert comparison.verdict is Verdict.REJECT
        assert comparison.e_loss >= 1.0 / comparison.alpha

    def test_identical_models_hit_futility(self):
        comparison = SequentialComparison(min_frames=4, max_frames=64)
        for _ in range(64):
            comparison.update(True, True)
        assert comparison.verdict is Verdict.FUTILITY
        assert comparison.n == 64
        assert comparison.ties == 64

    def test_decision_is_sticky(self):
        comparison = SequentialComparison(min_frames=4, max_frames=64)
        while not comparison.verdict.decided:
            comparison.update(False, True)
        n_at_decision = comparison.n
        for _ in range(10):
            assert comparison.update(True, False) is Verdict.PROMOTE
        assert comparison.n == n_at_decision  # no accumulation after deciding

    def test_no_decision_before_min_frames(self):
        comparison = SequentialComparison(min_frames=50, max_frames=64)
        for _ in range(49):
            comparison.update(False, True)
        assert comparison.verdict is Verdict.CONTINUE

    def test_update_many_stops_early(self):
        comparison = SequentialComparison(min_frames=4)
        verdict = comparison.update_many([False] * 500, [True] * 500)
        assert verdict is Verdict.PROMOTE
        assert comparison.n < 500

    def test_margin_tolerates_slightly_worse_challenger(self):
        # A challenger equal to the champion must promote under a
        # non-inferiority margin (E[d + margin] > 0 for d == 0).
        comparison = SequentialComparison(
            margin=0.1, min_frames=16, max_frames=8192, lambdas=(0.2, 0.4)
        )
        while not comparison.verdict.decided:
            comparison.update(True, True)
        assert comparison.verdict is Verdict.PROMOTE


class TestErrorControl:
    def test_false_promotion_rate_bounded_under_h0(self):
        # Equal-accuracy champion and challenger (the H0 boundary):
        # promotions must stay near alpha even with continuous peeking.
        rng = np.random.default_rng(7)
        promotions = 0
        n_sims = 200
        for _ in range(n_sims):
            comparison = SequentialComparison(
                alpha=0.05, min_frames=8, max_frames=256
            )
            champ = rng.random(256) < 0.7
            chall = rng.random(256) < 0.7
            if comparison.update_many(champ, chall) is Verdict.PROMOTE:
                promotions += 1
        # Ville bounds the rate by alpha = 5%; allow sampling slack.
        assert promotions / n_sims <= 0.10

    def test_power_under_real_improvement(self):
        rng = np.random.default_rng(11)
        promotions = 0
        n_sims = 50
        for _ in range(n_sims):
            comparison = SequentialComparison(
                alpha=0.05, min_frames=8, max_frames=2048
            )
            champ = rng.random(2048) < 0.5
            chall = rng.random(2048) < 0.9
            if comparison.update_many(champ, chall) is Verdict.PROMOTE:
                promotions += 1
        assert promotions / n_sims >= 0.9


class TestSnapshot:
    def test_snapshot_is_json_stable(self):
        comparison = SequentialComparison(min_frames=4)
        comparison.update(True, False)
        comparison.update(False, True)
        comparison.update(True, True)
        snapshot = comparison.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["n"] == 3
        assert snapshot["wins"] == 1
        assert snapshot["losses"] == 1
        assert snapshot["ties"] == 1
        assert snapshot["verdict"] == "continue"

    def test_mean_delta(self):
        comparison = SequentialComparison(min_frames=100)
        for _ in range(3):
            comparison.update(False, True)
        comparison.update(True, False)
        assert comparison.mean_delta == pytest.approx(0.5)
