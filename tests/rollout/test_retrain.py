"""Tests for the drift-armed retrain trigger."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath.plan import InferencePlan
from repro.guard.drift import DriftState
from repro.nn.checkpoint import CheckpointCallback
from repro.nn.losses import bce_with_logits_loss
from repro.nn.modules import Linear, ReLU, Sequential
from repro.nn.optim import AdamW
from repro.nn.train import Trainer
from repro.rollout import RetrainTrigger


def _trainer(seed: int = 0) -> Trainer:
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng))
    return Trainer(
        model,
        AdamW(model.parameters(), lr=1e-2),
        bce_with_logits_loss,
        batch_size=16,
        rng=np.random.default_rng(seed),
    )


def _data(n: int = 128, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, 4))
    y = (x[:, 0] > 0.5).astype(float)
    return x, y


class TestValidation:
    def test_rejects_bad_budgets(self):
        trainer = _trainer()
        with pytest.raises(ConfigurationError):
            RetrainTrigger(trainer, buffer_size=0)
        with pytest.raises(ConfigurationError):
            RetrainTrigger(trainer, buffer_size=10, min_frames=11)
        with pytest.raises(ConfigurationError):
            RetrainTrigger(trainer, epochs=0)
        with pytest.raises(ConfigurationError):
            RetrainTrigger(trainer, lr_scale=0.0)

    def test_record_length_mismatch(self):
        trigger = RetrainTrigger(_trainer(), min_frames=1, buffer_size=8)
        with pytest.raises(ConfigurationError):
            trigger.record(np.ones((2, 4)), [1])


class TestBuffer:
    def test_drop_oldest(self):
        trigger = RetrainTrigger(_trainer(), buffer_size=4, min_frames=1)
        trigger.record(np.arange(24, dtype=float).reshape(6, 4), [0, 1, 0, 1, 0, 1])
        assert trigger.buffered == 4
        assert trigger.buffered_rows()[0, 0] == 8.0  # rows 0-1 evicted

    def test_clear(self):
        trigger = RetrainTrigger(_trainer(), buffer_size=8, min_frames=1)
        trigger.record(np.ones((3, 4)), [1, 1, 0])
        trigger.clear()
        assert trigger.buffered == 0
        with pytest.raises(ConfigurationError):
            trigger.buffered_rows()

    def test_rows_are_copied(self):
        trigger = RetrainTrigger(_trainer(), buffer_size=8, min_frames=1)
        rows = np.ones((2, 4))
        trigger.record(rows, [1, 0])
        rows[:] = 9.0
        assert trigger.buffered_rows().max() == 1.0


class TestArming:
    def test_fires_once_per_excursion(self):
        trigger = RetrainTrigger(_trainer())
        assert trigger.armed
        assert trigger.observe_state(DriftState.TRIP) is True
        assert not trigger.armed
        # Persistently tripped: no refire.
        assert trigger.observe_state(DriftState.TRIP) is False
        # WARN does not re-arm (hysteresis).
        assert trigger.observe_state(DriftState.WARN) is False
        assert not trigger.armed
        # Only a full recovery re-arms.
        assert trigger.observe_state(DriftState.OK) is False
        assert trigger.armed
        assert trigger.observe_state(DriftState.TRIP) is True


class TestRetrain:
    def test_refuses_below_min_frames(self):
        trigger = RetrainTrigger(_trainer(), min_frames=8, buffer_size=16)
        trigger.record(np.ones((4, 4)), [1, 0, 1, 0])
        with pytest.raises(ConfigurationError):
            trigger.retrain()

    def test_returns_versioned_plan_and_restores_lr(self):
        trainer = _trainer()
        trigger = RetrainTrigger(
            trainer, min_frames=8, buffer_size=64, epochs=1, lr_scale=0.5
        )
        x, y = _data(32)
        trigger.record(x, y)
        base_lr = trainer.optimizer.lr
        plan = trigger.retrain(version=3, label="challenger")
        assert isinstance(plan, InferencePlan)
        assert plan.version == 3
        assert plan.label == "challenger"
        assert trainer.optimizer.lr == base_lr
        assert trigger.retrains == 1

    def test_restores_weights_from_checkpoint_callback(self, tmp_path):
        trainer = _trainer()
        x, y = _data(64)
        checkpoint = CheckpointCallback(trainer, tmp_path, keep_last=2)
        trainer.fit(x, y, epochs=2, callbacks=[checkpoint])
        assert checkpoint.latest is not None

        # Poison the live weights; retrain must start from the checkpoint,
        # not from the garbage.
        for p in trainer.model.parameters():
            p.data[:] = 1e6
        trigger = RetrainTrigger(
            trainer, checkpoint=checkpoint, min_frames=8, buffer_size=64, epochs=1
        )
        trigger.record(x, y)
        plan = trigger.retrain(version=1)
        probs = plan.predict_proba(x[:8])
        assert np.all(np.isfinite(probs))
        # Poisoned weights would saturate every output to exactly 0 or 1.
        assert 1e-6 < probs.mean() < 1 - 1e-6

    def test_callback_without_checkpoints_raises(self):
        trainer = _trainer()
        checkpoint = CheckpointCallback.__new__(CheckpointCallback)
        checkpoint.best_path = None
        checkpoint.saved = []  # .latest derives from the saved list
        trigger = RetrainTrigger(
            trainer, checkpoint=checkpoint, min_frames=1, buffer_size=8
        )
        trigger.record(np.ones((2, 4)), [1, 0])
        with pytest.raises(ConfigurationError):
            trigger.retrain()

    def test_scaler_folded_into_challenger(self):
        from repro.baselines.scaler import StandardScaler

        trainer = _trainer()
        x, y = _data(64)
        scaler = StandardScaler()
        scaler.fit(x)
        trigger = RetrainTrigger(
            trainer, scaler, min_frames=8, buffer_size=64, epochs=1
        )
        trigger.record(x, y)
        plan = trigger.retrain()
        # The frozen plan applies the scaler itself: raw rows in.
        expected = trainer.predict(scaler.transform(x[:4]))
        got = plan.predict_proba(x[:4])
        # float32 plan vs float64 trainer: close, not byte-equal.
        assert np.allclose(got, 1.0 / (1.0 + np.exp(-expected.ravel())), atol=1e-5)
