"""Tests for the rollout state machine: shadow, promote, rollback."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath.plan import InferencePlan
from repro.guard.breaker import BreakerState
from repro.guard.drift import DriftState, ReferenceStats
from repro.nn.modules import Linear, Sequential
from repro.obs.observer import Observer
from repro.rollout import RolloutManager, RolloutState, SequentialComparison
from repro.serve.metrics import MetricsRegistry
from repro.serve.queue import PendingFrame


def _plan(seed: int = 0, *, version: int = 0, label: str | None = None,
          negate: bool = False) -> InferencePlan:
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(4, 1, rng=rng))
    if negate:
        # Negated weights + bias flip the logit's sign, so this plan
        # votes the opposite of its seed-twin on every row.
        for p in model.parameters():
            p.data[:] = -p.data
    return InferencePlan.from_model(model, version=version, label=label)


class _StubTrigger:
    """Duck-typed RetrainTrigger: hands out a pre-built challenger."""

    def __init__(self, challenger_factory, min_frames: int = 4):
        self.challenger_factory = challenger_factory
        self.min_frames = min_frames
        self._rows = []
        self._armed = True
        self.cleared = 0
        self.retrains = 0

    @property
    def buffered(self):
        return len(self._rows)

    def buffered_rows(self):
        return np.stack(self._rows)

    def record(self, rows, labels):
        for row in np.atleast_2d(rows):
            self._rows.append(np.array(row, copy=True))

    def observe_state(self, state):
        if state is DriftState.TRIP:
            if self._armed:
                self._armed = False
                return True
            return False
        if state is DriftState.OK:
            self._armed = True
        return False

    def clear(self):
        self.cleared += 1
        self._rows.clear()

    def retrain(self, *, version=0, label=None):
        self.retrains += 1
        plan = self.challenger_factory()
        plan.version = version
        plan.label = label
        return plan


class _StubSentinel:
    def __init__(self):
        self.state = DriftState.OK
        self.reference = "old-ref"
        self.resets = 0

    def reset(self):
        self.resets += 1


class _StubBreaker:
    def __init__(self):
        self.state = BreakerState.CLOSED


class _Harness:
    """A minimal serving surface driving a RolloutManager.

    The champion is a fixed linear plan; the challenger either votes the
    exact opposite on every row (``challenger="opposite"``, a negated
    twin) or identically (``challenger="same"``, a fresh same-seed
    build).  Per-frame labels are scripted so the *serving* plan is
    correct with probability ``serving_accuracy`` — with an opposite
    challenger, its shadow accuracy is therefore ``1 - serving_accuracy``.
    """

    def __init__(
        self,
        *,
        serving_accuracy=0.5,
        challenger="opposite",
        guard_frames=8,
        max_frames=512,
        refresh_reference=False,
        breaker=None,
    ):
        self.champion = _plan(0, version=0, label="champion")
        self.serving = self.champion
        self.swaps = []
        challenger_plan = _plan(0, negate=(challenger == "opposite"))
        self.challenger = challenger_plan
        self.trigger = _StubTrigger(lambda: challenger_plan)
        self.sentinel = _StubSentinel()
        self.accuracy = serving_accuracy
        self._rng = np.random.default_rng(42)
        self._labels = {}
        self._next = 0
        self.manager = RolloutManager(
            self.trigger,
            self._swap,
            sentinel=self.sentinel,
            label_fn=lambda frame: self._labels[frame.frame_id],
            comparison_factory=lambda: SequentialComparison(
                alpha=0.05, min_frames=8, max_frames=max_frames
            ),
            observer=Observer(label="champion"),
            registry=MetricsRegistry(),
            breaker=breaker,
            current_plan=self.current_plan,
            guard_frames=guard_frames,
            refresh_reference=refresh_reference,
            champion_version=0,
        )

    def _swap(self, plan):
        previous = self.serving
        self.serving = plan
        self.swaps.append(plan)
        return previous

    def current_plan(self):
        return self.serving

    def feed(self, n: int = 8):
        """Serve one batch off the harness surface and run the hook.

        Mirrors the engine's post-emit contract: champion frame events
        land on the observer *before* on_batch sees the batch.
        """
        frames = [
            PendingFrame("a", float(self._next + i), np.empty(0), frame_id=self._next + i)
            for i in range(n)
        ]
        self._next += n
        rows = self._rng.random((n, 4))
        probabilities = self.serving.predict_proba(rows)
        obs = self.manager.observer
        for frame, p in zip(frames, probabilities):
            vote = int(p >= 0.5)
            self._labels[frame.frame_id] = (
                vote if self._rng.random() < self.accuracy else 1 - vote
            )
            obs.frame_submitted(frame.frame_id, frame.link_id, frame.t_s)
            obs.frame_outcome("answered", frame.frame_id, frame.link_id, frame.t_s)
        self.manager.on_batch(frames, rows, probabilities, float(self._next))

    def trip_and_start(self):
        """Trip the sentinel and feed until the shadow run starts."""
        self.sentinel.state = DriftState.TRIP
        for _ in range(8):
            self.feed()
            if self.manager.state is RolloutState.SHADOW:
                return
        raise AssertionError("shadow run never started")

    def run_shadow(self, max_batches: int = 80):
        for _ in range(max_batches):
            self.feed()
            if self.manager.state is not RolloutState.SHADOW:
                return
        raise AssertionError("comparison never decided")

    def events(self, kind):
        return [e for e in self.manager.observer.events if e.kind == kind]


class TestValidation:
    def test_bad_config(self):
        trigger = _StubTrigger(lambda: _plan())
        with pytest.raises(ConfigurationError):
            RolloutManager(trigger, lambda p: p, guard_frames=0)
        with pytest.raises(ConfigurationError):
            RolloutManager(trigger, lambda p: p, divergence_tol=-1)
        with pytest.raises(ConfigurationError):
            RolloutManager(trigger, "not-callable")


class TestDriftToShadow:
    def test_trip_clears_buffer_then_waits_for_post_drift_frames(self):
        h = _Harness()
        h.feed()
        assert h.manager.state is RolloutState.IDLE

        h.sentinel.state = DriftState.TRIP
        h.feed()
        # Fired: pre-drift buffer flushed, waiting for min_frames of new data.
        assert h.trigger.cleared == 1
        assert h.manager.state is RolloutState.IDLE
        assert h.trigger.retrains == 0

        h.feed()  # refills the buffer past min_frames
        assert h.trigger.retrains == 1
        assert h.manager.state is RolloutState.SHADOW
        starts = h.events("rollout.shadow_start")
        assert len(starts) == 1
        assert starts[0].data["challenger_version"] == 1
        assert h.manager.registry.counter("rollout_shadows_total").value == 1

    def test_no_refire_while_tripped(self):
        h = _Harness(challenger="same", max_frames=16)
        h.trip_and_start()
        h.run_shadow()
        assert h.manager.stops == 1
        # Persistently tripped sentinel must not restart the cycle.
        for _ in range(4):
            h.feed()
        assert h.trigger.retrains == 1
        assert h.manager.state is RolloutState.IDLE

    def test_manual_start_requires_idle(self):
        h = _Harness()
        h.trip_and_start()
        with pytest.raises(ConfigurationError):
            h.manager.start_challenger(99.0)

    def test_retrain_refusal_is_counted_not_fatal(self):
        h = _Harness()

        def refusing_retrain(*, version=0, label=None):
            raise ConfigurationError("not enough frames")

        h.trigger.retrain = refusing_retrain
        h.sentinel.state = DriftState.TRIP
        for _ in range(3):
            h.feed()
        assert h.manager.state is RolloutState.IDLE
        assert h.manager.registry.counter("rollout_retrain_skipped_total").value >= 1


class TestPromotion:
    def test_winning_challenger_promotes_and_seals(self):
        h = _Harness(serving_accuracy=0.05, guard_frames=8)
        h.trip_and_start()
        h.run_shadow()
        assert h.manager.promotions == 1
        assert h.serving is h.challenger
        promoted = h.events("rollout.promoted")
        assert len(promoted) == 1
        assert promoted[0].data["version"] == 1
        assert h.manager.champion_version == 1
        # Ledger reconciliation captured at decision time, exact.
        assert h.manager.last_reconciliation["exact"] is True
        assert h.manager.last_reconciliation["shadow_unaccounted"] == 0
        # Guard window passes (zero divergence, no breaker) -> seal.
        assert h.manager.state is RolloutState.GUARD
        h.feed()
        assert h.manager.state is RolloutState.IDLE
        assert h.manager.rollbacks == 0
        assert h.manager.registry.counter("rollout_promotions_sealed_total").value == 1

    def test_losing_challenger_stops_without_promotion(self):
        h = _Harness(serving_accuracy=0.95)
        h.trip_and_start()
        h.run_shadow()
        assert h.manager.promotions == 0
        assert h.manager.stops == 1
        assert h.serving is h.champion
        assert h.swaps == []
        stops = h.events("rollout.futility_stop")
        assert len(stops) == 1
        assert stops[0].data["decision"] == "reject"

    def test_equal_models_hit_futility(self):
        h = _Harness(challenger="same", max_frames=32)
        h.trip_and_start()
        h.run_shadow()
        assert h.manager.promotions == 0
        assert h.events("rollout.futility_stop")[0].data["decision"] == "futility"

    def test_reference_refreshed_on_promotion(self):
        h = _Harness(serving_accuracy=0.05, refresh_reference=True)
        h.trip_and_start()
        h.run_shadow()
        assert h.manager.promotions == 1
        assert isinstance(h.sentinel.reference, ReferenceStats)
        assert h.sentinel.resets >= 1


class TestRollback:
    def _promoted(self, **kwargs):
        kwargs.setdefault("guard_frames", 64)
        h = _Harness(serving_accuracy=0.05, **kwargs)
        h.trip_and_start()
        h.run_shadow()
        assert h.manager.promotions == 1
        assert h.manager.state is RolloutState.GUARD
        return h

    def test_breaker_open_during_guard_rolls_back(self):
        breaker = _StubBreaker()
        h = self._promoted(breaker=breaker)
        breaker.state = BreakerState.OPEN
        h.feed()
        assert h.manager.rollbacks == 1
        assert h.manager.state is RolloutState.IDLE
        assert h.serving is h.champion
        event = h.events("rollout.rolled_back")[0]
        assert event.data["reason"] == "breaker_open"
        assert event.data["demoted_version"] == 1
        assert h.manager.champion_version == 0
        assert h.manager.registry.counter("rollout_rollbacks_total").value == 1

    def test_divergence_from_shadow_outputs_rolls_back(self):
        h = self._promoted()
        # Tamper with the recorded shadow outputs: the serving plan can no
        # longer reproduce them, which must read as a botched swap.
        h.manager.shadow._replay[0][1][0] += 0.25
        h.feed()
        assert h.manager.rollbacks == 1
        assert h.serving is h.champion
        event = h.events("rollout.rolled_back")[0]
        assert event.data["reason"] == "divergence"
        assert event.data["divergence"] == pytest.approx(0.25)

    def test_unexpected_serving_plan_rolls_back(self):
        h = self._promoted()
        h.serving = _plan(123)  # someone swapped behind the manager's back
        h.feed()
        assert h.manager.rollbacks == 1
        assert h.serving is h.champion
        assert h.events("rollout.rolled_back")[0].data["reason"] == "unexpected_plan"

    def test_rollback_restores_drift_reference(self):
        breaker = _StubBreaker()
        h = self._promoted(refresh_reference=True, breaker=breaker)
        assert h.sentinel.reference != "old-ref"
        breaker.state = BreakerState.OPEN
        h.feed()
        assert h.sentinel.reference == "old-ref"

    def test_drain_in_progress_defers_guard(self):
        # While the surface still serves the previous plan (deferred
        # swap), the guard must wait, not roll back.
        h = self._promoted(guard_frames=8)
        h.serving = h.champion  # simulate drain still in progress
        guard_left = h.manager._guard_left
        h.feed()
        assert h.manager.rollbacks == 0
        assert h.manager.state is RolloutState.GUARD
        assert h.manager._guard_left == guard_left  # no progress while draining
        h.serving = h.challenger  # drain completed, swap applied
        h.feed()
        assert h.manager.rollbacks == 0
        assert h.manager.state is RolloutState.IDLE


class TestStateGauge:
    def test_gauge_tracks_transitions(self):
        h = _Harness(serving_accuracy=0.05, guard_frames=8)
        gauge = h.manager.registry.gauge("rollout_state")
        assert gauge.value == 0
        h.trip_and_start()
        assert gauge.value == 1
        h.run_shadow()
        assert gauge.value == 2
        h.feed()
        assert gauge.value == 0
