"""Tests for the shadow runner's ledger and replay buffer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fastpath.plan import InferencePlan
from repro.nn.modules import Linear, ReLU, Sequential
from repro.rollout import ShadowRunner
from repro.serve.queue import PendingFrame


def _plan(seed: int = 0, label: str | None = None) -> InferencePlan:
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng))
    return InferencePlan.from_model(model, label=label)


def _frames(n: int, link: str = "a") -> list[PendingFrame]:
    return [
        PendingFrame(link, float(i), np.ones(4), frame_id=i) for i in range(n)
    ]


class TestValidation:
    def test_requires_frozen_plan(self):
        with pytest.raises(ConfigurationError):
            ShadowRunner(object())

    def test_keep_last_floor(self):
        with pytest.raises(ConfigurationError):
            ShadowRunner(_plan(), keep_last=0)

    def test_row_frame_mismatch(self):
        runner = ShadowRunner(_plan())
        with pytest.raises(ConfigurationError):
            runner.observe_batch(_frames(2), np.ones((3, 4)))


class TestLedger:
    def test_every_mirrored_frame_reconciles(self):
        runner = ShadowRunner(_plan())
        rng = np.random.default_rng(0)
        for lo in range(0, 20, 4):
            frames = _frames(4)
            runner.observe_batch(frames, rng.random((4, 4)))
        assert runner.frames_seen == 20
        ledger = runner.ledger()
        assert ledger["submitted"] == ledger["answered"] == 20
        assert ledger["pending"] == 0
        assert ledger["unaccounted"] == 0
        assert runner.reconciles()

    def test_observer_label_carries_plan_label(self):
        assert ShadowRunner(_plan(label="v2")).observer.label == "shadow:v2"
        assert ShadowRunner(_plan()).observer.label == "shadow"

    def test_shadow_outcomes_tagged_with_shadow_source(self):
        runner = ShadowRunner(_plan())
        runner.observe_batch(_frames(2), np.ones((2, 4)))
        answered = [e for e in runner.observer.events if e.kind == "frame.answered"]
        assert len(answered) == 2
        assert all(e.data["source"] == "shadow" for e in answered)

    def test_empty_batch_is_a_no_op(self):
        runner = ShadowRunner(_plan())
        out = runner.observe_batch([], np.empty((0, 4)))
        assert out.size == 0
        assert runner.frames_seen == 0


class TestReplay:
    def test_same_plan_replays_to_exactly_zero(self):
        plan = _plan()
        runner = ShadowRunner(plan)
        rng = np.random.default_rng(1)
        runner.observe_batch(_frames(8), rng.random((8, 4)))
        assert runner.replay_divergence(plan) == 0.0

    def test_different_plan_diverges(self):
        runner = ShadowRunner(_plan(seed=0))
        rng = np.random.default_rng(1)
        runner.observe_batch(_frames(8), rng.random((8, 4)))
        assert runner.replay_divergence(_plan(seed=99)) > 0.0

    def test_empty_buffer_returns_zero(self):
        assert ShadowRunner(_plan()).replay_divergence(_plan(seed=1)) == 0.0

    def test_replay_buffer_is_bounded(self):
        runner = ShadowRunner(_plan(), keep_last=5)
        rng = np.random.default_rng(2)
        for _ in range(3):
            runner.observe_batch(_frames(4), rng.random((4, 4)))
        # Whole oldest batches are evicted past the row budget.
        assert runner.replay_depth == 4
        assert runner.frames_seen == 12

    def test_single_oversized_batch_is_kept_whole(self):
        runner = ShadowRunner(_plan(), keep_last=5)
        rng = np.random.default_rng(2)
        runner.observe_batch(_frames(12), rng.random((12, 4)))
        assert runner.replay_depth == 12

    def test_replay_preserves_batch_shapes(self):
        # BLAS rounds a 1-row matvec differently than the same rows in a
        # larger GEMM; the replay must re-run each recorded batch at its
        # original shape to stay exactly zero.
        plan = _plan()
        runner = ShadowRunner(plan)
        rng = np.random.default_rng(4)
        for i in range(10):
            runner.observe_batch(
                [PendingFrame("a", float(i), np.ones(4), frame_id=i)],
                rng.random((1, 4)),
            )
        assert runner.replay_divergence(plan) == 0.0

    def test_rows_are_copied_out_of_reused_buffers(self):
        plan = _plan()
        runner = ShadowRunner(plan)
        rows = np.random.default_rng(3).random((4, 4))
        runner.observe_batch(_frames(4), rows)
        rows[:] = 0.0  # engine reuses its batch buffer; replay must not care
        assert runner.replay_divergence(plan) == 0.0
