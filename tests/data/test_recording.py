"""Tests for the campaign recorder (the full acquisition chain)."""

import numpy as np
import pytest

from repro.channel.sniffer import SnifferConfig
from repro.config import CampaignConfig
from repro.data.recording import CollectionCampaign
from repro.exceptions import DatasetError


class TestRun:
    def test_row_count_matches_config(self, smoke_config, smoke_dataset):
        assert len(smoke_dataset) == smoke_config.n_samples

    def test_schema_shape(self, smoke_dataset):
        assert smoke_dataset.n_subcarriers == 64
        assert smoke_dataset.occupant_count is not None

    def test_timestamps_uniform(self, smoke_config, smoke_dataset):
        dt = np.diff(smoke_dataset.timestamps_s)
        np.testing.assert_allclose(dt, 1.0 / smoke_config.sample_rate_hz, rtol=1e-9)

    def test_labels_match_counts(self, smoke_dataset):
        np.testing.assert_array_equal(
            smoke_dataset.occupancy, (smoke_dataset.occupant_count > 0).astype(int)
        )

    def test_environment_in_physical_range(self, smoke_dataset):
        assert smoke_dataset.temperature_c.min() > 5.0
        assert smoke_dataset.temperature_c.max() < 35.0
        assert smoke_dataset.humidity_rh.min() >= 0.0
        assert smoke_dataset.humidity_rh.max() <= 100.0

    def test_humidity_integer_resolution(self, smoke_dataset):
        # The Thingy reports whole %RH (Table I).
        np.testing.assert_allclose(
            smoke_dataset.humidity_rh, np.round(smoke_dataset.humidity_rh)
        )

    def test_csi_non_negative(self, smoke_dataset):
        assert np.all(smoke_dataset.csi >= 0)

    def test_guard_bins_constant(self, smoke_dataset):
        # Guard bins carry only the deterministic leakage floor.
        assert smoke_dataset.csi[:, 0].std() == 0.0
        assert smoke_dataset.csi[:, 63].std() == 0.0

    def test_occupied_frames_more_variable_than_empty(self, smoke_dataset):
        # Motion jitter: per-frame differences are larger while occupied —
        # the temporal signature WiFi sensing relies on.
        occ = smoke_dataset.occupancy
        # Subcarrier 20 is a data bin (32 is the DC guard, which is constant).
        diffs = np.abs(np.diff(smoke_dataset.csi[:, 20]))
        both_occ = (occ[1:] == 1) & (occ[:-1] == 1)
        both_empty = (occ[1:] == 0) & (occ[:-1] == 0)
        if both_occ.sum() > 10 and both_empty.sum() > 10:
            assert diffs[both_occ].mean() > diffs[both_empty].mean()


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        config = CampaignConfig(duration_h=1.0, sample_rate_hz=0.2, seed=5)
        a = CollectionCampaign(config).run()
        b = CollectionCampaign(config).run()
        np.testing.assert_array_equal(a.csi, b.csi)
        np.testing.assert_array_equal(a.occupancy, b.occupancy)

    def test_different_seed_different_dataset(self):
        a = CollectionCampaign(CampaignConfig(duration_h=1.0, sample_rate_hz=0.2, seed=5)).run()
        b = CollectionCampaign(CampaignConfig(duration_h=1.0, sample_rate_hz=0.2, seed=6)).run()
        assert not np.allclose(a.csi, b.csi)


class TestFrameLoss:
    def test_lossy_link_drops_rows(self):
        config = CampaignConfig(duration_h=1.0, sample_rate_hz=0.5, seed=1)
        lossless = CollectionCampaign(config).run()
        lossy = CollectionCampaign(
            config, sniffer_config=SnifferConfig(frame_loss_rate=0.3)
        ).run()
        assert len(lossy) < len(lossless)

    def test_tiny_campaign_rejected(self):
        with pytest.raises(DatasetError):
            CollectionCampaign(
                CampaignConfig(duration_h=0.0003, sample_rate_hz=1.0)
            ).run()
