"""Tests for the CSI preprocessing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.preprocess import (
    WindowFeatureExtractor,
    hampel_filter,
    moving_average,
    select_subcarriers,
)
from repro.exceptions import DatasetError, ShapeError


class TestHampelFilter:
    def test_removes_spike(self):
        series = np.zeros(50)
        series[20] = 100.0
        cleaned, mask = hampel_filter(series)
        assert cleaned[20] == pytest.approx(0.0)
        assert mask[20]
        assert mask.sum() == 1

    def test_preserves_clean_signal(self):
        rng = np.random.default_rng(0)
        series = np.sin(np.linspace(0, 4 * np.pi, 200)) + 0.01 * rng.normal(size=200)
        cleaned, mask = hampel_filter(series)
        assert mask.sum() < 10
        np.testing.assert_allclose(cleaned[~mask], series[~mask])

    def test_2d_operates_per_column(self):
        block = np.zeros((50, 3))
        block[10, 1] = 50.0
        cleaned, mask = hampel_filter(block)
        assert mask[10, 1]
        assert not mask[:, 0].any()
        assert not mask[:, 2].any()

    def test_rejects_even_window(self):
        with pytest.raises(ShapeError):
            hampel_filter(np.zeros(20), window=4)

    def test_rejects_short_series(self):
        with pytest.raises(ShapeError):
            hampel_filter(np.zeros(3), window=7)

    @settings(max_examples=25)
    @given(arrays(np.float64, 40, elements=st.floats(-100, 100)))
    def test_property_output_bounded_by_input_range(self, series):
        # Replacement values are local medians, so the cleaned series can
        # never exceed the original's range, and untouched rows are exact.
        cleaned, mask = hampel_filter(series)
        assert cleaned.min() >= series.min() - 1e-12
        assert cleaned.max() <= series.max() + 1e-12
        np.testing.assert_array_equal(cleaned[~mask], series[~mask])


class TestMovingAverage:
    def test_constant_preserved(self):
        np.testing.assert_allclose(moving_average(np.full(20, 3.0), 5), 3.0)

    def test_smooths_noise(self):
        rng = np.random.default_rng(0)
        noisy = rng.normal(size=500)
        smooth = moving_average(noisy, 9)
        assert smooth.std() < noisy.std() / 2

    def test_window_one_is_identity(self):
        x = np.random.default_rng(0).normal(size=30)
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_2d_columns_independent(self):
        block = np.column_stack([np.zeros(30), np.ones(30)])
        out = moving_average(block, 5)
        np.testing.assert_allclose(out[:, 0], 0.0)
        np.testing.assert_allclose(out[:, 1], 1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ShapeError):
            moving_average(np.zeros(10), 0)


class TestSelectSubcarriers:
    def test_drop_guards_keeps_data_bins(self):
        csi = np.random.default_rng(0).uniform(0, 1, (20, 64))
        selected, idx = select_subcarriers(csi)
        assert selected.shape == (20, 52)  # 64 - 6 - 5 - 1
        assert 0 not in idx and 32 not in idx and 63 not in idx

    def test_band_selection(self):
        csi = np.random.default_rng(0).uniform(0, 1, (10, 64))
        selected, idx = select_subcarriers(csi, drop_guards=False, band=(8, 16))
        assert selected.shape == (10, 8)
        np.testing.assert_array_equal(idx, np.arange(8, 16))

    def test_band_intersects_guards(self):
        csi = np.random.default_rng(0).uniform(0, 1, (10, 64))
        selected, idx = select_subcarriers(csi, drop_guards=True, band=(0, 8))
        np.testing.assert_array_equal(idx, np.arange(6, 8))

    def test_empty_selection_raises(self):
        csi = np.ones((5, 64))
        with pytest.raises(DatasetError):
            select_subcarriers(csi, drop_guards=True, band=(0, 3))

    def test_bad_band(self):
        with pytest.raises(ShapeError):
            select_subcarriers(np.ones((5, 64)), band=(10, 5))

    def test_wrong_width(self):
        with pytest.raises(ShapeError):
            select_subcarriers(np.ones((5, 32)))


class TestWindowFeatureExtractor:
    def test_feature_count(self):
        extractor = WindowFeatureExtractor(window=10, stats=("mean", "std", "range"))
        assert extractor.n_features(64) == 3 * 64

    def test_transform_shapes(self, smoke_dataset):
        extractor = WindowFeatureExtractor(window=8)
        x, y, t = extractor.transform(smoke_dataset)
        assert x.shape == (len(smoke_dataset) // 8, 2 * 64)
        assert y.shape == t.shape == (x.shape[0],)
        assert set(np.unique(y)) <= {0, 1}

    def test_window_statistics_correct(self, smoke_dataset):
        extractor = WindowFeatureExtractor(window=5, stats=("mean",))
        x, _, _ = extractor.transform(smoke_dataset)
        expected = smoke_dataset.csi[:5].mean(axis=0)
        np.testing.assert_allclose(x[0], expected)

    def test_timestamps_are_window_ends(self, smoke_dataset):
        extractor = WindowFeatureExtractor(window=4)
        _, _, t = extractor.transform(smoke_dataset)
        assert t[0] == smoke_dataset.timestamps_s[3]
        assert np.all(np.diff(t) > 0)

    def test_rejects_unknown_stat(self):
        with pytest.raises(ShapeError):
            WindowFeatureExtractor(stats=("kurtosis",))

    def test_rejects_tiny_window(self):
        with pytest.raises(ShapeError):
            WindowFeatureExtractor(window=1)

    def test_rejects_short_dataset(self, smoke_dataset):
        extractor = WindowFeatureExtractor(window=10)
        tiny = smoke_dataset.select(np.arange(5))
        with pytest.raises(DatasetError):
            extractor.transform(tiny)
