"""Tests for the one-call benchmark dataset generator and its cache."""

import numpy as np
import pytest

from repro.config import CampaignConfig
from repro.data.synthetic import (
    _config_digest,
    generate_benchmark_dataset,
    generate_benchmark_folds,
)


@pytest.fixture
def tiny_config() -> CampaignConfig:
    return CampaignConfig(duration_h=1.0, sample_rate_hz=0.2, seed=3)


class TestGeneration:
    def test_generates_and_caches(self, tiny_config, tmp_path):
        ds = generate_benchmark_dataset(tiny_config, cache_dir=tmp_path)
        cached = list(tmp_path.glob("campaign-*.npz"))
        assert len(cached) == 1
        again = generate_benchmark_dataset(tiny_config, cache_dir=tmp_path)
        np.testing.assert_array_equal(ds.csi, again.csi)

    def test_cache_can_be_bypassed(self, tiny_config, tmp_path):
        generate_benchmark_dataset(tiny_config, cache_dir=tmp_path, use_cache=False)
        assert not list(tmp_path.glob("campaign-*.npz"))

    def test_folds_entry_point(self, tiny_config, tmp_path):
        ds, split = generate_benchmark_folds(tiny_config, cache_dir=tmp_path)
        assert len(split.tests) == 5
        assert sum(len(f.data) for f in split.all_folds) == len(ds)


class TestConfigDigest:
    def test_stable(self, tiny_config):
        assert _config_digest(tiny_config) == _config_digest(tiny_config)

    def test_sensitive_to_any_field(self, tiny_config):
        other = CampaignConfig(duration_h=1.0, sample_rate_hz=0.2, seed=4)
        assert _config_digest(tiny_config) != _config_digest(other)

    def test_sensitive_to_nested_config(self, tiny_config):
        from dataclasses import replace
        from repro.config import ThermalConfig

        other = replace(tiny_config, thermal=ThermalConfig(setpoint_day_c=25.0))
        assert _config_digest(tiny_config) != _config_digest(other)
