"""Tests for the streaming inference interface."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.data.streaming import (
    Frame,
    FrameStream,
    SmoothingDebouncer,
    StreamingDetector,
    Transition,
    check_csi_row,
)
from repro.exceptions import (
    ConfigurationError,
    ShapeError,
    StreamError,
    ValidationError,
)


class ScriptedPredictor:
    """Duck-typed estimator emitting a pre-scripted 0/1 vote per call."""

    def __init__(self, votes):
        self.votes = list(votes)
        self.calls = 0

    def predict(self, x):
        vote = self.votes[self.calls % len(self.votes)] if self.votes else 0
        self.calls += 1
        return np.array([vote])


FAST = TrainingConfig(epochs=4, hidden_sizes=(32,), batch_size=128)


@pytest.fixture(scope="module")
def fitted(smoke_dataset):
    detector = OccupancyDetector(64, FAST)
    detector.fit(smoke_dataset.csi, smoke_dataset.occupancy)
    return detector


class TestFrameStream:
    def test_replays_every_row(self, smoke_dataset):
        stream = FrameStream(smoke_dataset)
        frames = list(stream)
        assert len(frames) == len(smoke_dataset)
        assert frames[0].csi.shape == (64,)
        assert frames[0].t_s == smoke_dataset.timestamps_s[0]

    def test_labels_match(self, smoke_dataset):
        for i, frame in enumerate(FrameStream(smoke_dataset)):
            assert frame.occupancy == smoke_dataset.occupancy[i]
            if i > 20:
                break


class TestStreamingDetector:
    def test_state_follows_ground_truth(self, fitted, smoke_dataset):
        streaming = StreamingDetector(fitted, window=5, hold_frames=3)
        stream = FrameStream(smoke_dataset)
        correct = 0
        total = 0
        for frame in stream:
            streaming.update(frame.t_s, frame.csi)
            correct += int(streaming.state == frame.occupancy)
            total += 1
        assert correct / total > 0.8

    def test_transitions_debounced(self, fitted, smoke_dataset):
        streaming = StreamingDetector(fitted, window=5, hold_frames=3)
        transitions = streaming.run(FrameStream(smoke_dataset))
        truth_flips = int(np.count_nonzero(np.diff(smoke_dataset.occupancy)))
        # Debounce keeps the event count in the same ballpark as the truth
        # (no flicker storm).
        assert len(transitions) <= max(4, 3 * truth_flips)
        assert all(isinstance(t, Transition) for t in transitions)

    def test_transitions_alternate(self, fitted, smoke_dataset):
        streaming = StreamingDetector(fitted)
        transitions = streaming.run(FrameStream(smoke_dataset))
        for a, b in zip(transitions, transitions[1:]):
            assert a.occupied != b.occupied
            assert a.t_s < b.t_s

    def test_window_one_no_smoothing(self, fitted, smoke_dataset):
        streaming = StreamingDetector(fitted, window=1, hold_frames=1)
        frame_iter = iter(FrameStream(smoke_dataset))
        frame = next(frame_iter)
        streaming.update(frame.t_s, frame.csi)
        raw = int(fitted.predict(frame.csi[None, :])[0])
        assert streaming.state in (0, 1)
        # With no smoothing and hold 1, state tracks the raw prediction
        # after at most one update.
        streaming2 = StreamingDetector(fitted, window=1, hold_frames=1)
        streaming2.update(frame.t_s, frame.csi)
        assert streaming2.state == raw or streaming2.state == 0

    def test_validation(self, fitted):
        with pytest.raises(ConfigurationError):
            StreamingDetector(fitted, window=0)
        with pytest.raises(ConfigurationError):
            StreamingDetector(fitted, hold_frames=0)
        streaming = StreamingDetector(fitted)
        with pytest.raises(ShapeError):
            streaming.update(0.0, np.ones((2, 64)))


class TestSmoothingDebouncer:
    def test_tie_in_even_window_rounds_to_occupied(self):
        # With window=2 the votes [0, 1] average to exactly 0.5, which must
        # count as occupied — matching the classifiers' >= 0.5 rule.
        debouncer = SmoothingDebouncer(window=2, hold_frames=1)
        assert debouncer.update(0) is None
        assert debouncer.update(1) == 1
        assert debouncer.state == 1

    def test_flip_commits_exactly_at_hold_frames(self):
        debouncer = SmoothingDebouncer(window=1, hold_frames=3)
        assert debouncer.update(1) is None  # pending 1/3
        assert debouncer.update(1) is None  # pending 2/3
        assert debouncer.update(1) == 1     # commits on the 3rd
        assert debouncer.state == 1

    def test_flicker_resets_the_hold_counter(self):
        debouncer = SmoothingDebouncer(window=1, hold_frames=3)
        debouncer.update(1)
        debouncer.update(1)
        debouncer.update(0)  # back in agreement: pending cleared
        assert debouncer.update(1) is None  # restarts at 1/3
        assert debouncer.state == 0

    def test_reset(self):
        debouncer = SmoothingDebouncer(window=1, hold_frames=1)
        debouncer.update(1)
        assert debouncer.state == 1
        debouncer.reset()
        assert debouncer.state == 0
        assert debouncer.update(1) == 1


class TestStreamEdgeCases:
    def test_empty_stream_yields_no_transitions(self):
        streaming = StreamingDetector(ScriptedPredictor([1]))
        assert streaming.run([]) == []
        assert streaming.state == 0

    def test_single_frame_stream(self):
        # One occupied frame with no smoothing/debounce flips immediately.
        streaming = StreamingDetector(ScriptedPredictor([1]), window=1, hold_frames=1)
        transitions = streaming.run([Frame(5.0, np.ones(4), 1)])
        assert transitions == [Transition(5.0, True)]
        assert streaming.state == 1
        # The same frame under the default debounce does not flip yet.
        cautious = StreamingDetector(ScriptedPredictor([1]))
        assert cautious.run([Frame(5.0, np.ones(4), 1)]) == []
        assert cautious.state == 0

    def test_nan_frame_rejected(self):
        streaming = StreamingDetector(ScriptedPredictor([1]))
        bad = np.ones(4)
        bad[2] = np.nan
        with pytest.raises(StreamError):
            streaming.update(0.0, bad)
        with pytest.raises(StreamError):
            streaming.update(0.0, np.full(4, np.inf))

    def test_check_csi_row(self):
        row = check_csi_row([1.0, 2.0, 3.0])
        assert row.dtype == float and row.shape == (3,)
        with pytest.raises(ShapeError):
            check_csi_row(np.ones((2, 3)))
        with pytest.raises(StreamError):
            check_csi_row([1.0, np.nan])

    def test_check_csi_row_raises_typed_validation_error(self):
        # ValidationError subclasses StreamError, so pre-existing handlers
        # keep working while new code can read the structured fields.
        with pytest.raises(ValidationError) as excinfo:
            check_csi_row([1.0, np.inf, 3.0], row_index=42)
        assert isinstance(excinfo.value, StreamError)
        assert excinfo.value.row_index == 42
        assert excinfo.value.column == 1
        assert "row 42" in str(excinfo.value)
        assert "column 1" in str(excinfo.value)

    def test_check_csi_row_error_without_position_context(self):
        with pytest.raises(ValidationError) as excinfo:
            check_csi_row([np.nan])
        assert excinfo.value.row_index is None
        assert excinfo.value.column == 0
