"""Tests for the OccupancyDataset container."""

import numpy as np
import pytest

from repro.data.dataset import OccupancyDataset
from repro.exceptions import DatasetError, ShapeError


def make_dataset(n=10, d=4, seed=0, with_count=True) -> OccupancyDataset:
    rng = np.random.default_rng(seed)
    count = rng.integers(0, 3, n) if with_count else None
    occ = (count > 0).astype(int) if with_count else rng.integers(0, 2, n)
    return OccupancyDataset(
        np.arange(n, dtype=float),
        rng.uniform(0, 1, (n, d)),
        rng.uniform(18, 24, n),
        rng.uniform(20, 50, n),
        occ,
        count,
    )


class TestConstruction:
    def test_basic_accessors(self):
        ds = make_dataset(n=20, d=8)
        assert len(ds) == 20
        assert ds.n_subcarriers == 8
        assert ds.csi.shape == (20, 8)
        assert ds.environment.shape == (20, 2)

    def test_rejects_unsorted_timestamps(self):
        with pytest.raises(DatasetError):
            OccupancyDataset(
                np.array([1.0, 0.0]),
                np.ones((2, 4)),
                np.full(2, 21.0),
                np.full(2, 40.0),
                np.zeros(2, dtype=int),
            )

    def test_rejects_non_binary_labels(self):
        with pytest.raises(DatasetError):
            OccupancyDataset(
                np.arange(2.0), np.ones((2, 4)), np.full(2, 21.0),
                np.full(2, 40.0), np.array([0, 2]),
            )

    def test_rejects_negative_csi(self):
        with pytest.raises(DatasetError):
            OccupancyDataset(
                np.arange(2.0), -np.ones((2, 4)), np.full(2, 21.0),
                np.full(2, 40.0), np.zeros(2, dtype=int),
            )

    def test_rejects_humidity_out_of_range(self):
        with pytest.raises(DatasetError):
            OccupancyDataset(
                np.arange(2.0), np.ones((2, 4)), np.full(2, 21.0),
                np.full(2, 200.0), np.zeros(2, dtype=int),
            )

    def test_rejects_count_label_disagreement(self):
        with pytest.raises(DatasetError):
            OccupancyDataset(
                np.arange(2.0), np.ones((2, 4)), np.full(2, 21.0),
                np.full(2, 40.0), np.array([0, 0]), np.array([0, 2]),
            )

    def test_rejects_shape_mismatches(self):
        with pytest.raises(ShapeError):
            OccupancyDataset(
                np.arange(3.0), np.ones((2, 4)), np.full(2, 21.0),
                np.full(2, 40.0), np.zeros(2, dtype=int),
            )


class TestSelection:
    def test_window_half_open(self):
        ds = make_dataset(n=10)
        w = ds.window(2.0, 5.0)
        assert len(w) == 3
        assert w.timestamps_s[0] == 2.0

    def test_window_empty_raises(self):
        with pytest.raises(DatasetError):
            make_dataset().window(100.0, 200.0)

    def test_select_by_mask(self):
        ds = make_dataset(n=10)
        sub = ds.select(ds.occupancy == ds.occupancy)  # all-true mask
        assert len(sub) == 10

    def test_select_preserves_counts(self):
        ds = make_dataset(n=10)
        sub = ds.select(np.arange(0, 10, 2))
        assert sub.occupant_count is not None
        assert len(sub) == 5

    def test_select_rejects_reordering(self):
        ds = make_dataset(n=10)
        with pytest.raises(DatasetError):
            ds.select(np.array([3, 1]))

    def test_select_empty_raises(self):
        ds = make_dataset(n=10)
        with pytest.raises(DatasetError):
            ds.select(np.zeros(10, dtype=bool))


class TestConcatenate:
    def test_stacks_in_order(self):
        a = make_dataset(n=5, seed=1)
        b = OccupancyDataset(
            a.timestamps_s + 100.0, a.csi, a.temperature_c, a.humidity_rh,
            a.occupancy, a.occupant_count,
        )
        merged = OccupancyDataset.concatenate([a, b])
        assert len(merged) == 10
        assert merged.occupant_count is not None

    def test_drops_counts_if_any_missing(self):
        a = make_dataset(n=5, seed=1)
        b = make_dataset(n=5, seed=2, with_count=False)
        b = OccupancyDataset(
            b.timestamps_s + 100.0, b.csi, b.temperature_c, b.humidity_rh, b.occupancy
        )
        merged = OccupancyDataset.concatenate([a, b])
        assert merged.occupant_count is None

    def test_rejects_mixed_widths(self):
        with pytest.raises(DatasetError):
            OccupancyDataset.concatenate([make_dataset(d=4), make_dataset(d=8)])

    def test_rejects_empty_list(self):
        with pytest.raises(DatasetError):
            OccupancyDataset.concatenate([])


class TestStatistics:
    def test_class_balance_sums_to_one(self):
        balance = make_dataset(n=50).class_balance()
        assert balance["empty"] + balance["occupied"] == pytest.approx(1.0)

    def test_count_histogram(self):
        ds = make_dataset(n=100)
        hist = ds.count_histogram()
        assert sum(hist.values()) == 100

    def test_count_histogram_requires_counts(self):
        ds = make_dataset(n=10, with_count=False)
        with pytest.raises(DatasetError):
            ds.count_histogram()

    def test_duration(self):
        assert make_dataset(n=10).duration_s() == 9.0

    def test_matrix_round_trip(self):
        ds = make_dataset(n=12, d=6)
        back = OccupancyDataset.from_matrix(ds.to_matrix(), 6)
        np.testing.assert_allclose(back.csi, ds.csi)
        np.testing.assert_array_equal(back.occupancy, ds.occupancy)

    def test_from_matrix_validates_width(self):
        with pytest.raises(ShapeError):
            OccupancyDataset.from_matrix(np.ones((3, 10)), 64)
