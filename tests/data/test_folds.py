"""Tests for the Table III temporal fold split."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import OccupancyDataset
from repro.data.folds import Fold, FoldSplit, make_paper_folds
from repro.exceptions import DatasetError


def make_dataset(n=1000, seed=0) -> OccupancyDataset:
    rng = np.random.default_rng(seed)
    count = rng.integers(0, 3, n)
    return OccupancyDataset(
        np.arange(n, dtype=float) * 10.0,
        rng.uniform(0, 1, (n, 4)),
        rng.uniform(18, 24, n),
        rng.uniform(20, 50, n),
        (count > 0).astype(int),
        count,
    )


class TestMakePaperFolds:
    def test_train_plus_five_tests(self):
        split = make_paper_folds(make_dataset())
        assert split.train.index == 0
        assert [f.index for f in split.tests] == [1, 2, 3, 4, 5]

    def test_partition_is_complete_and_disjoint(self):
        ds = make_dataset()
        split = make_paper_folds(ds)
        total = sum(len(f.data) for f in split.all_folds)
        assert total == len(ds)
        # Timestamps never overlap between folds.
        boundaries = [(f.start_s, f.end_s) for f in split.all_folds]
        for (s1, e1), (s2, e2) in zip(boundaries, boundaries[1:]):
            assert e1 == pytest.approx(s2)

    def test_temporal_order(self):
        split = make_paper_folds(make_dataset())
        last_train_t = split.train.data.timestamps_s[-1]
        first_test_t = split.tests[0].data.timestamps_s[0]
        assert last_train_t < first_test_t

    def test_train_fraction_respected(self):
        ds = make_dataset()
        split = make_paper_folds(ds, train_fraction=0.7)
        assert len(split.train.data) == pytest.approx(0.7 * len(ds), rel=0.02)

    def test_test_folds_equal_duration(self):
        split = make_paper_folds(make_dataset())
        durations = [f.end_s - f.start_s for f in split.tests]
        assert max(durations) - min(durations) < durations[0] * 0.01

    def test_custom_fold_count(self):
        split = make_paper_folds(make_dataset(), n_test_folds=3)
        assert len(split.tests) == 3

    def test_rejects_bad_fraction(self):
        with pytest.raises(DatasetError):
            make_paper_folds(make_dataset(), train_fraction=1.5)

    def test_rejects_tiny_dataset(self):
        with pytest.raises(DatasetError):
            make_paper_folds(make_dataset(n=5))

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.3, 0.9), st.integers(1, 8))
    def test_property_partition_invariants(self, fraction, k):
        ds = make_dataset(n=500, seed=1)
        split = make_paper_folds(ds, train_fraction=fraction, n_test_folds=k)
        assert sum(len(f.data) for f in split.all_folds) == len(ds)
        assert len(split.tests) == k


class TestFoldBookkeeping:
    def test_describe_matches_table_iii_columns(self):
        split = make_paper_folds(make_dataset())
        row = split.tests[0].describe()
        assert set(row) == {"fold", "role", "start_h", "end_h", "empty", "occupied", "T", "H"}

    def test_counts_sum_to_rows(self):
        split = make_paper_folds(make_dataset())
        for fold in split.all_folds:
            assert fold.n_empty + fold.n_occupied == len(fold.data)

    def test_ranges_bound_the_data(self):
        fold = make_paper_folds(make_dataset()).train
        t_lo, t_hi = fold.temperature_range()
        assert t_lo <= fold.data.temperature_c.min()
        assert t_hi >= fold.data.temperature_c.max()

    def test_table_iii_has_one_row_per_fold(self):
        split = make_paper_folds(make_dataset())
        assert len(split.table_iii()) == 6

    def test_fold_role_validation(self):
        ds = make_dataset(n=20)
        with pytest.raises(DatasetError):
            Fold(0, "validation", ds, 0.0, 10.0)

    def test_fold_span_validation(self):
        ds = make_dataset(n=20)
        with pytest.raises(DatasetError):
            Fold(0, "train", ds, 10.0, 10.0)

    def test_split_numbering_validation(self):
        ds = make_dataset(n=100)
        train = Fold(0, "train", ds, 0.0, 10.0)
        bad_test = Fold(3, "test", ds, 10.0, 20.0)
        with pytest.raises(DatasetError):
            FoldSplit(train=train, tests=(bad_test,))


class TestPaperStructure:
    def test_smoke_campaign_folds(self, smoke_split):
        # The recorded campaign must split cleanly.
        assert len(smoke_split.tests) == 5
        for fold in smoke_split.tests:
            assert len(fold.data) > 0

    def test_day_campaign_has_empty_night_fold(self, day_split):
        # A 30 h campaign starting 15:08 puts at least one all-empty night
        # window in the test region, mirroring Table III folds 2-3.
        empty_folds = [f for f in day_split.tests if f.n_occupied == 0]
        assert empty_folds, "expected an all-empty night fold"
