"""Tests for the multi-receiver (multi-link) recording extension."""

import numpy as np
import pytest

from repro.config import CampaignConfig, RoomConfig
from repro.data.recording import CollectionCampaign
from repro.exceptions import ConfigurationError


TWO_LINK_ROOM = RoomConfig(extra_rx_positions=((10.0, 5.0, 1.4),))


@pytest.fixture(scope="module")
def two_link_dataset():
    config = CampaignConfig(
        duration_h=2.0, sample_rate_hz=0.3, seed=21, room=TWO_LINK_ROOM
    )
    return CollectionCampaign(config).run()


class TestMultiLink:
    def test_row_width_scales_with_links(self, two_link_dataset):
        assert two_link_dataset.csi.shape[1] == 128

    def test_n_links_property(self):
        config = CampaignConfig(duration_h=1.0, sample_rate_hz=0.3, room=TWO_LINK_ROOM)
        assert CollectionCampaign(config).n_links == 2

    def test_links_see_different_channels(self, two_link_dataset):
        link_a = two_link_dataset.csi[:, :64]
        link_b = two_link_dataset.csi[:, 64:]
        assert not np.allclose(link_a, link_b)

    def test_both_links_respond_to_occupancy(self, two_link_dataset):
        occ = two_link_dataset.occupancy
        if occ.min() == occ.max():
            pytest.skip("campaign draw contains a single class")
        for start in (0, 64):
            block = two_link_dataset.csi[:, start + 6 : start + 59]
            empty_mean = block[occ == 0].mean(axis=0)
            occupied_mean = block[occ == 1].mean(axis=0)
            assert np.abs(empty_mean - occupied_mean).max() > 1e-3

    def test_guard_bins_per_link(self, two_link_dataset):
        # Each link carries its own guard-bin floor columns.
        for guard in (0, 32, 63, 64, 96, 127):
            assert two_link_dataset.csi[:, guard].std() == 0.0

    def test_extra_rx_outside_room_rejected(self):
        with pytest.raises(ConfigurationError):
            RoomConfig(extra_rx_positions=((99.0, 0.0, 0.0),))

    def test_all_rx_positions_order(self):
        room = TWO_LINK_ROOM
        assert room.all_rx_positions[0] == room.rx_position
        assert room.all_rx_positions[1] == (10.0, 5.0, 1.4)

    def test_default_single_link_unchanged(self):
        config = CampaignConfig(duration_h=1.0, sample_rate_hz=0.3, seed=3)
        dataset = CollectionCampaign(config).run()
        assert dataset.csi.shape[1] == 64
