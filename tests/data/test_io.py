"""Tests for dataset persistence (NPZ and Table I CSV)."""

import numpy as np
import pytest

from repro.data.dataset import OccupancyDataset
from repro.data.io import load_csv, load_npz, save_csv, save_npz
from repro.exceptions import DatasetError, SchemaError, SerializationError


def make_dataset(n=20, d=8, seed=0) -> OccupancyDataset:
    rng = np.random.default_rng(seed)
    count = rng.integers(0, 3, n)
    return OccupancyDataset(
        np.arange(n, dtype=float) * 0.05,
        rng.uniform(0, 1, (n, d)).round(6),
        rng.uniform(18, 24, n).round(2),
        np.round(rng.uniform(20, 50, n)),
        (count > 0).astype(int),
        count,
    )


class TestNpz:
    def test_round_trip_preserves_everything(self, tmp_path):
        ds = make_dataset()
        path = save_npz(ds, tmp_path / "data.npz")
        back = load_npz(path)
        np.testing.assert_allclose(back.csi, ds.csi)
        np.testing.assert_allclose(back.timestamps_s, ds.timestamps_s)
        np.testing.assert_array_equal(back.occupancy, ds.occupancy)
        np.testing.assert_array_equal(back.occupant_count, ds.occupant_count)

    def test_round_trip_without_counts(self, tmp_path):
        ds = make_dataset()
        stripped = OccupancyDataset(
            ds.timestamps_s, ds.csi, ds.temperature_c, ds.humidity_rh, ds.occupancy
        )
        back = load_npz(save_npz(stripped, tmp_path / "d.npz"))
        assert back.occupant_count is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_npz(tmp_path / "nope.npz")

    def test_incomplete_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, csi=np.ones((2, 4)))
        with pytest.raises(SerializationError):
            load_npz(path)

    def test_truncated_archive_raises_schema_error_naming_file(self, tmp_path):
        ds = make_dataset()
        path = save_npz(ds, tmp_path / "data.npz")
        path.write_bytes(path.read_bytes()[:40])  # chop mid-zip
        with pytest.raises(SchemaError, match="data.npz"):
            load_npz(path)

    def test_non_zip_bytes_raise_schema_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this was never a zip archive")
        with pytest.raises(SchemaError, match="truncated or corrupt"):
            load_npz(path)


class TestCsv:
    def test_round_trip(self, tmp_path):
        ds = make_dataset()
        path = save_csv(ds, tmp_path / "data.csv")
        back = load_csv(path)
        assert len(back) == len(ds)
        assert back.n_subcarriers == ds.n_subcarriers
        np.testing.assert_allclose(back.csi, ds.csi, atol=1e-5)
        np.testing.assert_array_equal(back.occupancy, ds.occupancy)

    def test_header_matches_table_i(self, tmp_path):
        ds = make_dataset(d=4)
        path = save_csv(ds, tmp_path / "data.csv")
        header = path.read_text().splitlines()[0].split(",")
        assert header == ["timestamp", "a0", "a1", "a2", "a3",
                          "temperature", "humidity", "occupancy"]

    def test_csv_drops_latent_counts(self, tmp_path):
        # Table I has no occupant-count column; CSV is the paper's format.
        ds = make_dataset()
        back = load_csv(save_csv(ds, tmp_path / "d.csv"))
        assert back.occupant_count is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_csv(tmp_path / "nope.csv")

    def test_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "foreign.csv"
        path.write_text("time,x,y\n1,2,3\n")
        with pytest.raises(SerializationError):
            load_csv(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SerializationError):
            load_csv(path)

    def test_ragged_row_raises_schema_error_naming_the_line(self, tmp_path):
        ds = make_dataset(d=2)
        path = save_csv(ds, tmp_path / "ragged.csv")
        lines = path.read_text().splitlines()
        lines[3] = lines[3].rsplit(",", 2)[0]  # drop two trailing columns
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError, match="row 4"):
            load_csv(path)

    def test_non_numeric_value_raises_schema_error_naming_the_line(self, tmp_path):
        ds = make_dataset(d=2)
        path = save_csv(ds, tmp_path / "text.csv")
        lines = path.read_text().splitlines()
        parts = lines[2].split(",")
        parts[1] = "oops"
        lines[2] = ",".join(parts)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError, match="row 3.*non-numeric"):
            load_csv(path)

    def test_rejects_header_only(self, tmp_path):
        ds = make_dataset(d=2)
        path = save_csv(ds, tmp_path / "h.csv")
        path.write_text(path.read_text().splitlines()[0] + "\n")
        with pytest.raises(DatasetError):
            load_csv(path)
