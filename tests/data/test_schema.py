"""Tests for the Table I schema."""

import numpy as np
import pytest

from repro.data.schema import SCHEMA, TableISchema
from repro.exceptions import SchemaError


class TestTableISchema:
    def test_default_64_subcarriers(self):
        assert SCHEMA.n_subcarriers == 64
        assert SCHEMA.n_columns == 68

    def test_column_order_matches_table_i(self):
        cols = SCHEMA.columns
        assert cols[0] == "timestamp"
        assert cols[1] == "a0"
        assert cols[64] == "a63"
        assert cols[-3:] == ["temperature", "humidity", "occupancy"]

    def test_csi_columns(self):
        schema = TableISchema(n_subcarriers=4)
        assert schema.csi_columns == ["a0", "a1", "a2", "a3"]

    def test_rejects_zero_subcarriers(self):
        with pytest.raises(SchemaError):
            TableISchema(n_subcarriers=0)


class TestRowValidation:
    def valid_row(self) -> np.ndarray:
        return np.concatenate([[0.0], np.full(64, 0.5), [21.5, 43.0, 1.0]])

    def test_accepts_valid_row(self):
        SCHEMA.validate_row(self.valid_row())

    def test_rejects_wrong_width(self):
        with pytest.raises(SchemaError):
            SCHEMA.validate_row(np.ones(10))

    def test_rejects_nan(self):
        row = self.valid_row()
        row[5] = np.nan
        with pytest.raises(SchemaError):
            SCHEMA.validate_row(row)

    def test_rejects_non_binary_occupancy(self):
        row = self.valid_row()
        row[-1] = 2.0
        with pytest.raises(SchemaError):
            SCHEMA.validate_row(row)

    def test_rejects_humidity_out_of_range(self):
        row = self.valid_row()
        row[-2] = 150.0
        with pytest.raises(SchemaError):
            SCHEMA.validate_row(row)

    def test_rejects_negative_csi(self):
        row = self.valid_row()
        row[3] = -0.1
        with pytest.raises(SchemaError):
            SCHEMA.validate_row(row)
