"""Tests for the semi-automatic annotator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.annotate import AnnotationEvent, IntervalAnnotator, inject_label_noise
from repro.exceptions import DatasetError


class TestIntervalAnnotator:
    def test_expands_events_to_dense_labels(self):
        annotator = IntervalAnnotator(initial_occupied=False)
        annotator.mark(10.0, True)
        annotator.mark(20.0, False)
        t = np.arange(0.0, 30.0, 5.0)
        labels = annotator.labels(t)
        np.testing.assert_array_equal(labels, [0, 0, 1, 1, 0, 0])

    def test_initial_state_used_before_first_event(self):
        annotator = IntervalAnnotator(initial_occupied=True)
        annotator.mark(100.0, False)
        labels = annotator.labels(np.array([0.0, 50.0, 150.0]))
        np.testing.assert_array_equal(labels, [1, 1, 0])

    def test_no_events_gives_constant(self):
        annotator = IntervalAnnotator(initial_occupied=False)
        labels = annotator.labels(np.arange(5.0))
        np.testing.assert_array_equal(labels, 0)

    def test_out_of_order_marking_sorted(self):
        annotator = IntervalAnnotator()
        annotator.mark(20.0, False)
        annotator.mark(10.0, True)
        assert [e.t_s for e in annotator.events] == [10.0, 20.0]

    def test_event_at_exact_timestamp_applies(self):
        annotator = IntervalAnnotator()
        annotator.mark(5.0, True)
        labels = annotator.labels(np.array([5.0]))
        assert labels[0] == 1


class TestFromDense:
    def test_round_trip(self):
        t = np.arange(100.0)
        labels = np.zeros(100, dtype=int)
        labels[30:60] = 1
        labels[80:] = 1
        annotator = IntervalAnnotator.from_dense(t, labels)
        np.testing.assert_array_equal(annotator.labels(t), labels)

    def test_compression_is_sparse(self):
        # A 74-hour campaign has millions of rows but few transitions —
        # the whole point of the paper's semi-automatic tool.
        t = np.arange(10_000.0)
        labels = (t // 2500).astype(int) % 2
        annotator = IntervalAnnotator.from_dense(t, labels)
        assert annotator.n_events() <= 4

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(DatasetError):
            IntervalAnnotator.from_dense(np.arange(5.0), np.zeros(4, dtype=int))

    def test_rejects_non_binary(self):
        with pytest.raises(DatasetError):
            IntervalAnnotator.from_dense(np.arange(3.0), np.array([0, 1, 2]))

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            IntervalAnnotator.from_dense(np.array([]), np.array([], dtype=int))

    @settings(max_examples=30)
    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=200))
    def test_property_round_trip(self, raw):
        labels = np.array(raw, dtype=int)
        t = np.arange(len(labels), dtype=float)
        annotator = IntervalAnnotator.from_dense(t, labels)
        np.testing.assert_array_equal(annotator.labels(t), labels)


class TestLabelNoise:
    def test_flips_exact_fraction(self, rng):
        labels = np.zeros(1000, dtype=int)
        noisy = inject_label_noise(labels, 0.1, rng)
        assert np.count_nonzero(noisy != labels) == 100

    def test_zero_fraction_is_identity(self, rng):
        labels = np.ones(50, dtype=int)
        np.testing.assert_array_equal(inject_label_noise(labels, 0.0, rng), labels)

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(DatasetError):
            inject_label_noise(np.zeros(5, dtype=int), 1.5, rng)

    def test_does_not_mutate_input(self, rng):
        labels = np.zeros(100, dtype=int)
        inject_label_noise(labels, 0.5, rng)
        assert labels.sum() == 0
