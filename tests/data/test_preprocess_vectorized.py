"""Vectorized preprocessing must reproduce the scalar references exactly.

``hampel_filter`` has an in-repo readable specification
(:func:`hampel_filter_scalar`); ``moving_average`` replaced a per-column
``np.convolve`` loop; ``WindowFeatureExtractor.transform`` replaced a
per-window Python loop over :meth:`_compute`.  Each vectorization is held
byte-identical to the form it replaced.
"""

import numpy as np
import pytest

from repro.data.dataset import OccupancyDataset
from repro.data.preprocess import (
    WindowFeatureExtractor,
    hampel_filter,
    hampel_filter_scalar,
    moving_average,
)
from repro.exceptions import ShapeError


def moving_average_convolve(series, window):
    """The pre-vectorization implementation, kept as the reference."""
    x = np.asarray(series, dtype=float)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    kernel = np.ones(window)
    counts = np.convolve(np.ones(x.shape[0]), kernel, mode="same")
    out = np.empty_like(x)
    for j in range(x.shape[1]):
        out[:, j] = np.convolve(x[:, j], kernel, mode="same") / counts
    return out[:, 0] if squeeze else out


class TestHampelScalarEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("window", [3, 5, 7])
    def test_byte_identical_on_noisy_blocks(self, seed, window):
        rng = np.random.default_rng(seed)
        block = rng.normal(size=(60, 4))
        spikes = rng.choice(60 * 4, size=15, replace=False)
        block.ravel()[spikes] += rng.choice([-40.0, 40.0], size=15)
        fast_c, fast_m = hampel_filter(block, window=window)
        ref_c, ref_m = hampel_filter_scalar(block, window=window)
        np.testing.assert_array_equal(fast_c, ref_c)
        np.testing.assert_array_equal(fast_m, ref_m)
        assert fast_m.any()  # the spikes actually tripped the filter

    def test_byte_identical_on_1d_series(self):
        rng = np.random.default_rng(5)
        series = np.sin(np.linspace(0, 6, 80)) + rng.normal(scale=0.05, size=80)
        series[[7, 40]] = 25.0
        fast = hampel_filter(series, n_sigmas=2.5)
        ref = hampel_filter_scalar(series, n_sigmas=2.5)
        np.testing.assert_array_equal(fast[0], ref[0])
        np.testing.assert_array_equal(fast[1], ref[1])

    def test_constant_series_identical(self):
        # MAD is zero everywhere: the 1e-12 floor path in both forms.
        series = np.full(30, 3.5)
        fast = hampel_filter(series)
        ref = hampel_filter_scalar(series)
        np.testing.assert_array_equal(fast[0], ref[0])
        assert not fast[1].any() and not ref[1].any()

    def test_scalar_form_validates_like_vectorized(self):
        for bad in (dict(window=4), dict(window=1), dict(n_sigmas=0.0)):
            with pytest.raises(ShapeError):
                hampel_filter_scalar(np.zeros(20), **bad)
            with pytest.raises(ShapeError):
                hampel_filter(np.zeros(20), **bad)
        with pytest.raises(ShapeError):
            hampel_filter_scalar(np.zeros(3), window=7)


class TestMovingAverageEquivalence:
    @pytest.mark.parametrize("window", [1, 2, 3, 4, 5, 8, 11])
    def test_matches_convolve_reference_2d(self, window):
        rng = np.random.default_rng(window)
        block = rng.normal(size=(37, 3))
        np.testing.assert_allclose(
            moving_average(block, window=window),
            moving_average_convolve(block, window=window),
            rtol=0, atol=1e-12,
        )

    @pytest.mark.parametrize("window", [2, 5, 6])
    def test_matches_convolve_reference_1d(self, window):
        rng = np.random.default_rng(100 + window)
        series = rng.normal(size=23)
        np.testing.assert_allclose(
            moving_average(series, window=window),
            moving_average_convolve(series, window=window),
            rtol=0, atol=1e-12,
        )

    def test_window_longer_than_series(self):
        # np.convolve(mode="same") returns max(M, N) samples, so the old
        # loop never supported window > n; check the centered-window
        # definition directly instead.
        series = np.arange(4.0)
        window = 9
        lo = window - 1 - (window - 1) // 2
        hi = (window - 1) // 2
        expected = np.array([
            series[max(i - lo, 0) : min(i + hi, 3) + 1].mean() for i in range(4)
        ])
        np.testing.assert_allclose(
            moving_average(series, window=window), expected, rtol=0, atol=1e-12
        )

    def test_single_row(self):
        np.testing.assert_array_equal(
            moving_average(np.array([[2.0, 4.0]]), window=3),
            np.array([[2.0, 4.0]]),
        )


def make_dataset(n, d=6, seed=0):
    rng = np.random.default_rng(seed)
    count = rng.integers(0, 4, n)
    return OccupancyDataset(
        np.cumsum(rng.uniform(0.05, 0.15, n)),
        rng.uniform(0.1, 30.0, (n, d)),
        rng.uniform(18, 24, n),
        rng.uniform(20, 50, n),
        (count > 0).astype(int),
        count,
    )


class TestWindowFeatureExtractorEquivalence:
    def scalar_transform(self, extractor, dataset):
        """The pre-vectorization per-window loop, inlined as reference."""
        n_windows = len(dataset) // extractor.window
        xs, ys, ts = [], [], []
        for w in range(n_windows):
            lo = w * extractor.window
            hi = lo + extractor.window
            xs.append(extractor._compute(dataset.csi[lo:hi]))
            ys.append(int(round(float(dataset.occupancy[lo:hi].mean()))))
            ts.append(dataset.timestamps_s[hi - 1])
        return np.asarray(xs), np.asarray(ys), np.asarray(ts)

    @pytest.mark.parametrize("stats", [
        ("mean", "std"),
        ("min", "max", "range"),
        ("mean", "std", "min", "max", "range"),
    ])
    @pytest.mark.parametrize("n", [30, 47])
    def test_matches_scalar_loop(self, stats, n):
        dataset = make_dataset(n, seed=n)
        extractor = WindowFeatureExtractor(window=10, stats=stats)
        x, y, t = extractor.transform(dataset)
        x_ref, y_ref, t_ref = self.scalar_transform(extractor, dataset)
        np.testing.assert_array_equal(x, x_ref)
        np.testing.assert_array_equal(y, y_ref)
        np.testing.assert_array_equal(t, t_ref)

    def test_half_occupied_window_rounds_like_python(self):
        # A 0.5 mean hits round-half-to-even in both scalar round() and
        # np.round: label 0, not 1.
        n = 4
        rng = np.random.default_rng(1)
        ds = OccupancyDataset(
            np.arange(n, dtype=float),
            rng.uniform(0.1, 1.0, (n, 3)),
            np.full(n, 20.0),
            np.full(n, 40.0),
            np.array([0, 1, 1, 0]),
            np.array([0, 1, 1, 0]),
        )
        extractor = WindowFeatureExtractor(window=2, stats=("mean",))
        _, y, _ = extractor.transform(ds)
        ref = [int(round(0.5)), int(round(0.5))]
        assert y.tolist() == ref == [0, 0]

    def test_feature_width_matches_contract(self):
        dataset = make_dataset(40, d=5)
        extractor = WindowFeatureExtractor(window=8, stats=("mean", "range"))
        x, _, _ = extractor.transform(dataset)
        assert x.shape == (5, extractor.n_features(5))
