"""Section V-B ablation — time-of-day as the only feature.

The paper: "if we used only time as a feature for our analysis, the
performance in terms of accuracy does not present good results (i.e.,
89.3%) compared with those of the MLP".  Office schedules are regular, so
time alone predicts occupancy decently — but not at the CSI level, and it
can never detect the *unusual* (a person at midnight, an empty noon).
"""

import pytest

from repro.core.experiment import OccupancyExperiment
from repro.core.features import FeatureSet

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table

PAPER_TIME_ONLY = 89.3


@pytest.fixture(scope="module")
def experiment(bench_split):
    return OccupancyExperiment(
        bench_split, training=PAPER_TRAINING, max_train_rows=MAX_TRAIN_ROWS
    )


class TestTimeOnly:
    def test_time_only_accuracy(self, experiment, benchmark):
        accuracy = benchmark.pedantic(experiment.run_time_only, rounds=1, iterations=1)
        print_table(
            "Section V-B: time-only ablation",
            [{"feature": "hour of day", "paper %": PAPER_TIME_ONLY,
              "measured %": round(accuracy, 1)}],
        )
        # Time is informative (way above the 50 % coin flip and the 63 %
        # majority class) but clearly below the CSI models' ~97 %.
        assert 65.0 <= accuracy <= 97.0

    def test_csi_beats_time_only(self, experiment, bench_split, benchmark):
        time_only, csi = benchmark.pedantic(
            lambda: (
                experiment.run_time_only(),
                experiment.run(models=("mlp",), feature_sets=(FeatureSet.CSI,)),
            ),
            rounds=1,
            iterations=1,
        )
        assert csi.average("mlp", FeatureSet.CSI) > time_only
