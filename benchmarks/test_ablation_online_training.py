"""Ablation — the paper's online-training argument for the MLP.

Section V-B prefers the MLP over the random forest partly because it
"can be trained continuously.  There is no need to use the whole dataset
again but only new data, which can also arrive in real-time, thus doing
online training."  This benchmark quantifies that: a detector trained on
fold 0 is evaluated on the last fold before and after absorbing a small
labelled snippet from the *intermediate* folds via ``partial_fit`` — no
replay of the original training data.
"""

import numpy as np
import pytest

from repro.core.detector import OccupancyDetector
from repro.core.features import FeatureSet, extract_features

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table


@pytest.fixture(scope="module")
def online_result(bench_split):
    train = bench_split.train.data
    x_train = extract_features(train, FeatureSet.CSI)
    stride = max(1, len(x_train) // MAX_TRAIN_ROWS)

    detector = OccupancyDetector(64, PAPER_TRAINING)
    detector.fit(x_train[::stride], train.occupancy[::stride])

    target = bench_split.tests[-1]
    x_target = extract_features(target.data, FeatureSet.CSI)
    before = detector.score(x_target, target.data.occupancy)

    # New-day snippet: the first three test folds, labelled (a realistic
    # recalibration set an operator could annotate from the door sensor).
    snippets = bench_split.tests[:3]
    x_new = np.vstack([extract_features(f.data, FeatureSet.CSI) for f in snippets])
    y_new = np.concatenate([f.data.occupancy for f in snippets])
    detector.partial_fit(x_new, y_new, epochs=2)

    after = detector.score(x_target, target.data.occupancy)
    return before, after


class TestOnlineTraining:
    def test_report(self, online_result, benchmark):
        benchmark(lambda: online_result)
        before, after = online_result
        print_table(
            "Ablation: online (continual) training via partial_fit",
            [
                {"stage": "trained on fold 0 only", "fold-5 accuracy %": round(100 * before, 1)},
                {"stage": "+ online update on folds 1-3", "fold-5 accuracy %": round(100 * after, 1)},
            ],
        )

    def test_online_update_does_not_hurt(self, online_result, benchmark):
        benchmark(lambda: online_result)
        before, after = online_result
        # Absorbing same-building data from closer in time must not
        # meaningfully degrade the detector (and usually helps); the
        # damped-lr update bounds the movement.
        assert after >= before - 0.04
