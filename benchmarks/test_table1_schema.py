"""Table I — format of the collected data.

Regenerates the dataset schema the paper shows in Table I (timestamp,
a0..a63 CSI amplitudes, temperature, humidity, occupancy status), prints
sample rows in the paper's layout, and benchmarks the acquisition-chain
throughput (rows recorded per second of compute).
"""

import numpy as np

from repro.config import CampaignConfig
from repro.data.recording import CollectionCampaign
from repro.data.schema import TableISchema

from .conftest import print_table


class TestTableI:
    def test_schema_matches_paper(self, bench_dataset, benchmark):
        schema = TableISchema(n_subcarriers=bench_dataset.n_subcarriers)

        def sample_rows():
            matrix = bench_dataset.to_matrix()
            for row in matrix[:: len(matrix) // 4][:4]:
                schema.validate_row(row)
            return matrix[:4]

        rows = benchmark(sample_rows)

        # Paper layout: timestamp | a0 .. a63 | T | H | occupancy.
        assert schema.columns[0] == "timestamp"
        assert schema.columns[1] == "a0"
        assert schema.columns[64] == "a63"
        assert schema.columns[-3:] == ["temperature", "humidity", "occupancy"]

        display = [
            {
                "Timestamp": f"{r[0]:.2f}",
                "a0": f"{r[1]:.3f}",
                "...": "...",
                "a63": f"{r[64]:.3f}",
                "Temperature": f"{r[65]:.2f}",
                "Humidity": f"{r[66]:.0f}",
                "Occupancy": int(r[67]),
            }
            for r in rows
        ]
        print_table("Table I (reproduced): collected data format", display)

        # Humidity logged as integer %RH; temperature at 0.01 degC; the
        # guard subcarrier a0 carries the Nexmon leakage floor (paper rows
        # show a constant 0.027 there).
        assert np.allclose(bench_dataset.humidity_rh, np.round(bench_dataset.humidity_rh))
        assert np.allclose(bench_dataset.csi[:, 0], bench_dataset.csi[0, 0])

    def test_recorder_throughput(self, benchmark):
        config = CampaignConfig(duration_h=0.5, sample_rate_hz=1.0, seed=1)

        result = benchmark.pedantic(
            lambda: CollectionCampaign(config).run(), rounds=1, iterations=1
        )
        assert len(result) == config.n_samples
        assert result.n_subcarriers == 64
