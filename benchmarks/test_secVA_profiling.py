"""Section V-A — data profiling: stationarity and correlations.

The paper reports, over the full campaign:

* every series (CSI subcarriers, T, H, occupancy) passes the ADF
  stationarity test;
* Pearson correlations: T-H +0.45, T-occupancy +0.44, H-occupancy +0.35;
* subcarriers correlate most with their neighbours, and mid-to-high band
  carriers correlate ~0.20-0.30 with T and H;
* time-of-day correlates strongly (0.77) with the environment.

The benchmark reruns the profiling pipeline and asserts signs and rough
magnitudes.
"""

import numpy as np
import pytest

from repro.analysis.profiling import profile_dataset
from repro.analysis.stats import correlation_matrix

from .conftest import BENCH_CONFIG, print_table

PAPER_CORRELATIONS = {
    "T-H": 0.45,
    "T-occupancy": 0.44,
    "H-occupancy": 0.35,
    "time-environment": 0.77,
}


@pytest.fixture(scope="module")
def profile(bench_dataset):
    return profile_dataset(
        bench_dataset, start_hour_of_day=BENCH_CONFIG.start_hour_of_day
    )


class TestSectionVA:
    def test_regenerate_profile(self, profile, benchmark, bench_dataset):
        result = benchmark.pedantic(
            lambda: profile_dataset(
                bench_dataset, start_hour_of_day=BENCH_CONFIG.start_hour_of_day
            ),
            rounds=1,
            iterations=1,
        )
        measured = {
            "T-H": result.corr_temperature_humidity,
            "T-occupancy": result.corr_temperature_occupancy,
            "H-occupancy": result.corr_humidity_occupancy,
            "time-environment": result.corr_time_environment(),
        }
        rows = [
            {
                "correlation": key,
                "paper": PAPER_CORRELATIONS[key],
                "measured": round(measured[key], 2),
            }
            for key in PAPER_CORRELATIONS
        ]
        print_table("Section V-A (reproduced): Pearson correlations", rows)

        adf_rows = [
            {
                "series": name,
                "ADF stat": round(r.statistic, 2) if np.isfinite(r.statistic) else "-inf",
                "p": round(r.p_value, 3),
                "stationary": r.is_stationary,
            }
            for name, r in result.adf.items()
        ]
        print_table("Section V-A (reproduced): ADF stationarity", adf_rows)

    def test_all_series_stationary(self, profile, benchmark):
        benchmark(lambda: profile.all_series_stationary)
        assert profile.all_series_stationary

    def test_no_nulls_or_duplicates(self, profile, benchmark):
        benchmark(lambda: profile.n_non_finite)
        assert profile.n_non_finite == 0
        assert profile.n_duplicate_timestamps == 0

    def test_environment_occupancy_correlations_positive(self, profile, benchmark):
        benchmark(lambda: profile.corr_temperature_occupancy)
        # Signs must match the paper; magnitudes within a loose band.
        assert 0.05 < profile.corr_temperature_occupancy < 0.8
        assert 0.0 < profile.corr_humidity_occupancy < 0.8

    def test_temperature_humidity_coupled(self, profile, benchmark):
        benchmark(lambda: profile.corr_temperature_humidity)
        assert abs(profile.corr_temperature_humidity) > 0.1

    def test_time_environment_strong(self, profile, benchmark):
        benchmark(lambda: profile.corr_time_environment())
        # Paper: 0.77 — heating schedule plus office hours.
        assert profile.corr_time_environment() > 0.3

    def test_neighbouring_subcarriers_correlated(self, bench_dataset, benchmark):
        # "subcarriers are mostly correlated with neighboring subcarriers"
        corr = benchmark.pedantic(
            lambda: correlation_matrix(bench_dataset.csi[:, 6:59]), rounds=1, iterations=1
        )  # data bins
        n = corr.shape[0]
        neighbour = np.array([corr[i, i + 1] for i in range(n - 1)])
        distant = np.array([corr[i, (i + 20) % n] for i in range(n)])
        assert np.abs(neighbour).mean() > np.abs(distant).mean()

    def test_some_subcarriers_track_environment(self, profile, benchmark):
        benchmark(lambda: np.max(np.abs(profile.subcarrier_temperature_corr)))
        # "mid-to-high band carriers are somewhat correlated with
        # temperature and humidity (~0.20 to 0.30)".
        assert np.max(np.abs(profile.subcarrier_temperature_corr)) > 0.10
        assert np.max(np.abs(profile.subcarrier_humidity_corr)) > 0.10
