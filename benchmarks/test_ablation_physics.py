"""Ablation — which physical channel carries the occupancy signal?

DESIGN.md's simulator preserves two causal paths from occupancy to CSI:

* **body interaction** with the specular field (Fresnel-zone shadowing of
  wall paths + single-scatter body paths), and
* **motion jitter** (Doppler-spread diffuse power while people move).

This ablation regenerates small campaigns with the motion channel
disabled (``mobility_power_boost = 0``) and with a weak-body variant, and
measures how the random-forest detector degrades.  The result documents
that the reproduction does not hinge on a single artificial cue — both
channels carry signal, like in real WiFi sensing.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.baselines.forest import RandomForestClassifier
from repro.config import CampaignConfig, RadioConfig
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign

from .conftest import print_table

#: A small campaign reused across the ablation arms (same seed!).
ABLATION_BASE = CampaignConfig(duration_h=30.0, sample_rate_hz=0.15, seed=77)


def forest_fold_accuracy(config: CampaignConfig) -> float:
    """Mean test-fold accuracy of the RF detector on a fresh campaign."""
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data
    model = RandomForestClassifier(n_estimators=15, max_depth=6, max_samples=8000)
    model.fit(train.csi, train.occupancy)
    accuracies = [
        float(np.mean(model.predict(f.data.csi) == f.data.occupancy))
        for f in split.tests
    ]
    return 100.0 * float(np.mean(accuracies))


@pytest.fixture(scope="module")
def ablation_results():
    arms = {
        "full physics": ABLATION_BASE,
        "no motion jitter": replace(
            ABLATION_BASE, radio=RadioConfig(mobility_power_boost=0.0)
        ),
        "strong drift": replace(
            ABLATION_BASE, radio=RadioConfig(drift_fraction=0.5)
        ),
    }
    return {name: forest_fold_accuracy(config) for name, config in arms.items()}


class TestPhysicsAblation:
    def test_report(self, ablation_results, benchmark):
        benchmark(lambda: dict(ablation_results))
        rows = [
            {"arm": name, "RF fold-avg accuracy %": round(acc, 1)}
            for name, acc in ablation_results.items()
        ]
        print_table("Ablation: physical channels of the occupancy signal", rows)

    def test_full_physics_is_strong(self, ablation_results, benchmark):
        benchmark(lambda: ablation_results["full physics"])
        assert ablation_results["full physics"] > 90.0

    def test_motion_jitter_carries_signal(self, ablation_results, benchmark):
        benchmark(lambda: ablation_results["no motion jitter"])
        # Removing the motion channel must hurt, but the body-interaction
        # channel alone should still beat the 63 % majority class.
        assert ablation_results["no motion jitter"] < ablation_results["full physics"] + 2.0
        assert ablation_results["no motion jitter"] > 63.0

    def test_drift_hurts_generalization(self, ablation_results, benchmark):
        benchmark(lambda: ablation_results["strong drift"])
        # A room whose clutter wanders (drift 50 % of diffuse power)
        # breaks the empty-manifold stability the classifiers rely on.
        assert ablation_results["strong drift"] < ablation_results["full physics"]
