"""Table III — the temporal train/test folds.

The paper splits the campaign 70/30 in time; the 30 % test region divides
into five folds: fold 1 (evening, mostly empty), folds 2-3 (night, all
empty), fold 4 (morning, mixed — the Env trap) and fold 5 (afternoon,
almost fully occupied).  The benchmark regenerates the fold table and
asserts that structure.
"""

from repro.data.folds import make_paper_folds

from .conftest import print_table

#: Table III reference rows (start, end, empty, occupied) for context.
PAPER_TABLE_III = [
    {"fold": 0, "window": "04/01 15:08 - 06/01 19:16", "empty": 2_348_151, "occupied": 1_405_500},
    {"fold": 1, "window": "06/01 19:16 - 06/01 23:44", "empty": 321_742, "occupied": 0},
    {"fold": 2, "window": "06/01 23:44 - 07/01 04:12", "empty": 321_742, "occupied": 0},
    {"fold": 3, "window": "07/01 04:12 - 07/01 08:41", "empty": 321_742, "occupied": 0},
    {"fold": 4, "window": "07/01 08:41 - 07/01 13:09", "empty": 56_223, "occupied": 265_519},
    {"fold": 5, "window": "07/01 13:09 - 07/01 19:16", "empty": 0, "occupied": 321_741},
]


class TestTableIII:
    def test_fold_structure(self, bench_dataset, benchmark):
        split = benchmark(lambda: make_paper_folds(bench_dataset))

        rows = []
        for fold in split.all_folds:
            d = fold.describe()
            rows.append(
                {
                    "fold": d["fold"],
                    "role": d["role"],
                    "start_h": f"{d['start_h']:.1f}",
                    "end_h": f"{d['end_h']:.1f}",
                    "empty": d["empty"],
                    "occupied": d["occupied"],
                    "T range": d["T"],
                    "H range": d["H"],
                }
            )
        print_table("Table III (reproduced): train/test folds", rows)
        print_table("Table III (paper, for reference)", PAPER_TABLE_III)

        # 70/30 in time, train first.
        assert split.train.index == 0
        total = sum(len(f.data) for f in split.all_folds)
        assert abs(len(split.train.data) / total - 0.7) < 0.02

        # The night folds (2-3 in the paper) are entirely empty.
        all_empty = [f.index for f in split.tests if f.n_occupied == 0]
        assert len(all_empty) >= 2, f"expected >=2 all-empty night folds, got {all_empty}"

        # A mixed morning fold exists (the Env-only trap, paper fold 4).
        mixed = [
            f.index
            for f in split.tests
            if f.n_occupied > 0 and f.n_empty > 0.2 * len(f.data)
        ]
        assert mixed, "expected a mixed (cold morning) fold"

        # The final afternoon fold is occupied-dominated (paper fold 5).
        last = split.tests[-1]
        assert last.n_occupied > 0.7 * len(last.data)

    def test_environment_ranges_inside_paper_envelope(self, bench_split, benchmark):
        benchmark(lambda: [f.temperature_range() for f in bench_split.all_folds])
        # Paper envelope over all folds: T 18.38-40.09 degC, H 16-49 %RH.
        for fold in bench_split.all_folds:
            t_lo, t_hi = fold.temperature_range()
            h_lo, h_hi = fold.humidity_range()
            assert 15.0 < t_lo and t_hi < 41.0
            assert 10.0 <= h_lo and h_hi <= 55.0
