"""Ablation — does the paper's "no pre-processing" claim hold?

Section I criticises prior work for "computationally-demanding
pre-processing pipelines"; the paper feeds raw CSI amplitudes to its MLP.
This ablation compares, on the same temporal protocol:

* raw amplitudes (the paper's input);
* Hampel-filtered + moving-average-smoothed amplitudes;
* guard-bin-dropped amplitudes (the only "free" cleanup);
* classic sliding-window statistics (mean/std per subcarrier) — the
  hand-crafted feature set of the pre-deep-learning CSI literature;
* a k-NN model on raw amplitudes (the manifold-distance view).

If the reproduction is faithful, raw input should already be at the
ceiling, with preprocessing adding little — which is the paper's point.
"""

import numpy as np
import pytest

from repro.baselines.knn import KNeighborsClassifier
from repro.baselines.scaler import StandardScaler
from repro.core.detector import OccupancyDetector
from repro.data.preprocess import (
    WindowFeatureExtractor,
    hampel_filter,
    moving_average,
    select_subcarriers,
)

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table


def _mlp_accuracy(x_train, y_train, fold_features, fold_labels) -> float:
    detector = OccupancyDetector(x_train.shape[1], PAPER_TRAINING)
    detector.fit(x_train, y_train)
    accuracies = [
        detector.score(x, y) for x, y in zip(fold_features, fold_labels)
    ]
    return 100.0 * float(np.mean(accuracies))


@pytest.fixture(scope="module")
def preprocessing_sweep(bench_split):
    train = bench_split.train.data
    stride = max(1, len(train) // MAX_TRAIN_ROWS)
    results: dict[str, float] = {}

    # --- raw amplitudes (the paper's pipeline)
    fold_x = [f.data.csi for f in bench_split.tests]
    fold_y = [f.data.occupancy for f in bench_split.tests]
    results["raw CSI (paper)"] = _mlp_accuracy(
        train.csi[::stride], train.occupancy[::stride], fold_x, fold_y
    )

    # --- Hampel + smoothing
    cleaned_train, _ = hampel_filter(train.csi)
    cleaned_train = moving_average(cleaned_train, 5)
    fold_clean = []
    for f in bench_split.tests:
        cleaned, _ = hampel_filter(f.data.csi)
        fold_clean.append(moving_average(cleaned, 5))
    results["hampel + smoothing"] = _mlp_accuracy(
        cleaned_train[::stride], train.occupancy[::stride], fold_clean, fold_y
    )

    # --- guard bins dropped
    train_sel, idx = select_subcarriers(train.csi)
    fold_sel = [f.data.csi[:, idx] for f in bench_split.tests]
    results["guards dropped"] = _mlp_accuracy(
        train_sel[::stride], train.occupancy[::stride], fold_sel, fold_y
    )

    # --- windowed hand-crafted statistics
    extractor = WindowFeatureExtractor(window=5, stats=("mean", "std"))
    xw_train, yw_train, _ = extractor.transform(train)
    fold_window_x, fold_window_y = [], []
    for f in bench_split.tests:
        xw, yw, _ = extractor.transform(f.data)
        fold_window_x.append(xw)
        fold_window_y.append(yw)
    results["windowed mean/std"] = _mlp_accuracy(
        xw_train, yw_train, fold_window_x, fold_window_y
    )

    # --- k-NN on raw amplitudes
    scaler = StandardScaler()
    knn = KNeighborsClassifier(7).fit(
        scaler.fit_transform(train.csi[:: stride * 2]), train.occupancy[:: stride * 2]
    )
    knn_accs = [
        100.0 * float(np.mean(knn.predict(scaler.transform(x)) == y))
        for x, y in zip(fold_x, fold_y)
    ]
    results["k-NN on raw CSI"] = float(np.mean(knn_accs))
    return results


class TestPreprocessingAblation:
    def test_report(self, preprocessing_sweep, benchmark):
        benchmark(lambda: dict(preprocessing_sweep))
        rows = [
            {"pipeline": name, "fold-avg accuracy %": round(acc, 1)}
            for name, acc in preprocessing_sweep.items()
        ]
        print_table("Ablation: preprocessing pipelines (MLP unless noted)", rows)

    def test_raw_is_already_strong(self, preprocessing_sweep, benchmark):
        benchmark(lambda: preprocessing_sweep["raw CSI (paper)"])
        # The paper's claim: raw amplitudes suffice.
        assert preprocessing_sweep["raw CSI (paper)"] > 88.0

    def test_preprocessing_adds_little(self, preprocessing_sweep, benchmark):
        benchmark(lambda: preprocessing_sweep["hampel + smoothing"])
        raw = preprocessing_sweep["raw CSI (paper)"]
        assert preprocessing_sweep["hampel + smoothing"] < raw + 6.0
        assert preprocessing_sweep["guards dropped"] < raw + 6.0

    def test_windowed_features_competitive(self, preprocessing_sweep, benchmark):
        benchmark(lambda: preprocessing_sweep["windowed mean/std"])
        # Window statistics see temporal variance explicitly, so they are
        # competitive — the paper's contribution is doing as well without
        # the latency cost of windowing.
        assert preprocessing_sweep["windowed mean/std"] > 80.0

    def test_knn_confirms_manifold_view(self, preprocessing_sweep, benchmark):
        benchmark(lambda: preprocessing_sweep["k-NN on raw CSI"])
        assert preprocessing_sweep["k-NN on raw CSI"] > 80.0
