"""Baseline — a motion threshold with no training labels.

A variance-threshold detector calibrated on one empty night (the only
"label" any deployment gets for free) is the pre-ML practitioner's
occupancy sensor.  Measured finding on this substrate: it reaches ~99 %
on the temporal folds — consistent with the preprocessing ablation where
hand-crafted windowed std hits 99.8 % — because the simulator's
motion-jitter channel is a strong cue (real captures drift more and
threshold detectors degrade across days; the paper's generalization
argument).  The structural check that *does* transfer: the statistic's
weakest occupied case is the quietly sitting person, exactly the case
the trained models cover via the body's static channel footprint.
"""

import numpy as np
import pytest

from repro.core.unsupervised import VarianceThresholdDetector

from .conftest import print_table


@pytest.fixture(scope="module")
def calibrated(bench_split):
    train = bench_split.train.data
    empty_idx = np.flatnonzero(train.occupancy == 0)
    detector = VarianceThresholdDetector(window=8)
    detector.fit_reference(train.csi[empty_idx[:2000]])
    return detector


class TestUnsupervisedBaseline:
    def test_per_fold_accuracy(self, calibrated, bench_split, benchmark):
        accuracies = {
            f.index: 100.0 * calibrated.score(f.data.csi, f.data.occupancy)
            for f in bench_split.tests
        }
        benchmark.pedantic(
            lambda: calibrated.predict(bench_split.tests[0].data.csi),
            rounds=1,
            iterations=1,
        )
        rows = [
            {"fold": idx, "threshold-detector accuracy %": round(acc, 1)}
            for idx, acc in accuracies.items()
        ]
        print_table("Unsupervised variance-threshold baseline", rows)
        # Better than chance overall, clearly below the trained models.
        assert float(np.mean(list(accuracies.values()))) > 60.0

    def test_empty_nights_nearly_perfect(self, calibrated, bench_split, benchmark):
        benchmark(lambda: None)
        for fold in bench_split.tests:
            if fold.n_occupied == 0:
                assert calibrated.score(fold.data.csi, fold.data.occupancy) > 0.9

    def test_misses_quiet_sitters(self, calibrated, bench_split, benchmark):
        benchmark(lambda: None)
        # Occupied rows where the dominant activity is sitting: the
        # motion statistic is weakest there — the trained models' edge.
        sitting_recall = []
        for fold in bench_split.tests:
            activity = fold.data.activity
            if activity is None:
                continue
            sitting = activity == 3
            if sitting.sum() < 50:
                continue
            predictions = calibrated.predict(fold.data.csi)
            sitting_recall.append(float(predictions[sitting].mean()))
        if sitting_recall:
            overall_occupied = []
            for fold in bench_split.tests:
                occ = fold.data.occupancy == 1
                if occ.sum() >= 50:
                    overall_occupied.append(
                        float(calibrated.predict(fold.data.csi)[occ].mean())
                    )
            # Sitting recall does not exceed general occupied recall.
            assert np.mean(sitting_recall) <= np.mean(overall_occupied) + 0.05