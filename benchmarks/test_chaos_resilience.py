"""Robustness benchmark — accuracy under injected faults (chaos-bench).

The paper's models are evaluated on clean test folds; a deployment never
gets that luxury.  This benchmark replays a test fold through the default
chaos-bench scenario suite (subcarrier dropout, amplitude bursts, gain
drift, link outage, clock skew + reordering, primary-model crash) and
records how far accuracy falls under each fault while the serving
invariants hold: no admitted frame goes unanswered, outages suppress
frames but never lose them, and a crashed primary is caught by the
fallback tier.
"""

import pytest

from repro.baselines.pipeline import ScaledLogistic
from repro.faults import run_chaos_bench
from repro.serve import PriorFallback

from .conftest import MAX_TRAIN_ROWS, print_table

#: Clean-replay accuracy the logistic baseline must clear on this fold.
#: Fold 0 opens with the cold-morning trap, so the logistic lands well
#: below its Table IV average here — the floor guards against collapse,
#: not against the fold being hard.
BASELINE_FLOOR = 0.75

#: Hours of the test fold replayed per scenario (keeps 7 replays quick).
REPLAY_HOURS = 6.0


@pytest.fixture(scope="module")
def report(bench_split):
    train = bench_split.train.data
    stride = max(1, len(train) // MAX_TRAIN_ROWS)
    estimator = ScaledLogistic().fit(
        train.csi[::stride], train.occupancy[::stride]
    )
    fallback = PriorFallback().fit(train.csi, train.occupancy)
    live = bench_split.tests[0].data
    t0 = float(live.timestamps_s[0])
    live = live.window(t0, t0 + REPLAY_HOURS * 3600.0)
    return run_chaos_bench(
        estimator, live, n_links=2, max_batch=32, fallback=fallback, seed=3
    )


class TestChaosResilience:
    def test_suite_and_invariants(self, report, benchmark):
        benchmark.pedantic(lambda: report, rounds=1, iterations=1)
        print_table("chaos-bench: accuracy under fault", [r.row() for r in report.results])
        assert len(report.results) == 7
        for result in report.results:
            assert result.n_unanswered == 0, f"{result.name} lost frames"
            assert result.n_answered == result.n_submitted

    def test_clean_baseline_clears_floor(self, report):
        assert report.result("baseline").accuracy >= BASELINE_FLOOR

    def test_delivery_faults_barely_move_accuracy(self, report):
        # Clock skew and reordering shuffle *when* frames arrive, not what
        # they contain, so accuracy must track the clean replay closely.
        # (Feature-corrupting faults may move accuracy either way — gain
        # drift can even flatter a miscalibrated model — so no ordering is
        # asserted for them.)
        baseline = report.result("baseline").accuracy
        assert abs(report.result("clock-chaos").accuracy - baseline) <= 0.1

    def test_outage_suppresses_but_never_loses(self, report):
        outage = report.result("link-outage")
        assert outage.n_submitted < report.result("baseline").n_submitted
        assert outage.n_unanswered == 0

    def test_crash_is_absorbed_by_fallback(self, report):
        crash = report.result("model-crash")
        assert crash.n_fallback > 0
        assert crash.n_primary_failures > 0
        assert crash.n_recovered >= 1
        # The fallback answers with the prior, so accuracy dips but the
        # scenario stays above the majority-class floor.
        assert crash.accuracy >= 0.5
