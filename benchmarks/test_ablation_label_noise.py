"""Ablation — robustness to annotation errors.

The paper's labels come from a human watching video (Section IV-A); real
annotations carry mistakes near transitions.  This ablation injects
symmetric label noise into the training fold and measures how the MLP's
held-out accuracy degrades — a reproduction-quality check that the
headline result does not hinge on perfectly clean labels.
"""

import numpy as np
import pytest

from repro.core.detector import OccupancyDetector
from repro.data.annotate import inject_label_noise

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table

NOISE_LEVELS = (0.0, 0.05, 0.15)


@pytest.fixture(scope="module")
def noise_sweep(bench_split):
    train = bench_split.train.data
    stride = max(1, len(train) // MAX_TRAIN_ROWS)
    x = train.csi[::stride]
    y_clean = train.occupancy[::stride]
    rng = np.random.default_rng(3)
    results = {}
    for level in NOISE_LEVELS:
        y = inject_label_noise(y_clean, level, rng) if level else y_clean
        detector = OccupancyDetector(64, PAPER_TRAINING)
        detector.fit(x, y)
        accuracy = 100.0 * float(
            np.mean(
                [detector.score(f.data.csi, f.data.occupancy) for f in bench_split.tests]
            )
        )
        results[level] = accuracy
    return results


class TestLabelNoiseAblation:
    def test_report(self, noise_sweep, benchmark):
        benchmark(lambda: dict(noise_sweep))
        rows = [
            {"flipped labels %": round(100 * level, 0), "fold-avg accuracy %": round(acc, 1)}
            for level, acc in noise_sweep.items()
        ]
        print_table("Ablation: training-label noise robustness", rows)

    def test_mild_noise_degrades_but_stays_useful(self, noise_sweep, benchmark):
        benchmark(lambda: noise_sweep[0.05])
        # Measured: 5 % annotator error costs roughly ten points — the
        # empty class's tight manifold makes flipped empty labels
        # genuinely confusing.  The detector must stay well above the
        # 63 % majority-class baseline.
        assert noise_sweep[0.05] > noise_sweep[0.0] - 15.0
        assert noise_sweep[0.05] > 70.0

    def test_heavy_noise_hurts_more(self, noise_sweep, benchmark):
        benchmark(lambda: noise_sweep[0.15])
        assert noise_sweep[0.15] <= noise_sweep[0.0] + 1.0
