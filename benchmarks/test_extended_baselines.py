"""Extension — two more baselines on the Table IV protocol.

The paper compares Logistic Regression, Random Forest and its MLP.  Two
obvious candidates it omits: gradient boosting (the other canonical tree
ensemble) and k-NN (the distance/manifold view).  Running them on the
same temporal folds situates the paper's comparison in a wider field —
and confirms the headline: *any* competent non-linear model solves CSI
occupancy where the linear one cannot.
"""

import pytest

from repro.core.experiment import OccupancyExperiment
from repro.core.features import FeatureSet

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table


@pytest.fixture(scope="module")
def extended(bench_split):
    experiment = OccupancyExperiment(
        bench_split, training=PAPER_TRAINING, max_train_rows=MAX_TRAIN_ROWS
    )
    return experiment.run(
        models=("logistic", "gradient_boosting", "knn"),
        feature_sets=(FeatureSet.CSI,),
    )


class TestExtendedBaselines:
    def test_report(self, extended, benchmark):
        rows = benchmark(extended.rows)
        print_table("Extended baselines on CSI (Table IV protocol)", rows)

    def test_boosting_is_a_strong_nonlinear_model(self, extended, benchmark):
        benchmark(lambda: extended.average("gradient_boosting", FeatureSet.CSI))
        boosting = extended.average("gradient_boosting", FeatureSet.CSI)
        logistic = extended.average("logistic", FeatureSet.CSI)
        assert boosting > logistic, "tree ensemble must beat the linear model"
        assert boosting > 90.0

    def test_knn_beats_linear_but_lags_ensembles(self, extended, benchmark):
        benchmark(lambda: extended.average("knn", FeatureSet.CSI))
        knn = extended.average("knn", FeatureSet.CSI)
        assert knn > 75.0
