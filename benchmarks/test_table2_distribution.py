"""Table II — distribution of simultaneous subjects' presence.

The paper's 74-hour campaign gives: empty 63.2 %, one person 18.4 %, two
10.6 %, three 6.2 %, four 1.6 % (5,362,340 samples overall, 36.8 %
occupied).  The benchmark regenerates the histogram from the simulated
campaign and asserts the *shape*: empty majority near the paper's split
and a monotonically decaying tail of simultaneous occupants.
"""

import numpy as np

from .conftest import print_table

#: The paper's Table II fractions, by simultaneous-occupant count.
PAPER_FRACTIONS = {0: 0.632, 1: 0.184, 2: 0.106, 3: 0.062, 4: 0.016}


class TestTableII:
    def test_occupant_distribution(self, bench_dataset, benchmark):
        histogram = benchmark(bench_dataset.count_histogram)
        total = sum(histogram.values())
        measured = {k: v / total for k, v in histogram.items()}

        rows = []
        for count in sorted(set(PAPER_FRACTIONS) | set(measured)):
            rows.append(
                {
                    "occupants": count,
                    "paper %": f"{100 * PAPER_FRACTIONS.get(count, 0.0):.1f}",
                    "measured %": f"{100 * measured.get(count, 0.0):.1f}",
                    "measured samples": histogram.get(count, 0),
                }
            )
        print_table("Table II (reproduced): simultaneous presence distribution", rows)

        # Shape assertions: empty majority near 63 %, decaying tail.
        assert 0.50 <= measured[0] <= 0.75, "empty fraction near the paper's 63.2%"
        tail = [measured.get(k, 0.0) for k in (1, 2, 3, 4)]
        assert all(a >= b for a, b in zip(tail, tail[1:])), "decaying occupant tail"
        occupied = 1.0 - measured[0]
        assert 0.25 <= occupied <= 0.50, "occupied share near the paper's 36.8%"

    def test_full_scale_arithmetic(self, benchmark):
        benchmark(lambda: 3_389_840 + 1_972_500)
        # Verify the paper's own totals: 3,389,840 empty + 1,972,500
        # occupied = 5,362,340 rows; 74 h * 3600 * 20 Hz = 5,328,000 (the
        # recorded campaign slightly exceeded 74 h).
        assert 3_389_840 + 986_180 + 569_480 + 332_440 + 84_400 == 5_362_340
        assert 986_180 + 569_480 + 332_440 + 84_400 == 1_972_500
        assert abs(5_362_340 - 74 * 3600 * 20) / 5_362_340 < 0.01
