"""Table V — humidity/temperature regression from CSI.

Section V-D fits ordinary least squares and the neural network to predict
temperature and humidity from CSI amplitudes alone.  Paper averages
(MAE in degC / %RH, MAPE in %):

    Linear:  MAE T/H 4.46/4.28, MAPE T/H 21.08/13.32
    Neural:  MAE T/H 2.39/4.62, MAPE T/H  9.25/14.35

The *shape* claim the paper draws from this: the non-linear model clearly
beats OLS on temperature ("the variation of temperature and humidity
inside the room is mostly reflected by CSI data in a non-linear fashion"),
and both models recover the environment well enough to call CSI
information-rich.
"""

import pytest

from repro.core.experiment import RegressionExperiment

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table

PAPER_AVERAGES = {
    ("linear", "mae_temperature"): 4.46,
    ("linear", "mae_humidity"): 4.28,
    ("linear", "mape_temperature"): 21.08,
    ("linear", "mape_humidity"): 13.32,
    ("neural", "mae_temperature"): 2.39,
    ("neural", "mae_humidity"): 4.62,
    ("neural", "mape_temperature"): 9.25,
    ("neural", "mape_humidity"): 14.35,
}


@pytest.fixture(scope="module")
def table_v(bench_split):
    experiment = RegressionExperiment(
        bench_split, training=PAPER_TRAINING, max_train_rows=MAX_TRAIN_ROWS
    )
    return experiment.run()


class TestTableV:
    def test_regenerate_table(self, table_v, benchmark):
        rows = benchmark(table_v.rows)
        print_table("Table V (reproduced): MAE/MAPE of T and H regression", rows)

        comparison = []
        for (model, key), paper_value in PAPER_AVERAGES.items():
            comparison.append(
                {
                    "model": model,
                    "metric": key,
                    "paper avg": paper_value,
                    "measured avg": round(table_v.average(model, key), 2),
                }
            )
        print_table("Table V averages: paper vs measured", comparison)

    def test_neural_beats_linear_on_temperature(self, table_v, benchmark):
        benchmark(lambda: table_v.average("neural", "mae_temperature"))
        # The paper's central Table V claim (2.39 vs 4.46 degC MAE).
        neural = table_v.average("neural", "mae_temperature")
        linear = table_v.average("linear", "mae_temperature")
        assert neural < linear, "the non-linear model must win on temperature"

    def test_errors_in_physical_ballpark(self, table_v, benchmark):
        benchmark(lambda: table_v.average("linear", "mae_temperature"))
        # MAEs of single-digit degC / %RH, like the paper's.
        assert table_v.average("linear", "mae_temperature") < 8.0
        assert table_v.average("neural", "mae_temperature") < 5.0
        assert table_v.average("linear", "mae_humidity") < 10.0
        assert table_v.average("neural", "mae_humidity") < 10.0

    def test_csi_carries_environment_information(self, table_v, benchmark):
        benchmark(lambda: table_v.average("neural", "mae_temperature"))
        # Both models must beat the trivial "predict the training mean"
        # error scale — the paper's point that CSI encodes T/H at all.
        # Indoor T spans ~5 degC, so even 1.5 degC MAE is informative.
        assert table_v.average("neural", "mae_temperature") < 2.5

    def test_humidity_mape_below_paper_upper_band(self, table_v, benchmark):
        benchmark(lambda: table_v.average("neural", "mape_humidity"))
        assert table_v.average("neural", "mape_humidity") < 25.0
