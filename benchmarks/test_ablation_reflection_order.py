"""Ablation — ray-tracer reflection order.

The substrate defaults to first-order reflections (LoS + 6 single wall
bounces).  Is that enough, or does the reproduction's behaviour change
with a richer channel?  This ablation records the same campaign at orders
0 (LoS only), 1 (default) and 2 (adds the 30 double-bounce paths) and
compares:

* channel richness (delay-spread proxy: amplitude dispersion across
  subcarriers), and
* the RF detector's temporal fold accuracy.

Expected: order 0 collapses frequency selectivity (one path -> flat
channel, occupancy signal survives only through body scattering); orders
1 and 2 agree on the *learnability* conclusion, validating the default.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.baselines.forest import RandomForestClassifier
from repro.config import CampaignConfig, RoomConfig
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign

from .conftest import print_table

BASE = CampaignConfig(duration_h=20.0, sample_rate_hz=0.15, seed=55)


def run_arm(order: int) -> tuple[float, float]:
    """(subcarrier dispersion, RF fold-avg accuracy %) at one order."""
    config = replace(BASE, room=RoomConfig(max_reflection_order=order))
    dataset = CollectionCampaign(config).run()
    data_bins = dataset.csi[:, 6:59]
    dispersion = float(np.mean(data_bins.std(axis=1) / data_bins.mean(axis=1)))

    split = make_paper_folds(dataset)
    train = split.train.data
    model = RandomForestClassifier(n_estimators=12, max_depth=6, max_samples=6000)
    model.fit(train.csi, train.occupancy)
    accuracy = 100.0 * float(
        np.mean(
            [
                np.mean(model.predict(f.data.csi) == f.data.occupancy)
                for f in split.tests
            ]
        )
    )
    return dispersion, accuracy


@pytest.fixture(scope="module")
def order_sweep():
    return {order: run_arm(order) for order in (0, 1, 2)}


class TestReflectionOrderAblation:
    def test_report(self, order_sweep, benchmark):
        benchmark(lambda: dict(order_sweep))
        rows = [
            {
                "reflection order": order,
                "subcarrier dispersion": round(dispersion, 3),
                "RF fold-avg accuracy %": round(accuracy, 1),
            }
            for order, (dispersion, accuracy) in order_sweep.items()
        ]
        print_table("Ablation: ray-tracer reflection order", rows)

    def test_multipath_creates_frequency_selectivity(self, benchmark):
        # At the bare channel level (no clutter/fading/furniture), a
        # LoS-only channel is flat across subcarriers while wall bounces
        # create the frequency selectivity CSI sensing needs.  The
        # recorded campaigns above stay dispersive even at order 0 because
        # the Rician clutter and furniture scatterers contribute too.
        from repro.channel.geometry import Room, Vec3
        from repro.channel.propagation import MultipathChannel
        from repro.channel.subcarriers import SubcarrierGrid

        grid = SubcarrierGrid(20e6, 2.412e9)
        room = Room(12, 6, 3)

        def dispersion(order: int) -> float:
            channel = MultipathChannel(
                room, grid, Vec3(5, 0.5, 1.4), Vec3(7, 0.5, 1.4),
                max_reflection_order=order,
            )
            amp = channel.amplitude()
            return float(amp.std() / amp.mean())

        flat = benchmark(lambda: dispersion(0))
        rich = dispersion(1)
        assert flat < 1e-9, "a single path has no frequency structure"
        assert rich > 0.05

    def test_order_one_and_two_agree_on_learnability(self, order_sweep, benchmark):
        benchmark(lambda: order_sweep[2][1])
        acc1, acc2 = order_sweep[1][1], order_sweep[2][1]
        assert abs(acc1 - acc2) < 10.0, "conclusions must not hinge on the order"
        assert min(acc1, acc2) > 85.0

    def test_second_order_enriches_channel(self, order_sweep, benchmark):
        benchmark(lambda: order_sweep[2][0])
        assert order_sweep[2][0] >= order_sweep[1][0] * 0.8
