"""Self-healing benchmark — does the guard stack pay for itself? (guard-bench)

The ablation the ISSUE demands: replay chaos scenarios through the
serving engine with the :mod:`repro.guard` stack off, then on, and
compare **coverage** (correct answers over all campaign frames, measured
plus repaired — a metric that charges shed load, so it cannot be gamed by
dropping frames).  The recovery machinery must earn its keep on the
outage-shaped scenarios, reconcile the frame ledger exactly, and be
byte-identical across same-seed runs.
"""

import numpy as np
import pytest

from repro.baselines.pipeline import ScaledLogistic
from repro.faults.bench import default_scenario_suite
from repro.guard import GuardPolicy, ReferenceStats, run_guard_bench
from repro.serve import PriorFallback

from .conftest import MAX_TRAIN_ROWS, print_table

#: Hours of the test fold replayed per scenario (each scenario replays
#: twice — guard off, guard on — so the window is kept modest).
REPLAY_HOURS = 6.0

#: The scenarios the guard is graded on.  ``link-outage`` and
#: ``sensor-dropout`` carry the acceptance bar; ``model-crash`` exercises
#: the breaker; ``baseline`` proves the guard is harmless when nothing
#: is wrong.
SCENARIO_NAMES = {"baseline", "link-outage", "sensor-dropout", "model-crash"}


def _fit(bench_split):
    train = bench_split.train.data
    stride = max(1, len(train) // MAX_TRAIN_ROWS)
    features = np.hstack([train.csi, train.environment])[::stride]
    labels = train.occupancy[::stride]
    estimator = ScaledLogistic().fit(features, labels)
    fallback = PriorFallback().fit(features, labels)
    return estimator, fallback, ReferenceStats.fit(features)


def _run(bench_split, hours: float = REPLAY_HOURS):
    estimator, fallback, reference = _fit(bench_split)
    live = bench_split.tests[0].data
    t0 = float(live.timestamps_s[0])
    live = live.window(t0, t0 + hours * 3600.0)
    n_csi = live.n_subcarriers
    policy = GuardPolicy(
        reference=reference,
        n_features=n_csi + 2,
        env_slice=slice(n_csi, n_csi + 2),
        seed=3,
    )
    t = live.timestamps_s
    scenarios = [
        s
        for s in default_scenario_suite(
            float(t[0]), float(t[-1]), n_csi=n_csi, include_env=True
        )
        if s.name in SCENARIO_NAMES
    ]
    return run_guard_bench(
        estimator,
        live,
        policy,
        scenarios=scenarios,
        n_links=2,
        max_batch=32,
        fallback=fallback,
        include_env=True,
        seed=3,
    )


@pytest.fixture(scope="module")
def report(bench_split):
    return _run(bench_split)


class TestGuardRecovery:
    def test_ablation_table_and_ledger(self, report, benchmark):
        benchmark.pedantic(lambda: report, rounds=1, iterations=1)
        print_table(
            "guard-bench: self-healing ablation",
            [c.row() for c in report.comparisons],
        )
        assert len(report.comparisons) == len(SCENARIO_NAMES)
        # The acceptance bar: every frame of both replays is accounted for.
        assert report.unaccounted_total == 0

    def test_recovery_does_not_lose_coverage_on_outages(self, report):
        for name in ("link-outage", "sensor-dropout"):
            comparison = report.comparison(name)
            assert comparison.coverage_on >= comparison.coverage_off, (
                f"{name}: guard on ({comparison.coverage_on:.3f}) fell below "
                f"guard off ({comparison.coverage_off:.3f})"
            )

    def test_guard_is_harmless_on_the_clean_scenario(self, report):
        baseline = report.comparison("baseline")
        assert baseline.n_quarantined == 0
        assert baseline.n_drift_trip == 0
        assert abs(baseline.coverage_gain) <= 0.01

    def test_breaker_engages_on_model_crash(self, report):
        crash = report.comparison("model-crash")
        assert crash.n_breaker_trips >= 1
        # Breaker short-circuits trade a few primary answers for not
        # hammering a dead model; coverage must stay in the same band.
        assert crash.coverage_gain >= -0.05

    def test_same_seed_replays_are_byte_identical(self, bench_split):
        first = _run(bench_split, hours=2.0)
        second = _run(bench_split, hours=2.0)
        assert [c.row() for c in first.comparisons] == [
            c.row() for c in second.comparisons
        ]
        assert first.describe() == second.describe()
