"""Figure 3 — Grad-CAM feature importance over the 66 inputs.

The paper applies Grad-CAM to the trained CSI+Env MLP and finds:

* temperature and humidity importance "close to 0, if not negative";
* the highest importance between low subcarriers (a9-a17) and high
  subcarriers (a57-a60).

The benchmark trains the C+E detector on fold 0, explains the "occupied"
decision over an occupied probe batch and asserts that shape.  It also
cross-checks Grad-CAM against plain gradient saliency (the sanity-check
property cited from [25]).
"""

import numpy as np
import pytest

from repro.core.detector import OccupancyDetector
from repro.core.features import FeatureSet, extract_features, feature_names
from repro.xai.saliency import input_gradient_saliency

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table


@pytest.fixture(scope="module")
def explained(bench_split):
    train = bench_split.train.data
    x = extract_features(train, FeatureSet.CSI_ENV)
    y = train.occupancy
    stride = max(1, len(x) // MAX_TRAIN_ROWS)
    detector = OccupancyDetector(66, PAPER_TRAINING)
    detector.fit(x[::stride], y[::stride])
    probe = x[y == 1][:512]
    result = detector.explain(probe, target_class=1)
    return detector, probe, result


class TestFigure3:
    def test_regenerate_importance_profile(self, explained, benchmark):
        detector, probe, _ = explained
        result = benchmark.pedantic(
            lambda: detector.explain(probe, target_class=1), rounds=1, iterations=1
        )

        names = feature_names(FeatureSet.CSI_ENV)
        importance = result.feature_importance
        scale = importance.max() or 1.0
        rows = []
        for i in range(0, 66, 4):
            rows.append(
                {
                    "feature": names[i],
                    "importance": round(float(importance[i]), 3),
                    "bar": "#" * int(20 * importance[i] / scale),
                }
            )
        for i in (64, 65):  # always show e and h
            rows.append(
                {
                    "feature": names[i],
                    "importance": round(float(importance[i]), 3),
                    "bar": "#" * int(20 * importance[i] / scale),
                }
            )
        print_table("Figure 3 (reproduced): Grad-CAM importance", rows)

    def test_top_features_are_csi_subcarriers(self, explained, benchmark):
        benchmark(lambda: np.argsort(explained[2].feature_importance))
        _, _, result = explained
        top5 = np.argsort(result.feature_importance)[::-1][:5]
        assert all(i < 64 for i in top5), f"top-5 must be CSI, got {top5}"

    def test_environment_below_csi_peak(self, explained, benchmark):
        benchmark(lambda: explained[2].feature_importance[:64].max())
        # The paper: T/H importance near zero while CSI peaks dominate.
        _, _, result = explained
        csi_peak = result.feature_importance[:64].max()
        assert result.feature_importance[64] < 0.8 * csi_peak
        assert result.feature_importance[65] < 0.8 * csi_peak

    def test_guard_bins_zero_importance(self, explained, benchmark):
        benchmark(lambda: explained[2].feature_importance[0])
        # Guard subcarriers carry a constant leakage floor: the scaler
        # zeroes them, so no importance can flow through.
        _, _, result = explained
        for guard in (0, 1, 32, 63):
            assert result.feature_importance[guard] == pytest.approx(0.0, abs=1e-9)

    def test_sanity_check_against_saliency(self, explained, benchmark):
        # Grad-CAM passes the "sanity check": its top CSI band overlaps
        # with plain input-gradient saliency's.
        detector, probe, result = explained
        saliency = benchmark.pedantic(
            lambda: input_gradient_saliency(
                detector.model, detector.scaler.transform(probe), target_class=1
            ),
            rounds=1,
            iterations=1,
        )
        gradcam_top10 = set(np.argsort(result.feature_importance)[::-1][:10])
        saliency_top10 = set(np.argsort(saliency)[::-1][:10])
        assert len(gradcam_top10 & saliency_top10) >= 3
