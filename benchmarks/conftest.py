"""Shared fixtures for the benchmark suite.

All table/figure benchmarks run on one *benchmark-scale* campaign: the
paper's full 74-hour structure at a reduced 0.1 Hz sampling rate
(26,640 rows instead of 5.3M).  The campaign is deterministic in its seed
and cached on disk, so the first benchmark run pays ~40 s of generation
and later runs start instantly.

The reduced rate changes none of the paper's qualitative structure: the
folds still cover three empty nights, the cold-morning trap and the busy
afternoon, and every model sees the same physics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CampaignConfig, TrainingConfig
from repro.data.folds import FoldSplit, make_paper_folds
from repro.data.synthetic import generate_benchmark_dataset
from repro.data.dataset import OccupancyDataset

#: The benchmark campaign: full 74 h structure, laptop-scale rate.
BENCH_CONFIG = CampaignConfig(duration_h=74.0, sample_rate_hz=0.1, seed=2022)

#: Training-row cap for model fits (uniform stride over the train fold).
MAX_TRAIN_ROWS = 12_000

#: The paper's training hyper-parameters (Section V-B).
PAPER_TRAINING = TrainingConfig()


def print_table(title: str, rows: list[dict[str, object]]) -> None:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return
    columns = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    print(f"\n=== {title} ===")
    print("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))


@pytest.fixture(scope="session")
def bench_dataset() -> OccupancyDataset:
    """The cached benchmark campaign."""
    return generate_benchmark_dataset(BENCH_CONFIG, progress=True)


@pytest.fixture(scope="session")
def bench_split(bench_dataset) -> FoldSplit:
    """The paper's 70/30 fold split of the benchmark campaign."""
    return make_paper_folds(bench_dataset)


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(0)
