"""Section IV-B / VI — model footprint and inference latency.

The paper reports: ~78 k trainable parameters (77,881 with typos; the
exact architecture gives 74,369 for CSI-only input), a model size of
15.18 KiB, 23.04 KiB RAM, 10.781 ms inference per sample, deployable on a
Nucleo-L432KC.  The benchmark reproduces the resource accounting through
the int8 quantization + footprint + cycle-model chain and measures the
host-side inference latency.
"""

import pytest

from repro.core.model_zoo import build_paper_mlp, paper_layer_parameter_counts
from repro.deploy.footprint import NUCLEO_L432KC, estimate_footprint
from repro.deploy.quantize import quantize_model
from repro.deploy.timing import cortex_m4_latency_ms, measure_inference_ms

from .conftest import print_table


@pytest.fixture(scope="module")
def paper_model():
    return build_paper_mlp(66)  # the full CSI+Env input of Section IV-B


@pytest.fixture(scope="module")
def quantized(paper_model):
    return quantize_model(paper_model)


class TestFootprint:
    def test_parameter_accounting(self, paper_model, benchmark):
        counts = benchmark(lambda: paper_layer_parameter_counts(66))
        rows = [
            {"layer": i + 1, "paper": paper, "measured": measured}
            for i, (paper, measured) in enumerate(
                zip([8320, 33024, 32846, 129], paper_layer_parameter_counts(64))
            )
        ]
        print_table("Section IV-B: per-layer parameter counts (CSI input)", rows)
        assert paper_model.n_parameters() == sum(counts)
        # Paper's first/second/fourth layer counts match the 64-input net
        # exactly; the third (32,846) is a typo for 32,896 — see DESIGN.md.
        measured64 = paper_layer_parameter_counts(64)
        assert measured64[0] == 8320
        assert measured64[1] == 33024
        assert measured64[3] == 129

    def test_deployability_on_l432kc(self, quantized, benchmark):
        report = benchmark(lambda: estimate_footprint(quantized, NUCLEO_L432KC))
        m4_ms = cortex_m4_latency_ms(quantized)
        rows = [
            {"quantity": "model size (KiB)", "paper": 15.18,
             "measured (int8)": round(report.model_flash_kib, 2)},
            {"quantity": "RAM (KiB)", "paper": 23.04,
             "measured (int8)": round(report.model_ram_kib, 2)},
            {"quantity": "inference (ms)", "paper": 10.781,
             "measured (int8)": round(m4_ms, 3)},
        ]
        print_table("Deployment accounting: paper vs measured", rows)
        assert report.fits, report.describe()
        # Order-of-magnitude agreement with the paper's numbers.
        assert 10.0 < report.model_flash_kib < 200.0
        assert report.model_ram_kib < 23.04 * 4
        assert 0.1 < m4_ms < 50.0

    def test_host_inference_latency(self, paper_model, benchmark):
        latency_ms = benchmark.pedantic(
            lambda: measure_inference_ms(paper_model, 66, n_repeats=50, warmup=5),
            rounds=1,
            iterations=1,
        )
        # The paper measures 10.781 ms on their setup; the numpy host
        # implementation of the same network should be no slower than
        # ~10x that.
        assert latency_ms < 100.0

    def test_quantization_preserves_size_ratio(self, paper_model, quantized, benchmark):
        benchmark(lambda: estimate_footprint(quantized).model_flash_bytes)
        float_report = estimate_footprint(paper_model)
        int8_report = estimate_footprint(quantized)
        assert int8_report.model_flash_bytes < float_report.model_flash_bytes / 3

    def test_generated_firmware_matches_python(self, quantized, benchmark, tmp_path):
        # The shipped artifact is the tested artifact: generate the C
        # inference program, compile it with the host compiler, run it and
        # compare against the Python quantized model.
        from repro.deploy.c_runtime import host_compiler, validate_against_python

        if host_compiler() is None:
            pytest.skip("no host C compiler")
        deviation = benchmark.pedantic(
            lambda: validate_against_python(quantized, tmp_path, n_probes=16),
            rounds=1,
            iterations=1,
        )
        print_table(
            "Firmware validation (C vs Python quantized model)",
            [{"quantity": "max |output delta|", "value": f"{deviation:.2e}"}],
        )
        assert deviation < 1e-3
