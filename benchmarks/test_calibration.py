"""Evaluation depth — is the detector's probability trustworthy?

Table IV reports accuracy, but a building controller acts on
``P(occupied)`` thresholds (never switch lights off unless the detector is
confident the room is empty).  This benchmark measures the calibration of
the CSI MLP's probabilities on the held-out folds: expected calibration
error, Brier score, and the bootstrap confidence interval of the headline
accuracy.
"""

import numpy as np
import pytest

from repro.core.detector import OccupancyDetector
from repro.core.features import FeatureSet, extract_features
from repro.metrics.bootstrap import bootstrap_ci
from repro.metrics.calibration import (
    brier_score,
    expected_calibration_error,
    reliability_curve,
)
from repro.metrics.classification import accuracy

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table


@pytest.fixture(scope="module")
def evaluated(bench_split):
    train = bench_split.train.data
    x_train = extract_features(train, FeatureSet.CSI)
    stride = max(1, len(x_train) // MAX_TRAIN_ROWS)
    detector = OccupancyDetector(64, PAPER_TRAINING)
    detector.fit(x_train[::stride], train.occupancy[::stride])

    x_test = np.vstack(
        [extract_features(f.data, FeatureSet.CSI) for f in bench_split.tests]
    )
    y_test = np.concatenate([f.data.occupancy for f in bench_split.tests])
    proba = detector.predict_proba(x_test)
    return y_test, proba


class TestCalibration:
    def test_report(self, evaluated, benchmark):
        y, proba = evaluated
        ece = benchmark.pedantic(
            lambda: expected_calibration_error(y, proba), rounds=1, iterations=1
        )
        brier = brier_score(y, proba)
        predictions = (proba >= 0.5).astype(int)
        estimate, low, high = bootstrap_ci(
            accuracy, y, predictions, rng=np.random.default_rng(0)
        )
        print_table(
            "Probability quality of the CSI MLP on the test folds",
            [
                {"metric": "accuracy", "value": f"{100 * estimate:.1f} % "
                                                f"[{100 * low:.1f}, {100 * high:.1f}]"},
                {"metric": "ECE", "value": round(ece, 3)},
                {"metric": "Brier score", "value": round(brier, 3)},
            ],
        )
        predicted, empirical, counts = reliability_curve(y, proba)
        rows = [
            {
                "bin mean p": round(float(p), 2),
                "empirical": round(float(e), 2),
                "count": int(c),
            }
            for p, e, c in zip(predicted, empirical, counts)
        ]
        print_table("Reliability curve", rows)

    def test_probability_better_than_coin_flip(self, evaluated, benchmark):
        y, proba = evaluated
        brier = benchmark(lambda: brier_score(y, proba))
        assert brier < 0.25, "a coin flip scores 0.25"

    def test_reasonably_calibrated(self, evaluated, benchmark):
        y, proba = evaluated
        ece = benchmark.pedantic(
            lambda: expected_calibration_error(y, proba), rounds=1, iterations=1
        )
        # Deep nets are usually overconfident; we only require the ECE to
        # stay moderate so a thresholded controller is meaningful.
        assert ece < 0.15

    def test_bootstrap_interval_tight(self, evaluated, benchmark):
        y, proba = evaluated
        predictions = (proba >= 0.5).astype(int)
        estimate, low, high = benchmark.pedantic(
            lambda: bootstrap_ci(
                accuracy, y, predictions, rng=np.random.default_rng(1)
            ),
            rounds=1,
            iterations=1,
        )
        # ~8000 test rows: the accuracy CI should be within a few points.
        assert high - low < 0.05
        assert low <= estimate <= high
