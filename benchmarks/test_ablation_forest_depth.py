"""Ablation — random-forest depth vs. temporal generalization.

DESIGN.md documents a non-obvious effect discovered during calibration:
on the paper's *temporal* evaluation protocol, deep forests overfit the
campaign-specific clutter state of the training days and lose accuracy on
the held-out day, while shallow trees generalise.  (On a random split the
ordering reverses — the usual bias/variance story.)  This benchmark
regenerates that sweep; it is why the Table IV forest uses ``max_depth=6``.
"""

import numpy as np
import pytest

from repro.baselines.forest import RandomForestClassifier

from .conftest import print_table

DEPTHS = (3, 6, 12, 20)


@pytest.fixture(scope="module")
def depth_sweep(bench_split):
    train = bench_split.train.data
    x, y = train.csi[::2], train.occupancy[::2]
    results = {}
    for depth in DEPTHS:
        model = RandomForestClassifier(
            n_estimators=15, max_depth=depth, max_samples=10_000, seed=0
        ).fit(x, y)
        temporal = [
            100.0 * float(np.mean(model.predict(f.data.csi) == f.data.occupancy))
            for f in bench_split.tests
        ]
        results[depth] = float(np.mean(temporal))
    return results


class TestForestDepthAblation:
    def test_report(self, depth_sweep, benchmark):
        benchmark(lambda: dict(depth_sweep))
        rows = [
            {"max_depth": depth, "temporal fold-avg accuracy %": round(acc, 1)}
            for depth, acc in depth_sweep.items()
        ]
        print_table("Ablation: forest depth vs temporal generalization", rows)

    def test_shallow_generalizes_at_least_as_well_as_deep(self, depth_sweep, benchmark):
        benchmark(lambda: depth_sweep[6])
        assert depth_sweep[6] >= depth_sweep[20] - 1.0

    def test_chosen_depth_in_strong_band(self, depth_sweep, benchmark):
        benchmark(lambda: depth_sweep[6])
        assert depth_sweep[6] > 90.0
