"""Table IV — occupancy detection accuracy over the 5 test folds.

The paper's central result: Logistic Regression / Random Forest / MLP
trained once on fold 0 and evaluated on five temporally disjoint folds,
for three feature subsets (CSI, Env, CSI+Env).  Paper averages:

    Logistic:  CSI 81, Env 70, C+E 82
    RF:        CSI 97, Env 95, C+E 97
    MLP:       CSI 97, Env 90, C+E 91

The benchmark regenerates the full grid and asserts the *shape*:

* the linear model is far behind the non-linear models on CSI;
* RF and MLP reach >=90 % average on CSI (the paper's ~97 %);
* Env-only collapses on the cold-morning trap fold while CSI-driven
  non-linear models stay high there;
* adding Env to CSI does not improve the non-linear models (redundancy,
  Section V-D's conclusion).
"""

import numpy as np
import pytest

from repro.core.experiment import OccupancyExperiment
from repro.core.features import FeatureSet

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table

#: Paper Table IV averages, accuracies in %.
PAPER_AVERAGES = {
    ("logistic", "CSI"): 81, ("logistic", "Env"): 70, ("logistic", "C+E"): 82,
    ("random_forest", "CSI"): 97, ("random_forest", "Env"): 95, ("random_forest", "C+E"): 97,
    ("mlp", "CSI"): 97, ("mlp", "Env"): 90, ("mlp", "C+E"): 91,
}


@pytest.fixture(scope="module")
def table_iv(bench_split):
    experiment = OccupancyExperiment(
        bench_split, training=PAPER_TRAINING, max_train_rows=MAX_TRAIN_ROWS
    )
    return experiment.run(verbose=True)


class TestTableIV:
    def test_regenerate_table(self, table_iv, benchmark):
        rows = benchmark(table_iv.rows)
        print_table("Table IV (reproduced): occupancy accuracy (%)", rows)

        comparison = []
        for (model, features), paper_value in PAPER_AVERAGES.items():
            fs = next(f for f in FeatureSet if f.label == features)
            comparison.append(
                {
                    "model": model,
                    "features": features,
                    "paper avg": paper_value,
                    "measured avg": round(table_iv.average(model, fs), 1),
                }
            )
        print_table("Table IV averages: paper vs measured", comparison)

    def test_linear_model_trails_on_csi(self, table_iv, benchmark):
        benchmark(lambda: table_iv.average("logistic", FeatureSet.CSI))
        logistic = table_iv.average("logistic", FeatureSet.CSI)
        mlp = table_iv.average("mlp", FeatureSet.CSI)
        forest = table_iv.average("random_forest", FeatureSet.CSI)
        assert mlp - logistic > 8.0, "MLP should beat logistic by a clear margin on CSI"
        assert forest - logistic > 8.0, "RF should beat logistic by a clear margin on CSI"

    def test_nonlinear_models_reach_paper_band_on_csi(self, table_iv, benchmark):
        benchmark(lambda: table_iv.average("mlp", FeatureSet.CSI))
        assert table_iv.average("mlp", FeatureSet.CSI) >= 90.0
        assert table_iv.average("random_forest", FeatureSet.CSI) >= 90.0

    def test_logistic_in_paper_band(self, table_iv, benchmark):
        benchmark(lambda: table_iv.average("logistic", FeatureSet.CSI))
        avg = table_iv.average("logistic", FeatureSet.CSI)
        assert 65.0 <= avg <= 95.0, "paper reports 81 for logistic on CSI"

    def test_env_only_collapses_on_trap_fold(self, table_iv, bench_split, benchmark):
        benchmark(lambda: table_iv.accuracies["mlp"]["Env"])
        # Identify the mixed morning fold and check the Env-only MLP drops
        # well below its night-fold performance (paper fold 4: 54-75 %).
        mixed = [
            f.index
            for f in bench_split.tests
            if f.n_occupied > 0 and f.n_empty > 0.2 * len(f.data)
        ]
        assert mixed
        env_folds = table_iv.accuracies["mlp"]["Env"]
        trap_accuracy = min(env_folds[i - 1] for i in mixed)
        assert trap_accuracy < 85.0, "Env-only should fail on the cold-morning fold"
        # While the CSI MLP stays high on the same fold.
        csi_folds = table_iv.accuracies["mlp"]["CSI"]
        csi_on_trap = min(csi_folds[i - 1] for i in mixed)
        assert csi_on_trap > trap_accuracy + 10.0

    def test_env_redundant_for_nonlinear_models(self, table_iv, benchmark):
        benchmark(lambda: table_iv.average("mlp", FeatureSet.CSI_ENV))
        # Section V-D: "the latter represents a redundant feature".
        csi = table_iv.average("mlp", FeatureSet.CSI)
        both = table_iv.average("mlp", FeatureSet.CSI_ENV)
        assert abs(both - csi) < 6.0, "C+E should not dramatically beat CSI"

    def test_empty_night_folds_near_perfect(self, table_iv, bench_split, benchmark):
        benchmark(lambda: table_iv.accuracies["mlp"]["CSI"])
        # Paper folds 2-3: every model scores 99-100 on all-empty nights
        # with CSI-driven non-linear models.
        empty_folds = [f.index for f in bench_split.tests if f.n_occupied == 0]
        for i in empty_folds:
            assert table_iv.accuracies["mlp"]["CSI"][i - 1] > 95.0
