"""Extension — does a second WiFi sniffer help?

The paper uses one AP->RP1 link.  Deploying a second sniffer across the
room adds spatial diversity: a body that barely perturbs one link's path
set sits in the other's.  This benchmark records the same 30-hour world
once with one link and once with two (same behavioural seed) and compares
detection and *counting* — counting is where diversity should pay, since
two bodies that alias on one link separate on two.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.config import CampaignConfig, RoomConfig, TrainingConfig
from repro.core.counter import OccupantCounter
from repro.core.detector import OccupancyDetector
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign

from .conftest import print_table

BASE = CampaignConfig(duration_h=30.0, sample_rate_hz=0.15, seed=31)
TRAINING = TrainingConfig(epochs=8)


def run_arm(extra_rx: tuple) -> dict[str, float]:
    config = replace(BASE, room=RoomConfig(extra_rx_positions=extra_rx))
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data
    width = train.csi.shape[1]

    detector = OccupancyDetector(width, TRAINING).fit(train.csi, train.occupancy)
    detection = 100.0 * float(
        np.mean([detector.score(f.data.csi, f.data.occupancy) for f in split.tests])
    )

    counter = OccupantCounter(width, max_count=4, config=TRAINING)
    counter.fit(train.csi, train.occupant_count)
    count_mae = float(
        np.mean(
            [
                counter.score(f.data.csi, f.data.occupant_count)["count_mae"]
                for f in split.tests
            ]
        )
    )
    return {"detection %": detection, "count MAE": count_mae}


@pytest.fixture(scope="module")
def link_sweep():
    return {
        "1 link (paper)": run_arm(()),
        "2 links": run_arm(((10.0, 5.0, 1.4),)),
    }


class TestMultiLinkExtension:
    def test_report(self, link_sweep, benchmark):
        benchmark(lambda: dict(link_sweep))
        rows = [
            {
                "setup": name,
                "detection %": round(metrics["detection %"], 1),
                "count MAE": round(metrics["count MAE"], 3),
            }
            for name, metrics in link_sweep.items()
        ]
        print_table("Extension: spatial diversity from a second sniffer", rows)

    def test_single_link_already_detects(self, link_sweep, benchmark):
        benchmark(lambda: link_sweep["1 link (paper)"]["detection %"])
        assert link_sweep["1 link (paper)"]["detection %"] > 85.0

    def test_second_link_does_not_hurt_detection(self, link_sweep, benchmark):
        benchmark(lambda: link_sweep["2 links"]["detection %"])
        assert (
            link_sweep["2 links"]["detection %"]
            >= link_sweep["1 link (paper)"]["detection %"] - 3.0
        )

    def test_second_link_helps_counting(self, link_sweep, benchmark):
        benchmark(lambda: link_sweep["2 links"]["count MAE"])
        assert (
            link_sweep["2 links"]["count MAE"]
            <= link_sweep["1 link (paper)"]["count MAE"] + 0.05
        )
