"""Extensions — occupant counting and activity recognition.

The paper's Section VI proposes activity recognition as future work, and
its related work ([2], [3], [12], [13]) counts occupants.  These
benchmarks evaluate both extension heads on the benchmark campaign with
the paper's temporal protocol (train fold 0, evaluate folds 1-5, never
retrain) and record which activities are reliably detectable — the
paper's explicit open question.
"""

import numpy as np
import pytest

from repro.core.activity import ACTIVITY_LABELS, ActivityRecognizer
from repro.core.counter import OccupantCounter

from .conftest import MAX_TRAIN_ROWS, PAPER_TRAINING, print_table


@pytest.fixture(scope="module")
def counter(bench_split):
    train = bench_split.train.data
    stride = max(1, len(train) // MAX_TRAIN_ROWS)
    model = OccupantCounter(64, max_count=4, config=PAPER_TRAINING)
    model.fit(train.csi[::stride], train.occupant_count[::stride])
    return model


@pytest.fixture(scope="module")
def recognizer(bench_split):
    train = bench_split.train.data
    stride = max(1, len(train) // MAX_TRAIN_ROWS)
    model = ActivityRecognizer(64, PAPER_TRAINING)
    model.fit(train.csi[::stride], train.activity[::stride])
    return model


class TestOccupantCountingExtension:
    def test_per_fold_counting(self, counter, bench_split, benchmark):
        rows = []
        for fold in bench_split.tests:
            scores = counter.score(fold.data.csi, fold.data.occupant_count)
            rows.append(
                {
                    "fold": fold.index,
                    "exact %": round(100 * scores["accuracy"], 1),
                    "within-one %": round(100 * scores["within_one"], 1),
                    "count MAE": round(scores["count_mae"], 2),
                }
            )
        benchmark(lambda: counter.score(
            bench_split.tests[0].data.csi, bench_split.tests[0].data.occupant_count
        ))
        print_table("Extension: occupant counting over the test folds", rows)

        within_one = np.mean([r["within-one %"] for r in rows])
        assert within_one > 85.0, "count should rarely be off by 2+ people"

    def test_counting_implies_detection(self, counter, bench_split, benchmark):
        benchmark(lambda: None)
        accs = [
            counter.occupancy_score(f.data.csi, f.data.occupancy)
            for f in bench_split.tests
        ]
        assert float(np.mean(accs)) > 0.8


class TestActivityRecognitionExtension:
    def test_reliability_report(self, recognizer, bench_split, benchmark):
        x = np.vstack([f.data.csi for f in bench_split.tests])
        activity = np.concatenate([f.data.activity for f in bench_split.tests])
        report = benchmark.pedantic(
            lambda: recognizer.reliability_report(x, activity), rounds=1, iterations=1
        )
        rows = [
            {"activity": label, "recall %": round(100 * recall, 1)}
            for label, recall in report.items()
        ]
        print_table("Extension: which activities can be reliably detected", rows)

        # The paper's open question, answered: empty and walking are
        # reliably detectable; a motionless seated/standing body is the
        # hard case.
        assert report["empty"] > 0.9
        if "walking" in report:
            assert report["walking"] > 0.5

    def test_simultaneous_occupancy_detection(self, recognizer, bench_split, benchmark):
        x = np.vstack([f.data.csi for f in bench_split.tests])
        occupancy = np.concatenate([f.data.occupancy for f in bench_split.tests])
        accuracy = benchmark.pedantic(
            lambda: recognizer.occupancy_score(x, occupancy), rounds=1, iterations=1
        )
        # The joint model solves the paper's original task on the side.
        assert accuracy > 0.85

    def test_four_way_accuracy_above_majority(self, recognizer, bench_split, benchmark):
        benchmark(lambda: None)
        x = np.vstack([f.data.csi for f in bench_split.tests])
        activity = np.concatenate([f.data.activity for f in bench_split.tests])
        majority = np.bincount(activity, minlength=4).max() / activity.size
        assert recognizer.score(x, activity) > majority
