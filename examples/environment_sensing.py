#!/usr/bin/env python3
"""Environment sensing from WiFi: estimate temperature and humidity.

Reproduces Section V-D's complementary application: the same CSI stream
that detects occupancy also encodes the room climate, so one WiFi sniffer
can replace a thermometer/hygrometer pair — but only a *non-linear* model
can decode it well.  The script fits ordinary least squares and the neural
regressor on CSI amplitudes and compares their MAE/MAPE per fold, like
Table V.

Usage::

    python examples/environment_sensing.py
"""

import numpy as np

from repro.baselines.linear import LinearRegression
from repro.config import CampaignConfig, TrainingConfig
from repro.core.regressor import EnvironmentRegressor
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign
from repro.metrics.regression import mae, mape


def main() -> None:
    config = CampaignConfig(duration_h=30.0, sample_rate_hz=0.25, seed=3)
    print(f"Simulating a {config.duration_h:.0f} h campaign...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)

    train = split.train.data
    x_train = train.csi
    y_train = np.column_stack([train.temperature_c, train.humidity_rh])

    print(f"Fitting OLS and the neural regressor on {len(train)} rows of CSI...")
    linear = LinearRegression().fit(x_train, y_train)
    neural = EnvironmentRegressor(64, TrainingConfig(epochs=10)).fit(x_train, y_train)

    print("\nPer-fold errors (MAE in degC / %RH, MAPE in %):")
    header = f"{'fold':>4}  {'linear MAE T/H':>16}  {'neural MAE T/H':>16}"
    print(header)
    averages = {"linear": [], "neural": []}
    for fold in split.tests:
        y_true = np.column_stack([fold.data.temperature_c, fold.data.humidity_rh])
        row = [f"{fold.index:>4}"]
        for name, model in (("linear", linear), ("neural", neural)):
            pred = model.predict(fold.data.csi)
            mae_t = mae(y_true[:, 0], pred[:, 0])
            mae_h = mae(y_true[:, 1], pred[:, 1])
            averages[name].append((mae_t, mae_h))
            row.append(f"{mae_t:7.2f}/{mae_h:5.2f}  ")
        print("  ".join(row))

    print("\nAverages:")
    for name, values in averages.items():
        t_avg = np.mean([t for t, _ in values])
        h_avg = np.mean([h for _, h in values])
        print(f"  {name:>7}: T MAE {t_avg:.2f} degC, H MAE {h_avg:.2f} %RH")

    lin_t = np.mean([t for t, _ in averages["linear"]])
    nn_t = np.mean([t for t, _ in averages["neural"]])
    print(f"\nThe neural model recovers temperature {lin_t / nn_t:.1f}x better "
          f"than OLS — the CSI encodes the environment non-linearly "
          f"(the paper's Section V-D conclusion).")

    # Show a live reading, as a 'virtual thermometer' application would.
    last = split.tests[-1].data
    reading = neural.predict(last.csi[-1:])
    print(f"\nVirtual sensor reading at campaign end: "
          f"{reading[0, 0]:.1f} degC, {reading[0, 1]:.0f} %RH "
          f"(Thingy ground truth: {last.temperature_c[-1]:.1f} degC, "
          f"{last.humidity_rh[-1]:.0f} %RH)")


if __name__ == "__main__":
    main()
