#!/usr/bin/env python3
"""A traced serving run: frame spans, structured events, one report.

Counters say *how many* frames a service answered; they cannot say
*which* frame took the slow path, *when* the breaker opened, or *why* a
gap fill appeared.  This example attaches a live
:class:`~repro.obs.Observer` to the micro-batched serving engine and
walks the full observability surface:

* every admitted frame gets a **trace** — wall-clock milliseconds per
  pipeline stage (validate → enqueue → queue_wait → supervise →
  predict → emit) plus a terminal outcome;
* every notable incident lands in the **structured event log** —
  stream-time-stamped, so a same-seed replay dumps byte-identical JSONL;
* the observer's **frame ledger** proves every submitted frame is
  accounted for (answered, rejected, quarantined, dropped, or pending);
* the whole state renders as the same report the ``obs-report`` CLI
  shows, plus a Prometheus text exposition of the metrics registry.

Engines default to :data:`~repro.obs.NULL_OBSERVER`, a no-op whose
``enabled`` flag gates every instrumentation site — tracing costs
nothing unless you opt in, as this example does.

Usage::

    python examples/traced_service.py
"""

import numpy as np

from repro.baselines.pipeline import ScaledLogistic
from repro.config import CampaignConfig
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign
from repro.obs import Observer, render_run, build_dump
from repro.serve.config import ServeConfig
from repro.serve.engine import InferenceEngine
from repro.serve.metrics import MetricsRegistry


def main() -> None:
    config = CampaignConfig(duration_h=2.0, sample_rate_hz=0.2, seed=11)
    print(f"Simulating a {config.duration_h:.0f} h campaign...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data
    print(f"Training on fold 0 ({len(train)} rows)...")
    estimator = ScaledLogistic().fit(train.csi, train.occupancy)

    # One live observer per engine: events + traces + the frame ledger.
    observer = Observer(label="traced-demo")
    registry = MetricsRegistry()
    engine = InferenceEngine(
        estimator,
        ServeConfig(
            max_batch=16,
            max_latency_ms=None,
            registry=registry,
            observer=observer,
        ),
    )

    t = dataset.timestamps_s
    rng = np.random.default_rng(11)
    n_answered = 0
    for i in range(len(dataset)):
        row = dataset.csi[i].copy()
        if rng.random() < 0.005:  # an occasional corrupt frame
            row[0] = np.nan
        n_answered += len(engine.submit("link-0", float(t[i]), row))
    n_answered += len(engine.flush())

    # ------------------------------------------------------- the verdict
    ledger = observer.ledger()
    print(f"\nanswered {n_answered} frames; obs ledger: {ledger}")
    assert ledger["unaccounted"] == 0, "every frame must be accounted for"

    trace = observer.tracer.trace(0)  # the first frame's span breakdown
    print(f"frame 0 spent {trace.total_ms:.3f} ms across "
          f"{list(trace.stages)} -> {trace.outcome}")
    print(f"event log: {observer.events.total} events "
          f"{observer.events.counts_by_kind()}")

    # The same rendering the CLI's `obs-report` subcommand prints.
    run = build_dump(observer)["runs"][0]
    print()
    print(render_run(run, events_tail=5))


if __name__ == "__main__":
    main()
