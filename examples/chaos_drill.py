#!/usr/bin/env python3
"""Chaos drill: fault-injected serving plus a kill-and-resume training run.

The paper's pitch is occupancy detection in *unconstrained* environments
(Section I), so this example manufactures the unconstrained part on
purpose and checks the pipeline survives it, twice over:

1. **Training resilience.**  A small MLP is trained with a
   :class:`repro.nn.CheckpointCallback` writing atomic last-k + best-val
   checkpoints.  The run is "killed" halfway (we simply stop calling
   ``fit``), then resumed with ``Trainer.fit(resume_from=...)`` — and
   because the checkpoint carries the shuffle-RNG state, the resumed run
   retraces the uninterrupted one exactly.

2. **Serving resilience.**  A fitted baseline replays a simulated
   campaign through the :func:`repro.faults.run_chaos_bench` scenario
   suite: subcarrier dropout, amplitude bursts, gain drift, a link going
   dark, clock skew plus frame reordering, and the primary model crashing
   mid-replay with a prior fallback catching the batches.  The report
   shows per-scenario accuracy and proves no admitted frame went
   unanswered.

Usage::

    python examples/chaos_drill.py
"""

import numpy as np

from repro.baselines.pipeline import ScaledLogistic
from repro.config import CampaignConfig
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign
from repro.faults import run_chaos_bench
from repro.nn import (
    AdamW,
    CheckpointCallback,
    Linear,
    ReLU,
    Sequential,
    Trainer,
    bce_with_logits_loss,
)
from repro.serve import PriorFallback

CHECKPOINT_DIR = "chaos-drill-checkpoints"


def make_trainer(n_inputs: int) -> Trainer:
    rng = np.random.default_rng(0)
    model = Sequential(Linear(n_inputs, 32, rng=rng), ReLU(), Linear(32, 1, rng=rng))
    optimizer = AdamW(model.parameters(), lr=1e-3, weight_decay=1e-2)
    return Trainer(
        model, optimizer, bce_with_logits_loss,
        batch_size=64, rng=np.random.default_rng(7),
    )


def main() -> None:
    print("Simulating a 4 h CSI + environment campaign...")
    dataset = CollectionCampaign(
        CampaignConfig(duration_h=4.0, sample_rate_hz=0.2, seed=23)
    ).run()
    split = make_paper_folds(dataset, train_fraction=0.5, n_test_folds=1)
    train, live = split.train.data, split.tests[0].data

    # ------------------------------------------------- 1. kill and resume
    print("\n[1/2] Kill-and-resume training drill")
    x, y = train.csi, train.occupancy.astype(float)

    survivor = make_trainer(dataset.n_subcarriers)
    callback = CheckpointCallback(survivor, CHECKPOINT_DIR, keep_last=2)
    print("  training 4 of 8 epochs, then simulating a power cut...")
    survivor.fit(x, y, epochs=4, callbacks=[callback])
    print(f"  last checkpoint on disk: {callback.latest}")

    resumed = make_trainer(dataset.n_subcarriers)  # fresh process, fresh init
    history = resumed.fit(x, y, epochs=8, resume_from=callback.latest)

    reference = make_trainer(dataset.n_subcarriers)
    full = reference.fit(x, y, epochs=8)
    drift = max(
        abs(a - b) for a, b in zip(history.train_loss, full.train_loss)
    )
    print(f"  resumed vs uninterrupted loss history: max drift {drift:.2e}")
    print(f"  (checkpoints kept under ./{CHECKPOINT_DIR}/)")

    # --------------------------------------------------- 2. chaos serving
    print("\n[2/2] Chaos-bench serving drill")
    print(f"  fitting the baseline on {len(train)} rows...")
    estimator = ScaledLogistic().fit(train.csi, train.occupancy)
    fallback = PriorFallback().fit(train.csi, train.occupancy)

    print(f"  replaying {len(live)} live frames through every scenario...\n")
    report = run_chaos_bench(
        estimator, live, n_links=2, max_batch=32, fallback=fallback, seed=1
    )
    print(report.describe())


if __name__ == "__main__":
    main()
