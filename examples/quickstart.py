#!/usr/bin/env python3
"""Quickstart: simulate a campaign, train the paper's MLP, detect occupancy.

Runs in under a minute on a laptop.  It walks the full pipeline of the
paper (DATE 2023, "Towards Deep Learning-based Occupancy Detection Via
WiFi Sensing in Unconstrained Environments"):

1. simulate a short data-collection campaign in the 12x6x3 m office;
2. split it temporally into the paper's train fold + 5 test folds;
3. train the Section IV-B MLP on CSI amplitudes (never retrained);
4. evaluate accuracy on every held-out fold.

Usage::

    python examples/quickstart.py
"""

from repro.config import CampaignConfig, TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.core.features import FeatureSet, extract_features
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign


def main() -> None:
    # A scaled-down campaign: the paper's 74 h structure compressed to two
    # days at 0.15 Hz (~26,000 rows, ~20 s to simulate).  Two days matter:
    # like the paper's campaign, the training fold must span a full
    # day/night cycle so the model sees both an empty night and a busy
    # office before being tested on the future.
    config = CampaignConfig(
        duration_h=48.0,
        sample_rate_hz=0.15,
        start_hour_of_day=0.0,
        seed=42,
    )
    print(f"Simulating a {config.duration_h:.0f} h campaign "
          f"({config.n_samples} rows at {config.sample_rate_hz} Hz)...")
    dataset = CollectionCampaign(config).run()
    balance = dataset.class_balance()
    print(f"  recorded {len(dataset)} rows, "
          f"{balance['empty']:.0%} empty / {balance['occupied']:.0%} occupied")

    # The paper's protocol: 70 % of the time is the training fold, the
    # rest splits into temporally disjoint test folds.
    split = make_paper_folds(dataset)
    x_train = extract_features(split.train.data, FeatureSet.CSI)
    y_train = split.train.data.occupancy

    print(f"\nTraining the Section IV-B MLP on {x_train.shape[0]} rows "
          f"of {x_train.shape[1]}-subcarrier CSI amplitude...")
    detector = OccupancyDetector(
        n_inputs=x_train.shape[1],
        config=TrainingConfig(epochs=6),
    )
    detector.fit(x_train, y_train, verbose=True)
    print(f"  {detector.n_parameters():,} trainable parameters")

    print("\nAccuracy on the held-out folds (model never retrained):")
    for fold in split.tests:
        x_test = extract_features(fold.data, FeatureSet.CSI)
        accuracy = detector.score(x_test, fold.data.occupancy)
        print(f"  fold {fold.index}: {100 * accuracy:5.1f} %  "
              f"({fold.n_empty} empty / {fold.n_occupied} occupied rows)")


if __name__ == "__main__":
    main()
