#!/usr/bin/env python3
"""A service that saturates — and degrades on purpose instead of by luck.

An unprotected engine under a burst storm fails *implicitly*: the
bounded queue silently drops whoever is oldest, latency grows without
bound first, and one hot link starves every quiet one.  This example
turns on the overload control plane (``repro.overload``) and drives the
same bursty traffic through it:

* a **per-link token bucket** clips the hot link to its reserved rate —
  refusals are typed ``FrameTicket`` outcomes (``"rate_limited"``), not
  silent drops, and the quiet links never lose a frame;
* a **deadline budget** sheds frames at dequeue once they are too old
  to be worth serving (``"deadline_expired"`` — served-late is a lie a
  ledger should not allow);
* **queue credit** caps one link's share of the shared queue, so
  backpressure lands on the link that caused it;
* a **saturation governor** steps the degradation ladder
  FULL -> FASTPATH_ONLY -> FALLBACK_ONLY -> SHED under pressure and
  probes its way back down after calm, with hysteresis and backoff.

Every decision runs on the frame-timestamp clock (same seed, same
traffic, byte-identical decisions), and the observer's frame ledger
closes exactly: every submitted frame ends in precisely one typed
outcome.

Usage::

    python examples/overloaded_service.py
"""

import numpy as np

from repro.fastpath.plan import InferencePlan
from repro.nn.modules import Linear, ReLU, Sequential
from repro.obs import Observer
from repro.overload import OverloadPolicy
from repro.serve.config import ServeConfig
from repro.serve.engine import InferenceEngine

N_INPUTS = 16


def make_traffic(rng, duration_s=60.0, cold_hz=4.0, hot_hz=40.0):
    """One hot link bursting at 10x the rate of three cold links."""
    arrivals = []
    for link in ("cold-a", "cold-b", "cold-c"):
        for k in range(int(duration_s * cold_hz)):
            arrivals.append((k / cold_hz, link))
    for k in range(int(duration_s * hot_hz)):
        t = k / hot_hz
        if (t // 10.0) % 2 == 0:  # square-wave bursts: 10 s on, 10 s off
            arrivals.append((t, "hot"))
    arrivals.sort()
    return arrivals


def main() -> None:
    rng = np.random.default_rng(7)
    model = Sequential(
        Linear(N_INPUTS, 16, rng=rng), ReLU(), Linear(16, 1, rng=rng)
    )
    plan = InferencePlan.from_model(model)

    observer = Observer(label="overloaded-demo")
    engine = InferenceEngine(
        plan,
        ServeConfig(
            max_batch=16,
            max_latency_ms=None,
            queue_capacity=64,
            auto_flush=False,         # we model finite service capacity
            rate_limit_hz=8.0,        # each link's reserved admission rate
            rate_limit_burst=16.0,    # burst credit on top of it
            deadline_ms=2000.0,       # serve within 2 s of capture or shed
            queue_credit=32,          # one link's max share of the queue
            overload=OverloadPolicy(seed=7),
            observer=observer,
        ),
    )
    engine.attach_fastpath(plan)      # what FASTPATH_ONLY serves

    service_hz = 25.0                 # the capacity the storm overwhelms
    stall = (20.0, 28.0)              # a window where service loses its CPU
    credit = 0.0
    last_t = 0.0
    outcomes = {}
    peak = engine.mode
    for t_s, link in make_traffic(rng):
        row = np.abs(rng.normal(size=N_INPUTS)) + 0.1
        ticket = engine.submit_frame(link, t_s, row)
        outcomes[ticket.outcome] = outcomes.get(ticket.outcome, 0) + 1
        credit += (t_s - last_t) * service_hz
        last_t = t_s
        if stall[0] <= t_s < stall[1]:
            credit = 0.0              # stalled: admission without service
        elif credit >= 1.0:           # spend accumulated service capacity
            engine.pump(int(credit), now_s=t_s)
            credit -= int(credit)
            if engine.mode.severity > peak.severity:
                peak = engine.mode
    engine.flush()                    # shutdown: nothing may stay pending
    print(f"governor peaked at {peak.value}, ended at {engine.mode.value}")

    print("admission outcomes:", dict(sorted(outcomes.items())))
    for link in sorted(engine.link_ids):
        stats = engine.link_stats(link)
        print(
            f"  {link:7s} in={stats['frames_in']:5d} "
            f"served={stats['frames_out']:5d} "
            f"rate_limited={stats['rate_limited']:4d} "
            f"deadline_expired={stats['deadline_expired']:3d} "
            f"overflow={stats['overflow']:3d} shed={stats['overload_shed']:3d}"
        )

    # The hot link pays for its own burst: only it is ever rate limited.
    # The stall costs the cold links frames too — but every loss is a
    # *typed* outcome (deadline_expired / overflow / shed), never silent.
    for link in ("cold-a", "cold-b", "cold-c"):
        stats = engine.link_stats(link)
        assert stats["rate_limited"] == 0, link
        losses = (stats["deadline_expired"] + stats["overflow"]
                  + stats["overload_shed"])
        assert stats["frames_out"] + losses == stats["frames_in"], link
    assert engine.link_stats("hot")["rate_limited"] > 0

    ledger = observer.ledger()
    print("ledger:", ledger)
    assert ledger["unaccounted"] == 0 and ledger["pending"] == 0
    print("every frame ended in exactly one typed outcome — ledger closed.")


if __name__ == "__main__":
    main()
