#!/usr/bin/env python3
"""A self-updating occupancy service: drift → retrain → shadow → promote.

The paper trains its model once, but an *unconstrained* environment does
not stay where the training data left it — furniture moves, links
re-route, multipath changes.  This example wires the full
:mod:`repro.rollout` loop onto the micro-batched serving engine and
walks it through an abrupt mid-stream room shift:

* a **drift sentinel** scores live traffic against the training
  reference and trips when the room changes;
* the **retrain trigger** flushes its pre-drift buffer on the trip edge,
  waits for enough post-drift labelled frames, then fine-tunes a
  challenger;
* a **shadow runner** mirrors every champion-served frame through the
  challenger off the serving path, with its own exactly-reconciling
  frame ledger;
* an **anytime-valid sequential comparison** (betting e-process) decides
  PROMOTE / REJECT / FUTILITY — peeking after every frame is sound;
* the winner is **hot-swapped** through the engine's drain-before-swap
  path (zero dropped frames, ledger-proven) and watched through a guard
  window that auto-rolls-back on breaker trips or output divergence.

Usage::

    python examples/self_updating_service.py
"""

import numpy as np

from repro.baselines.scaler import StandardScaler
from repro.config import BehaviorConfig, CampaignConfig
from repro.core.model_zoo import build_paper_mlp
from repro.data.recording import CollectionCampaign
from repro.fastpath.plan import InferencePlan
from repro.guard.drift import DriftSentinel, ReferenceStats
from repro.guard.supervisor import RecoverySupervisor
from repro.nn.losses import bce_with_logits_loss
from repro.nn.optim import AdamW
from repro.nn.train import Trainer
from repro.obs import Observer
from repro.rollout import RetrainTrigger, RolloutManager, SequentialComparison
from repro.serve import ServeConfig
from repro.serve.engine import InferenceEngine

SEED = 2022
N_TRAIN = 256       # frames used to train the champion
N_STREAM = 448      # frames served live
SHIFT_AT = 96       # stream index where the room changes
RATE_HZ = 2.0       # stream cadence


def room_shift(rows: np.ndarray) -> np.ndarray:
    """The furniture moved: mirror each subcarrier's amplitude within its
    observed range and tilt alternate subcarriers.  Affine and invertible
    — a fine-tune can learn it — but squarely outside the champion's
    training distribution."""
    lo, hi = rows.min(axis=0), rows.max(axis=0)
    gain = np.where(np.arange(rows.shape[1]) % 2 == 0, 1.6, 0.7)
    return (lo + hi - rows) * gain


def balanced_stream(seed: int):
    """Simulate a campaign and resample it into a balanced labelled stream.

    A busy single-occupant schedule keeps both classes present; drawing
    frames from the empty/occupied pools with p=0.5 makes every segment
    (train, pre-shift, shadow window, post-promotion) class-balanced.
    """
    total = N_TRAIN + N_STREAM
    config = CampaignConfig(
        duration_h=total / (3600.0 * 0.5),
        sample_rate_hz=0.5,
        seed=seed,
        start_hour_of_day=10.0,
        behavior=BehaviorConfig(n_subjects=1, mean_stay_h=0.04, mean_gap_h=0.05),
    )
    dataset = CollectionCampaign(config).run()
    csi = np.asarray(dataset.csi)
    occupancy = (np.asarray(dataset.occupancy, dtype=int) > 0).astype(int)
    empty_pool = np.flatnonzero(occupancy == 0)
    occupied_pool = np.flatnonzero(occupancy == 1)
    sampler = np.random.default_rng(seed + 13)
    labels = (sampler.random(total) < 0.5).astype(int)
    idx = np.where(
        labels == 1,
        occupied_pool[sampler.integers(0, len(occupied_pool), total)],
        empty_pool[sampler.integers(0, len(empty_pool), total)],
    )
    return csi[idx].copy(), labels


def main() -> None:
    rows, labels = balanced_stream(SEED)
    x_train, y_train = rows[:N_TRAIN], labels[:N_TRAIN]
    stream_rows, stream_labels = rows[N_TRAIN:].copy(), labels[N_TRAIN:]
    stream_rows[SHIFT_AT:] = room_shift(stream_rows[SHIFT_AT:])

    # ------------------------------------------------- train the champion
    print(f"Training the champion on {N_TRAIN} frames...")
    scaler = StandardScaler()
    model = build_paper_mlp(x_train.shape[1], seed=SEED)
    trainer = Trainer(
        model,
        AdamW(model.parameters(), lr=1e-3, weight_decay=1e-4),
        bce_with_logits_loss,
        batch_size=64,
        rng=np.random.default_rng(SEED),
    )
    trainer.fit(scaler.fit_transform(x_train), y_train, epochs=12, verbose=False)
    champion = InferencePlan.from_model(
        model, scaler=scaler, version=0, label="champion"
    )

    # -------------------------------------------- serving + rollout loop
    sentinel = DriftSentinel(
        ReferenceStats.fit(x_train), alpha=0.1, window=64, check_every=16
    )
    engine = InferenceEngine(
        champion,
        ServeConfig(
            max_batch=8,
            max_latency_ms=None,
            stale_after_s=None,
            queue_capacity=256,
            supervisor=RecoverySupervisor(sentinel=sentinel, drift_action="warn"),
            observer=Observer(label="service"),
        ),
    )
    # checkpoint=None: fine-tune straight from the champion's weights.
    # A longer-lived service would pass its training CheckpointCallback
    # so retraining starts from the best-validation weights instead.
    trigger = RetrainTrigger(
        trainer,
        scaler,
        buffer_size=512,
        min_frames=64,
        epochs=40,
        lr_scale=2.0,
    )
    dt = 1.0 / RATE_HZ

    def label_fn(frame) -> int:
        # The simulator's ground truth; a deployment would feed delayed
        # annotations here (return None while a frame is unlabelled).
        return int(stream_labels[int(round(frame.t_s / dt))])

    manager = RolloutManager.for_engine(
        engine,
        trigger,
        label_fn=label_fn,
        comparison_factory=lambda: SequentialComparison(
            alpha=0.05, min_frames=16, max_frames=224
        ),
        guard_frames=32,
    )

    # --------------------------------------------------------- the stream
    print(f"Serving {N_STREAM} frames (room shifts at frame {SHIFT_AT})...")
    results = []
    for i, row in enumerate(stream_rows):
        results.extend(engine.submit_frame("room-0", i * dt, row).results)
    results.extend(engine.flush())

    # -------------------------------------------------------- the verdict
    events = list(engine.observer.events)
    trips = [e for e in events if e.kind == "drift.trip" and e.t_s >= SHIFT_AT * dt]
    promoted = [e for e in events if e.kind == "rollout.promoted"]
    promo_idx = int(round(promoted[0].t_s / dt)) if promoted else None

    before, during, after = [], [], []
    for result in results:
        idx = int(round(result.t_s / dt))
        correct = int(result.probability >= 0.5) == int(stream_labels[idx])
        if idx < SHIFT_AT:
            before.append(correct)
        elif promo_idx is None or idx < promo_idx:
            during.append(correct)
        else:
            after.append(correct)

    def acc(window) -> str:
        return f"{float(np.mean(window)):.3f}" if window else "n/a"

    if trips:
        print(f"\ndrift detected {int(round(trips[0].t_s / dt)) - SHIFT_AT} "
              "frames after the shift")
    if promo_idx is not None:
        print(f"challenger promoted {promo_idx - SHIFT_AT} frames after the "
              f"shift (now serving: version "
              f"{engine.estimator.version}, {engine.estimator.label!r})")
    print(f"accuracy: {acc(before)} before, {acc(during)} during, "
          f"{acc(after)} after the swap")
    for kind in ("rollout.shadow_start", "rollout.promoted",
                 "rollout.rolled_back", "rollout.futility_stop"):
        print(f"  {kind}: {engine.observer.events.count(kind)}")

    ledger = engine.observer.ledger()
    print(f"\nzero-drop proof: submitted={ledger['submitted']} "
          f"answered={ledger['answered']} pending={ledger['pending']} "
          f"unaccounted={ledger['unaccounted']}")
    reconciliation = manager.last_reconciliation or {}
    print(f"shadow ledger: {reconciliation.get('shadow_submitted')} mirrored "
          f"vs {reconciliation.get('champion_answered')} served "
          f"(exact={reconciliation.get('exact')})")
    print()
    print(engine.registry.report("serving metrics:"))


if __name__ == "__main__":
    main()
