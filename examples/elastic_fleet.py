#!/usr/bin/env python3
"""An elastic fleet: rooms churn, detaches drain, shards rebalance.

The multi-room fleet in ``examples/fleet_service.py`` is static — every
room attaches up front and stays. Real buildings churn: rooms come
online mid-shift, go dark for maintenance, get their detector swapped,
and come back. This example runs that lifecycle end-to-end with
:class:`repro.fleet.Fleet`:

* rooms attach and detach **under live traffic** — `detach()` is
  drain-exact: pending frames are driven through real ticks to a typed
  terminal outcome, the audit ``drained == drain_served + drain_shed``
  is enforced, and drain-tick results spill to ``take_drained()``
  instead of vanishing;
* a room's plan is **hot-swapped** with frames in flight (the swap
  drains first, then re-keys the fusion cohort);
* hash-colliding room ids pile onto one shard, tripping the
  ``rebalance_skew`` trigger: the fleet migrates the minimum set of
  tenants, emits ``fleet.rebalance`` events and updates the
  ``fleet_shard_tenants{shard=...}`` gauges;
* a detached room **re-attaches as a fresh incarnation** while the
  previous incarnation's final ledger stays archived under
  ``detached_ledger()`` until the re-attach releases it.

Usage::

    python examples/elastic_fleet.py
"""

import numpy as np

from repro.fastpath import InferencePlan
from repro.fleet import Fleet, PlanRegistry, TenantLifecycle
from repro.nn.modules import Linear, ReLU, Sequential
from repro.obs import Observer
from repro.serve import ServeConfig

N_INPUTS = 16
FRAMES_PER_TICK = 3


def build_plan(seed):
    """A small frozen detector head (stand-in for a trained model)."""
    rng = np.random.default_rng(seed)
    model = Sequential(
        Linear(N_INPUTS, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng)
    )
    return InferencePlan.from_model(model)


def colliding_room_ids(registry, shard, count):
    """Room ids that all hash-home to the same shard (worst-case churn)."""
    ids, i = [], 0
    while len(ids) < count:
        candidate = f"room-{i:03d}"
        if registry.home_shard(candidate) == shard:
            ids.append(candidate)
        i += 1
    return ids


def serve_round(fleet, rooms, rng, t_s):
    """One submit/tick round of live traffic for the given rooms."""
    for room in rooms:
        for _ in range(FRAMES_PER_TICK):
            fleet.submit(room, t_s, rng.standard_normal(N_INPUTS))
    return fleet.tick(t_s)


def main() -> None:
    shared = build_plan(seed=7)
    plans = PlanRegistry(n_shards=4)
    fleet = Fleet(
        ServeConfig(max_batch=32, max_latency_ms=None),
        plans=plans,
        rebalance_skew=1.25,
        observer_factory=lambda: Observer(),
    )
    rng = np.random.default_rng(2022)

    # --- churn in: hash-colliding rooms trip the rebalance trigger ----
    rooms = colliding_room_ids(plans, shard=0, count=6)
    print(f"Attaching {len(rooms)} rooms that all hash to shard 0...")
    for room in rooms:
        fleet.attach(room, shared)
    migrations = fleet.metrics.counter("fleet_rebalance_migrations_total").value
    print(f"  auto-rebalance moved {migrations:g} tenants; shard occupancy:")
    for shard, count in enumerate(plans.shard_counts()):
        gauge = fleet.metrics.gauge(f"fleet_shard_tenants{{shard={shard}}}")
        print(f"    shard {shard}: {count} tenants (gauge {gauge.value:g})")

    # --- live traffic, all rooms fused (one shared plan) --------------
    served = 0
    for step in range(4):
        served += len(serve_round(fleet, rooms, rng, t_s=float(step)))
    fused = fleet.metrics.counter("fleet_fused_frames_total").value
    print(f"Served {served} frames across {len(rooms)} rooms ({fused:g} fused).")

    # --- hot-swap one room with frames in flight ----------------------
    swap_room = rooms[0]
    fleet.submit(swap_room, 4.0, rng.standard_normal(N_INPUTS))
    fleet.replace_plan(swap_room, build_plan(seed=99), now_s=4.0)
    swapped = len([r for r in fleet.take_drained() if r.tenant_id == swap_room])
    print(f"Hot-swapped {swap_room}: {swapped} in-flight frame drained first.")

    # --- drain-exact detach under live traffic ------------------------
    victim = rooms[1]
    for _ in range(FRAMES_PER_TICK):
        fleet.submit(victim, 5.0, rng.standard_normal(N_INPUTS))
    final = fleet.detach(victim, now_s=5.0)
    assert final["drained"] == final["drain_served"] + final["drain_shed"]
    drained = [r for r in fleet.take_drained() if r.tenant_id == victim]
    print(
        f"Detached {victim}: drained={final['drained']} "
        f"(served {final['drain_served']}, shed {final['drain_shed']}); "
        f"{len(drained)} results harvested, none dropped."
    )
    assert fleet.lifecycle(victim) is TenantLifecycle.DETACHED
    archived = fleet.detached_ledger(victim)
    print(f"  archived ledger: frames_in={archived['frames_in']}")

    # --- re-attach: a fresh incarnation -------------------------------
    fleet.attach(victim, shared, now_s=6.0)
    assert fleet.counters(victim)["frames_in"] == 0
    print(f"Re-attached {victim} as a fresh incarnation (counters zeroed).")
    serve_round(fleet, fleet.tenant_ids, rng, t_s=7.0)

    # --- shutdown: every room detaches drain-exact --------------------
    fleet.flush()
    for room in list(fleet.tenant_ids):
        report = fleet.detach(room, now_s=8.0)
        assert report["drained"] == report["drain_served"] + report["drain_shed"]
    fleet.take_drained()
    print("Shutdown: every detach drain-exact, every ledger accounted.")


if __name__ == "__main__":
    main()
