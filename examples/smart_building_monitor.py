#!/usr/bin/env python3
"""Smart-building scenario: live occupancy monitoring with drift.

The paper's motivating application (Section I): automatically switching
lighting/HVAC when a room empties, without cameras or wearables.  This
example plays a trained detector against a *streaming* day of office life
and reports the events a building-automation system would act on:

* occupancy transitions (arrival / last person leaving),
* estimated energy-saving window (empty hours during the heating day),
* detection latency (how long after a transition the detector agrees).

It also demonstrates the unconstrained-environment robustness story: the
evaluation day includes furniture moves and a different climate than the
training days, and the detector is never retrained.

Usage::

    python examples/smart_building_monitor.py
"""

import numpy as np

from repro.config import CampaignConfig, TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.core.features import FeatureSet, extract_features
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign


def detect_transitions(labels: np.ndarray, timestamps: np.ndarray) -> list[tuple[float, str]]:
    """(time, 'arrival'|'departure') for every occupancy flip."""
    events = []
    for i in np.flatnonzero(np.diff(labels) != 0) + 1:
        kind = "arrival" if labels[i] == 1 else "departure"
        events.append((float(timestamps[i]), kind))
    return events


def main() -> None:
    # Three simulated days: train on days 1-2, monitor day 3 live.  Two
    # training days matter — the model must see more than one instance of
    # each daily regime before generalising to an unseen day.
    config = CampaignConfig(
        duration_h=72.0, sample_rate_hz=0.15, start_hour_of_day=0.0, seed=11
    )
    print(f"Simulating {config.duration_h:.0f} h of office life...")
    dataset = CollectionCampaign(config).run()

    split = make_paper_folds(dataset, train_fraction=2 / 3, n_test_folds=1)
    train, live = split.train.data, split.tests[0].data

    print(f"Training the detector on days 1-2 ({len(train)} rows)...")
    detector = OccupancyDetector(64, TrainingConfig(epochs=8))
    detector.fit(extract_features(train, FeatureSet.CSI), train.occupancy)

    print(f"Monitoring day 3 ({len(live)} rows), never retraining...\n")
    x_live = extract_features(live, FeatureSet.CSI)
    predictions = detector.predict(x_live)

    # Smooth with a ~3-minute majority filter, as a real controller would
    # (no light should flicker on a single misclassified frame).
    window = 25
    kernel = np.ones(window) / window
    smoothed = (np.convolve(predictions, kernel, mode="same") > 0.5).astype(int)

    accuracy = float(np.mean(predictions == live.occupancy))
    smoothed_accuracy = float(np.mean(smoothed == live.occupancy))
    print(f"Frame accuracy: raw {100 * accuracy:.1f} %, "
          f"majority-filtered {100 * smoothed_accuracy:.1f} %")

    truth_events = detect_transitions(live.occupancy, live.timestamps_s)
    detected_events = detect_transitions(smoothed, live.timestamps_s)
    print(f"True occupancy transitions: {len(truth_events)}, "
          f"detected: {len(detected_events)}")

    # Match each true event to the nearest detected event of the same kind.
    latencies = []
    for t_true, kind in truth_events:
        candidates = [t for t, k in detected_events if k == kind]
        if candidates:
            latencies.append(min(abs(t - t_true) for t in candidates))
    if latencies:
        print(f"Median transition-detection latency: {np.median(latencies):.0f} s")

    # Energy-saving accounting: hours the controller would switch off.
    dt_h = 1.0 / (config.sample_rate_hz * 3600.0)
    predicted_empty_h = float(np.sum(smoothed == 0)) * dt_h
    true_empty_h = float(np.sum(live.occupancy == 0)) * dt_h
    print(f"\nPredicted switch-off time: {predicted_empty_h:.1f} h "
          f"(ground truth {true_empty_h:.1f} h of empty office)")

    false_offs = int(np.sum((smoothed == 0) & (live.occupancy == 1)))
    print(f"Frames where the lights would wrongly switch off: {false_offs} "
          f"({100 * false_offs / max(1, len(live)):.2f} % of the day)")


if __name__ == "__main__":
    main()
