#!/usr/bin/env python3
"""Beyond detection: occupant counting and activity recognition.

The paper closes with: "For future work, we intend to design an ML model
that simultaneously performs occupancy detection and activity
recognition, with a particular emphasis on finding those activities which
can be reliably detected."  (Section VI.)  This example implements that
future work on the simulated campaign:

* :class:`~repro.core.counter.OccupantCounter` — how many people are in
  the room (0..4), the task of the paper's refs [2], [3], [12];
* :class:`~repro.core.activity.ActivityRecognizer` — a single 4-way head
  deciding empty / walking / standing / sitting, which *simultaneously*
  solves occupancy detection (empty vs rest);
* the reliability report answering the paper's emphasis: which
  activities are detectable from CSI at all.

Usage::

    python examples/activity_and_counting.py
"""

import numpy as np

from repro.config import CampaignConfig, TrainingConfig
from repro.core.activity import ACTIVITY_LABELS, ActivityRecognizer
from repro.core.counter import OccupantCounter
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign


def main() -> None:
    config = CampaignConfig(duration_h=48.0, sample_rate_hz=0.2, seed=13)
    print(f"Simulating a {config.duration_h:.0f} h campaign...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data
    training = TrainingConfig(epochs=8)

    # ------------------------------------------------------------ counting
    print(f"\nTraining the occupant counter on {len(train)} rows...")
    counter = OccupantCounter(64, max_count=4, config=training)
    counter.fit(train.csi, train.occupant_count)

    print("Counting on the held-out folds:")
    for fold in split.tests:
        scores = counter.score(fold.data.csi, fold.data.occupant_count)
        print(f"  fold {fold.index}: exact {100 * scores['accuracy']:5.1f} %, "
              f"within-one {100 * scores['within_one']:5.1f} %, "
              f"MAE {scores['count_mae']:.2f} people")

    # A head-count trace a facility dashboard would show.
    last = split.tests[-1].data
    expected = counter.expected_count(last.csi)
    print(f"  final-fold mean head count: predicted {expected.mean():.2f}, "
          f"true {last.occupant_count.mean():.2f}")

    # ------------------------------------------------- activity recognition
    print("\nTraining the joint occupancy+activity recognizer...")
    recognizer = ActivityRecognizer(64, training)
    recognizer.fit(train.csi, train.activity)

    x_test = np.vstack([f.data.csi for f in split.tests])
    activity_test = np.concatenate([f.data.activity for f in split.tests])
    occupancy_test = np.concatenate([f.data.occupancy for f in split.tests])

    print(f"  4-way activity accuracy: "
          f"{100 * recognizer.score(x_test, activity_test):.1f} %")
    print(f"  simultaneous occupancy accuracy: "
          f"{100 * recognizer.occupancy_score(x_test, occupancy_test):.1f} %")

    print("\nWhich activities can be reliably detected? (per-class recall)")
    report = recognizer.reliability_report(x_test, activity_test)
    for label in ACTIVITY_LABELS:
        if label in report:
            bar = "#" * int(30 * report[label])
            print(f"  {label:>9}: {100 * report[label]:5.1f} %  {bar}")

    print("\nConfusion matrix (rows = truth, columns = prediction):")
    matrix = recognizer.confusion(x_test, activity_test)
    header = "           " + "".join(f"{l:>10}" for l in ACTIVITY_LABELS)
    print(header)
    for i, label in enumerate(ACTIVITY_LABELS):
        print(f"  {label:>9}" + "".join(f"{v:>10}" for v in matrix[i]))


if __name__ == "__main__":
    main()
