#!/usr/bin/env python3
"""Explainability and embedded deployment of the occupancy MLP.

Covers the paper's remaining two threads:

1. **Grad-CAM** (Section IV-B, Figure 3) — which of the 66 input features
   (64 CSI subcarriers + temperature + humidity) drive the "occupied"
   decision?  The paper finds the environment inputs near zero and the
   CSI low/high bands dominant.
2. **Deployment** (Sections IV-B, VI) — quantize the trained network to
   int8, check it fits the Nucleo-L432KC (256 KiB flash / 64 KiB RAM),
   model its Cortex-M4 inference latency and export a C header.

Usage::

    python examples/explain_and_deploy.py
"""

import numpy as np

from repro.config import CampaignConfig, TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.core.features import FeatureSet, extract_features, feature_names
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign
from repro.deploy.export import export_c_header
from repro.deploy.footprint import estimate_footprint
from repro.deploy.quantize import quantize_model
from repro.deploy.timing import cortex_m4_latency_ms, measure_inference_ms


def main() -> None:
    config = CampaignConfig(duration_h=24.0, sample_rate_hz=0.25, seed=5)
    print(f"Simulating a {config.duration_h:.0f} h campaign...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)

    train = split.train.data
    x = extract_features(train, FeatureSet.CSI_ENV)
    print(f"Training the CSI+Env detector on {len(train)} rows x 66 features...")
    detector = OccupancyDetector(66, TrainingConfig(epochs=8))
    detector.fit(x, train.occupancy)

    # ---------------------------------------------------------- Grad-CAM
    occupied_probe = x[train.occupancy == 1][:512]
    result = detector.explain(occupied_probe, target_class=1)
    names = feature_names(FeatureSet.CSI_ENV)
    importance = result.feature_importance

    print("\nGrad-CAM importance for the 'occupied' decision (Figure 3):")
    scale = importance.max() or 1.0
    for i in list(range(4, 64, 8)) + [64, 65]:
        bar = "#" * int(30 * importance[i] / scale)
        print(f"  {names[i]:>3}  {importance[i]:6.3f}  {bar}")

    top = np.argsort(importance)[::-1][:5]
    print(f"  top-5 features: {[names[i] for i in top]}")
    print(f"  environment (e, h) importance: "
          f"{importance[64]:.3f}, {importance[65]:.3f} "
          f"vs CSI peak {importance[:64].max():.3f}")

    # --------------------------------------------------------- deployment
    print("\nQuantizing to int8 and checking the Nucleo-L432KC budget...")
    quantized = quantize_model(detector.model)
    report = estimate_footprint(quantized)
    print(f"  {report.describe()}")
    print(f"  Cortex-M4 (80 MHz) modelled latency: "
          f"{cortex_m4_latency_ms(quantized):.2f} ms/sample "
          f"(paper reports 10.781 ms)")
    host_ms = measure_inference_ms(detector.model, 66, n_repeats=100)
    print(f"  host (numpy) measured latency: {host_ms:.3f} ms/sample")

    # Quantization accuracy cost on held-out data.
    fold = split.tests[-1]
    x_test = extract_features(fold.data, FeatureSet.CSI_ENV)
    scaled = detector.scaler.transform(x_test)
    float_pred = (detector._trainer.predict(scaled).ravel() > 0).astype(int)
    int8_pred = (quantized.forward(scaled).ravel() > 0).astype(int)
    agreement = float(np.mean(float_pred == int8_pred))
    print(f"  float-vs-int8 prediction agreement on fold {fold.index}: "
          f"{100 * agreement:.2f} %")

    header = export_c_header(quantized, "occupancy_model.h")
    size_kib = header.stat().st_size / 1024
    print(f"\nExported firmware weights to {header} ({size_kib:.0f} KiB of C source).")


if __name__ == "__main__":
    main()
