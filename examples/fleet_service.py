#!/usr/bin/env python3
"""A multi-room fleet: one process, many tenants, fused inference.

The paper detects occupancy in one room; a building deployment serves
dozens from a single process.  This example runs that shape end-to-end
with :class:`repro.fleet.Fleet`:

* one detector is trained once and its frozen
  :class:`~repro.fastpath.plan.InferencePlan` is **shared** by three
  rooms — same plan signature, so each tick fuses their frames into a
  single batched GEMM;
* a fourth room gets a **fine-tuned** copy (different weight bytes,
  different signature), which the scheduler dispatches per-tenant
  through the same shape-stable tiled runner;
* fusion is an *optimisation, not an approximation*: the fused fleet's
  probabilities are byte-identical to a control fleet running with
  ``fusion_enabled=False``, and this example asserts it;
* every room keeps isolated guard state and an isolated
  :class:`~repro.obs.Observer` ledger, while shared counters roll up
  per-tenant via brace labels (``fleet_frames_total{tenant=lobby}``)
  that render as proper Prometheus label sets.

Usage::

    python examples/fleet_service.py
"""

import numpy as np

from repro.config import CampaignConfig, TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign
from repro.fastpath import freeze_detector
from repro.fleet import Fleet
from repro.obs import Observer, render_prometheus
from repro.serve import MetricsRegistry, ServeConfig

ROOMS = ("lobby", "office-a", "office-b", "lab")
FRAMES_PER_TICK = 4


def build_fleet(shared_plan, lab_plan, *, fusion_enabled: bool, registry=None):
    """A four-room fleet: three rooms share a plan, the lab runs its own."""
    fleet = Fleet(
        ServeConfig(max_batch=64, max_latency_ms=None, registry=registry),
        tile=8,
        fusion_enabled=fusion_enabled,
        observer_factory=lambda: Observer(),
    )
    for room in ROOMS[:3]:
        fleet.attach(room, shared_plan)
    fleet.attach("lab", lab_plan)
    return fleet


def replay(fleet, traffic, timestamps):
    """Interleave per-room streams through submit/tick rounds."""
    probs = {room: [] for room in ROOMS}
    n_rounds = len(next(iter(traffic.values()))) // FRAMES_PER_TICK
    for r in range(n_rounds):
        lo = r * FRAMES_PER_TICK
        for room in ROOMS:
            for k in range(FRAMES_PER_TICK):
                fleet.submit(room, float(timestamps[lo + k]), traffic[room][lo + k])
        for result in fleet.tick():
            probs[result.tenant_id].append(result.probability)
    for result in fleet.flush():
        probs[result.tenant_id].append(result.probability)
    return {room: np.asarray(p) for room, p in probs.items()}


def main() -> None:
    config = CampaignConfig(duration_h=2.0, sample_rate_hz=0.2, seed=3)
    print(f"Simulating a {config.duration_h:.0f} h campaign...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data

    print(f"Training the shared detector ({len(train)} rows)...")
    detector = OccupancyDetector(64, TrainingConfig(epochs=4, hidden_sizes=(32, 16)))
    detector.fit(train.csi, train.occupancy)
    shared_plan = freeze_detector(detector)  # snapshot; detector untouched

    # The lab's RF environment differs: fine-tune a copy.  New weight
    # bytes -> new plan signature -> its frames never fuse with the rest.
    detector.partial_fit(train.csi, train.occupancy, epochs=1)
    lab_plan = freeze_detector(detector)

    # Each room sees its own resampling of the held-out stream.
    serve = split.tests[0].data
    rng = np.random.default_rng(3)
    n_frames = 48
    traffic = {
        room: serve.csi[rng.integers(0, len(serve), size=n_frames)] for room in ROOMS
    }
    traffic["lobby"] = traffic["lobby"].copy()
    traffic["lobby"][5, 0] = np.nan  # one corrupt sniffer frame
    timestamps = serve.timestamps_s[:n_frames]

    registry = MetricsRegistry()
    fleet = build_fleet(shared_plan, lab_plan, fusion_enabled=True, registry=registry)
    ticket = fleet.submit("lobby", float(timestamps[0]) - 1.0, traffic["lobby"][0])
    print(f"first ticket: tenant={ticket.tenant_id} frame={ticket.frame_id} "
          f"outcome={ticket.outcome}")
    fleet.tick()

    print(f"Serving {n_frames} frames to each of {len(ROOMS)} rooms...")
    probs = replay(fleet, traffic, timestamps)

    # ------------------------------------------------- per-room verdicts
    print()
    for room in ROOMS:
        ledger = fleet.ledger(room)
        occupied = float(np.mean(probs[room] > 0.5))
        print(f"{room:9s} answered={len(probs[room]):3d} "
              f"rejected={ledger['rejected']} occupied {100 * occupied:.0f}% "
              f"of frames (unaccounted={ledger['unaccounted']})")
        assert ledger["unaccounted"] == 0, "every frame must be accounted for"
    # The corrupt lobby frame was rejected at admission, nowhere else.
    assert fleet.ledger("lobby")["rejected"] == 1
    assert fleet.ledger("office-a")["rejected"] == 0

    fused = registry.counter("fleet_fused_frames_total").value
    unfused = registry.counter("fleet_unfused_frames_total").value
    print(f"\nfusion: {fused:.0f} frames fused across shared-plan rooms, "
          f"{unfused:.0f} served per-tenant (ratio "
          f"{registry.gauge('fleet_fusion_ratio').value:.2f})")

    # ---------------------------------------- fusion never changes answers
    control = build_fleet(shared_plan, lab_plan, fusion_enabled=False)
    control_probs = replay(control, traffic, timestamps)
    for room in ROOMS:
        assert np.array_equal(probs[room], control_probs[room]), room
    print("byte-identity: fused == per-tenant on every room's stream")

    # ------------------------------------------------- the rollup surface
    print("\nPrometheus exposition (fleet families):")
    for line in render_prometheus(registry).splitlines():
        if "fleet_frames_total" in line or "fleet_fusion_ratio" in line:
            print(f"  {line}")


if __name__ == "__main__":
    main()
