#!/usr/bin/env python3
"""A self-healing occupancy service: detect, contain, recover.

The paper's pitch is occupancy detection in *unconstrained* environments
— and unconstrained environments break things: sniffers emit garbage
rows, sensors die mid-campaign, models crash after an update.  This
example wires the full :mod:`repro.guard` stack in front of the
micro-batched serving engine and walks one stream through all three
failure classes:

* a **validation chain** quarantines frames outside the training
  envelope (with the verdict attached, auditable after the fact);
* a **gap repairer** fills short dropouts with held frames, every fill
  flagged ``repaired`` so consumers can tell measured from manufactured;
* a **circuit breaker** stops hammering a crashed primary model, backs
  off, probes, and restores it once it heals — while a drift sentinel
  scores the serving distribution against persisted training statistics.

Usage::

    python examples/self_healing_service.py
"""

import numpy as np

from repro.config import CampaignConfig
from repro.baselines.pipeline import ScaledLogistic
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign
from repro.guard import GuardPolicy, ReferenceStats
from repro.serve.config import ServeConfig
from repro.serve.engine import InferenceEngine
from repro.serve.metrics import MetricsRegistry
from repro.serve.robustness import PriorFallback


class CrashOnce:
    """Primary model that is down for one stretch of stream time."""

    def __init__(self, inner, down_from_s: float, down_until_s: float) -> None:
        self.inner = inner
        self.down_from_s = down_from_s
        self.down_until_s = down_until_s
        self.now_s = 0.0
        self.crashes = 0

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.down_from_s <= self.now_s < self.down_until_s:
            self.crashes += 1
            raise RuntimeError("simulated model crash")
        return self.inner.predict_proba(x)


def main() -> None:
    config = CampaignConfig(duration_h=6.0, sample_rate_hz=0.2, seed=7)
    print(f"Simulating a {config.duration_h:.0f} h campaign...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data

    # Train on CSI + T/H so the environment-plausibility check has teeth.
    features = np.hstack([train.csi, train.environment])
    print(f"Training on fold 0 ({len(train)} rows, CSI+env)...")
    estimator = ScaledLogistic().fit(features, train.occupancy)
    fallback = PriorFallback().fit(features, train.occupancy)

    # ---------------------------------------------------- the guard stack
    reference = ReferenceStats.fit(features)
    n_csi = dataset.n_subcarriers
    policy = GuardPolicy(
        reference=reference,
        n_features=n_csi + 2,
        env_slice=slice(n_csi, n_csi + 2),
        expected_interval_s=None,  # learned per link from the stream
        seed=7,
    )
    registry = MetricsRegistry()
    validator, repairer, supervisor = policy.build(registry)

    t = dataset.timestamps_s
    span = float(t[-1] - t[0])
    primary = CrashOnce(
        estimator, float(t[0]) + 0.45 * span, float(t[0]) + 0.55 * span
    )
    engine = InferenceEngine(
        primary,
        ServeConfig(
            max_batch=16,
            max_latency_ms=None,
            fallback=fallback,
            registry=registry,
            validator=validator,
            repairer=repairer,
            supervisor=supervisor,
        ),
    )

    # ------------------------------------------------- one chaotic stream
    stream = np.hstack([dataset.csi, dataset.environment])
    rng = np.random.default_rng(7)
    n_answered = n_repaired = 0
    for i in range(len(dataset)):
        primary.now_s = float(t[i])
        row = stream[i].copy()
        if 1000 <= i < 1015:  # a sniffer glitch: impossible amplitudes
            row[: n_csi] *= 1e4
        if 2000 <= i < 2003:  # a broken parser: NaN temperature
            row[n_csi] = np.nan
        if rng.random() < 0.01:  # 1% random frame loss -> short gaps
            continue
        for result in engine.submit("link-0", float(t[i]), row):
            n_answered += 1
            n_repaired += int(result.repaired)
    for result in engine.flush():
        n_answered += 1
        n_repaired += int(result.repaired)

    # ------------------------------------------------------- the verdict
    print(f"\nanswered {n_answered} frames ({n_repaired} repaired fills)")
    print(f"primary crash calls: {primary.crashes} "
          "(the breaker stops hammering a dead model)")
    print(f"quarantined: {engine.quarantine.total} by check "
          f"{engine.quarantine.counts_by_check()}")
    sample = engine.quarantine.drain()[:2]
    for frame in sample:
        print(f"  e.g. t={frame.t_s:.0f}s failed {frame.failure.check!r}: "
              f"{frame.failure.message}")
    print(f"gap repairs: {repairer.gaps_repaired} gaps, "
          f"{repairer.frames_filled} frames filled, "
          f"{repairer.gaps_unrepaired} too long to repair")
    print(f"breaker: {supervisor.breaker.snapshot()}")
    print()
    print(registry.report("serving metrics:"))


if __name__ == "__main__":
    main()
