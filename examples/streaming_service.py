#!/usr/bin/env python3
"""Serving scenario: micro-batched multi-link inference with graceful failure.

The paper's deployment target (Section V) is a live CSI stream feeding a
small MLP.  This example runs the production-shaped version of that loop:
three sniffer links stream one simulated office day into a single
:class:`repro.serve.InferenceEngine`, which micro-batches frames across
links, runs one vectorized forward pass per batch, and routes each
probability back through per-link smoothing/debounce — the same state
machine as :class:`repro.data.StreamingDetector`, amortised over the
batch.

It then demonstrates the robustness story: halfway through the replay the
primary model starts throwing (simulating corrupted weights after a bad
OTA update).  The engine reroutes batches to a prior-based fallback
predictor, marks the links DEGRADED, and the stream keeps flowing — no
frame is ever dropped on a model failure.  The metrics registry that
observed all of this prints at the end, alongside the training metrics
recorded through the same registry by a Trainer callback.

Usage::

    python examples/streaming_service.py
"""

import numpy as np

from repro.config import BehaviorConfig, CampaignConfig, TrainingConfig
from repro.core.detector import OccupancyDetector
from repro.data.folds import make_paper_folds
from repro.data.recording import CollectionCampaign
from repro.serve import (
    InferenceEngine,
    MetricsRegistry,
    PriorFallback,
    ServeConfig,
    TrainingMetricsCallback,
)


class FlakyEstimator:
    """Wraps an estimator; raises on every call once ``fail_after`` is hit."""

    def __init__(self, inner, fail_after_calls: int) -> None:
        self.inner = inner
        self.fail_after_calls = fail_after_calls
        self.calls = 0

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self.calls += 1
        if self.calls > self.fail_after_calls:
            raise RuntimeError("simulated weight corruption")
        return self.inner.predict_proba(x)


def main() -> None:
    registry = MetricsRegistry()

    # One simulated day; train on the first ~17 h, serve the rest live.
    config = CampaignConfig(
        duration_h=24.0,
        sample_rate_hz=0.2,
        start_hour_of_day=0.0,
        seed=13,
        behavior=BehaviorConfig(mean_stay_h=1.0, mean_gap_h=2.0),
    )
    print(f"Simulating {config.duration_h:.0f} h of office life...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset, train_fraction=0.7, n_test_folds=1)
    train, live = split.train.data, split.tests[0].data

    print(f"Training the detector ({len(train)} rows), metrics via callback...")
    detector = OccupancyDetector(64, TrainingConfig(epochs=5))
    # The Trainer callback routes per-epoch timing/loss into the same
    # registry the serving engine reports through.
    detector.fit(
        train.csi, train.occupancy,
        callbacks=[TrainingMetricsCallback(registry)],
    )

    # The primary model will start failing two thirds into the live day.
    n_live = len(live)
    flaky = FlakyEstimator(detector, fail_after_calls=2 * (n_live // 64) // 3)
    fallback = PriorFallback().fit(train.csi, train.occupancy)
    engine = InferenceEngine(
        flaky,
        ServeConfig(
            max_batch=64,
            max_latency_ms=None,
            window=5,
            hold_frames=3,
            fallback=fallback,
            registry=registry,
        ),
    )

    print(f"Serving {n_live} live frames over 3 links "
          f"(model fails after batch {flaky.fail_after_calls})...\n")
    links = [f"sniffer-{i}" for i in range(3)]
    transitions = []
    fallback_frames = 0
    for i in range(n_live):
        results = engine.submit(
            links[i % 3], float(live.timestamps_s[i]), live.csi[i]
        )
        for result in results:
            if result.source == "fallback":
                fallback_frames += 1
            if result.transition is not None:
                transitions.append((result.link_id, result.transition))
    for result in engine.flush():
        if result.source == "fallback":
            fallback_frames += 1
        if result.transition is not None:
            transitions.append((result.link_id, result.transition))

    print(f"Debounced transitions ({len(transitions)}):")
    for link_id, transition in transitions[:10]:
        hour = (transition.t_s / 3600.0) % 24.0
        state = "OCCUPIED" if transition.occupied else "empty"
        print(f"  {hour:5.2f} h  {link_id}: -> {state}")
    if len(transitions) > 10:
        print(f"  ... and {len(transitions) - 10} more")

    print(f"\nFrames answered by the fallback after the failure: {fallback_frames}")
    for link_id in links:
        print(f"  {link_id}: health={engine.health(link_id).value}, "
              f"state={engine.state(link_id)}")

    print("\n" + registry.report("pipeline metrics (training + serving):"))


if __name__ == "__main__":
    main()
