"""The paper's MLP architecture (Section IV-B).

The network is four fully-connected layers, ReLU between them, ending in a
single logit.  The paper lists per-layer "neuron" counts of 8.320, 33.024,
32.846 and 129 — these are per-layer *parameter* counts (European
thousands separators) of a 64 -> 128 -> 256 -> 128 -> 1 MLP:

* layer 1: 64*128 + 128 = 8,320
* layer 2: 128*256 + 256 = 33,024
* layer 3: 256*128 + 128 = 32,896  (the paper's 32,846 is a typo)
* layer 4: 128*1 + 1 = 129

The exact total for the CSI-only input width is 74,369 (the paper's
77,881 appears to include the typo chain); for the 66-wide CSI+Env input
it is 74,625.  We build the architecture from the hidden sizes and report
exact counts — see DESIGN.md "Known paper discrepancies".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.modules import Linear, ReLU, Sequential

#: Hidden widths of the paper's network.
PAPER_HIDDEN_SIZES: tuple[int, ...] = (128, 256, 128)


def build_paper_mlp(
    n_inputs: int,
    hidden_sizes: Sequence[int] = PAPER_HIDDEN_SIZES,
    n_outputs: int = 1,
    seed: int = 0,
) -> Sequential:
    """Construct the Section IV-B MLP ending in raw logits/values.

    No output squashing is included: the classifier composes this with a
    sigmoid via BCE-with-logits (training) or explicitly (inference), and
    Grad-CAM differentiates the raw score, both per the paper.
    """
    if n_inputs < 1:
        raise ConfigurationError("n_inputs must be >= 1")
    if n_outputs < 1:
        raise ConfigurationError("n_outputs must be >= 1")
    if not hidden_sizes:
        raise ConfigurationError("need at least one hidden layer")
    rng = np.random.default_rng(seed)
    layers: list = []
    widths = [n_inputs, *hidden_sizes]
    for w_in, w_out in zip(widths[:-1], widths[1:]):
        layers.append(Linear(w_in, w_out, rng=rng))
        layers.append(ReLU())
    layers.append(Linear(widths[-1], n_outputs, rng=rng))
    return Sequential(*layers)


def paper_layer_parameter_counts(
    n_inputs: int = 64,
    hidden_sizes: Sequence[int] = PAPER_HIDDEN_SIZES,
    n_outputs: int = 1,
) -> list[int]:
    """Per-layer parameter counts (the numbers Section IV-B lists)."""
    widths = [n_inputs, *hidden_sizes, n_outputs]
    return [w_in * w_out + w_out for w_in, w_out in zip(widths[:-1], widths[1:])]
