"""Environment regression from CSI (Section V-D).

:class:`EnvironmentRegressor` estimates temperature and humidity from the
CSI amplitude vector with the same MLP architecture as the detector, but a
2-wide output head trained on MSE.  Targets are standardised during
training (the two outputs live on different scales) and de-standardised at
prediction time, so reported MAE/MAPE are in physical units — degC and %RH
— exactly as in Table V.
"""

from __future__ import annotations

import numpy as np

from ..baselines.scaler import StandardScaler
from ..config import TrainingConfig
from ..exceptions import NotFittedError, ShapeError
from ..metrics.regression import mae, mape
from ..nn.losses import mse_loss
from ..nn.optim import AdamW
from ..nn.train import Trainer, TrainingHistory
from .model_zoo import build_paper_mlp

#: Output order of the regressor head.
TARGET_NAMES = ("temperature", "humidity")


class EnvironmentRegressor:
    """MLP regression of (temperature, humidity) from CSI amplitudes."""

    def __init__(self, n_inputs: int = 64, config: TrainingConfig | None = None) -> None:
        self.config = config or TrainingConfig()
        self.n_inputs = n_inputs
        self.model = build_paper_mlp(
            n_inputs, self.config.hidden_sizes, n_outputs=2, seed=self.config.seed
        )
        self.x_scaler = StandardScaler()
        self.y_scaler = StandardScaler()
        self._trainer: Trainer | None = None
        self.history: TrainingHistory | None = None

    def _check_targets(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        if y.ndim != 2 or y.shape[1] != 2:
            raise ShapeError(f"targets must be (n, 2) [T, H], got {y.shape}")
        return y

    def fit(self, x: np.ndarray, y: np.ndarray, verbose: bool = False) -> "EnvironmentRegressor":
        """Train on CSI features ``x`` and targets ``y = [T, H]`` columns."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n_inputs:
            raise ShapeError(f"expected (n, {self.n_inputs}) features, got {x.shape}")
        y = self._check_targets(y)
        x_scaled = self.x_scaler.fit_transform(x)
        y_scaled = self.y_scaler.fit_transform(y)

        optimizer = AdamW(
            self.model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._trainer = Trainer(
            self.model,
            optimizer,
            mse_loss,
            batch_size=self.config.batch_size,
            rng=np.random.default_rng(self.config.seed),
        )
        self.history = self._trainer.fit(x_scaled, y_scaled, epochs=self.config.epochs, verbose=verbose)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted ``[T, H]`` per row in physical units, shape ``(n, 2)``."""
        if self._trainer is None:
            raise NotFittedError("EnvironmentRegressor used before fit")
        x_scaled = self.x_scaler.transform(np.asarray(x, dtype=float))
        return self.y_scaler.inverse_transform(self._trainer.predict(x_scaled))

    def score(self, x: np.ndarray, y: np.ndarray) -> dict[str, float]:
        """Table V's four numbers: MAE and MAPE for T and H.

        MAPE is returned in percent (x100), matching the table.
        """
        y = self._check_targets(y)
        pred = self.predict(x)
        return {
            "mae_temperature": mae(y[:, 0], pred[:, 0]),
            "mae_humidity": mae(y[:, 1], pred[:, 1]),
            "mape_temperature": 100.0 * mape(y[:, 0], pred[:, 0]),
            "mape_humidity": 100.0 * mape(y[:, 1], pred[:, 1]),
        }
