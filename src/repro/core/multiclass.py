"""Multi-class MLP head shared by the extension tasks.

The paper's network is binary; its conclusion proposes extending it to
activity recognition, and its related work (refs [2], [3], [12]) counts
occupants.  :class:`MulticlassMLP` is the paper's architecture with a
C-wide softmax head trained on cross-entropy — the smallest change that
supports both extensions while keeping the deployment story intact (the
head quantizes and exports exactly like the binary net).
"""

from __future__ import annotations

import numpy as np

from ..baselines.scaler import StandardScaler
from ..config import TrainingConfig
from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..metrics.classification import accuracy as binary_accuracy
from ..nn.losses import cross_entropy_loss, one_hot
from ..nn.optim import AdamW
from ..nn.train import Trainer, TrainingHistory
from .model_zoo import build_paper_mlp


class MulticlassMLP:
    """Scaler + paper MLP + softmax head over ``n_classes`` labels."""

    def __init__(
        self,
        n_inputs: int,
        n_classes: int,
        config: TrainingConfig | None = None,
    ) -> None:
        if n_classes < 2:
            raise ConfigurationError("need at least two classes")
        self.config = config or TrainingConfig()
        self.n_inputs = n_inputs
        self.n_classes = n_classes
        self.model = build_paper_mlp(
            n_inputs,
            self.config.hidden_sizes,
            n_outputs=n_classes,
            seed=self.config.seed,
        )
        self.scaler = StandardScaler()
        self._trainer: Trainer | None = None
        self.history: TrainingHistory | None = None

    def fit(self, x: np.ndarray, labels: np.ndarray, verbose: bool = False) -> "MulticlassMLP":
        """Train on features ``x`` and integer labels in [0, n_classes)."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n_inputs:
            raise ShapeError(f"expected (n, {self.n_inputs}) features, got {x.shape}")
        targets = one_hot(labels, self.n_classes)
        x_scaled = self.scaler.fit_transform(x)
        optimizer = AdamW(
            self.model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._trainer = Trainer(
            self.model,
            optimizer,
            cross_entropy_loss,
            batch_size=self.config.batch_size,
            rng=np.random.default_rng(self.config.seed),
        )
        self.history = self._trainer.fit(
            x_scaled, targets, epochs=self.config.epochs, verbose=verbose
        )
        return self

    def _require_fitted(self) -> Trainer:
        if self._trainer is None:
            raise NotFittedError("MulticlassMLP used before fit")
        return self._trainer

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(n, n_classes)``."""
        trainer = self._require_fitted()
        logits = trainer.predict(self.scaler.transform(np.asarray(x, dtype=float)))
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class per row, shape ``(n,)``."""
        return np.argmax(self.predict_proba(x), axis=1)

    def score(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Multi-class accuracy."""
        labels = np.asarray(labels, dtype=int).ravel()
        predictions = self.predict(x)
        if labels.shape != predictions.shape:
            raise ShapeError("label count mismatch")
        return float(np.mean(predictions == labels))

    def binary_occupancy_score(self, x: np.ndarray, occupancy: np.ndarray) -> float:
        """Accuracy of the induced empty/occupied decision (class 0 vs rest).

        Lets the extension heads be compared against Table IV directly.
        """
        predictions = (self.predict(x) > 0).astype(int)
        return binary_accuracy(np.asarray(occupancy), predictions)
