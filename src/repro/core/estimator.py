"""The unified estimator surface every model family conforms to.

Historically each model grew its own fit/predict shape: the MLP detector
had ``predict_proba`` + ``score``, the baselines had one or the other,
and the fold harness papered over the differences with private wrappers.
:class:`Estimator` pins down the contract once:

* ``fit(x, y)`` — train on a feature matrix and 0/1 labels;
* ``predict(x)`` — hard 0/1 decisions, shape ``(n,)``;
* ``predict_proba(x)`` — P(occupied) per row, shape ``(n,)``;
* ``score(x, y)`` — accuracy on a labelled set.

Conformers: :class:`~repro.core.detector.OccupancyDetector`,
:class:`~repro.baselines.logistic.LogisticRegression`,
:class:`~repro.baselines.forest.RandomForestClassifier`,
:class:`~repro.baselines.knn.KNeighborsClassifier`,
:class:`~repro.baselines.boosting.GradientBoostingClassifier` and the
scaled pipelines in :mod:`repro.baselines.pipeline`.  The serving engine
(:mod:`repro.serve`) accepts any of them interchangeably.

Models that can round-trip to disk additionally satisfy
:class:`PersistentEstimator` (``save``/``load``); neural models delegate
to :mod:`repro.nn.serialize`, the classical ones to plain NPZ archives.
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from ..exceptions import ConfigurationError

#: The method names that define the estimator contract, in call order.
ESTIMATOR_METHODS = ("fit", "predict", "predict_proba", "score")


@runtime_checkable
class Estimator(Protocol):
    """Structural type of every occupancy classifier in the library."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Estimator":  # pragma: no cover
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...

    def predict_proba(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...

    def score(self, x: np.ndarray, y: np.ndarray) -> float:  # pragma: no cover
        ...


@runtime_checkable
class PersistentEstimator(Protocol):
    """An estimator that can round-trip its fitted state to disk."""

    def save(self, path: str | Path) -> Path:  # pragma: no cover
        ...

    def load(self, path: str | Path) -> "PersistentEstimator":  # pragma: no cover
        ...


def validate_estimator(model: object, *, require: tuple[str, ...] = ESTIMATOR_METHODS) -> None:
    """Raise :class:`ConfigurationError` naming any missing protocol methods.

    ``isinstance(model, Estimator)`` answers yes/no; this answers *what is
    missing*, which is the error message an integrator actually needs.
    """
    missing = [name for name in require if not callable(getattr(model, name, None))]
    if missing:
        raise ConfigurationError(
            f"{type(model).__name__} does not satisfy the Estimator protocol: "
            f"missing {', '.join(missing)}"
        )
