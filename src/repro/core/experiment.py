"""Fold-evaluation harness regenerating Tables IV and V.

The protocol follows Section V-B strictly: every model is trained once on
fold 0 and evaluated, without retraining, on each of the five temporally
disjoint test folds.  :class:`OccupancyExperiment` produces Table IV
(occupancy accuracy for Logistic Regression / Random Forest / MLP on
CSI / Env / CSI+Env) and :class:`RegressionExperiment` produces Table V
(linear vs. neural T/H regression from CSI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.forest import RandomForestClassifier
from ..baselines.linear import LinearRegression
from ..baselines.pipeline import ScaledKNN, ScaledLogistic
from ..config import TrainingConfig
from ..data.folds import FoldSplit
from ..exceptions import ConfigurationError
from ..metrics.classification import accuracy
from ..metrics.regression import mae, mape
from .detector import OccupancyDetector
from .features import FeatureSet, extract_features
from .regressor import EnvironmentRegressor

#: Model keys in Table IV column order.
MODEL_NAMES = ("logistic", "random_forest", "mlp")

#: Feature subsets in Table IV column order.
DEFAULT_FEATURE_SETS = (FeatureSet.CSI, FeatureSet.ENV, FeatureSet.CSI_ENV)


@dataclass
class TableIVResult:
    """Accuracy (%) per (model, feature set, fold), plus averages."""

    #: accuracies[model][feature_set] = list of per-fold accuracies in %.
    accuracies: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    fold_indices: list[int] = field(default_factory=list)

    def record(self, model: str, feature_set: FeatureSet, fold_values: list[float]) -> None:
        self.accuracies.setdefault(model, {})[feature_set.label] = fold_values

    def average(self, model: str, feature_set: FeatureSet) -> float:
        """The Table IV 'Avg.' row entry."""
        return float(np.mean(self.accuracies[model][feature_set.label]))

    def rows(self) -> list[dict[str, object]]:
        """Table IV as printable row dicts (one per fold plus the average)."""
        out: list[dict[str, object]] = []
        for i, fold in enumerate(self.fold_indices):
            row: dict[str, object] = {"fold": fold}
            for model, by_feature in self.accuracies.items():
                for label, values in by_feature.items():
                    row[f"{model}/{label}"] = round(values[i], 1)
            out.append(row)
        avg_row: dict[str, object] = {"fold": "Avg."}
        for model, by_feature in self.accuracies.items():
            for label, values in by_feature.items():
                avg_row[f"{model}/{label}"] = round(float(np.mean(values)), 1)
        out.append(avg_row)
        return out


class OccupancyExperiment:
    """Trains the three Table IV models on fold 0, evaluates on folds 1..5.

    Parameters
    ----------
    split:
        The paper's temporal folds.
    training:
        MLP hyper-parameters.
    max_train_rows:
        Optional cap on training rows (uniform stride subsample, preserving
        temporal coverage) so the full grid runs in benchmark time budgets.
    forest_kwargs:
        Overrides for the random-forest baseline.
    start_hour_of_day:
        Campaign wall-clock start, needed by the TIME feature.
    """

    def __init__(
        self,
        split: FoldSplit,
        training: TrainingConfig | None = None,
        max_train_rows: int | None = None,
        forest_kwargs: dict[str, object] | None = None,
        start_hour_of_day: float = 15.13,
    ) -> None:
        self.split = split
        self.training = training or TrainingConfig()
        self.max_train_rows = max_train_rows
        # Shallow trees generalise across the temporal drift between the
        # training days and the held-out day; deeper forests overfit the
        # campaign-specific clutter state (see benchmarks/ ablations).
        self.forest_kwargs: dict[str, object] = {
            "n_estimators": 30,
            "max_depth": 6,
            "max_samples": 20_000,
            "seed": self.training.seed,
        }
        if forest_kwargs:
            self.forest_kwargs.update(forest_kwargs)
        self.start_hour_of_day = start_hour_of_day

    # ---------------------------------------------------------------- pieces

    def _train_matrix(self, feature_set: FeatureSet) -> tuple[np.ndarray, np.ndarray]:
        data = self.split.train.data
        x = extract_features(data, feature_set, self.start_hour_of_day)
        y = data.occupancy
        if self.max_train_rows is not None and x.shape[0] > self.max_train_rows:
            stride = int(np.ceil(x.shape[0] / self.max_train_rows))
            x = x[::stride]
            y = y[::stride]
        return x, y

    def _build_model(self, name: str, n_inputs: int):
        if name == "logistic":
            return ScaledLogistic()
        if name == "random_forest":
            return RandomForestClassifier(**self.forest_kwargs)  # type: ignore[arg-type]
        if name == "mlp":
            return OccupancyDetector(n_inputs, self.training)
        if name == "gradient_boosting":
            from ..baselines.boosting import GradientBoostingClassifier

            return GradientBoostingClassifier(
                n_estimators=40, max_depth=3, subsample=0.7, seed=self.training.seed
            )
        if name == "knn":
            return ScaledKNN()
        raise ConfigurationError(
            f"unknown model {name!r}; known: {MODEL_NAMES + ('gradient_boosting', 'knn')}"
        )

    # ------------------------------------------------------------------- run

    def run(
        self,
        models: tuple[str, ...] = MODEL_NAMES,
        feature_sets: tuple[FeatureSet, ...] = DEFAULT_FEATURE_SETS,
        verbose: bool = False,
    ) -> TableIVResult:
        """Train/evaluate the grid and return the populated Table IV."""
        result = TableIVResult(fold_indices=[f.index for f in self.split.tests])
        for feature_set in feature_sets:
            x_train, y_train = self._train_matrix(feature_set)
            for model_name in models:
                model = self._build_model(model_name, x_train.shape[1])
                if verbose:
                    print(f"training {model_name} on {feature_set.label} "
                          f"({x_train.shape[0]} rows x {x_train.shape[1]} features)")
                model.fit(x_train, y_train)
                fold_accs: list[float] = []
                for fold in self.split.tests:
                    x_test = extract_features(fold.data, feature_set, self.start_hour_of_day)
                    y_pred = model.predict(x_test)
                    fold_accs.append(100.0 * accuracy(fold.data.occupancy, y_pred))
                result.record(model_name, feature_set, fold_accs)
                if verbose:
                    print(f"  folds: {[round(a, 1) for a in fold_accs]}")
        return result

    def run_time_only(self) -> float:
        """The Section V-B time-only ablation (paper reports 89.3 %).

        Uses the MLP on the single hour-of-day feature; returns the mean
        test-fold accuracy in percent.
        """
        x_train, y_train = self._train_matrix(FeatureSet.TIME)
        model = OccupancyDetector(1, self.training)
        model.fit(x_train, y_train)
        accs = []
        for fold in self.split.tests:
            x_test = extract_features(fold.data, FeatureSet.TIME, self.start_hour_of_day)
            accs.append(100.0 * accuracy(fold.data.occupancy, model.predict(x_test)))
        return float(np.mean(accs))


@dataclass
class TableVResult:
    """MAE/MAPE per (model, fold) for temperature and humidity."""

    #: scores[model] = list over folds of score dicts (see
    #: :meth:`EnvironmentRegressor.score` for the keys).
    scores: dict[str, list[dict[str, float]]] = field(default_factory=dict)
    fold_indices: list[int] = field(default_factory=list)

    def average(self, model: str, key: str) -> float:
        """Mean of one metric across folds (the Table V 'Avg.' row)."""
        return float(np.mean([fold[key] for fold in self.scores[model]]))

    def rows(self) -> list[dict[str, object]]:
        """Table V as printable row dicts."""
        out: list[dict[str, object]] = []
        for i, fold in enumerate(self.fold_indices):
            row: dict[str, object] = {"fold": fold}
            for model, folds in self.scores.items():
                s = folds[i]
                row[f"{model} MAE (T/H)"] = (
                    f"{s['mae_temperature']:.2f}/{s['mae_humidity']:.2f}"
                )
                row[f"{model} MAPE (T/H)"] = (
                    f"{s['mape_temperature']:.2f}/{s['mape_humidity']:.2f}"
                )
            out.append(row)
        avg: dict[str, object] = {"fold": "Avg."}
        for model in self.scores:
            avg[f"{model} MAE (T/H)"] = (
                f"{self.average(model, 'mae_temperature'):.2f}/"
                f"{self.average(model, 'mae_humidity'):.2f}"
            )
            avg[f"{model} MAPE (T/H)"] = (
                f"{self.average(model, 'mape_temperature'):.2f}/"
                f"{self.average(model, 'mape_humidity'):.2f}"
            )
        out.append(avg)
        return out


class RegressionExperiment:
    """Linear vs. neural (T, H) regression from CSI (Table V)."""

    def __init__(
        self,
        split: FoldSplit,
        training: TrainingConfig | None = None,
        max_train_rows: int | None = None,
    ) -> None:
        self.split = split
        self.training = training or TrainingConfig()
        self.max_train_rows = max_train_rows

    def _train_xy(self) -> tuple[np.ndarray, np.ndarray]:
        data = self.split.train.data
        x = data.csi
        y = np.column_stack([data.temperature_c, data.humidity_rh])
        if self.max_train_rows is not None and x.shape[0] > self.max_train_rows:
            stride = int(np.ceil(x.shape[0] / self.max_train_rows))
            x = x[::stride]
            y = y[::stride]
        return x, y

    def run(self, verbose: bool = False) -> TableVResult:
        """Fit both regressors on fold 0, score on folds 1..5."""
        x_train, y_train = self._train_xy()
        result = TableVResult(fold_indices=[f.index for f in self.split.tests])

        linear = LinearRegression().fit(x_train, y_train)
        neural = EnvironmentRegressor(x_train.shape[1], self.training)
        neural.fit(x_train, y_train, verbose=verbose)

        for model_name, predictor in (("linear", linear), ("neural", neural)):
            fold_scores: list[dict[str, float]] = []
            for fold in self.split.tests:
                x_test = fold.data.csi
                y_true = np.column_stack([fold.data.temperature_c, fold.data.humidity_rh])
                pred = predictor.predict(x_test)
                fold_scores.append(
                    {
                        "mae_temperature": mae(y_true[:, 0], pred[:, 0]),
                        "mae_humidity": mae(y_true[:, 1], pred[:, 1]),
                        "mape_temperature": 100.0 * mape(y_true[:, 0], pred[:, 0]),
                        "mape_humidity": 100.0 * mape(y_true[:, 1], pred[:, 1]),
                    }
                )
            result.scores[model_name] = fold_scores
        return result
