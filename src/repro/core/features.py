"""Feature subset extraction (the Table IV columns).

The paper trains each model on three subsets of the collected data:
CSI-only (64 amplitudes), Env-only (temperature + humidity) and CSI+Env
(66 features, the full ``F = S(x,t) u S(e,t) u S(h,t)`` of Section IV-B).
Section V-B additionally reports a time-of-day-only ablation (89.3 %
accuracy), which :attr:`FeatureSet.TIME` reproduces.
"""

from __future__ import annotations

import enum

import numpy as np

from ..data.dataset import OccupancyDataset
from ..exceptions import ConfigurationError


class FeatureSet(enum.Enum):
    """Which columns feed the model (Table IV's CSI / Env / C+E)."""

    CSI = "csi"
    ENV = "env"
    CSI_ENV = "csi_env"
    TIME = "time"

    @property
    def label(self) -> str:
        """The column label used in Table IV."""
        return {"csi": "CSI", "env": "Env", "csi_env": "C+E", "time": "Time"}[self.value]


def extract_features(
    dataset: OccupancyDataset,
    feature_set: FeatureSet,
    start_hour_of_day: float = 15.13,
) -> np.ndarray:
    """Build the model input matrix for a feature subset.

    Returns shape ``(n, d)`` with ``d`` = 64 (CSI), 2 (ENV), 66 (CSI_ENV)
    or 1 (TIME, the wall-clock hour encoded cyclically would leak less,
    but the paper uses raw time, so we use the hour-of-day scalar).
    """
    if feature_set is FeatureSet.CSI:
        return dataset.csi.copy()
    if feature_set is FeatureSet.ENV:
        return dataset.environment
    if feature_set is FeatureSet.CSI_ENV:
        return np.column_stack([dataset.csi, dataset.temperature_c, dataset.humidity_rh])
    if feature_set is FeatureSet.TIME:
        hours = (start_hour_of_day + dataset.timestamps_s / 3600.0) % 24.0
        return hours[:, None]
    raise ConfigurationError(f"unknown feature set: {feature_set!r}")


def feature_names(feature_set: FeatureSet, n_subcarriers: int = 64) -> list[str]:
    """Human-readable names per column (Figure 3's x axis)."""
    csi = [f"a{i}" for i in range(n_subcarriers)]
    if feature_set is FeatureSet.CSI:
        return csi
    if feature_set is FeatureSet.ENV:
        return ["e", "h"]  # the paper's temperature / humidity symbols
    if feature_set is FeatureSet.CSI_ENV:
        return [*csi, "e", "h"]
    if feature_set is FeatureSet.TIME:
        return ["hour_of_day"]
    raise ConfigurationError(f"unknown feature set: {feature_set!r}")
