"""The occupancy detector: the paper's end-to-end pipeline.

:class:`OccupancyDetector` packages feature scaling, the Section IV-B MLP,
AdamW training with BCE (Eq. 4 via its stable logits form), prediction and
Grad-CAM explanation behind a scikit-learn-style interface:

>>> detector = OccupancyDetector(n_inputs=64)
>>> detector.fit(x_train, y_train)            # doctest: +SKIP
>>> accuracy = detector.score(x_test, y_test) # doctest: +SKIP
>>> importance = detector.explain(x_probe)    # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from ..baselines.scaler import StandardScaler
from ..config import TrainingConfig
from ..exceptions import NotFittedError, ShapeError
from ..metrics.classification import accuracy
from ..nn.losses import bce_with_logits_loss
from ..nn.optim import AdamW
from ..nn.serialize import load_state_dict, save_state_dict
from ..nn.train import Trainer, TrainerCallback, TrainingHistory
from ..xai.gradcam import GradCAM, GradCAMResult
from .model_zoo import build_paper_mlp


class OccupancyDetector:
    """Binary occupancy classifier around the paper's MLP.

    Parameters
    ----------
    n_inputs:
        Input feature width (64 for CSI, 2 for Env, 66 for CSI+Env).
    config:
        Training hyper-parameters; defaults to the paper's (10 epochs,
        lr 5e-3, AdamW weight decay).
    """

    def __init__(self, n_inputs: int, config: TrainingConfig | None = None) -> None:
        self.config = config or TrainingConfig()
        self.n_inputs = n_inputs
        self.model = build_paper_mlp(
            n_inputs, self.config.hidden_sizes, n_outputs=1, seed=self.config.seed
        )
        self.scaler = StandardScaler()
        self._trainer: Trainer | None = None
        self.history: TrainingHistory | None = None

    # ------------------------------------------------------------------- fit

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        callbacks: Sequence[TrainerCallback] | None = None,
        verbose: bool = False,
    ) -> "OccupancyDetector":
        """Train on features ``x`` and binary labels ``y``.

        ``callbacks`` are forwarded to :meth:`repro.nn.train.Trainer.fit`
        (e.g. :class:`repro.serve.metrics.TrainingMetricsCallback` to
        record per-epoch loss/timing in a metrics registry).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n_inputs:
            raise ShapeError(f"expected (n, {self.n_inputs}) features, got {x.shape}")
        x_scaled = self.scaler.fit_transform(x)
        x_val_scaled = self.scaler.transform(x_val) if x_val is not None else None

        optimizer = AdamW(
            self.model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._trainer = Trainer(
            self.model,
            optimizer,
            bce_with_logits_loss,
            batch_size=self.config.batch_size,
            rng=np.random.default_rng(self.config.seed),
        )
        self.history = self._trainer.fit(
            x_scaled,
            np.asarray(y, dtype=float),
            epochs=self.config.epochs,
            x_val=x_val_scaled,
            y_val=np.asarray(y_val, dtype=float) if y_val is not None else None,
            callbacks=callbacks,
            verbose=verbose,
        )
        return self

    def partial_fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        lr_scale: float = 0.1,
        balanced: bool = True,
    ) -> "OccupancyDetector":
        """Continue training on new data without restarting (online mode).

        The paper argues for the MLP over the random forest partly because
        "an MLP model can be trained continuously.  There is no need to use
        the whole dataset again but only new data, which can also arrive in
        real-time, thus doing online training" (Section V-B).  This keeps
        the existing optimizer state and the original feature scaling, so
        a deployed detector can absorb a new day's labelled snippets.

        Two guards against catastrophic forgetting, both defaults:

        * ``lr_scale`` damps the learning rate (10x smaller than training);
        * ``balanced`` caps the majority class of the snippet at twice the
          minority class.  Online snippets are rarely balanced — a night
          of empty labels at full weight would drag the decision boundary
          toward "empty" and ruin the occupied recall fold 0 taught.
        """
        if lr_scale <= 0:
            raise ShapeError("lr_scale must be positive")
        trainer = self._require_fitted()
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2 or x.shape[1] != self.n_inputs:
            raise ShapeError(f"expected (n, {self.n_inputs}) features, got {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ShapeError(f"{x.shape[0]} rows but {y.shape[0]} labels")

        if balanced:
            pos = np.flatnonzero(y == 1)
            neg = np.flatnonzero(y == 0)
            if pos.size and neg.size:
                cap = 2 * min(pos.size, neg.size)
                rng = np.random.default_rng(self.config.seed)
                if pos.size > cap:
                    pos = rng.choice(pos, size=cap, replace=False)
                if neg.size > cap:
                    neg = rng.choice(neg, size=cap, replace=False)
                keep = np.sort(np.concatenate([pos, neg]))
                x, y = x[keep], y[keep]

        x_scaled = self.scaler.transform(x)
        base_lr = trainer.optimizer.lr
        trainer.optimizer.lr = base_lr * lr_scale
        try:
            history = trainer.fit(x_scaled, y, epochs=epochs)
        finally:
            trainer.optimizer.lr = base_lr
        assert self.history is not None
        self.history.train_loss.extend(history.train_loss)
        return self

    def _require_fitted(self) -> Trainer:
        if self._trainer is None:
            raise NotFittedError("OccupancyDetector used before fit")
        return self._trainer

    # --------------------------------------------------------------- predict

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(occupied) per row, shape ``(n,)``."""
        trainer = self._require_fitted()
        logits = trainer.predict(self.scaler.transform(np.asarray(x, dtype=float)))
        return 1.0 / (1.0 + np.exp(-np.clip(logits.ravel(), -500, 500)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 decisions at the 0.5 threshold."""
        return (self.predict_proba(x) >= 0.5).astype(int)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set (the Table IV metric)."""
        return accuracy(np.asarray(y), self.predict(x))

    # --------------------------------------------------------------- explain

    def explain(self, x_probe: np.ndarray, target_class: int = 1) -> GradCAMResult:
        """Grad-CAM feature importances over a probe batch (Figure 3)."""
        self._require_fitted()
        scaled = self.scaler.transform(np.asarray(x_probe, dtype=float))
        return GradCAM(self.model).explain(scaled, target_class)

    # ----------------------------------------------------------- persistence

    def save(self, path: str | Path) -> Path:
        """Persist model weights and the fitted scaler."""
        self._require_fitted()
        path = Path(path)
        save_state_dict(self.model, path)
        scaler_path = path.with_suffix(".scaler.npz")
        np.savez_compressed(scaler_path, **self.scaler.state)
        return path

    def load(self, path: str | Path) -> "OccupancyDetector":
        """Restore a detector saved with :meth:`save`."""
        path = Path(path)
        load_state_dict(self.model, path)
        with np.load(path.with_suffix(".scaler.npz")) as archive:
            self.scaler = StandardScaler.from_state(
                {"mean": archive["mean"], "scale": archive["scale"]}
            )
        optimizer = AdamW(
            self.model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._trainer = Trainer(
            self.model, optimizer, bce_with_logits_loss, batch_size=self.config.batch_size
        )
        return self

    # ------------------------------------------------------------- reporting

    def n_parameters(self) -> int:
        """Trainable parameter count (Section IV-B reports ~78 k)."""
        return self.model.n_parameters()
