"""The paper's primary contribution as a clean public API.

* :mod:`repro.core.features` — the three feature subsets of Table IV
  (CSI-only, Env-only, CSI+Env) plus the time-of-day ablation feature;
* :mod:`repro.core.model_zoo` — the 4-layer MLP of Section IV-B;
* :mod:`repro.core.detector` — :class:`OccupancyDetector`, the end-to-end
  fit/predict/explain pipeline;
* :mod:`repro.core.regressor` — :class:`EnvironmentRegressor`,
  temperature/humidity estimation from CSI (Section V-D);
* :mod:`repro.core.experiment` — the fold-evaluation harness that
  regenerates Tables IV and V;
* :mod:`repro.core.multiclass` / :mod:`repro.core.counter` /
  :mod:`repro.core.activity` — the extension heads: occupant counting
  and the Section VI future-work activity-recognition task;
* :mod:`repro.core.unsupervised` — the label-free variance-threshold
  baseline;
* :mod:`repro.core.estimator` — the :class:`Estimator` protocol every
  model family (detector, baselines, scaled pipelines) conforms to.
"""

from .estimator import Estimator, PersistentEstimator, validate_estimator
from .features import FeatureSet, extract_features, feature_names
from .model_zoo import build_paper_mlp, paper_layer_parameter_counts
from .detector import OccupancyDetector
from .regressor import EnvironmentRegressor
from .multiclass import MulticlassMLP
from .counter import OccupantCounter
from .activity import ActivityRecognizer, ACTIVITY_LABELS
from .unsupervised import VarianceThresholdDetector
from .experiment import (
    OccupancyExperiment,
    RegressionExperiment,
    TableIVResult,
    TableVResult,
)

__all__ = [
    "Estimator",
    "PersistentEstimator",
    "validate_estimator",
    "FeatureSet",
    "extract_features",
    "feature_names",
    "build_paper_mlp",
    "paper_layer_parameter_counts",
    "OccupancyDetector",
    "EnvironmentRegressor",
    "MulticlassMLP",
    "OccupantCounter",
    "ActivityRecognizer",
    "ACTIVITY_LABELS",
    "VarianceThresholdDetector",
    "OccupancyExperiment",
    "RegressionExperiment",
    "TableIVResult",
    "TableVResult",
]
