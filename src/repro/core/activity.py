"""Activity recognition: the paper's stated future work (Section VI).

"For future work, we intend to design an ML model that simultaneously
performs occupancy detection and activity recognition, with a particular
emphasis on finding those activities which can be reliably detected."

:class:`ActivityRecognizer` does exactly that on the simulated campaign:
a 4-way softmax head over {empty, walking, standing, sitting} that
*simultaneously* solves occupancy (empty vs rest) and activity.  The
companion :meth:`reliability_report` answers the paper's emphasis —
which activities can be reliably detected — by reporting per-class
recall: walking perturbs the channel strongly (high recall), while a
seated body is nearly static and much harder to tell from furniture.
"""

from __future__ import annotations

import numpy as np

from ..config import TrainingConfig
from ..exceptions import ShapeError
from .multiclass import MulticlassMLP

#: Label order of the activity head.
ACTIVITY_LABELS = ("empty", "walking", "standing", "sitting")


class ActivityRecognizer:
    """Joint occupancy + activity classifier over CSI amplitudes."""

    def __init__(self, n_inputs: int = 64, config: TrainingConfig | None = None) -> None:
        self._head = MulticlassMLP(n_inputs, len(ACTIVITY_LABELS), config)

    def fit(self, x: np.ndarray, activity: np.ndarray, verbose: bool = False) -> "ActivityRecognizer":
        """Train on features and activity codes 0..3."""
        activity = np.asarray(activity, dtype=int).ravel()
        if np.any((activity < 0) | (activity >= len(ACTIVITY_LABELS))):
            raise ShapeError("activity codes must be within 0..3")
        self._head.fit(x, activity, verbose=verbose)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted activity code per row."""
        return self._head.predict(x)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Activity distribution per row, shape ``(n, 4)``."""
        return self._head.predict_proba(x)

    def score(self, x: np.ndarray, activity: np.ndarray) -> float:
        """4-way accuracy."""
        return self._head.score(x, activity)

    def occupancy_score(self, x: np.ndarray, occupancy: np.ndarray) -> float:
        """Accuracy of the simultaneous occupancy decision (class 0 vs rest)."""
        return self._head.binary_occupancy_score(x, occupancy)

    def confusion(self, x: np.ndarray, activity: np.ndarray) -> np.ndarray:
        """4x4 confusion matrix, rows = truth, columns = prediction."""
        activity = np.asarray(activity, dtype=int).ravel()
        predictions = self.predict(x)
        if activity.shape != predictions.shape:
            raise ShapeError("label count mismatch")
        n = len(ACTIVITY_LABELS)
        matrix = np.zeros((n, n), dtype=int)
        np.add.at(matrix, (activity, predictions), 1)
        return matrix

    def reliability_report(self, x: np.ndarray, activity: np.ndarray) -> dict[str, float]:
        """Per-activity recall — "which activities can be reliably detected".

        Classes absent from the evaluation data are omitted.
        """
        matrix = self.confusion(x, activity)
        report: dict[str, float] = {}
        for code, label in enumerate(ACTIVITY_LABELS):
            support = matrix[code].sum()
            if support:
                report[label] = float(matrix[code, code] / support)
        return report
