"""Occupant counting: how many people are in the room?

The paper's related work ([2], [3], [12], [13]) counts occupants rather
than just detecting presence, and the paper's own Table II shows the
simultaneous-presence distribution the simulator reproduces.
:class:`OccupantCounter` extends the Section IV-B MLP with a
(max_count+1)-way softmax head over CSI amplitudes.

Counting is strictly harder than detection — bodies at different spots
partially cancel in the channel — so expected accuracies sit below
Table IV's, with most confusion between adjacent counts.  The
``count_mae`` metric captures that: being off by one person is much
better than being off by four.
"""

from __future__ import annotations

import numpy as np

from ..config import TrainingConfig
from ..exceptions import ConfigurationError, ShapeError
from .multiclass import MulticlassMLP


class OccupantCounter:
    """Estimates the simultaneous occupant count from CSI amplitudes."""

    def __init__(
        self,
        n_inputs: int = 64,
        max_count: int = 4,
        config: TrainingConfig | None = None,
    ) -> None:
        if max_count < 1:
            raise ConfigurationError("max_count must be >= 1")
        self.max_count = max_count
        self._head = MulticlassMLP(n_inputs, max_count + 1, config)

    def fit(self, x: np.ndarray, counts: np.ndarray, verbose: bool = False) -> "OccupantCounter":
        """Train on features and ground-truth counts (clipped to max_count)."""
        counts = np.asarray(counts, dtype=int).ravel()
        if np.any(counts < 0):
            raise ShapeError("counts must be >= 0")
        clipped = np.minimum(counts, self.max_count)
        self._head.fit(x, clipped, verbose=verbose)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted occupant count per row, in ``0..max_count``."""
        return self._head.predict(x)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Count distribution per row, shape ``(n, max_count + 1)``."""
        return self._head.predict_proba(x)

    def expected_count(self, x: np.ndarray) -> np.ndarray:
        """Probability-weighted (fractional) count — smoother than argmax."""
        proba = self.predict_proba(x)
        return proba @ np.arange(self.max_count + 1)

    def score(self, x: np.ndarray, counts: np.ndarray) -> dict[str, float]:
        """Exact-count accuracy, within-one accuracy and count MAE."""
        counts = np.minimum(np.asarray(counts, dtype=int).ravel(), self.max_count)
        predictions = self.predict(x)
        if counts.shape != predictions.shape:
            raise ShapeError("count array length mismatch")
        errors = np.abs(predictions - counts)
        return {
            "accuracy": float(np.mean(errors == 0)),
            "within_one": float(np.mean(errors <= 1)),
            "count_mae": float(np.mean(errors)),
        }

    def occupancy_score(self, x: np.ndarray, occupancy: np.ndarray) -> float:
        """Accuracy of the induced binary decision (count > 0)."""
        return self._head.binary_occupancy_score(x, occupancy)
