"""Unsupervised occupancy detection: do you even need learning?

Before reaching for a trained model, a WiFi-sensing engineer would try
the classic label-free detector: empty rooms are quasi-static, so a
moving-variance statistic of the CSI amplitudes with a threshold
calibrated on a known-empty interval already separates the classes.
:class:`VarianceThresholdDetector` implements that baseline; comparing it
against Table IV's trained models shows where each stands — on this
simulator the motion statistic is strong, while the trained models add
per-frame decisions, drift robustness, and the quiet-sitter case that
pure motion energy underserves.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError


class VarianceThresholdDetector:
    """Label-free occupancy detector from short-window CSI variance.

    Parameters
    ----------
    window:
        Rows per variance window (at 20 Hz, 20 rows = 1 s of motion
        statistics).
    quantile:
        Calibration sets the threshold at this quantile of the empty
        reference's statistic times ``margin``.
    margin:
        Multiplicative headroom above the empty-reference quantile.
    """

    def __init__(self, window: int = 10, quantile: float = 0.99, margin: float = 1.5) -> None:
        if window < 2:
            raise ConfigurationError("window must be >= 2")
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError("quantile must be in (0, 1)")
        if margin <= 0:
            raise ConfigurationError("margin must be positive")
        self.window = window
        self.quantile = quantile
        self.margin = margin
        self.threshold_: float | None = None

    def _statistic(self, csi: np.ndarray) -> np.ndarray:
        """Per-row motion statistic: mean over subcarriers of the local
        standard deviation in a trailing window."""
        csi = np.asarray(csi, dtype=float)
        if csi.ndim != 2:
            raise ShapeError(f"csi must be (n, d), got {csi.shape}")
        n = csi.shape[0]
        if n < self.window:
            raise ShapeError(f"need at least window={self.window} rows, got {n}")
        # Trailing-window std via cumulative sums (O(n d)).
        c1 = np.cumsum(np.vstack([np.zeros((1, csi.shape[1])), csi]), axis=0)
        c2 = np.cumsum(np.vstack([np.zeros((1, csi.shape[1])), csi**2]), axis=0)
        w = self.window
        out = np.empty(n)
        # For the first w-1 rows use the available prefix.
        for i in range(n):
            lo = max(0, i - w + 1)
            count = i + 1 - lo
            mean = (c1[i + 1] - c1[lo]) / count
            var = np.maximum((c2[i + 1] - c2[lo]) / count - mean**2, 0.0)
            out[i] = float(np.mean(np.sqrt(var)))
        return out

    def fit_reference(self, empty_csi: np.ndarray) -> "VarianceThresholdDetector":
        """Calibrate the threshold on a known-empty reference interval.

        This is the only supervision the method needs — one empty night,
        which any deployment can collect by construction.
        """
        statistic = self._statistic(empty_csi)
        self.threshold_ = float(np.quantile(statistic, self.quantile) * self.margin)
        return self

    def decision_statistic(self, csi: np.ndarray) -> np.ndarray:
        """The raw motion statistic per row (for diagnostics/plots)."""
        return self._statistic(csi)

    def predict(self, csi: np.ndarray) -> np.ndarray:
        """0/1 occupancy per row."""
        if self.threshold_ is None:
            raise NotFittedError("calibrate with fit_reference() first")
        return (self._statistic(csi) > self.threshold_).astype(int)

    def score(self, csi: np.ndarray, occupancy: np.ndarray) -> float:
        """Accuracy against labels (evaluation only — fit needs none)."""
        occupancy = np.asarray(occupancy, dtype=int).ravel()
        predictions = self.predict(csi)
        if occupancy.shape != predictions.shape:
            raise ShapeError("label count mismatch")
        return float(np.mean(predictions == occupancy))
