"""Stream-time deadline budgets for in-flight frames.

A frame's answer loses its value with age: in live occupancy sensing a
2-second-old probability is actionable, a 30-second-old one is noise
that still costs a GEMM slot.  The deadline budget makes that explicit —
every admitted frame carries ``deadline_s = t_s + budget``, the serving
paths shed expired frames **at dequeue** with a ``frame.deadline_expired``
event (cheaper than serving them, attributable in the ledger), and the
overload-bench gate uses :func:`check_served_within_deadline` to prove
the complement: no frame that *was* served ever violated its budget.

Deadlines are stream time end to end (the same clock as the micro-batch
latency trigger and the breaker cooldowns), so expiry decisions replay
byte-identically.
"""

from __future__ import annotations

import math

from ..exceptions import ConfigError, DeadlineError


def deadline_for(t_s: float, budget_s: float | None) -> float:
    """The absolute stream-time deadline of a frame stamped ``t_s``.

    ``None`` (no budget configured) maps to ``+inf`` — the frame never
    expires, which keeps the no-deadline configuration a strict no-op.
    """
    if budget_s is None:
        return math.inf
    if budget_s <= 0:
        raise ConfigError(f"deadline budget must be positive, got {budget_s}")
    return float(t_s) + float(budget_s)


def expired(deadline_s: float, now_s: float) -> bool:
    """True when a frame carrying ``deadline_s`` is dead at ``now_s``."""
    return now_s > deadline_s


def check_served_within_deadline(results, now_s: float, budget_s: float | None) -> int:
    """Invariant check: every served result met its deadline budget.

    ``results`` is any iterable of objects with ``t_s`` (the engine's
    :class:`~repro.serve.engine.InferenceResult`); ``now_s`` is the
    stream time at which they were emitted.  Returns the number checked;
    raises :class:`~repro.exceptions.DeadlineError` naming the first
    violator.  With no budget every answer trivially passes.
    """
    n = 0
    for result in results:
        n += 1
        if budget_s is not None and expired(deadline_for(result.t_s, budget_s), now_s):
            raise DeadlineError(
                f"frame {getattr(result, 'frame_id', '?')} "
                f"(tenant {getattr(result, 'link_id', '?')!r}, t={result.t_s:.3f}s) "
                f"was served {now_s - result.t_s:.3f}s after submission, "
                f"beyond its {budget_s:g}s deadline budget"
            )
    return n
