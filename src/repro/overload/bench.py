"""The ``overload-bench`` harness: serving honesty under saturation.

Drives a deterministic **open-loop** arrival process — one hot tenant
whose rate square-waves between its base rate and ``skew`` times a cold
tenant's rate, beside several steady cold tenants — through four arms:

* ``unprotected`` engine — no overload plane: the control arm, where the
  hot tenant's bursts anonymously evict cold tenants' frames and late
  answers are served anyway;
* ``protected`` engine — per-tenant token buckets, deadline budgets,
  per-link queue credit and the saturation governor, with service
  capacity above the *reserved* admission load, so the plane's only
  visible action is typed refusal of the hot tenant's excess;
* ``governed`` engine — same protection plus a mid-run **service stall**
  (the pump stops for a few seconds, modelling a downstream outage);
  backlog saturates the queue, the governor walks the degradation
  ladder, deadline sheds clear the stale backlog, and jittered probes
  step the surface back down once calm returns;
* ``fleet`` — the multi-tenant surface with the same protection,
  tick-driven.

Arrivals, service and every policy clock are **stream time**, so a
same-seed run reproduces every admission, shed and mode transition
exactly.  CI gates only on the deterministic invariants:

* **ledger reconciliation** — per arm, the observer's event-side ledger
  balances to zero unaccounted frames, and the serving surface's own
  per-tenant tallies (``link_stats`` / ``counters``) agree with it cause
  by cause (rate_limited / overflow / deadline_expired / shed / …);
* **deadline honesty** — no frame is ever *served* past its budget
  (expired frames must be shed, never answered);
* **fairness** — in the protected arms a cold tenant under its reserved
  rate is never rate-limited and loses no frames to the hot tenant's
  10:1 bursts, while the hot tenant's excess is refused in volume;
* **ladder walk** — the governed arm's governor escalates at least once,
  probes recovery at least once, and ends below its peak severity.

Throughput and latency numbers are reported but never gated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..benchkit import DEFAULT_SEED
from ..exceptions import ConfigurationError, DeadlineError
from ..fastpath.plan import InferencePlan
from ..nn.modules import Linear, ReLU, Sequential
from ..obs.observer import Observer
from ..serve.config import ServeConfig
from ..serve.engine import InferenceEngine
from .deadline import check_served_within_deadline
from .governor import OverloadPolicy

#: Shed causes the per-arm breakdown reports, in ledger order.
SHED_CAUSES = (
    "rejected",
    "quarantined",
    "policy_rejected",
    "stale",
    "overflow",
    "rate_limited",
    "deadline_expired",
    "shed",
)


@dataclass(frozen=True)
class OverloadTraffic:
    """The deterministic arrival schedule every arm replays."""

    #: ``(t_s, tenant_id, row_index)`` triples, time-ordered.
    arrivals: tuple[tuple[float, str, int], ...]
    #: Row pool indexed by ``row_index``.
    rows: np.ndarray
    #: Per-tenant arrival counts.
    per_tenant: dict[str, int]
    hot_tenant: str
    cold_tenants: tuple[str, ...]


def make_traffic(
    *,
    duration_s: float,
    step_s: float,
    n_cold: int,
    cold_hz: float,
    hot_base_hz: float,
    hot_burst_hz: float,
    burst_period_s: float,
    burst_duty: float,
    n_inputs: int,
    seed: int,
) -> OverloadTraffic:
    """Build the open-loop schedule: square-wave hot bursts over steady cold.

    Per-tenant fractional accumulators make the emission exact for any
    ``step_s`` — ``rate * duration`` frames arrive, no drift, regardless
    of how the step grid divides the rates.
    """
    hot = "hot"
    cold = tuple(f"cold-{i}" for i in range(n_cold))
    tenants = (hot,) + cold
    rng = np.random.default_rng(seed)
    rows = rng.normal(size=(256, n_inputs))

    def rate_at(tenant: str, t: float) -> float:
        if tenant != hot:
            return cold_hz
        return hot_burst_hz if (t % burst_period_s) < burst_period_s * burst_duty else hot_base_hz

    arrivals: list[tuple[float, str, int]] = []
    acc = dict.fromkeys(tenants, 0.0)
    row_i = 0
    for step in range(int(round(duration_s / step_s))):
        t0 = step * step_s
        batch: list[tuple[float, str]] = []
        for tenant in tenants:
            acc[tenant] += rate_at(tenant, t0) * step_s
            emit = int(acc[tenant])
            if emit:
                acc[tenant] -= emit
                for k in range(emit):
                    batch.append((t0 + (k + 0.5) * step_s / (emit + 1), tenant))
        batch.sort()  # interleave tenants by in-step time, deterministically
        for t, tenant in batch:
            arrivals.append((t, tenant, row_i % len(rows)))
            row_i += 1
    per_tenant = dict.fromkeys(tenants, 0)
    for _, tenant, _ in arrivals:
        per_tenant[tenant] += 1
    return OverloadTraffic(
        arrivals=tuple(arrivals),
        rows=rows,
        per_tenant=per_tenant,
        hot_tenant=hot,
        cold_tenants=cold,
    )


@dataclass
class ArmReport:
    """Everything one arm's replay measured."""

    name: str
    arrivals: dict[str, int]
    answered: dict[str, int]
    shed_by_cause: dict[str, int]
    goodput_hz: dict[str, float]
    #: tenant → {"p50_ms", "p99_ms"} of stream-time serve latency.
    latency_ms: dict[str, dict[str, float]]
    ledger_reconciled: bool
    counters_reconciled: bool
    deadline_violations: int
    rate_limited: dict[str, int]
    governor: dict | None = None
    peak_severity: int = 0
    final_severity: int = 0


def _percentiles(samples: list[float]) -> dict[str, float]:
    if not samples:
        return {"p50_ms": float("nan"), "p99_ms": float("nan")}
    arr = np.asarray(samples)
    return {
        "p50_ms": float(np.percentile(arr, 50.0)),
        "p99_ms": float(np.percentile(arr, 99.0)),
    }


def _reconcile_engine(engine: InferenceEngine, observer: Observer) -> tuple[bool, bool]:
    """(ledger balanced, engine tallies agree with the event ledger)."""
    ledger = observer.ledger()
    ledger_ok = ledger["unaccounted"] == 0 and ledger["pending"] == 0
    totals = dict.fromkeys(SHED_CAUSES, 0)
    answered = 0
    for link_id in engine.link_ids:
        stats = engine.link_stats(link_id)
        answered += stats["frames_out"]
        totals["rejected"] += stats["rejected"]
        totals["quarantined"] += stats["quarantined"]
        totals["policy_rejected"] += stats["policy_rejected"]
        totals["stale"] += stats["stale_dropped"]
        totals["overflow"] += stats["overflow"]
        totals["rate_limited"] += stats["rate_limited"]
        totals["deadline_expired"] += stats["deadline_expired"]
        totals["shed"] += stats["overload_shed"]
    counters_ok = answered == ledger["answered"] and all(
        totals[cause] == ledger[cause] for cause in SHED_CAUSES
    )
    return ledger_ok, counters_ok


def _run_engine_arm(
    name: str,
    traffic: OverloadTraffic,
    config: ServeConfig,
    plan: InferencePlan,
    *,
    duration_s: float,
    step_s: float,
    service_hz: float,
    stall: tuple[float, float] | None = None,
) -> ArmReport:
    """Replay the schedule against one engine with a finite service pump."""
    observer = config.observer
    engine = InferenceEngine(plan, config)
    engine.attach_fastpath(plan)

    budget_s = engine.deadline_s
    answered = dict.fromkeys(traffic.per_tenant, 0)
    latencies: dict[str, list[float]] = {t: [] for t in traffic.per_tenant}
    deadline_violations = 0
    peak_severity = 0
    service_acc = 0.0
    arrival_i = 0
    arrivals = traffic.arrivals
    n_steps = int(round(duration_s / step_s))

    def consume(results, now: float) -> None:
        nonlocal deadline_violations
        for result in results:
            answered[result.link_id] += 1
            latencies[result.link_id].append(1000.0 * (now - result.t_s))
        try:
            check_served_within_deadline(results, now, budget_s)
        except DeadlineError:
            deadline_violations += sum(
                1 for r in results if budget_s is not None and now - r.t_s > budget_s
            )

    for step in range(n_steps):
        t_end = (step + 1) * step_s
        while arrival_i < len(arrivals) and arrivals[arrival_i][0] < t_end:
            t, tenant, row_i = arrivals[arrival_i]
            engine.submit_frame(tenant, t, traffic.rows[row_i])
            arrival_i += 1
        stalled = stall is not None and stall[0] <= t_end < stall[1]
        if not stalled:
            service_acc += service_hz * step_s
            n_serve = int(service_acc)
            if n_serve:
                service_acc -= n_serve
                consume(engine.pump(n_serve, now_s=t_end), t_end)
        peak_severity = max(peak_severity, engine.mode.severity)
    # Shutdown flush: everything still pending is served (or shed by its
    # deadline) so the ledger closes with zero pending frames.
    consume(engine.flush(), duration_s)
    peak_severity = max(peak_severity, engine.mode.severity)

    ledger_ok, counters_ok = _reconcile_engine(engine, observer)
    shed = dict.fromkeys(SHED_CAUSES, 0)
    rate_limited = {}
    for link_id in engine.link_ids:
        stats = engine.link_stats(link_id)
        rate_limited[link_id] = stats["rate_limited"]
        shed["rejected"] += stats["rejected"]
        shed["quarantined"] += stats["quarantined"]
        shed["policy_rejected"] += stats["policy_rejected"]
        shed["stale"] += stats["stale_dropped"]
        shed["overflow"] += stats["overflow"]
        shed["rate_limited"] += stats["rate_limited"]
        shed["deadline_expired"] += stats["deadline_expired"]
        shed["shed"] += stats["overload_shed"]
    return ArmReport(
        name=name,
        arrivals=dict(traffic.per_tenant),
        answered=answered,
        shed_by_cause=shed,
        goodput_hz={t: n / duration_s for t, n in answered.items()},
        latency_ms={t: _percentiles(s) for t, s in latencies.items()},
        ledger_reconciled=ledger_ok,
        counters_reconciled=counters_ok,
        deadline_violations=deadline_violations,
        rate_limited=rate_limited,
        governor=None if engine.governor is None else engine.governor.snapshot(),
        peak_severity=peak_severity,
        final_severity=engine.mode.severity,
    )


def _run_fleet_arm(
    traffic: OverloadTraffic,
    config: ServeConfig,
    plan: InferencePlan,
    *,
    duration_s: float,
    step_s: float,
) -> ArmReport:
    """Replay the schedule against the tick-driven fleet surface."""
    from ..fleet.service import Fleet  # deferred: keep bench importable alone

    observers: dict[str, Observer] = {}
    pending_ids = list(traffic.per_tenant)

    def observer_factory() -> Observer:
        observer = Observer(label=pending_ids[len(observers)])
        observers[observer.label] = observer
        return observer

    fleet = Fleet(config, observer_factory=observer_factory)
    for tenant in traffic.per_tenant:
        fleet.attach(tenant, plan)

    budget_s = fleet.deadline_s
    answered = dict.fromkeys(traffic.per_tenant, 0)
    latencies: dict[str, list[float]] = {t: [] for t in traffic.per_tenant}
    deadline_violations = 0
    arrival_i = 0
    arrivals = traffic.arrivals

    def consume(results, now: float) -> None:
        nonlocal deadline_violations
        for result in results:
            answered[result.tenant_id] += 1
            latencies[result.tenant_id].append(1000.0 * (now - result.t_s))
        try:
            check_served_within_deadline(results, now, budget_s)
        except DeadlineError:
            deadline_violations += sum(
                1 for r in results if budget_s is not None and now - r.t_s > budget_s
            )

    for step in range(int(round(duration_s / step_s))):
        t_end = (step + 1) * step_s
        while arrival_i < len(arrivals) and arrivals[arrival_i][0] < t_end:
            t, tenant, row_i = arrivals[arrival_i]
            fleet.submit(tenant, t, traffic.rows[row_i])
            arrival_i += 1
        consume(fleet.tick(t_end), t_end)
    consume(fleet.flush(), duration_s)

    ledger_ok = True
    counters_ok = True
    shed = dict.fromkeys(SHED_CAUSES, 0)
    rate_limited = {}
    for tenant in traffic.per_tenant:
        ledger = fleet.ledger(tenant)
        counters = fleet.counters(tenant)
        if ledger["unaccounted"] or ledger["pending"]:
            ledger_ok = False
        pairs = (
            ("answered", counters["frames_out"]),
            ("rejected", counters["rejected"]),
            ("quarantined", counters["quarantined"]),
            ("policy_rejected", counters["policy_rejected"]),
            ("stale", counters["stale_dropped"]),
            ("overflow", counters["overflow_dropped"]),
            ("rate_limited", counters["rate_limited"]),
            ("deadline_expired", counters["deadline_expired"]),
            ("shed", counters["overload_shed"]),
        )
        if any(ledger[cause] != value for cause, value in pairs):
            counters_ok = False
        rate_limited[tenant] = counters["rate_limited"]
        for cause, value in pairs[1:]:
            shed[cause] += value
    return ArmReport(
        name="fleet",
        arrivals=dict(traffic.per_tenant),
        answered=answered,
        shed_by_cause=shed,
        goodput_hz={t: n / duration_s for t, n in answered.items()},
        latency_ms={t: _percentiles(s) for t, s in latencies.items()},
        ledger_reconciled=ledger_ok,
        counters_reconciled=counters_ok,
        deadline_violations=deadline_violations,
        rate_limited=rate_limited,
        governor=None if fleet.governor is None else fleet.governor.snapshot(),
        peak_severity=0 if fleet.governor is None else fleet.mode.severity,
        final_severity=0 if fleet.governor is None else fleet.mode.severity,
    )


@dataclass
class OverloadBenchReport:
    """Everything one overload-bench run measured, plus its gate verdicts."""

    duration_s: float
    n_cold: int
    cold_hz: float
    hot_base_hz: float
    hot_burst_hz: float
    reserved_hz: float
    service_hz: float
    deadline_ms: float
    skew: float
    seed: int
    quick: bool
    unprotected: ArmReport
    protected: ArmReport
    governed: ArmReport
    fleet: ArmReport
    fairness_ok: bool = True
    fairness_detail: dict = field(default_factory=dict)

    # ----------------------------------------------------------------- gates

    @property
    def reconciled(self) -> bool:
        """Every arm's ledger balances and agrees with surface tallies."""
        return all(
            arm.ledger_reconciled and arm.counters_reconciled for arm in self._arms()
        )

    @property
    def deadline_honest(self) -> bool:
        """No arm ever served a frame past its deadline budget."""
        return all(arm.deadline_violations == 0 for arm in self._arms())

    @property
    def ladder_walked(self) -> bool:
        """The governed arm escalated, probed recovery, and stepped down."""
        snap = self.governed.governor
        return (
            snap is not None
            and snap["escalations"] >= 1
            and snap["probes"] >= 1
            and self.governed.peak_severity >= 1
            and self.governed.final_severity < self.governed.peak_severity
        )

    @property
    def passed(self) -> bool:
        return (
            self.reconciled
            and self.deadline_honest
            and self.fairness_ok
            and self.ladder_walked
        )

    def _arms(self) -> tuple[ArmReport, ...]:
        return (self.unprotected, self.protected, self.governed, self.fleet)

    # ---------------------------------------------------------------- output

    def describe(self) -> str:
        hot = "hot"

        def goodput(arm: ArmReport) -> str:
            cold = sum(v for t, v in arm.answered.items() if t != hot)
            return (
                f"hot {arm.answered.get(hot, 0):5d}/{arm.arrivals.get(hot, 0)}"
                f"  cold {cold:5d}/{sum(v for t, v in arm.arrivals.items() if t != hot)}"
            )

        def sheds(arm: ArmReport) -> str:
            parts = [f"{k}={v}" for k, v in arm.shed_by_cause.items() if v]
            return ", ".join(parts) if parts else "none"

        lines = [
            f"traffic             : 1 hot + {self.n_cold} cold tenants, "
            f"{self.skew:g}:1 burst skew, {self.duration_s:g} s @ seed {self.seed}"
            + (" (quick)" if self.quick else ""),
            f"policy              : reserved {self.reserved_hz:g} Hz/tenant, "
            f"deadline {self.deadline_ms:g} ms, service {self.service_hz:g} fps",
        ]
        for arm in self._arms():
            gov = ""
            if arm.governor is not None:
                gov = (
                    f", governor {arm.governor['mode']} "
                    f"({arm.governor['escalations']} esc/"
                    f"{arm.governor['probes']} probes)"
                )
            lines.append(f"--- {arm.name}")
            lines.append(f"  served            : {goodput(arm)}")
            lines.append(f"  shed breakdown    : {sheds(arm)}{gov}")
            p99s = [v["p99_ms"] for v in arm.latency_ms.values() if v["p99_ms"] == v["p99_ms"]]
            if p99s:
                lines.append(f"  worst tenant p99  : {max(p99s):.0f} ms (stream time)")
        lines += [
            f"ledger reconciliation: {'OK' if self.reconciled else 'FAILED'}",
            f"deadline honesty     : {'OK' if self.deadline_honest else 'FAILED'}",
            f"fairness (reserved)  : {'OK' if self.fairness_ok else 'FAILED'}",
            f"degradation ladder   : {'OK' if self.ladder_walked else 'FAILED'}",
            f"overall              : {'PASSED' if self.passed else 'FAILED'}",
        ]
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON payload for ``BENCH_overload.json`` (CLI adds the envelope)."""

        def arm_json(arm: ArmReport) -> dict:
            return {
                "arrivals": arm.arrivals,
                "answered": arm.answered,
                "shed_by_cause": arm.shed_by_cause,
                "goodput_hz": arm.goodput_hz,
                "latency_ms": arm.latency_ms,
                "rate_limited": arm.rate_limited,
                "ledger_reconciled": arm.ledger_reconciled,
                "counters_reconciled": arm.counters_reconciled,
                "deadline_violations": arm.deadline_violations,
                "governor": arm.governor,
                "peak_severity": arm.peak_severity,
                "final_severity": arm.final_severity,
            }

        return {
            "bench": "overload-bench",
            "traffic": {
                "duration_s": self.duration_s,
                "n_cold": self.n_cold,
                "cold_hz": self.cold_hz,
                "hot_base_hz": self.hot_base_hz,
                "hot_burst_hz": self.hot_burst_hz,
                "skew": self.skew,
            },
            "policy": {
                "reserved_hz": self.reserved_hz,
                "service_hz": self.service_hz,
                "deadline_ms": self.deadline_ms,
            },
            "arms": {arm.name: arm_json(arm) for arm in self._arms()},
            "gates": {
                "ledger_reconciled": self.reconciled,
                "deadline_honest": self.deadline_honest,
                "fairness_ok": self.fairness_ok,
                "ladder_walked": self.ladder_walked,
                "passed": self.passed,
            },
            "fairness": self.fairness_detail,
        }


def _check_fairness(
    traffic: OverloadTraffic, arms: list[ArmReport]
) -> tuple[bool, dict]:
    """The reserved-rate invariant on every protected arm.

    A cold tenant arriving under its reserved rate must be admitted and
    answered in full — zero refusals, zero losses — no matter what the
    hot tenant does; the hot tenant's burst excess must show up as typed
    ``rate_limited`` refusals rather than anyone else's missing frames.
    """
    ok = True
    detail: dict = {}
    for arm in arms:
        cold_fair = all(
            arm.rate_limited[tenant] == 0
            and arm.answered[tenant] == arm.arrivals[tenant]
            for tenant in traffic.cold_tenants
        )
        hot_limited = arm.rate_limited[traffic.hot_tenant]
        detail[arm.name] = {
            "cold_fair": cold_fair,
            "hot_rate_limited": hot_limited,
        }
        if not cold_fair or hot_limited == 0:
            ok = False
    return ok, detail


def run_overload_bench(
    *,
    duration_s: float = 120.0,
    step_s: float = 0.05,
    n_cold: int = 3,
    cold_hz: float = 5.0,
    hot_base_hz: float = 5.0,
    skew: float = 10.0,
    burst_period_s: float = 20.0,
    burst_duty: float = 0.5,
    reserved_hz: float = 8.0,
    burst_credit: float = 16.0,
    service_hz: float = 30.0,
    deadline_ms: float = 2000.0,
    queue_capacity: int = 64,
    queue_credit: int = 32,
    max_batch: int = 16,
    stall_s: float = 10.0,
    n_inputs: int = 16,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> OverloadBenchReport:
    """Run the full overload benchmark; see the module docstring.

    ``quick`` shrinks the run to a third of the duration for CI smoke
    runs while keeping every gate — all four invariants are exact,
    scale-independent properties of the stream-time replay.
    """
    if duration_s <= 0 or step_s <= 0 or duration_s < 4 * burst_period_s:
        raise ConfigurationError(
            "need duration_s >= 4 burst periods and positive step_s"
        )
    if n_cold < 1:
        raise ConfigurationError("n_cold must be >= 1")
    if not cold_hz < reserved_hz:
        raise ConfigurationError(
            "fairness gate needs cold_hz < reserved_hz (cold tenants must "
            "arrive under their reserved rate)"
        )
    if service_hz <= n_cold * cold_hz + reserved_hz:
        raise ConfigurationError(
            "protected arm needs service_hz above the reserved admission "
            f"load ({n_cold * cold_hz + reserved_hz:g} fps)"
        )
    if quick:
        duration_s = min(duration_s, 80.0)
        stall_s = min(stall_s, 8.0)

    traffic = make_traffic(
        duration_s=duration_s,
        step_s=step_s,
        n_cold=n_cold,
        cold_hz=cold_hz,
        hot_base_hz=hot_base_hz,
        hot_burst_hz=skew * cold_hz,
        burst_period_s=burst_period_s,
        burst_duty=burst_duty,
        n_inputs=n_inputs,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    plan = InferencePlan.from_model(
        Sequential(
            Linear(n_inputs, 16, rng=rng), ReLU(), Linear(16, 1, rng=rng)
        )
    )

    def base_config(**overrides) -> ServeConfig:
        return ServeConfig(
            max_batch=max_batch,
            max_latency_ms=None,
            queue_capacity=queue_capacity,
            auto_flush=False,
            observer=Observer(),
            **overrides,
        )

    protected_knobs = dict(
        rate_limit_hz=reserved_hz,
        rate_limit_burst=burst_credit,
        deadline_ms=deadline_ms,
        queue_credit=queue_credit,
        overload=OverloadPolicy(seed=seed),
    )

    unprotected = _run_engine_arm(
        "unprotected", traffic, base_config(), plan,
        duration_s=duration_s, step_s=step_s, service_hz=service_hz,
    )
    protected = _run_engine_arm(
        "protected", traffic, base_config(**protected_knobs), plan,
        duration_s=duration_s, step_s=step_s, service_hz=service_hz,
    )
    stall_at = round(0.35 * duration_s / burst_period_s) * burst_period_s
    governed = _run_engine_arm(
        "governed", traffic, base_config(**protected_knobs), plan,
        duration_s=duration_s, step_s=step_s, service_hz=service_hz,
        stall=(stall_at, stall_at + stall_s),
    )
    fleet = _run_fleet_arm(
        traffic,
        # Tick-driven service has no pump; auto_flush is irrelevant there.
        base_config(**protected_knobs).with_overrides(observer=None),
        plan,
        duration_s=duration_s,
        step_s=step_s,
    )

    fairness_ok, fairness_detail = _check_fairness(traffic, [protected, fleet])
    return OverloadBenchReport(
        duration_s=duration_s,
        n_cold=n_cold,
        cold_hz=cold_hz,
        hot_base_hz=hot_base_hz,
        hot_burst_hz=skew * cold_hz,
        reserved_hz=reserved_hz,
        service_hz=service_hz,
        deadline_ms=deadline_ms,
        skew=skew,
        seed=seed,
        quick=quick,
        unprotected=unprotected,
        protected=protected,
        governed=governed,
        fleet=fleet,
        fairness_ok=fairness_ok,
        fairness_detail=fairness_detail,
    )
