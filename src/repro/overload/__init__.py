"""Overload control plane: admission, deadlines, graceful degradation.

The :mod:`repro.guard` subsystem keeps the serving stack alive through
*faults*; this package keeps it honest under *load*.  Three composable
pieces, threaded through :class:`~repro.serve.engine.InferenceEngine`
and :class:`~repro.fleet.service.Fleet` via
:class:`~repro.serve.config.ServeConfig`:

* :mod:`~repro.overload.limiter` — per-tenant stream-time token buckets;
  over-rate frames get a typed ``"rate_limited"`` ticket outcome instead
  of anonymously evicting someone else's frame later;
* :mod:`~repro.overload.deadline` — frames carry a stream-time deadline
  budget and are shed at dequeue (``frame.deadline_expired``) rather
  than served stale;
* :mod:`~repro.overload.governor` — a saturation governor stepping the
  surface through FULL → FASTPATH_ONLY → FALLBACK_ONLY → SHED with
  hysteresis and jittered recovery probing.

:mod:`~repro.overload.bench` drives both surfaces with bursty,
hot-tenant-skewed open-loop traffic and gates on the deterministic
invariants (exact shed-cause ledger reconciliation, zero stale serves,
the reserved-rate fairness bound) — never on speed.
"""

from .deadline import check_served_within_deadline, deadline_for, expired
from .governor import OverloadPolicy, SaturationGovernor, ServiceMode
from .limiter import RateLimiter, TokenBucket

__all__ = [
    "OverloadBenchReport",
    "OverloadPolicy",
    "RateLimiter",
    "SaturationGovernor",
    "ServiceMode",
    "TokenBucket",
    "check_served_within_deadline",
    "deadline_for",
    "expired",
    "run_overload_bench",
]


def __getattr__(name: str):
    # Lazy: the bench imports the serving surfaces, which import this
    # package's policy modules — eager re-export would be circular.
    if name in ("OverloadBenchReport", "run_overload_bench"):
        from . import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
