"""Per-tenant admission control: stream-time token buckets.

Before this module the only backpressure the serving stack had was
anonymous: the engine's bounded queue (and the fleet's per-tenant rings)
evicted the *oldest* pending frame when full, so a chatty room starved
its neighbours and the shed load was unattributable at admission time.
:class:`RateLimiter` moves the first line of defence to the front door —
every tenant owns a :class:`TokenBucket` refilled in **stream time**
(frame timestamps, never wall clock), and a frame that finds the bucket
empty is refused with a typed ``"rate_limited"`` outcome instead of
silently displacing someone else's frame later.

The bucket rate doubles as the tenant's **reserved rate**: admission of
a within-rate tenant never depends on any other tenant's behaviour, which
is the fairness invariant overload-bench gates on (a 10:1 hot tenant
cannot push a cold tenant below its reserved goodput).

Stream-time refill keeps the limiter deterministic: a same-seed replay
admits and refuses byte-identically, and simulations run faster than
real time without distorting the policy.
"""

from __future__ import annotations

from ..exceptions import ConfigError, RateLimitError


class TokenBucket:
    """Classic token bucket, refilled by stream-time elapsed seconds.

    Parameters
    ----------
    rate_hz:
        Sustained admission rate — tokens added per stream second.
    burst:
        Bucket depth — the bounded credit a quiet tenant accumulates.
        Defaults to ``max(1.0, rate_hz)`` so a tenant can always spend
        at least one frame and roughly one second of its rate at once.
    """

    def __init__(self, rate_hz: float, burst: float | None = None) -> None:
        if rate_hz <= 0:
            raise ConfigError(f"rate_hz must be positive, got {rate_hz}")
        if burst is None:
            burst = max(1.0, float(rate_hz))
        if burst < 1:
            raise ConfigError(f"burst must be >= 1 token, got {burst}")
        self.rate_hz = float(rate_hz)
        self.burst = float(burst)
        self._tokens = self.burst
        self._last_s: float | None = None

    def _refill(self, now_s: float) -> None:
        if self._last_s is None:
            self._last_s = now_s
            return
        elapsed = now_s - self._last_s
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate_hz)
            self._last_s = now_s

    def available(self, now_s: float) -> float:
        """Tokens spendable at stream time ``now_s`` (refills first)."""
        self._refill(float(now_s))
        return self._tokens

    def try_take(self, now_s: float, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if the bucket holds them; False otherwise."""
        self._refill(float(now_s))
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


class RateLimiter:
    """A map of per-tenant :class:`TokenBucket`\\ s behind one policy.

    Parameters
    ----------
    rate_hz / burst:
        Default bucket parameters for every tenant (see
        :class:`TokenBucket`).
    overrides:
        Optional ``tenant_id -> rate_hz`` map for tenants whose reserved
        rate differs from the default (their burst defaults from their
        own rate).
    """

    def __init__(
        self,
        rate_hz: float,
        burst: float | None = None,
        *,
        overrides: dict[str, float] | None = None,
    ) -> None:
        # Validate the defaults eagerly so a bad policy fails at
        # configuration time, not on the first admitted frame.
        TokenBucket(rate_hz, burst)
        self.rate_hz = float(rate_hz)
        self.burst = burst
        self.overrides = dict(overrides) if overrides else {}
        for tenant_id, tenant_rate in self.overrides.items():
            if tenant_rate <= 0:
                raise ConfigError(
                    f"override rate for {tenant_id!r} must be positive, "
                    f"got {tenant_rate}"
                )
        self._buckets: dict[str, TokenBucket] = {}
        self._limited: dict[str, int] = {}

    def reserved_hz(self, tenant_id: str) -> float:
        """The sustained rate this tenant is guaranteed admission at."""
        return self.overrides.get(tenant_id, self.rate_hz)

    def _bucket(self, tenant_id: str) -> TokenBucket:
        bucket = self._buckets.get(tenant_id)
        if bucket is None:
            if tenant_id in self.overrides:
                bucket = TokenBucket(self.overrides[tenant_id])
            else:
                bucket = TokenBucket(self.rate_hz, self.burst)
            self._buckets[tenant_id] = bucket
        return bucket

    def admit(self, tenant_id: str, now_s: float) -> bool:
        """Spend one token for this tenant; False means RATE_LIMITED."""
        admitted = self._bucket(tenant_id).try_take(now_s)
        if not admitted:
            self._limited[tenant_id] = self._limited.get(tenant_id, 0) + 1
        return admitted

    def require(self, tenant_id: str, now_s: float) -> None:
        """Strict admission: raise :class:`RateLimitError` on refusal."""
        if not self.admit(tenant_id, now_s):
            raise RateLimitError(
                f"tenant {tenant_id!r} exceeded its reserved rate "
                f"({self.reserved_hz(tenant_id):g} Hz)"
            )

    def limited(self, tenant_id: str) -> int:
        """Lifetime refusals charged to one tenant."""
        return self._limited.get(tenant_id, 0)

    @property
    def limited_total(self) -> int:
        """Lifetime refusals across every tenant."""
        return sum(self._limited.values())

    def snapshot(self) -> dict:
        """JSON-friendly diagnostic state for reports and tests."""
        return {
            "rate_hz": self.rate_hz,
            "burst": self.burst,
            "tenants": len(self._buckets),
            "limited_total": self.limited_total,
            "limited_by_tenant": dict(self._limited),
        }
