"""The saturation governor: an explicit graceful-degradation ladder.

Unmanaged overload fails implicitly — queues wrap, tail latency
collapses, and the first visible symptom is a page.  The
:class:`SaturationGovernor` makes the failure mode a *policy*: it watches
EWMAs of queue depth and queue wait and steps the serving surface
through four explicit modes,

    FULL -> FASTPATH_ONLY -> FALLBACK_ONLY -> SHED

each rung trading answer fidelity for capacity:

* **FULL** — the normal path: primary tier, drift scoring, everything.
* **FASTPATH_ONLY** — serve from the frozen fastpath plan (when one is
  attached) and skip per-batch drift scoring; full-precision answers,
  minus the python-side guard overhead.
* **FALLBACK_ONLY** — serve the cheap fallback tier only (the engine's
  prior/threshold predictor; the fleet caps each tenant at a small
  degraded quota per tick).
* **SHED** — drop batches at dequeue with a typed ``frame.shed``
  outcome; an explicit, attributable refusal beats a stale answer.

Escalation is immediate (saturation is an emergency); recovery is
deliberately sticky — the score must sit below the rung's entry
threshold minus a hysteresis margin for ``hold_ticks`` consecutive
observations *and* a jittered, exponentially backed-off probe cooldown
must have elapsed, so a fleet of replicas neither flaps between modes
nor probes recovery in lockstep.  All timing is **stream time** and the
jitter generator is seeded: a same-seed replay walks the ladder
byte-identically.

The governor composes with, never bypasses, the existing
:class:`~repro.guard.breaker.CircuitBreaker` and
:class:`~repro.guard.supervisor.RecoverySupervisor`: mode selects the
*preferred* tier, the supervisor still vetoes a broken one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigError


class ServiceMode(enum.Enum):
    """The degradation ladder, mildest first."""

    FULL = "full"
    FASTPATH_ONLY = "fastpath_only"
    FALLBACK_ONLY = "fallback_only"
    SHED = "shed"

    @property
    def severity(self) -> int:
        """Rung height: 0 (FULL) .. 3 (SHED)."""
        return _LADDER.index(self)


#: The ladder in escalation order.
_LADDER = (
    ServiceMode.FULL,
    ServiceMode.FASTPATH_ONLY,
    ServiceMode.FALLBACK_ONLY,
    ServiceMode.SHED,
)


@dataclass(frozen=True)
class OverloadPolicy:
    """Declarative governor policy (thresholds, hysteresis, probing).

    Saturation is a dimensionless score in ``[0, inf)``: the max of the
    queue-depth EWMA over capacity and the queue-wait EWMA over the
    latency budget (when one is known).  1.0 means "running exactly at
    the configured bound".
    """

    #: Saturation at which each rung engages (must be increasing).
    fastpath_at: float = 0.5
    fallback_at: float = 0.75
    shed_at: float = 0.9
    #: Recovery margin: leave a rung only below ``enter - hysteresis``.
    hysteresis: float = 0.1
    #: EWMA smoothing factor for depth and wait (1.0 = no smoothing).
    alpha: float = 0.3
    #: Consecutive calm observations required before a recovery probe.
    hold_ticks: int = 3
    #: Stream-time cooldown before the first recovery probe...
    probe_cooldown_s: float = 2.0
    #: ...multiplied by this per re-escalation without a full recovery...
    backoff_factor: float = 2.0
    #: ...up to this ceiling.
    max_cooldown_s: float = 60.0
    #: Fractional cooldown jitter (0.1 -> +/-10 %), seeded for replay.
    jitter: float = 0.1
    seed: int = 0
    #: FALLBACK_ONLY frames served per tenant per fleet tick.
    degraded_quota: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.fastpath_at <= self.fallback_at <= self.shed_at:
            raise ConfigError(
                "need 0 < fastpath_at <= fallback_at <= shed_at, got "
                f"{self.fastpath_at}/{self.fallback_at}/{self.shed_at}"
            )
        if self.hysteresis < 0:
            raise ConfigError("hysteresis must be >= 0")
        if not 0 < self.alpha <= 1:
            raise ConfigError("alpha must be in (0, 1]")
        if self.hold_ticks < 1:
            raise ConfigError("hold_ticks must be >= 1")
        if self.probe_cooldown_s <= 0 or self.max_cooldown_s < self.probe_cooldown_s:
            raise ConfigError("need 0 < probe_cooldown_s <= max_cooldown_s")
        if self.backoff_factor < 1:
            raise ConfigError("backoff_factor must be >= 1")
        if not 0 <= self.jitter < 1:
            raise ConfigError("jitter must be in [0, 1)")
        if self.degraded_quota < 1:
            raise ConfigError("degraded_quota must be >= 1")

    def enter_threshold(self, mode: ServiceMode) -> float:
        """The saturation score at which ``mode`` engages."""
        return {
            ServiceMode.FULL: 0.0,
            ServiceMode.FASTPATH_ONLY: self.fastpath_at,
            ServiceMode.FALLBACK_ONLY: self.fallback_at,
            ServiceMode.SHED: self.shed_at,
        }[mode]


class SaturationGovernor:
    """Steps one serving surface through the degradation ladder.

    Parameters
    ----------
    policy:
        The :class:`OverloadPolicy`; ``None`` uses the defaults.
    capacity:
        Queue capacity the depth EWMA is normalised by; mutable, the
        fleet rescales it as tenants attach and detach.
    latency_budget_s:
        Stream-time budget the wait EWMA is normalised by (typically the
        deadline or micro-batch latency budget); ``None`` makes the
        score depth-only.
    registry / observer:
        Metrics and event sinks, duck-typed like the supervisor's; both
        may also be bound later via ``bind_registry``/``bind_observer``.
    """

    def __init__(
        self,
        policy: OverloadPolicy | None = None,
        *,
        capacity: int,
        latency_budget_s: float | None = None,
        registry=None,
        observer=None,
    ) -> None:
        if capacity < 1:
            raise ConfigError("capacity must be >= 1")
        if latency_budget_s is not None and latency_budget_s <= 0:
            raise ConfigError("latency_budget_s must be positive (or None)")
        self.policy = policy if policy is not None else OverloadPolicy()
        self.capacity = int(capacity)
        self.latency_budget_s = latency_budget_s
        self.registry = registry
        self.observer = observer
        self._rng = np.random.default_rng(self.policy.seed)
        self._mode = ServiceMode.FULL
        self._depth_ewma = 0.0
        self._wait_ewma = 0.0
        self._calm_ticks = 0
        self._escalation_streak = 0  # re-escalations without full recovery
        self._next_probe_s = -np.inf
        #: Lifetime mode transitions, escalations and recovery probes.
        self.mode_changes = 0
        self.escalations = 0
        self.probes = 0

    def bind_registry(self, registry) -> None:
        """Adopt the engine's metrics registry unless one was given."""
        if self.registry is None:
            self.registry = registry

    def bind_observer(self, observer) -> None:
        """Adopt the engine's observer unless one was given."""
        if self.observer is None:
            self.observer = observer

    # ------------------------------------------------------------- state

    @property
    def mode(self) -> ServiceMode:
        return self._mode

    @property
    def saturation(self) -> float:
        """The current smoothed saturation score."""
        score = self._depth_ewma / self.capacity
        if self.latency_budget_s is not None:
            score = max(score, self._wait_ewma / self.latency_budget_s)
        return score

    # ----------------------------------------------------------- observe

    def observe(self, depth: int, wait_s: float, now_s: float) -> ServiceMode:
        """Feed one (queue depth, oldest wait) sample; returns the mode.

        Called once per batch/tick by the serving surface.  Escalation
        happens immediately; recovery steps down one rung per probe.
        """
        a = self.policy.alpha
        self._depth_ewma += a * (float(depth) - self._depth_ewma)
        self._wait_ewma += a * (max(0.0, float(wait_s)) - self._wait_ewma)
        score = self.saturation

        target = ServiceMode.FULL
        for mode in _LADDER[1:]:
            if score >= self.policy.enter_threshold(mode):
                target = mode
        if target.severity > self._mode.severity:
            self._escalate(target, score, now_s)
        elif target.severity < self._mode.severity:
            self._maybe_recover(score, now_s)
        else:
            self._calm_ticks = 0
        self._publish()
        return self._mode

    def _escalate(self, target: ServiceMode, score: float, now_s: float) -> None:
        self._transition(target, score, now_s)
        self._calm_ticks = 0
        cooldown = min(
            self.policy.max_cooldown_s,
            self.policy.probe_cooldown_s
            * self.policy.backoff_factor**self._escalation_streak,
        )
        if self.policy.jitter:
            cooldown *= 1.0 + self.policy.jitter * float(self._rng.uniform(-1.0, 1.0))
        self._next_probe_s = now_s + cooldown
        self._escalation_streak += 1
        self.escalations += 1
        if self.registry is not None:
            self.registry.counter("governor_escalations_total").inc()

    def _maybe_recover(self, score: float, now_s: float) -> None:
        calm_below = self.policy.enter_threshold(self._mode) - self.policy.hysteresis
        if score >= calm_below:
            self._calm_ticks = 0
            return
        self._calm_ticks += 1
        if self._calm_ticks < self.policy.hold_ticks or now_s < self._next_probe_s:
            return
        # Probe recovery: step down exactly one rung and re-arm the hold,
        # so a still-saturated system re-escalates (growing the backoff)
        # instead of free-falling back to FULL.
        target = _LADDER[self._mode.severity - 1]
        self.probes += 1
        if self.registry is not None:
            self.registry.counter("governor_probes_total").inc()
        self._event("governor.probe", now_s, to=target.value, saturation=score)
        self._transition(target, score, now_s)
        self._calm_ticks = 0
        self._next_probe_s = now_s + self.policy.probe_cooldown_s
        if target is ServiceMode.FULL:
            self._escalation_streak = 0

    def _transition(self, target: ServiceMode, score: float, now_s: float) -> None:
        previous, self._mode = self._mode, target
        self.mode_changes += 1
        if self.registry is not None:
            self.registry.counter("governor_mode_changes_total").inc()
        self._event(
            "governor.mode_change",
            now_s,
            previous=previous.value,
            mode=target.value,
            saturation=score,
        )

    def _event(self, kind: str, t_s: float, **data) -> None:
        observer = self.observer
        if observer is not None and observer.enabled:
            observer.emit(kind, t_s=t_s, **data)

    def _publish(self) -> None:
        if self.registry is not None:
            self.registry.gauge("governor_mode").set(self._mode.severity)
            self.registry.gauge("governor_saturation").set(self.saturation)

    def snapshot(self) -> dict:
        """JSON-friendly diagnostic state for reports and tests."""
        return {
            "mode": self._mode.value,
            "saturation": float(self.saturation),
            "depth_ewma": float(self._depth_ewma),
            "wait_ewma_s": float(self._wait_ewma),
            "mode_changes": self.mode_changes,
            "escalations": self.escalations,
            "probes": self.probes,
            "escalation_streak": self._escalation_streak,
            "next_probe_s": float(self._next_probe_s),
        }
