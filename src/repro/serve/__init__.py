"""Online serving: micro-batched streaming inference with observability.

The deployment story of the paper (Section V) is a live CSI stream feeding
a small model on constrained hardware.  This subpackage is the serving
loop around any :class:`~repro.core.estimator.Estimator`:

* :mod:`repro.serve.queue` — bounded ring-buffer admission queue with the
  micro-batching flush policy (``max_batch`` / ``max_latency_ms``);
* :mod:`repro.serve.engine` — :class:`InferenceEngine`, the multi-link
  batched inference loop with per-link smoothing/debounce;
* :mod:`repro.serve.robustness` — fallback predictors and per-link
  :class:`LinkHealth` states;
* :mod:`repro.serve.metrics` — the counters/gauges/histograms registry
  shared with the training loop;
* :mod:`repro.serve.bench` — the ``serve-bench`` harness comparing
  per-frame and micro-batched throughput.

Frame-level tracing lives one package over, in :mod:`repro.obs`: pass
``InferenceEngine(est, ServeConfig(observer=Observer()))`` to record
per-stage spans and structured events.  The default is the no-op
:data:`~repro.obs.NULL_OBSERVER` — every instrumentation site is gated
on ``observer.enabled``, so an untraced engine does no timing work.
"""

from .adaptive import AdaptiveBatcher
from .arena import FrameArena, SlotRef
from .bench import ServeBenchReport, run_serve_bench
from .config import ServeConfig
from .engine import InferenceEngine, InferenceResult
from .types import TICKET_OUTCOMES, FrameTicket
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TrainingMetricsCallback,
)
from .queue import MicroBatchQueue, PendingFrame
from .robustness import (
    EnvThresholdFallback,
    FallbackPredictor,
    LinkHealth,
    PriorFallback,
)

__all__ = [
    "AdaptiveBatcher",
    "FrameArena",
    "SlotRef",
    "InferenceEngine",
    "InferenceResult",
    "ServeConfig",
    "FrameTicket",
    "TICKET_OUTCOMES",
    "MicroBatchQueue",
    "PendingFrame",
    "LinkHealth",
    "FallbackPredictor",
    "PriorFallback",
    "EnvThresholdFallback",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TrainingMetricsCallback",
    "ServeBenchReport",
    "run_serve_bench",
]
