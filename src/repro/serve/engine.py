"""The micro-batched streaming inference engine.

Frames from one or many links enter :meth:`InferenceEngine.submit`; the
engine accumulates them in a bounded :class:`~repro.serve.queue.MicroBatchQueue`,
flushes when the batch fills or the oldest frame's latency budget expires,
runs a single vectorized ``predict_proba`` over the whole batch, and
routes each probability back to its link's
:class:`~repro.data.streaming.SmoothingDebouncer`.  Compared with the
frame-at-a-time :class:`~repro.data.streaming.StreamingDetector`, the
per-frame Python/autograd overhead is amortised over the batch — the
``serve-bench`` CLI command measures the resulting frames/s gap.

Degradation is explicit rather than accidental:

* queue overflow evicts the oldest frame (counted, never an exception);
* non-finite frames are rejected at admission (counted per link);
* frames older than ``stale_after_s`` at flush time are dropped and the
  link marked DEGRADED — late answers are worse than no answers;
* a primary-model exception reroutes the batch to the fallback predictor
  (see :mod:`repro.serve.robustness`) instead of killing the stream;
* DEGRADED is not a terminal state: the next batch a link completes from
  the *primary* model flips it back to HEALTHY and increments the
  ``link_recovered_total`` counter — an outage or fallback stretch ends
  the moment good answers flow again.

The engine also hosts the :mod:`repro.overload` control plane, all of it
off by default and a strict no-op until configured:

* ``rate_limit_hz`` puts a stream-time token bucket in front of every
  link; over-rate frames get a typed ``"rate_limited"`` ticket outcome
  at the front door instead of anonymously evicting a neighbour later;
* ``deadline_ms`` stamps every admitted frame with an absolute
  stream-time deadline; expired frames are shed at dequeue
  (``frame.deadline_expired``) rather than served stale;
* ``queue_credit`` bounds each link's share of the queue — a link over
  its credit evicts *its own* oldest frame, keeping backpressure
  attributable;
* an ``overload`` policy attaches a
  :class:`~repro.overload.governor.SaturationGovernor` that steps the
  engine through FULL → FASTPATH_ONLY → FALLBACK_ONLY → SHED as queue
  depth/wait EWMAs saturate, composing with (never bypassing) the
  supervisor's circuit breakers.

The engine optionally composes with the :mod:`repro.guard` subsystem:

* a :class:`~repro.guard.validation.FrameValidator` gates admission with
  a richer check chain (width, amplitude envelope, timestamp
  monotonicity, environment plausibility); refused frames land in a
  bounded :class:`~repro.guard.validation.QuarantineBuffer` with the
  verdict attached instead of vanishing;
* a :class:`~repro.guard.repair.GapRepairer` fills short per-link
  dropouts with synthetic frames, each flagged ``repaired`` end to end;
* a :class:`~repro.guard.supervisor.RecoverySupervisor` decides per
  batch which tier serves (primary / fallback / reject) from circuit
  breakers and a drift sentinel, and owns the link-health transition
  rule.  The default supervisor is a strict passthrough, so an engine
  built without guard components behaves exactly as before.

Every decision increments the engine's :class:`~repro.serve.metrics.MetricsRegistry`.

Accountability goes beyond counters: ``submit`` assigns every frame a
monotonic **frame id** (threaded through
:class:`~repro.serve.queue.PendingFrame` to :class:`InferenceResult`),
and when a live :class:`~repro.obs.observer.Observer` is attached the
engine records per-frame trace spans (wall time per stage: validate →
repair → enqueue → queue_wait → supervise → predict → emit) and emits
structured, stream-time-stamped events for every quarantine, gap fill,
overflow eviction, stale drop, batch flush, policy rejection and link
recovery.  The default observer is the no-op
:data:`~repro.obs.observer.NULL_OBSERVER`; every timing block hides
behind its ``enabled`` flag, so an untraced engine performs no clock
reads beyond the pre-existing batch-latency measurement and tier-1
throughput is untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.estimator import validate_estimator
from ..data.streaming import SmoothingDebouncer, Transition, check_csi_row
from ..exceptions import (
    ConfigError,
    ConfigurationError,
    ServingError,
    ShapeError,
    StreamError,
)
from ..guard.repair import GapRepairer
from ..guard.supervisor import RecoverySupervisor, ServingMode
from ..guard.validation import FrameValidator, QuarantineBuffer, QuarantinedFrame
from ..obs.observer import NULL_OBSERVER
from ..overload.deadline import deadline_for, expired
from ..overload.governor import SaturationGovernor, ServiceMode
from ..overload.limiter import RateLimiter
from .adaptive import AdaptiveBatcher
from .arena import FrameArena
from .config import ServeConfig
from .metrics import MetricsRegistry
from .queue import MicroBatchQueue, PendingFrame
from .robustness import FallbackPredictor, LinkHealth, PriorFallback
from .types import FrameTicket

#: Sentinel distinguishing "caller passed nothing" from explicit ``None``
#: for the removed per-knob keyword arguments (kept so a legacy call site
#: fails with a typed migration error instead of a bare ``TypeError``).
_UNSET = object()


@dataclass(frozen=True)
class InferenceResult:
    """One completed frame: probability, smoothed state, optional event."""

    link_id: str
    t_s: float
    probability: float
    state: int
    transition: Transition | None
    #: "primary", "fallback" or "fastpath" — which tier produced the
    #: probability (fastpath = the frozen plan, full-precision answers).
    source: str
    #: True when the frame was synthesised by the gap repairer.
    repaired: bool = False
    #: The monotonic id ``submit`` assigned to this frame — the key that
    #: joins the result to its trace spans and events in :mod:`repro.obs`.
    frame_id: int = -1

    @property
    def tenant_id(self) -> str:
        """Alias for :attr:`link_id` — the fleet layer's tenant naming.

        Single-engine code says "link", the fleet says "tenant"; results
        answer to both so downstream consumers read one field name.
        """
        return self.link_id


class _LinkState:
    """Per-link serving context: debouncer, health, bookkeeping."""

    def __init__(self, window: int, hold_frames: int) -> None:
        self.debouncer = SmoothingDebouncer(window, hold_frames)
        self.health = LinkHealth.IDLE
        self.frames_in = 0
        self.frames_out = 0
        self.fallback_frames = 0
        self.stale_dropped = 0
        self.rejected = 0
        self.quarantined = 0
        self.repaired = 0
        self.policy_rejected = 0
        # Overload control plane tallies (always zero when unconfigured).
        self.rate_limited = 0
        self.deadline_expired = 0
        self.overflow = 0
        self.overload_shed = 0


class InferenceEngine:
    """Micro-batched, multi-link, failure-tolerant occupancy inference.

    Parameters
    ----------
    estimator:
        Any fitted :class:`~repro.core.estimator.Estimator`; only
        ``predict_proba`` is called.
    config:
        A :class:`~repro.serve.config.ServeConfig` bundling every knob
        below.  This is the *only* way to configure an engine: the
        pre-PR-6 per-knob keyword arguments were deprecated for one
        release and now raise a typed
        :class:`~repro.exceptions.ConfigError` whose message names the
        offending kwargs and the ``ServeConfig`` field each one maps to
        (same names, e.g. ``InferenceEngine(est, ServeConfig(max_batch=8))``).
    max_batch / max_latency_ms / queue_capacity:
        Micro-batching policy (see :class:`~repro.serve.queue.MicroBatchQueue`).
        Latency is measured in *stream* time (frame timestamps);
        ``max_latency_ms=None`` flushes on ``max_batch`` only
        (backlogged / offline-reprocessing mode).
    window / hold_frames:
        Per-link smoothing/debounce, identical semantics to
        :class:`~repro.data.streaming.StreamingDetector`.
    stale_after_s:
        Frames older than this at flush time are dropped (``None``
        disables the policy).
    fallback:
        Predictor used when the primary raises; defaults to
        :class:`~repro.serve.robustness.PriorFallback`.
    registry:
        Metrics sink; a private one is created when not shared.
    validator:
        Optional :class:`~repro.guard.validation.FrameValidator` run on
        every submitted frame after the basic shape/finite gate; failed
        frames are parked in :attr:`quarantine` and counted, never
        enqueued.
    repairer:
        Optional :class:`~repro.guard.repair.GapRepairer`; short gaps in
        a link's cadence are filled with synthetic frames flagged
        ``repaired``.
    supervisor:
        Optional :class:`~repro.guard.supervisor.RecoverySupervisor`
        deciding per batch which tier serves.  Defaults to a passthrough
        supervisor that reproduces the legacy behaviour exactly.
    quarantine:
        Holding pen for refused frames; auto-created when a validator is
        supplied without one.
    observer:
        Optional :class:`~repro.obs.observer.Observer` receiving per-frame
        trace spans and structured events.  Defaults to the no-op
        :data:`~repro.obs.observer.NULL_OBSERVER` (zero-cost: no clock
        reads, no allocations on the hot path).
    """

    def __init__(
        self,
        estimator,
        config: ServeConfig | None = None,
        *,
        max_batch=_UNSET,
        max_latency_ms=_UNSET,
        queue_capacity=_UNSET,
        window=_UNSET,
        hold_frames=_UNSET,
        stale_after_s=_UNSET,
        fallback=_UNSET,
        registry=_UNSET,
        validator=_UNSET,
        repairer=_UNSET,
        supervisor=_UNSET,
        quarantine=_UNSET,
        observer=_UNSET,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("max_batch", max_batch),
                ("max_latency_ms", max_latency_ms),
                ("queue_capacity", queue_capacity),
                ("window", window),
                ("hold_frames", hold_frames),
                ("stale_after_s", stale_after_s),
                ("fallback", fallback),
                ("registry", registry),
                ("validator", validator),
                ("repairer", repairer),
                ("supervisor", supervisor),
                ("quarantine", quarantine),
                ("observer", observer),
            )
            if value is not _UNSET
        }
        if legacy:
            names = ", ".join(sorted(legacy))
            raise ConfigError(
                "InferenceEngine no longer accepts per-knob keyword "
                f"arguments (got: {names}); pass a ServeConfig instead — "
                "each legacy kwarg maps to the ServeConfig field of the "
                "same name, e.g. "
                "InferenceEngine(estimator, ServeConfig(max_batch=8))"
            )
        if config is None:
            config = ServeConfig()
        validate_estimator(estimator, require=("predict_proba",))
        self.config = config
        self.estimator = estimator
        self.fallback = config.fallback if config.fallback is not None else PriorFallback()
        validate_estimator(self.fallback, require=("predict_proba",))
        self.window = config.window
        self.hold_frames = config.hold_frames
        self.stale_after_s = config.stale_after_s
        self.queue = MicroBatchQueue(
            max_batch=config.max_batch,
            max_latency_s=(
                None
                if config.max_latency_ms is None
                else config.max_latency_ms / 1000.0
            ),
            capacity=config.queue_capacity,
            credit=config.queue_credit,
        )
        self.registry = config.registry if config.registry is not None else MetricsRegistry()
        guard_v, guard_r, guard_s = config.build_guards(registry=self.registry)
        self.validator = guard_v
        self.repairer = guard_r
        self.supervisor = guard_s if guard_s is not None else RecoverySupervisor()
        self.supervisor.bind_registry(self.registry)
        self.observer = config.observer if config.observer is not None else NULL_OBSERVER
        self.observer.bind_registry(self.registry)
        self.supervisor.bind_observer(self.observer)
        quarantine_pen = config.quarantine
        if quarantine_pen is None and self.validator is not None:
            quarantine_pen = QuarantineBuffer()
        self.quarantine = quarantine_pen
        self._links: dict[str, _LinkState] = {}
        self._now_s = -np.inf
        self._frame_seq = 0
        # Preallocated ring of batch buffers (lazily sized to the frame
        # width) so _run_batch copies rows into reused storage instead of
        # np.stack-ing a fresh array per flush.  Two slots: inference is
        # synchronous, but the drift sentinel and custom estimators may
        # legitimately read the batch until the *next* flush begins.
        self._batch_ring: list[np.ndarray] = []
        self._ring_index = 0
        # Hot-swap state: a replacement estimator waiting for the queue to
        # drain, and an optional rollout manager fed every served batch.
        self._pending_estimator = None
        self._rollout = None
        # Overload control plane — every piece None/inert unless configured.
        self._auto_flush = config.auto_flush
        self.limiter = (
            RateLimiter(config.rate_limit_hz, config.rate_limit_burst)
            if config.rate_limit_hz is not None
            else None
        )
        self.deadline_s = (
            None if config.deadline_ms is None else config.deadline_ms / 1000.0
        )
        self.governor = None
        if config.overload is not None:
            budget_s = self.deadline_s
            if budget_s is None and config.max_latency_ms is not None:
                budget_s = config.max_latency_ms / 1000.0
            self.governor = SaturationGovernor(
                config.overload,
                capacity=config.queue_capacity,
                latency_budget_s=budget_s,
                registry=self.registry,
                observer=self.observer,
            )
        # Optional frozen fastpath plan the governor's FASTPATH_ONLY mode
        # prefers (attach via attach_fastpath; health-wise it is primary).
        self._fastpath = None
        # Zero-copy frame arena: created lazily at the first admitted
        # frame (the row width is unknown until then).  None arena_slots
        # keeps the legacy owned-array admission path.
        self._arena_slots = config.arena_slots
        self.arena: FrameArena | None = None
        # Adaptive batching: max_batch in the config is the *ceiling* the
        # batch ring is sized to; the batcher moves queue.max_batch and
        # the flush deadline underneath it, never above.
        self._batch_ceiling = config.max_batch
        self._batcher = (
            AdaptiveBatcher(
                config.min_batch,
                config.max_batch,
                None
                if config.max_latency_ms is None
                else config.max_latency_ms / 1000.0,
            )
            if config.adaptive_batching
            else None
        )

    # ------------------------------------------------------------- hot swap

    def replace_estimator(self, estimator, *, drain: bool = True):
        """Swap the primary estimator; returns the one being replaced.

        With ``drain=True`` (the default) the swap honours
        drain-before-swap semantics: every frame already admitted to the
        queue is served by the *current* estimator first, and the swap is
        applied the moment the queue next empties (immediately when it is
        already empty — no frame is dropped or re-routed either way).
        ``drain=False`` swaps immediately, abandoning that guarantee.

        The returned estimator is the active one at call time — with a
        deferred swap it keeps serving until the drain completes, so
        callers holding it for rollback always get the true incumbent.
        """
        validate_estimator(estimator, require=("predict_proba",))
        old = self.estimator
        if drain and self.queue.depth:
            self._pending_estimator = estimator
        else:
            self.estimator = estimator
            self._pending_estimator = None
            self.registry.counter("estimator_swaps_total").inc()
        return old

    def _apply_pending_swap(self) -> None:
        if self._pending_estimator is not None and not self.queue.depth:
            self.estimator = self._pending_estimator
            self._pending_estimator = None
            self.registry.counter("estimator_swaps_total").inc()

    def attach_rollout(self, manager) -> None:
        """Bind a rollout manager; it sees every served batch post-emit.

        ``manager`` follows the :class:`repro.rollout.promote.RolloutManager`
        duck type: ``on_batch(frames, rows, probabilities, now_s,
        source=...)`` invoked after each batch's results are built, so a
        shadow challenger replays exactly the frames the champion served.
        """
        self._rollout = manager

    def detach_rollout(self):
        """Unbind and return the rollout manager (None when absent)."""
        manager, self._rollout = self._rollout, None
        return manager

    # ---------------------------------------------------------------- links

    def _link(self, link_id: str) -> _LinkState:
        if link_id not in self._links:
            self._links[link_id] = _LinkState(self.window, self.hold_frames)
            self.registry.gauge("links").set(len(self._links))
        return self._links[link_id]

    @property
    def link_ids(self) -> tuple[str, ...]:
        """Links seen so far, in first-submission order."""
        return tuple(self._links)

    def health(self, link_id: str) -> LinkHealth:
        """The serving health of one link (IDLE until its first result)."""
        if link_id not in self._links:
            raise ConfigurationError(f"unknown link {link_id!r}")
        return self._links[link_id].health

    def state(self, link_id: str) -> int:
        """The link's current debounced occupancy state (0/1)."""
        if link_id not in self._links:
            raise ConfigurationError(f"unknown link {link_id!r}")
        return self._links[link_id].debouncer.state

    # --------------------------------------------------------------- submit

    def submit(self, link_id: str, t_s: float, csi_row: np.ndarray) -> list[InferenceResult]:
        """Enqueue one frame; returns results for any batch this triggered.

        Malformed frames (wrong shape, NaN/inf) are rejected and counted,
        never enqueued — one broken sniffer row must not take down the
        shared pipeline.  With a validator attached, frames that fail its
        richer check chain are quarantined (with the verdict) instead;
        with a repairer attached, an admitted frame that closes a short
        cadence gap first enqueues the synthetic fill frames, flagged
        ``repaired``.

        For a receipt carrying the assigned frame id and admission
        outcome, use :meth:`submit_frame` instead.
        """
        return self._admit(link_id, t_s, csi_row)[2]

    def submit_frame(self, tenant_id: str, t_s: float, csi_row: np.ndarray) -> FrameTicket:
        """Like :meth:`submit`, but returns a typed :class:`FrameTicket`.

        The ticket carries the monotonic frame id this submission was
        assigned (the join key into :mod:`repro.obs` traces/events), the
        admission outcome, and any results the submission flushed — the
        normalised surface shared with :class:`repro.fleet.Fleet`.
        """
        frame_id, outcome, results = self._admit(tenant_id, t_s, csi_row)
        return FrameTicket(
            tenant_id=tenant_id,
            frame_id=frame_id,
            t_s=float(t_s),
            outcome=outcome,
            results=tuple(results),
        )

    def _admit(
        self, link_id: str, t_s: float, csi_row: np.ndarray
    ) -> tuple[int, str, list[InferenceResult]]:
        link = self._link(link_id)
        obs = self.observer
        tracing = obs.enabled
        frame_id = self._frame_seq
        self._frame_seq += 1
        t_f = float(t_s)
        if tracing:
            obs.frame_submitted(frame_id, link_id, t_f)
        slot = None
        if self._arena_slots is not None:
            staged = self._stage_row(csi_row)
            if staged is None:
                link.rejected += 1
                self.registry.counter("frames_rejected").inc()
                if tracing:
                    obs.frame_outcome("rejected", frame_id, link_id, t_f, gate="shape")
                return frame_id, "rejected", []
            csi_row, slot = staged
        else:
            try:
                csi_row = check_csi_row(csi_row)
            except (ShapeError, StreamError):
                link.rejected += 1
                self.registry.counter("frames_rejected").inc()
                if tracing:
                    obs.frame_outcome("rejected", frame_id, link_id, t_f, gate="shape")
                return frame_id, "rejected", []
        if self.limiter is not None and not self.limiter.admit(link_id, t_f):
            # After the shape gate (malformed frames must not spend
            # tokens), before the validator (an over-rate tenant must not
            # burn validator CPU either).
            self._release_ref(slot)
            link.rate_limited += 1
            self.registry.counter("frames_rate_limited").inc()
            if tracing:
                obs.frame_outcome(
                    "rate_limited",
                    frame_id,
                    link_id,
                    t_f,
                    reserved_hz=self.limiter.reserved_hz(link_id),
                )
            return frame_id, "rate_limited", []
        if self.validator is not None:
            if tracing:
                t0 = time.perf_counter()
            failure = self.validator.validate(link_id, t_f, csi_row)
            if tracing:
                obs.tracer.add_stage(
                    frame_id, "validate", 1000.0 * (time.perf_counter() - t0)
                )
            if failure is not None:
                link.quarantined += 1
                self.registry.counter("frames_quarantined").inc()
                if slot is not None:
                    # The pen outlives the slot: park an owned copy.
                    csi_row = csi_row.copy()
                    self._release_ref(slot)
                self.quarantine.add(
                    QuarantinedFrame(link_id, t_f, csi_row, failure)
                )
                if tracing:
                    obs.frame_outcome(
                        "quarantined", frame_id, link_id, t_f, check=failure.check
                    )
                return frame_id, "quarantined", []
        link.frames_in += 1
        self.registry.counter("frames_in").inc()
        self._now_s = max(self._now_s, t_f)
        if self._batcher is not None:
            self._batcher.observe(t_f)
            self._apply_batch_decision(t_f)

        pending = [
            PendingFrame(
                link_id,
                t_f,
                csi_row,
                frame_id=frame_id,
                deadline_s=deadline_for(t_f, self.deadline_s),
                slot=slot,
            )
        ]
        if self.repairer is not None:
            if tracing:
                t0 = time.perf_counter()
            fills = self.repairer.observe(link_id, t_f, csi_row)
            if tracing:
                obs.tracer.add_stage(
                    frame_id, "repair", 1000.0 * (time.perf_counter() - t0)
                )
            if fills:
                link.repaired += len(fills)
                self.registry.counter("frames_repaired").inc(len(fills))
                filled: list[PendingFrame] = []
                for fill in fills:
                    fill_id = self._frame_seq
                    self._frame_seq += 1
                    fill_row, fill_slot = fill.row, None
                    if self.arena is not None:
                        fill_slot = self.arena.acquire(fill.row)
                        if fill_slot is not None:
                            fill_row = self.arena.slab[fill_slot.slot]
                        else:
                            self.registry.counter("arena_fallback_total").inc()
                    filled.append(
                        PendingFrame(
                            link_id,
                            fill.t_s,
                            fill_row,
                            repaired=True,
                            frame_id=fill_id,
                            deadline_s=deadline_for(fill.t_s, self.deadline_s),
                            slot=fill_slot,
                        )
                    )
                    if tracing:
                        obs.frame_filled(fill_id, link_id, fill.t_s, source_frame=frame_id)
                pending = filled + pending
        for frame in pending:
            if tracing:
                t0 = time.perf_counter()
            evicted = self.queue.push(frame)
            if evicted is not None:
                self._release_frame(evicted)
                self._link(evicted.link_id).overflow += 1
                self.registry.counter("frames_dropped_overflow").inc()
                if tracing:
                    obs.frame_outcome(
                        "overflow", evicted.frame_id, evicted.link_id, evicted.t_s
                    )
            if tracing:
                obs.tracer.add_stage(
                    frame.frame_id, "enqueue", 1000.0 * (time.perf_counter() - t0)
                )
                obs.tracer.mark_enqueued(frame.frame_id)
        self.registry.gauge("queue_depth").set(self.queue.depth)
        self.registry.histogram("queue_depth_dist").observe(self.queue.depth)
        self._sync_arena_metrics()

        results: list[InferenceResult] = []
        if self._auto_flush:
            while self.queue.ready(self._now_s):
                results.extend(self._run_batch(self.queue.drain()))
            self._apply_pending_swap()
        return frame_id, "enqueued", results

    # ----------------------------------------------------- arena / adaptive

    def _stage_row(self, csi_row) -> tuple[np.ndarray, object | None] | None:
        """Arena admission: one copy into a slab slot, gated on the view.

        Returns ``(row, slot_ref)`` — ``slot_ref`` is ``None`` when the
        frame fell back to the legacy owned-array path (ring exhausted,
        unexpected width, exotic dtype) — or ``None`` for a malformed
        frame the shape/finite gate refuses.  Note the float32 slab means
        values beyond float32 range overflow to ``inf`` and are refused
        at the finite gate; CSI amplitudes live many orders of magnitude
        below that.
        """
        arr = np.asarray(csi_row)
        if arr.ndim != 1:
            return None
        if arr.dtype.kind not in "fiub":
            # Exotic dtypes keep the legacy gate's cast-or-reject
            # semantics; the arena only stages plain numeric rows.
            return self._stage_fallback(arr)
        arena = self.arena
        if arena is None:
            arena = self.arena = FrameArena(self._arena_slots, arr.shape[0])
            self.registry.gauge("arena_slots").set(arena.n_slots)
        ref = arena.acquire(arr) if arr.shape[0] == arena.width else None
        if ref is None:
            return self._stage_fallback(arr)
        view = arena.slab[ref.slot]
        if not np.isfinite(view).all():
            arena.release(ref)
            return None
        return view, ref

    def _stage_fallback(self, arr) -> tuple[np.ndarray, None] | None:
        """The owned-array path for frames the arena cannot stage."""
        try:
            row = check_csi_row(arr)
        except (ShapeError, StreamError):
            return None
        self.registry.counter("arena_fallback_total").inc()
        return row, None

    def _release_ref(self, ref) -> None:
        if ref is not None:
            self.arena.release(ref)

    def _release_frame(self, frame: PendingFrame) -> None:
        """Recycle a frame's slab slot the moment its outcome is terminal."""
        if frame.slot is not None:
            self.arena.release(frame.slot)

    def _sync_arena_metrics(self) -> None:
        arena = self.arena
        if arena is not None:
            self.registry.gauge("arena_in_use").set(arena.in_use)
            self.registry.gauge("arena_acquired_total").set(arena.acquired_total)
            self.registry.gauge("arena_released_total").set(arena.released_total)

    def _apply_batch_decision(self, t_s: float) -> None:
        """Point the queue's flush triggers at the batcher's decision.

        The flush deadline tracks the rate estimate continuously (and
        silently); a batch-*size* change is the discrete, observable
        decision — counted and recorded as a closed-taxonomy
        ``serve.batch_resize`` event so a same-seed replay reproduces the
        full decision sequence byte-identically.
        """
        severity = 0 if self.governor is None else self.governor.mode.severity
        batch, deadline_s = self._batcher.decide(severity)
        previous = self.queue.max_batch
        if batch == previous and deadline_s == self.queue.max_latency_s:
            return
        self.queue.resize(batch, deadline_s)
        if batch == previous:
            return
        self.registry.counter("batch_resizes_total").inc()
        self.registry.gauge("adaptive_batch_size").set(batch)
        if self.observer.enabled:
            self.observer.emit(
                "serve.batch_resize",
                t_s=t_s,
                previous=previous,
                batch=batch,
                deadline_ms=None if deadline_s is None else 1000.0 * deadline_s,
            )

    def flush(self) -> list[InferenceResult]:
        """Force inference on everything pending (end of stream, shutdown)."""
        results: list[InferenceResult] = []
        while self.queue.depth:
            results.extend(self._run_batch(self.queue.drain()))
        self._apply_pending_swap()
        return results

    def pump(
        self, max_frames: int | None = None, now_s: float | None = None
    ) -> list[InferenceResult]:
        """Serve up to ``max_frames`` pending frames as micro-batches.

        The explicit service half of the decoupled loop: with
        ``auto_flush=False`` in the config, ``submit`` only enqueues and
        a driver calls ``pump`` at whatever cadence models its service
        capacity — the overload bench uses exactly this to create real
        backlog from open-loop arrivals.  ``now_s`` advances stream time
        (service happening later than the newest arrival); ``None``
        serves at the current stream time.  ``max_frames=None`` drains
        everything pending, in ``max_batch``-sized batches.
        """
        if max_frames is not None and max_frames < 0:
            raise ConfigurationError("max_frames must be >= 0 (or None)")
        if now_s is not None:
            self._now_s = max(self._now_s, float(now_s))
        budget = self.queue.depth if max_frames is None else int(max_frames)
        results: list[InferenceResult] = []
        while self.queue.depth and budget > 0:
            batch = self.queue.drain(min(budget, self.queue.max_batch))
            budget -= len(batch)
            results.extend(self._run_batch(batch))
        self._apply_pending_swap()
        return results

    # ------------------------------------------------------------- overload

    @property
    def mode(self) -> ServiceMode:
        """The governor's current degradation rung (FULL when ungoverned)."""
        return ServiceMode.FULL if self.governor is None else self.governor.mode

    def attach_fastpath(self, plan) -> None:
        """Bind a frozen inference plan for FASTPATH_ONLY mode.

        ``plan`` follows the :class:`repro.fastpath.plan.InferencePlan`
        duck type (``predict_proba(x) -> (n,)``).  While the governor
        sits on the FASTPATH_ONLY rung the plan serves instead of the
        primary estimator; its answers count as primary for link health
        (a frozen copy of the primary is not a degraded tier).
        """
        if plan is not None:
            validate_estimator(plan, require=("predict_proba",))
        self._fastpath = plan

    def link_stats(self, link_id: str) -> dict[str, int]:
        """Per-link lifetime tallies (admission through terminal outcome).

        The engine-side half of the frame ledger, keyed like the fleet's
        per-tenant ``counters()`` so bench reconciliation reads one
        schema across both serving surfaces.
        """
        if link_id not in self._links:
            raise ConfigurationError(f"unknown link {link_id!r}")
        link = self._links[link_id]
        return {
            "frames_in": link.frames_in,
            "frames_out": link.frames_out,
            "fallback_frames": link.fallback_frames,
            "stale_dropped": link.stale_dropped,
            "rejected": link.rejected,
            "quarantined": link.quarantined,
            "repaired": link.repaired,
            "policy_rejected": link.policy_rejected,
            "rate_limited": link.rate_limited,
            "deadline_expired": link.deadline_expired,
            "overflow": link.overflow,
            "overload_shed": link.overload_shed,
        }

    # ---------------------------------------------------------------- batch

    def _drop_expired(self, frames: list[PendingFrame]) -> list[PendingFrame]:
        """Shed frames whose deadline budget ran out while they queued."""
        if self.deadline_s is None:
            return frames
        obs = self.observer
        alive: list[PendingFrame] = []
        for frame in frames:
            if expired(frame.deadline_s, self._now_s):
                self._release_frame(frame)
                link = self._link(frame.link_id)
                link.deadline_expired += 1
                self.registry.counter("frames_deadline_expired").inc()
                if obs.enabled:
                    obs.frame_outcome(
                        "deadline_expired",
                        frame.frame_id,
                        frame.link_id,
                        frame.t_s,
                        age_s=self._now_s - frame.t_s,
                        budget_s=self.deadline_s,
                    )
            else:
                alive.append(frame)
        return alive

    def _shed_overload(self, frames: list[PendingFrame]) -> list[InferenceResult]:
        """Governor in SHED mode: refuse the batch, typed and counted.

        Unlike :meth:`_reject_batch` (both tiers broken — a fault) a shed
        is a *load* decision, so link health is left alone: the link did
        nothing wrong and recovers the moment the governor steps down.
        """
        self.registry.counter("frames_shed_overload").inc(len(frames))
        obs = self.observer
        for frame in frames:
            self._release_frame(frame)
            self._link(frame.link_id).overload_shed += 1
            if obs.enabled:
                obs.frame_outcome(
                    "shed", frame.frame_id, frame.link_id, frame.t_s
                )
        return []

    def _drop_stale(self, frames: list[PendingFrame]) -> list[PendingFrame]:
        if self.stale_after_s is None:
            return frames
        obs = self.observer
        fresh: list[PendingFrame] = []
        for frame in frames:
            if self._now_s - frame.t_s > self.stale_after_s:
                self._release_frame(frame)
                link = self._link(frame.link_id)
                link.stale_dropped += 1
                link.health = LinkHealth.DEGRADED
                self.registry.counter("frames_dropped_stale").inc()
                if obs.enabled:
                    obs.frame_outcome(
                        "stale",
                        frame.frame_id,
                        frame.link_id,
                        frame.t_s,
                        age_s=self._now_s - frame.t_s,
                    )
            else:
                fresh.append(frame)
        return fresh

    def _predict(
        self, x: np.ndarray, service_mode: ServiceMode = ServiceMode.FULL
    ) -> tuple[np.ndarray, str] | None:
        """Run the supervisor-selected tier; ``None`` means batch rejected.

        The governor's ``service_mode`` selects the *preferred* tier; the
        supervisor's breaker verdict still composes on top — a governor
        cannot force traffic onto a tier the breakers hold open.
        """
        mode = self.supervisor.decide(self._now_s)
        if mode is ServingMode.REJECT:
            return None
        if service_mode is ServiceMode.FASTPATH_ONLY and self._fastpath is not None:
            try:
                probabilities = np.asarray(
                    self._fastpath.predict_proba(x), dtype=float
                ).ravel()
            except Exception:
                # A broken plan falls through to the normal tier walk —
                # degraded capacity, never a dead surface.
                self.registry.counter("fastpath_failures").inc()
            else:
                return probabilities, "fastpath"
        if mode is ServingMode.PRIMARY and service_mode is not ServiceMode.FALLBACK_ONLY:
            try:
                probabilities = np.asarray(
                    self.estimator.predict_proba(x), dtype=float
                ).ravel()
            except Exception:
                self.registry.counter("primary_failures").inc()
                self.supervisor.record_primary_failure(self._now_s)
            else:
                self.supervisor.record_primary_success(self._now_s)
                return probabilities, "primary"
        try:
            probabilities = np.asarray(
                self.fallback.predict_proba(x), dtype=float
            ).ravel()
        except Exception as error:  # both tiers dead: surface loudly
            self.supervisor.record_fallback_failure(self._now_s)
            raise ServingError(
                "primary estimator and fallback predictor both failed"
            ) from error
        self.supervisor.record_fallback_success(self._now_s)
        return probabilities, "fallback"

    def _assemble(self, frames: list[PendingFrame]) -> np.ndarray:
        """Copy the batch rows into a reused buffer (zero fresh allocation).

        Falls back to ``np.stack`` for over-long batches or mixed frame
        widths, where it reproduces the legacy behaviour (including the
        ``ValueError`` a ragged batch has always raised).
        """
        n = len(frames)
        width = frames[0].csi.shape[0]
        ceiling = max(self._batch_ceiling, self.queue.max_batch)
        if n > ceiling or any(
            frame.csi.shape[0] != width for frame in frames
        ):
            return np.stack([frame.csi for frame in frames])
        # The ring is sized to the configured ceiling, not the queue's
        # *current* max_batch, so adaptive resizes never reallocate; on
        # the arena path it matches the slab dtype (float32) end to end.
        dtype = np.float32 if self._arena_slots is not None else np.float64
        shape = (ceiling, width)
        if (
            not self._batch_ring
            or self._batch_ring[0].shape != shape
            or self._batch_ring[0].dtype != dtype
        ):
            self._batch_ring = [np.empty(shape, dtype=dtype) for _ in range(2)]
            self._ring_index = 0
        buffer = self._batch_ring[self._ring_index]
        self._ring_index = (self._ring_index + 1) % len(self._batch_ring)
        x = buffer[:n]
        for i, frame in enumerate(frames):
            x[i] = frame.csi
        return x

    def _run_batch(self, frames: list[PendingFrame]) -> list[InferenceResult]:
        mode = ServiceMode.FULL
        if self.governor is not None and frames:
            # Depth at drain time (queue remainder plus this batch) and
            # the oldest frame's queueing delay — both stream time.
            mode = self.governor.observe(
                self.queue.depth + len(frames),
                self._now_s - frames[0].t_s,
                self._now_s,
            )
        frames = self._drop_expired(frames)
        frames = self._drop_stale(frames)
        self.registry.gauge("queue_depth").set(self.queue.depth)
        if not frames:
            return []
        if mode is ServiceMode.SHED:
            return self._shed_overload(frames)
        obs = self.observer
        tracing = obs.enabled
        if tracing:
            for frame in frames:
                obs.tracer.queue_wait(frame.frame_id)
            t0 = time.perf_counter()
        x = self._assemble(frames)
        if mode is ServiceMode.FULL:
            # Degraded rungs skip per-batch drift scoring — the sentinel
            # window is guard overhead the governor is shedding.
            self.supervisor.observe(x, self._now_s)
        if tracing:
            supervise_ms = 1000.0 * (time.perf_counter() - t0)
            for frame in frames:
                obs.tracer.add_stage(frame.frame_id, "supervise", supervise_ms)

        start = time.perf_counter()
        predicted = self._predict(x, mode)
        if predicted is None:
            return self._reject_batch(frames)
        probabilities, source = predicted
        latency_ms = 1000.0 * (time.perf_counter() - start)

        if probabilities.shape[0] != len(frames):
            raise ServingError(
                f"{source} predictor returned {probabilities.shape[0]} probabilities "
                f"for a batch of {len(frames)}"
            )
        self.registry.counter("batches").inc()
        self.registry.histogram("batch_size").observe(len(frames))
        self.registry.histogram("batch_latency_ms").observe(latency_ms)
        self.registry.counter("frames_out").inc(len(frames))
        if source == "fallback":
            self.registry.counter("fallback_frames").inc(len(frames))
        if tracing:
            # Every frame in the batch really did wait out the whole
            # predict call, so each gets the full batch latency.
            for frame in frames:
                obs.tracer.add_stage(frame.frame_id, "predict", latency_ms)
            obs.emit("batch.flush", t_s=self._now_s, n=len(frames), source=source)
            emit_t0 = time.perf_counter()

        results: list[InferenceResult] = []
        for frame, p in zip(frames, probabilities):
            link = self._link(frame.link_id)
            link.frames_out += 1
            if source == "fallback":
                link.fallback_frames += 1
            new_health, recovered = self.supervisor.resolve_health(
                link.health, "primary" if source == "fastpath" else source
            )
            if recovered:
                self.registry.counter("link_recovered_total").inc()
                if tracing:
                    obs.emit(
                        "link.recovered",
                        t_s=frame.t_s,
                        frame_id=frame.frame_id,
                        link_id=frame.link_id,
                    )
            link.health = new_health
            flipped = link.debouncer.update(int(p >= 0.5))
            transition = None
            if flipped is not None:
                transition = Transition(frame.t_s, bool(flipped))
                self.registry.counter("transitions").inc()
            results.append(
                InferenceResult(
                    link_id=frame.link_id,
                    t_s=frame.t_s,
                    probability=float(p),
                    state=link.debouncer.state,
                    transition=transition,
                    source=source,
                    repaired=frame.repaired,
                    frame_id=frame.frame_id,
                )
            )
            if tracing:
                obs.frame_outcome(
                    "answered",
                    frame.frame_id,
                    frame.link_id,
                    frame.t_s,
                    source=source,
                    repaired=frame.repaired,
                )
        if tracing:
            # The emit loop is one pass over the batch; attribute each
            # frame its share so per-stage sums stay comparable.
            emit_ms = 1000.0 * (time.perf_counter() - emit_t0) / len(frames)
            for frame in frames:
                obs.tracer.add_stage(frame.frame_id, "emit", emit_ms)
        if self._rollout is not None:
            # After emission: the served outputs above are final, so the
            # shadow leg can never affect them.  A promotion requested in
            # here defers via replace_estimator until the queue drains.
            self._rollout.on_batch(
                frames, x[: len(frames)], probabilities, self._now_s, source=source
            )
        if self.arena is not None:
            # Answered is terminal: the rows live on in the batch ring
            # copy (x), so the slab slots recycle immediately.  Consumers
            # must not retain frame.csi past this point — the same
            # aliasing contract the two-slot batch ring already imposes.
            for frame in frames:
                self._release_frame(frame)
            self._sync_arena_metrics()
        return results

    def _reject_batch(self, frames: list[PendingFrame]) -> list[InferenceResult]:
        """Both tiers circuit-broken: shed the batch, mark links DEGRADED."""
        self.registry.counter("frames_rejected_policy").inc(len(frames))
        obs = self.observer
        if obs.enabled:
            obs.emit("batch.rejected", t_s=self._now_s, n=len(frames))
        for frame in frames:
            self._release_frame(frame)
            link = self._link(frame.link_id)
            link.policy_rejected += 1
            link.health = LinkHealth.DEGRADED
            if obs.enabled:
                obs.frame_outcome(
                    "policy_rejected", frame.frame_id, frame.link_id, frame.t_s
                )
        return []
