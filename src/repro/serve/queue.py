"""Bounded frame queue with micro-batching flush policy.

The engine's admission path: frames from all links land in one
:class:`MicroBatchQueue`, a fixed-capacity ring buffer.  Under
backpressure (producers outrunning inference) the *oldest* pending frame
is evicted — in live occupancy sensing a fresh frame is always worth more
than a stale one, so drop-oldest is the only sane overflow policy.

A batch becomes ready when either

* ``max_batch`` frames are pending (throughput trigger), or
* the oldest pending frame has waited ``max_latency_s`` of stream time
  (latency trigger — a lone link at 1 Hz must not wait forever for 63
  friends).  ``max_latency_s=None`` disables the trigger for backlogged
  / offline-reprocessing workloads where only throughput matters.

Stream time means frame timestamps, not wall clock: the queue is fully
deterministic, which keeps replay tests exact and lets simulations run
faster than real time.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class PendingFrame:
    """One enqueued observation awaiting inference."""

    link_id: str
    t_s: float
    csi: np.ndarray
    #: True for synthetic frames the gap repairer manufactured; the flag
    #: rides through to :class:`~repro.serve.engine.InferenceResult` so
    #: downstream consumers can always separate measured from filled.
    repaired: bool = False
    #: Monotonic id assigned by :meth:`~repro.serve.engine.InferenceEngine.submit`
    #: (-1 for frames built outside an engine).  The id keys the frame's
    #: trace spans and structured events in :mod:`repro.obs`.
    frame_id: int = -1
    #: Absolute stream-time deadline (``t_s`` + the configured budget);
    #: ``inf`` when no deadline budget is configured.  Frames past their
    #: deadline are shed at dequeue instead of served stale.
    deadline_s: float = math.inf
    #: Arena slot backing :attr:`csi` when the engine runs a
    #: :class:`~repro.serve.arena.FrameArena` (``csi`` is then a slab
    #: view); ``None`` means the frame owns its row (legacy path).  The
    #: engine releases the slot when the frame reaches a terminal outcome.
    slot: object | None = None


class MicroBatchQueue:
    """Fixed-capacity FIFO of :class:`PendingFrame` with flush triggers.

    Parameters
    ----------
    max_batch:
        Flush as soon as this many frames are pending.
    max_latency_s:
        Flush once the oldest pending frame is this old in stream time;
        ``None`` disables the latency trigger (flush on ``max_batch`` only).
    capacity:
        Hard bound on pending frames; pushing beyond it evicts the oldest.
    credit:
        Optional per-link bound on pending frames.  A link pushing past
        its credit evicts *its own* oldest frame — backpressure becomes
        attributable to the chatty link instead of anonymously taxing
        whichever link happens to own the globally oldest frame.
        ``None`` (the default) keeps the legacy global-oldest policy.
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_latency_s: float | None = 0.25,
        capacity: int = 256,
        credit: int | None = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if max_latency_s is not None and max_latency_s <= 0:
            raise ConfigurationError("max_latency_s must be positive (or None)")
        if capacity < max_batch:
            raise ConfigurationError(
                f"capacity ({capacity}) must be >= max_batch ({max_batch})"
            )
        if credit is not None and credit < 1:
            raise ConfigurationError("credit must be >= 1 (or None)")
        self.max_batch = max_batch
        self.max_latency_s = max_latency_s
        self.capacity = capacity
        self.credit = credit
        self._pending: deque[PendingFrame] = deque()
        self._link_counts: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        """Number of frames currently pending."""
        return len(self._pending)

    def link_depth(self, link_id: str) -> int:
        """Frames currently pending for one link."""
        return self._link_counts.get(link_id, 0)

    @property
    def oldest_t_s(self) -> float | None:
        """Timestamp of the oldest pending frame (None when empty)."""
        return self._pending[0].t_s if self._pending else None

    def _forget(self, frame: PendingFrame) -> PendingFrame:
        count = self._link_counts.get(frame.link_id, 0) - 1
        if count > 0:
            self._link_counts[frame.link_id] = count
        else:
            self._link_counts.pop(frame.link_id, None)
        return frame

    def _evict_from_link(self, link_id: str) -> PendingFrame:
        for i, frame in enumerate(self._pending):
            if frame.link_id == link_id:
                del self._pending[i]
                return self._forget(frame)
        raise AssertionError(f"credit bookkeeping out of sync for {link_id!r}")

    def push(self, frame: PendingFrame) -> PendingFrame | None:
        """Enqueue a frame; returns the evicted frame when a bound is hit.

        A link over its ``credit`` evicts its own oldest frame; a full
        queue evicts the globally oldest.  At most one frame is evicted
        per push (credit <= capacity by construction of the counts).
        """
        evicted = None
        if (
            self.credit is not None
            and self._link_counts.get(frame.link_id, 0) >= self.credit
        ):
            evicted = self._evict_from_link(frame.link_id)
        elif len(self._pending) >= self.capacity:
            evicted = self._forget(self._pending.popleft())
        self._pending.append(frame)
        self._link_counts[frame.link_id] = self._link_counts.get(frame.link_id, 0) + 1
        return evicted

    def resize(self, max_batch: int, max_latency_s: float | None) -> None:
        """Re-point the flush triggers (the adaptive batcher's lever).

        Capacity and per-link credit are structural and never move;
        pending frames are untouched — the new triggers simply apply to
        the next :meth:`ready` evaluation.
        """
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if max_batch > self.capacity:
            raise ConfigurationError(
                f"max_batch ({max_batch}) must be <= capacity ({self.capacity})"
            )
        if max_latency_s is not None and max_latency_s <= 0:
            raise ConfigurationError("max_latency_s must be positive (or None)")
        self.max_batch = int(max_batch)
        self.max_latency_s = max_latency_s

    def ready(self, now_s: float) -> bool:
        """Should the engine flush, given the current stream time?"""
        if len(self._pending) >= self.max_batch:
            return True
        if (
            self.max_latency_s is not None
            and self._pending
            and now_s - self._pending[0].t_s >= self.max_latency_s
        ):
            return True
        return False

    def drain(self, limit: int | None = None) -> list[PendingFrame]:
        """Pop up to ``limit`` frames (default ``max_batch``) in FIFO order."""
        n = min(len(self._pending), limit if limit is not None else self.max_batch)
        return [self._forget(self._pending.popleft()) for _ in range(n)]

    def drain_all(self) -> list[PendingFrame]:
        """Pop everything — used by the engine's final flush."""
        out = list(self._pending)
        self._pending.clear()
        self._link_counts.clear()
        return out
